"""Compatibility front door for the execution-backend subsystem.

The SPMD engine now lives in :mod:`repro.simmpi.backends`: an abstract
:class:`~repro.simmpi.backends.base.Backend` (spawn ranks, rendezvous,
collective compute, teardown) with three interchangeable implementations —
``serial`` (deterministic round-robin interpreter), ``threads`` (one native
thread per rank, the historical behaviour), and ``procs`` (one forked
process per rank over ``multiprocessing.shared_memory``).  Pick one with
:func:`repro.simmpi.backends.create_runtime`.

This module keeps the original entry points importable:

* :class:`Runtime` — **deprecated** alias of
  :class:`~repro.simmpi.backends.threads.ThreadsBackend`; prefer
  ``create_runtime("threads", nprocs=...)``.
* :func:`run_spmd` — one-shot convenience, now with a ``backend`` argument.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Optional, Sequence, Union

from repro.simmpi.backends import Backend, create_runtime
from repro.simmpi.backends.threads import ThreadsBackend
from repro.simmpi.metrics import CommStats


class Runtime(ThreadsBackend):
    """Deprecated alias of the thread-per-rank backend.

    Kept so existing imports and subclasses continue to work; new code
    should call ``create_runtime(backend, nprocs=...)`` and program against
    the :class:`~repro.simmpi.backends.base.Backend` interface.
    """


def run_spmd(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    rank_args: Optional[Sequence[Sequence[Any]]] = None,
    meter_compute: bool = True,
    backend: Union[str, None, Backend] = None,
    comm: Any = None,
    result_sharing: Optional[str] = None,
    **kwargs: Any,
) -> tuple[List[Any], CommStats]:
    """One-shot convenience: run ``fn`` on ``nprocs`` ranks, return results
    plus the communication record.

    ``backend`` selects the execution backend by name (``serial`` /
    ``threads`` / ``procs``); None honors ``$REPRO_BACKEND`` and defaults
    to ``threads``.  ``comm`` selects the communicator strategy for
    topology-aware metering (``flat`` / ``hierarchical[:R[xK]]``); None
    honors ``$REPRO_COMM`` and defaults to ``flat``.  ``result_sharing``
    selects the in-process collective result delivery (``shared`` /
    ``copy``); None honors ``$REPRO_RESULT_SHARING`` and defaults to
    ``shared``.
    """
    rt = create_runtime(backend, nprocs=nprocs, meter_compute=meter_compute,
                        comm=comm, result_sharing=result_sharing)
    try:
        out = rt.run(fn, *args, rank_args=rank_args, **kwargs)
    finally:
        rt.close()
    return out, rt.stats


def _thread_time() -> float:
    return time.thread_time()
