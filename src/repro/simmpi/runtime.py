"""Bulk-synchronous SPMD runtime for simulated MPI ranks.

Each rank runs as a native thread executing the user's rank function with a
:class:`repro.simmpi.comm.SimComm` handle.  All inter-rank interaction goes
through *collectives*, implemented as rendezvous points: every rank deposits
its contribution, the last rank to arrive executes the collective (pure
NumPy, no further synchronization), and all ranks pick up their results.

Because ranks only mutate rank-local state between rendezvous, the results
of a run are deterministic and independent of thread scheduling.  Threads
still buy real parallelism for NumPy-heavy rank code (NumPy releases the
GIL), and per-rank compute time is measured with ``time.thread_time`` so a
rank is never charged for time spent blocked.

Misuse that would hang or corrupt a real MPI job is turned into errors:

* ranks calling different collectives at the same superstep →
  :class:`~repro.simmpi.errors.CollectiveMismatchError`;
* a rank returning while others wait in a collective →
  :class:`~repro.simmpi.errors.DeadlockError`;
* an exception in one rank's code releases all other ranks with
  :class:`~repro.simmpi.errors.RemoteRankError` and re-raises the original
  exception from :meth:`Runtime.run`.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.simmpi.errors import (
    CollectiveMismatchError,
    DeadlockError,
    RemoteRankError,
)
from repro.simmpi.metrics import CollectiveEvent, CommStats


class _Pending:
    """State of the collective currently being assembled."""

    __slots__ = ("op", "tag", "contribs", "nbytes", "compute", "work",
                 "arrived", "results")

    def __init__(self, nprocs: int, op: str, tag: str) -> None:
        self.op = op
        self.tag = tag
        self.contribs: List[Any] = [None] * nprocs
        self.nbytes = np.zeros(nprocs, dtype=np.int64)
        self.compute = np.zeros(nprocs, dtype=np.float64)
        self.work = np.zeros(nprocs, dtype=np.float64)
        self.arrived = 0
        self.results: Optional[List[Any]] = None


class Runtime:
    """Owns the rank threads, the rendezvous engine, and the metering.

    Parameters
    ----------
    nprocs:
        Number of simulated MPI ranks.
    meter_compute:
        If False, skip the per-rank ``thread_time`` calls (slightly faster;
        modeled times then contain only communication terms).
    """

    def __init__(self, nprocs: int, *, meter_compute: bool = True) -> None:
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = int(nprocs)
        self.meter_compute = bool(meter_compute)
        self.stats = CommStats(self.nprocs)
        self._cond = threading.Condition()
        self._pending: Optional[_Pending] = None
        self._generation = 0
        self._n_finished = 0
        self._failure: Optional[BaseException] = None

    # -- rendezvous engine -------------------------------------------------

    def _fail(self, exc: BaseException) -> None:
        """Record the first failure and wake everyone (cond held)."""
        if self._failure is None:
            self._failure = exc
        self._pending = None
        self._generation += 1
        self._cond.notify_all()

    def collective(
        self,
        rank: int,
        op: str,
        tag: str,
        contribution: Any,
        nbytes_sent: int,
        execute: Callable[[List[Any]], List[Any]],
        compute_seconds: float,
        work_units: float = 0.0,
    ) -> Any:
        """Deposit ``contribution`` for ``op``; block until all ranks match.

        ``execute`` maps the full list of contributions (indexed by rank) to
        a list of per-rank results; it runs exactly once, in the last
        arriving rank's thread.  ``nbytes_sent`` is this rank's off-rank
        payload for the metering convention documented in
        :mod:`repro.simmpi.metrics`.
        """
        if self.nprocs == 1:
            results = execute([contribution])
            self.stats.record(
                CollectiveEvent(
                    op=op,
                    tag=tag,
                    bytes_sent=np.zeros(1, dtype=np.int64),
                    compute_seconds=np.array([compute_seconds]),
                    work_units=np.array([work_units]),
                )
            )
            return results[0]

        with self._cond:
            if self._failure is not None:
                raise RemoteRankError(f"rank {rank}: aborted") from self._failure
            if self._n_finished > 0:
                exc = DeadlockError(
                    f"rank {rank} entered collective {op!r} but "
                    f"{self._n_finished} rank(s) already returned"
                )
                self._fail(exc)
                raise exc

            if self._pending is None:
                self._pending = _Pending(self.nprocs, op, tag)
            pending = self._pending
            if pending.op != op:
                exc = CollectiveMismatchError(
                    f"rank {rank} called {op!r} while rank(s) already in "
                    f"{pending.op!r} (tag {pending.tag!r})"
                )
                self._fail(exc)
                raise exc

            pending.contribs[rank] = contribution
            pending.nbytes[rank] = nbytes_sent
            pending.compute[rank] = compute_seconds
            pending.work[rank] = work_units
            pending.arrived += 1
            my_generation = self._generation

            if pending.arrived == self.nprocs:
                try:
                    pending.results = execute(pending.contribs)
                except BaseException as exc:  # propagate to all ranks
                    self._fail(exc)
                    raise
                self.stats.record(
                    CollectiveEvent(
                        op=op,
                        tag=tag,
                        bytes_sent=pending.nbytes,
                        compute_seconds=pending.compute,
                        work_units=pending.work,
                    )
                )
                self._pending = None
                self._generation += 1
                self._cond.notify_all()
                return pending.results[rank]

            while self._generation == my_generation and self._failure is None:
                self._cond.wait()
            if self._failure is not None:
                raise RemoteRankError(f"rank {rank}: aborted") from self._failure
            assert pending.results is not None
            return pending.results[rank]

    # -- running SPMD programs ----------------------------------------------

    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        rank_args: Optional[Sequence[Sequence[Any]]] = None,
        **kwargs: Any,
    ) -> List[Any]:
        """Run ``fn(comm, *rank_args[r], *args, **kwargs)`` on every rank.

        Returns the list of per-rank return values.  ``args``/``kwargs`` are
        shared across ranks (treat them as read-only inside ``fn``);
        ``rank_args`` supplies per-rank positional arguments.
        """
        from repro.simmpi.comm import SimComm

        if rank_args is not None and len(rank_args) != self.nprocs:
            raise ValueError(
                f"rank_args has {len(rank_args)} entries for {self.nprocs} ranks"
            )
        self._n_finished = 0
        self._failure = None
        self._pending = None

        results: List[Any] = [None] * self.nprocs
        errors: List[Optional[BaseException]] = [None] * self.nprocs

        def worker(rank: int) -> None:
            comm = SimComm(self, rank)
            extra = tuple(rank_args[rank]) if rank_args is not None else ()
            try:
                results[rank] = fn(comm, *extra, *args, **kwargs)
            except BaseException as exc:
                errors[rank] = exc
                with self._cond:
                    if not isinstance(exc, (RemoteRankError,)):
                        self._fail(exc)
            finally:
                with self._cond:
                    self._n_finished += 1
                    pending = self._pending
                    if (
                        pending is not None
                        and pending.arrived + self._n_finished >= self.nprocs
                        and pending.arrived < self.nprocs
                        and self._failure is None
                    ):
                        self._fail(
                            DeadlockError(
                                f"{pending.arrived} rank(s) stuck in collective "
                                f"{pending.op!r} after other ranks returned"
                            )
                        )

        if self.nprocs == 1:
            worker(0)
        else:
            threads = [
                threading.Thread(target=worker, args=(r,), name=f"simmpi-rank-{r}")
                for r in range(self.nprocs)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        primary = next((e for e in errors if e is not None
                        and not isinstance(e, RemoteRankError)), None)
        if primary is not None:
            raise primary
        secondary = next((e for e in errors if e is not None), None)
        if secondary is not None:
            raise secondary
        return results


def run_spmd(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    rank_args: Optional[Sequence[Sequence[Any]]] = None,
    meter_compute: bool = True,
    **kwargs: Any,
) -> tuple[List[Any], CommStats]:
    """One-shot convenience: run ``fn`` on ``nprocs`` ranks, return results
    plus the communication record."""
    rt = Runtime(nprocs, meter_compute=meter_compute)
    out = rt.run(fn, *args, rank_args=rank_args, **kwargs)
    return out, rt.stats


def _thread_time() -> float:
    return time.thread_time()
