"""Communication metering for the simulated MPI runtime.

Every collective executed by :class:`repro.simmpi.runtime.Runtime` appends a
:class:`CollectiveEvent` carrying, for each rank, the payload bytes it sent
off-rank and the compute time it spent since the previous rendezvous.  The
aggregate view (:class:`CommStats`) answers the questions the paper's
evaluation asks: how much traffic did the partitioner generate, how many
rounds, and what does an alpha-beta machine model say the parallel runtime
would have been.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class TierMetering:
    """Two-level (node-aware) view of one collective's traffic.

    Attached to a :class:`CollectiveEvent` by tiered communicator
    strategies (see :mod:`repro.simmpi.topology`); ``None`` under the
    default ``flat`` strategy.  Two distinct models live here:

    * ``intra_bytes`` / ``inter_bytes`` — a **sum-preserving
      classification** of the event's metered payload by destination
      locality: ``intra_bytes + inter_bytes == bytes_sent`` per rank, so
      every existing byte total still adds up and the split can be read as
      "of the bytes we already count, how many stay on-node".
    * ``wire_intra`` / ``wire_inter`` — the **two-level protocol's wire
      model**: what the hierarchical exchange itself would move over
      shared memory (gather/scatter legs included) and over the network
      (leaders-only reductions, aggregated node-pair messages, narrowed
      count headers).  These need *not* sum to ``bytes_sent`` — they are
      the quantities the tiered machine models price.

    ``intra_hops`` / ``inter_hops`` carry the round's latency structure,
    and ``node_of`` maps each rank to its node (shared across events of a
    run) so per-node wire aggregates can be formed.

    On rack-structured topologies (``hierarchical:RxK``) a third tier
    appears: ``xrack_bytes`` classifies the payload that leaves the rack
    (conservation becomes ``intra + inter + xrack == bytes_sent``, with
    ``inter_bytes`` narrowing to *off-node, same-rack*), ``wire_xrack``
    is the three-level protocol's cross-rack wire traffic (rack-leader
    injected), ``xrack_hops`` the cross-rack latency legs, and
    ``rack_of`` maps each rank to its rack.  All four default to
    zero/None on rack-less topologies, where the two-tier view is
    byte-identical to what it always was.

    Deliberately **excluded** from :meth:`CommStats.signature`: tier
    metering is supplementary, so ``flat`` and ``hierarchical`` runs of
    the same program keep bit-identical communication records.
    """

    intra_bytes: np.ndarray
    inter_bytes: np.ndarray
    wire_intra: np.ndarray
    wire_inter: np.ndarray
    intra_hops: int
    inter_hops: int
    node_of: np.ndarray
    xrack_bytes: Optional[np.ndarray] = None
    wire_xrack: Optional[np.ndarray] = None
    xrack_hops: int = 0
    rack_of: Optional[np.ndarray] = None

    @property
    def total_intra(self) -> int:
        return int(self.intra_bytes.sum())

    @property
    def total_inter(self) -> int:
        return int(self.inter_bytes.sum())

    @property
    def total_wire_intra(self) -> int:
        return int(self.wire_intra.sum())

    @property
    def total_wire_inter(self) -> int:
        return int(self.wire_inter.sum())

    @property
    def max_wire_intra(self) -> int:
        return int(self.wire_intra.max()) if self.wire_intra.size else 0

    @property
    def total_xrack(self) -> int:
        return int(self.xrack_bytes.sum()) if self.xrack_bytes is not None else 0

    @property
    def total_wire_xrack(self) -> int:
        return int(self.wire_xrack.sum()) if self.wire_xrack is not None else 0

    def max_node_wire_inter(self) -> int:
        """Busiest *node's* injected inter-node wire bytes — the bandwidth
        bound of the inter tier (a node's NIC carries the sum of its
        ranks' inter traffic, which under two-level is leader-injected)."""
        if self.wire_inter.size == 0:
            return 0
        per_node = np.bincount(self.node_of, weights=self.wire_inter)
        return int(per_node.max()) if per_node.size else 0

    def max_rack_wire_xrack(self) -> int:
        """Busiest *rack's* injected cross-rack wire bytes — the bandwidth
        bound of the rack tier (cross-rack traffic is rack-leader
        injected, so a rack's uplink carries the sum of its ranks'
        ``wire_xrack``).  Zero on rack-less topologies."""
        if self.wire_xrack is None or self.rack_of is None:
            return 0
        if self.wire_xrack.size == 0:
            return 0
        per_rack = np.bincount(self.rack_of, weights=self.wire_xrack)
        return int(per_rack.max()) if per_rack.size else 0


@dataclass(frozen=True)
class CollectiveEvent:
    """One matched collective across all ranks.

    Attributes
    ----------
    op:
        Collective name (``"alltoallv"``, ``"allreduce"``, ...).
    tag:
        Optional user label of the algorithm phase that issued the call
        (e.g. ``"exchange_updates"``) for per-phase breakdowns.
    bytes_sent:
        Per-rank off-rank payload in bytes (``shape == (nprocs,)``).
        Self-directed portions of Alltoall(v) payloads are excluded — they
        never cross a network link.
    compute_seconds:
        Per-rank CPU time spent between the previous rendezvous and this
        one, measured with ``time.thread_time`` so that GIL waits and other
        ranks' work are not charged to this rank.
    work_units:
        Per-rank *deterministic* work charged via
        :meth:`repro.simmpi.comm.SimComm.charge` since the previous
        rendezvous (e.g. edges touched).  Kernels that charge work run with
        compute metering off, making their modeled times exactly
        reproducible; the machine model prices a unit via ``gamma``.
    tiers:
        Optional :class:`TierMetering` attached by a tiered communicator
        strategy (``None`` under ``flat``).  Supplementary — excluded from
        :meth:`CommStats.signature` so the record stays strategy-invariant.
    """

    op: str
    tag: str
    bytes_sent: np.ndarray
    compute_seconds: np.ndarray
    work_units: Optional[np.ndarray] = None
    tiers: Optional[TierMetering] = None

    @property
    def total_bytes(self) -> int:
        return int(self.bytes_sent.sum())

    @property
    def max_bytes(self) -> int:
        return int(self.bytes_sent.max()) if self.bytes_sent.size else 0

    @property
    def max_compute(self) -> float:
        return float(self.compute_seconds.max()) if self.compute_seconds.size else 0.0

    @property
    def max_work(self) -> float:
        if self.work_units is None or self.work_units.size == 0:
            return 0.0
        return float(self.work_units.max())


@dataclass(frozen=True)
class RecoveryEvent:
    """One supervised recovery: a rank failure absorbed by a retry.

    Recorded by :func:`repro.ft.recovery.run_with_retries` on the stats of
    the run that finally succeeded, so the communication record of a
    fault-tolerant execution also tells the story of how it got there.
    ``epoch`` is the checkpoint epoch the retry resumed from (None for a
    from-scratch restart), ``error`` a repr of the failure absorbed.
    ``failure_class`` is the supervisor's classification of that failure
    (``"hang"`` / ``"corruption"`` / ``"crash"`` / ``"exception"`` — see
    :func:`repro.ft.recovery.classify_failure`) and ``detection_seconds``
    how long the failure went undetected before the runtime surfaced it
    (nonzero only for watchdog-detected hangs, where detection costs real
    stall time).
    """

    attempt: int
    epoch: Optional[int]
    error: str
    backoff_seconds: float
    failure_class: str = ""
    detection_seconds: float = 0.0


@dataclass
class CommStats:
    """Aggregated communication statistics for one SPMD run."""

    nprocs: int
    events: List[CollectiveEvent] = field(default_factory=list)
    recoveries: List[RecoveryEvent] = field(default_factory=list)
    #: OS thread park/wake cycles the serial backend's executor-continue
    #: scheduling avoided (the last depositor of a superstep runs on with
    #: its result instead of parking and being re-woken).  Engine-side
    #: bookkeeping only — excluded from :meth:`signature`, merged
    #: additively, and always zero on the other backends.
    saved_switches: int = 0
    #: Health counters of the failure-detection machinery
    #: (:mod:`repro.ft.watchdog` / :mod:`repro.ft.integrity`).  Like
    #: ``saved_switches`` they are engine-side observability only:
    #: excluded from :meth:`signature`, merged additively, and zero when
    #: the watchdog / integrity checking are off.
    #:
    #: Heartbeat step increments the procs supervisor's watchdog observed.
    heartbeats_seen: int = 0
    #: Deadline probe re-checks (watchdog escalation) that still saw no
    #: progress, plus in-process wait slices past the first on a bounded
    #: rendezvous wait.
    deadline_extensions: int = 0
    #: Payload checksum verifications performed at receive
    #: (``--integrity crc``).
    checksum_verifications: int = 0
    #: Checksum verifications that failed (each raises
    #: :class:`~repro.simmpi.errors.PayloadCorruptionError`).
    checksum_failures: int = 0

    def record(self, event: CollectiveEvent) -> None:
        self.events.append(event)

    def record_recovery(self, event: RecoveryEvent) -> None:
        self.recoveries.append(event)

    # -- aggregate views ---------------------------------------------------

    @property
    def rounds(self) -> int:
        """Number of collective rendezvous executed."""
        return len(self.events)

    @property
    def total_bytes(self) -> int:
        """Total off-rank bytes across all ranks and rounds."""
        return sum(e.total_bytes for e in self.events)

    @property
    def total_compute_seconds(self) -> float:
        """Sum over supersteps of the *max* per-rank compute time.

        This is the compute term of a bulk-synchronous execution: each
        superstep lasts as long as its slowest rank.
        """
        return float(sum(e.max_compute for e in self.events))

    def bytes_by_op(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.op] = out.get(e.op, 0) + e.total_bytes
        return out

    def rounds_by_op(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.op] = out.get(e.op, 0) + 1
        return out

    def bytes_by_tag(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.tag] = out.get(e.tag, 0) + e.total_bytes
        return out

    def bytes_by_tag_op(self) -> Dict[str, Dict[str, int]]:
        """Per-phase wire-byte breakdown: ``{tag: {op: bytes}}``.

        The wire-format work lives here: the ghost-update payloads are the
        ``alltoallv`` entries of the balance/refine tags, so a format
        change shows up directly in this view while the (format-invariant)
        count exchanges and size Allreduces stay put in theirs.
        """
        out: Dict[str, Dict[str, int]] = {}
        for e in self.events:
            per_op = out.setdefault(e.tag, {})
            per_op[e.op] = per_op.get(e.op, 0) + e.total_bytes
        return out

    def exchange_bytes_by_tag(self) -> Dict[str, int]:
        """Per-phase bytes of the data-exchange collectives only
        (``alltoall`` + ``alltoallv`` — Algorithm 3's two rounds)."""
        out: Dict[str, int] = {}
        for e in self.events:
            if e.op in ("alltoall", "alltoallv"):
                out[e.tag] = out.get(e.tag, 0) + e.total_bytes
        return out

    # -- tiered views (topology-aware strategies) --------------------------

    @property
    def tiered(self) -> bool:
        """True if any event carries two-level tier metering."""
        return any(e.tiers is not None for e in self.events)

    def tier_bytes_by_op(self) -> Dict[str, tuple]:
        """Per-op ``(intra, inter)`` classification of metered bytes.

        Sum-preserving by construction: ``intra + inter`` equals the op's
        :meth:`bytes_by_op` entry for tiered events; untiered events (flat
        strategy, or merged foreign records) count fully as inter, matching
        the flat model's one-rank-per-node assumption.  On rack topologies
        the cross-rack bytes fold into ``inter`` here (everything off-node);
        :meth:`rack_tier_bytes_by_op` keeps the three-way split.
        """
        out: Dict[str, tuple] = {}
        for e in self.events:
            intra, inter = out.get(e.op, (0, 0))
            if e.tiers is not None:
                intra += e.tiers.total_intra
                inter += e.tiers.total_inter + e.tiers.total_xrack
            else:
                inter += e.total_bytes
            out[e.op] = (intra, inter)
        return out

    def rack_tier_bytes_by_op(self) -> Dict[str, tuple]:
        """Per-op ``(intra, inter, xrack)`` classification of metered bytes.

        Sum-preserving like :meth:`tier_bytes_by_op` (the three components
        add up to the op's :meth:`bytes_by_op` entry); untiered events
        count fully as ``xrack`` — under ``flat`` every rank is its own
        node *and* rack, so every metered byte crosses the widest tier.
        """
        out: Dict[str, tuple] = {}
        for e in self.events:
            intra, inter, xrack = out.get(e.op, (0, 0, 0))
            if e.tiers is not None:
                intra += e.tiers.total_intra
                inter += e.tiers.total_inter
                xrack += e.tiers.total_xrack
            else:
                xrack += e.total_bytes
            out[e.op] = (intra, inter, xrack)
        return out

    def modeled_inter_bytes(self) -> int:
        """Total modeled inter-node **wire** bytes of the run.

        For tiered events this is the two-level protocol's network
        traffic (aggregated node-pair messages, leaders-only reductions,
        narrowed count headers); untiered events contribute their full
        payload — under ``flat`` every rank is its own node, so every
        metered byte crosses the network.  The benchmark headline
        (``hierarchy_volume``) compares this quantity across strategies.
        """
        return sum(
            e.tiers.total_wire_inter if e.tiers is not None else e.total_bytes
            for e in self.events
        )

    def modeled_intra_bytes(self) -> int:
        """Total modeled intra-node (shared-memory) wire bytes."""
        return sum(
            e.tiers.total_wire_intra for e in self.events
            if e.tiers is not None
        )

    def modeled_xrack_bytes(self) -> int:
        """Total modeled cross-rack wire bytes (zero without a rack tier)."""
        return sum(
            e.tiers.total_wire_xrack for e in self.events
            if e.tiers is not None
        )

    @property
    def total_work(self) -> float:
        """Sum over supersteps of the *max* per-rank work units — the
        quantity the machine model prices via ``gamma`` (BSP: each
        superstep lasts as long as its busiest rank)."""
        return float(sum(e.max_work for e in self.events))

    def work_by_tag(self) -> Dict[str, float]:
        """Max-rank work units summed per phase tag.  The frontier sweeps
        charge only the edges they actually touch, so shrinking active
        sets show up directly in this breakdown."""
        out: Dict[str, float] = {}
        for e in self.events:
            out[e.tag] = out.get(e.tag, 0.0) + e.max_work
        return out

    def per_rank_bytes(self) -> np.ndarray:
        """Total off-rank bytes sent by each rank (shape ``(nprocs,)``)."""
        total = np.zeros(self.nprocs, dtype=np.int64)
        for e in self.events:
            total += e.bytes_sent
        return total

    def merge(self, other: "CommStats") -> None:
        """Fold another run's events into this record (e.g. across phases)."""
        if other.nprocs != self.nprocs:
            raise ValueError(
                f"cannot merge stats for {other.nprocs} ranks into {self.nprocs}"
            )
        self.events.extend(other.events)
        self.recoveries.extend(other.recoveries)
        self.saved_switches += other.saved_switches
        self.heartbeats_seen += other.heartbeats_seen
        self.deadline_extensions += other.deadline_extensions
        self.checksum_verifications += other.checksum_verifications
        self.checksum_failures += other.checksum_failures

    def signature(self) -> List[tuple]:
        """A comparable, bit-exact digest of the event stream.

        Two runs with equal signatures moved the same bytes and charged the
        same work in the same collectives in the same order — the record
        half of the determinism/recovery oracle (``compute_seconds`` is
        excluded: it is wall-clock noise unless ``meter_compute`` is off).
        """
        return [
            (
                e.op,
                e.tag,
                e.bytes_sent.tolist(),
                e.work_units.tolist() if e.work_units is not None else None,
            )
            for e in self.events
        ]

    def filtered(self, tags: Sequence[str]) -> "CommStats":
        """A view restricted to events whose tag is in ``tags``."""
        sub = CommStats(self.nprocs)
        wanted = set(tags)
        sub.events = [e for e in self.events if e.tag in wanted]
        return sub

    def summary(self) -> str:
        by_op = self.bytes_by_op()
        lines = [
            f"CommStats(nprocs={self.nprocs}, rounds={self.rounds}, "
            f"total={self.total_bytes/2**20:.2f} MiB, "
            f"compute={self.total_compute_seconds:.3f} s)"
        ]
        for op, nbytes in sorted(by_op.items()):
            lines.append(
                f"  {op:<12s} rounds={self.rounds_by_op()[op]:<6d} "
                f"{nbytes/2**20:.3f} MiB"
            )
        for rec in self.recoveries:
            cls = f" [{rec.failure_class}]" if rec.failure_class else ""
            det = (f" detected_after={rec.detection_seconds:.2f}s"
                   if rec.detection_seconds else "")
            lines.append(
                f"  recovery     attempt={rec.attempt} "
                f"resumed_from_epoch={rec.epoch}{cls}{det} after {rec.error}"
            )
        if self.saved_switches:
            lines.append(
                f"  scheduler    saved_switches={self.saved_switches}"
            )
        if self.heartbeats_seen or self.deadline_extensions:
            lines.append(
                f"  watchdog     heartbeats_seen={self.heartbeats_seen} "
                f"deadline_extensions={self.deadline_extensions}"
            )
        if self.checksum_verifications or self.checksum_failures:
            lines.append(
                f"  integrity    checksum_verifications="
                f"{self.checksum_verifications} "
                f"failures={self.checksum_failures}"
            )
        return "\n".join(lines)
