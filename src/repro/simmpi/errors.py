"""Error types raised by the simulated MPI runtime."""

from __future__ import annotations


class SimMPIError(RuntimeError):
    """Base class for all simulated-MPI failures."""


class CollectiveMismatchError(SimMPIError):
    """Ranks disagreed on which collective to execute at a superstep.

    Real MPI programs that call mismatched collectives deadlock or corrupt
    data; the simulator turns the bug into an immediate, diagnosable error.
    """


class DeadlockError(SimMPIError):
    """Some ranks entered a collective that other ranks will never reach.

    Raised when at least one rank has returned (or died) while others are
    still blocked in a rendezvous, which in a real MPI job would hang.
    """


class RemoteRankError(SimMPIError):
    """An exception escaped from a *different* rank's code.

    All surviving ranks blocked in collectives are released with this error
    so the whole SPMD program shuts down; the originating exception is
    re-raised to the caller of :meth:`repro.simmpi.runtime.Runtime.run`.
    """
