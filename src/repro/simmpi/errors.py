"""Error types raised by the simulated MPI runtime."""

from __future__ import annotations


class SimMPIError(RuntimeError):
    """Base class for all simulated-MPI failures."""


class CollectiveMismatchError(SimMPIError):
    """Ranks disagreed on which collective to execute at a superstep.

    Real MPI programs that call mismatched collectives deadlock or corrupt
    data; the simulator turns the bug into an immediate, diagnosable error.
    """


class DeadlockError(SimMPIError):
    """Some ranks entered a collective that other ranks will never reach.

    Raised when at least one rank has returned (or died) while others are
    still blocked in a rendezvous, which in a real MPI job would hang.
    """


class RemoteRankError(SimMPIError):
    """An exception escaped from a *different* rank's code.

    All surviving ranks blocked in collectives are released with this error
    so the whole SPMD program shuts down; the originating exception is
    re-raised to the caller of :meth:`repro.simmpi.runtime.Runtime.run`.
    """


class UnpicklableRankError(SimMPIError):
    """A rank's own exception could not cross the process boundary.

    Raised by the procs backend in place of a rank exception that fails
    to round-trip through pickle.  Unlike :class:`RemoteRankError` it
    represents the *originating* failure, so the parent re-raises it with
    full priority.  Carries the original context as attributes:

    ``original_type``
        Name of the original exception type.
    ``original_args``
        The original ``args`` tuple, with unpicklable entries replaced by
        their ``repr``.
    ``original_traceback``
        The fully formatted traceback from the failing rank.
    """

    def __init__(self, message: str, *, original_type: str = "",
                 original_args: tuple = (),
                 original_traceback: str = "") -> None:
        super().__init__(message)
        self.original_type = original_type
        self.original_args = original_args
        self.original_traceback = original_traceback

    def __reduce__(self):
        return (
            _rebuild_unpicklable,
            (self.args[0], self.original_type, self.original_args,
             self.original_traceback),
        )


def _rebuild_unpicklable(
    message: str, original_type: str, original_args: tuple,
    original_traceback: str,
) -> "UnpicklableRankError":
    return UnpicklableRankError(
        message, original_type=original_type, original_args=original_args,
        original_traceback=original_traceback)


class InjectedFault(SimMPIError):
    """A deliberate failure planted by :class:`repro.ft.faults.FaultPlan`.

    Raised rank-side at the planned superstep so crash/recovery paths are
    exercisable deterministically in tests and CI.  Travels the same error
    path as a genuine rank exception on every backend.
    """


class RankFailure(SimMPIError):
    """A checkpointed run died and may be retried from its last epoch.

    Raised by :func:`repro.core.driver.xtrapulp` (instead of the raw rank
    exception, which becomes ``__cause__``) when checkpointing or resuming
    was requested, so supervisors can distinguish "retriable SPMD failure"
    from configuration errors.  Attributes:

    ``run_dir``
        The checkpoint run directory of the failed attempt (or None).
    ``epoch``
        Index of the latest *committed* epoch available for ``resume=``,
        or None if no checkpoint was committed before the failure.
    """

    def __init__(self, message: str, *, run_dir: "str | None" = None,
                 epoch: "int | None" = None) -> None:
        super().__init__(message)
        self.run_dir = run_dir
        self.epoch = epoch
