"""Error types raised by the simulated MPI runtime."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_ranks(ranks: Iterable[int], limit: int = 16) -> str:
    """Human-readable rank list for diagnostics (``"ranks 1, 3, 7"``).

    Long lists are elided — at thousands of ranks an error message naming
    every blocked rank is itself unreadable.
    """
    ranks = sorted(set(int(r) for r in ranks))
    if not ranks:
        return "no ranks"
    shown = ", ".join(str(r) for r in ranks[:limit])
    if len(ranks) > limit:
        shown += f", ... ({len(ranks) - limit} more)"
    return ("rank " if len(ranks) == 1 else "ranks ") + shown


class SimMPIError(RuntimeError):
    """Base class for all simulated-MPI failures."""


class CollectiveMismatchError(SimMPIError):
    """Ranks disagreed on which collective to execute at a superstep.

    Real MPI programs that call mismatched collectives deadlock or corrupt
    data; the simulator turns the bug into an immediate, diagnosable error.
    """


class DeadlockError(SimMPIError):
    """Some ranks entered a collective that other ranks will never reach.

    Raised when at least one rank has returned (or died) while others are
    still blocked in a rendezvous, which in a real MPI job would hang.
    """


class RemoteRankError(SimMPIError):
    """An exception escaped from a *different* rank's code.

    All surviving ranks blocked in collectives are released with this error
    so the whole SPMD program shuts down; the originating exception is
    re-raised to the caller of :meth:`repro.simmpi.runtime.Runtime.run`.
    """


class UnpicklableRankError(SimMPIError):
    """A rank's own exception could not cross the process boundary.

    Raised by the procs backend in place of a rank exception that fails
    to round-trip through pickle.  Unlike :class:`RemoteRankError` it
    represents the *originating* failure, so the parent re-raises it with
    full priority.  Carries the original context as attributes:

    ``original_type``
        Name of the original exception type.
    ``original_args``
        The original ``args`` tuple, with unpicklable entries replaced by
        their ``repr``.
    ``original_traceback``
        The fully formatted traceback from the failing rank.
    """

    def __init__(self, message: str, *, original_type: str = "",
                 original_args: tuple = (),
                 original_traceback: str = "") -> None:
        super().__init__(message)
        self.original_type = original_type
        self.original_args = original_args
        self.original_traceback = original_traceback

    def __reduce__(self):
        return (
            _rebuild_unpicklable,
            (self.args[0], self.original_type, self.original_args,
             self.original_traceback),
        )


def _rebuild_unpicklable(
    message: str, original_type: str, original_args: tuple,
    original_traceback: str,
) -> "UnpicklableRankError":
    return UnpicklableRankError(
        message, original_type=original_type, original_args=original_args,
        original_traceback=original_traceback)


class HungRankError(SimMPIError):
    """A rank (or the whole job) stopped making progress past the liveness
    deadline.

    Raised by the watchdog machinery (:mod:`repro.ft.watchdog`): on the
    ``procs`` backend the supervisor-side watchdog thread declares the
    laggard rank processes dead (``SIGTERM`` then ``SIGKILL``) and the
    parent surfaces this error; on the in-process backends a rank whose
    rendezvous wait exceeds the deadline raises it directly.  Unlike
    :class:`RemoteRankError` it represents the *originating* failure, so
    :meth:`Backend._raise_collected` re-raises it with full priority and
    :func:`repro.ft.recovery.run_with_retries` treats it exactly like a
    ``die`` fault (relaunch from the last committed epoch).  Attributes:

    ``ranks``
        The ranks declared hung (tuple, possibly empty when unknown).
    ``phase``
        The phase tag the stall was observed in ("" when unknown).
    ``detection_seconds``
        Stall duration observed before the hang was declared.
    """

    def __init__(self, message: str, *, ranks: Sequence[int] = (),
                 phase: str = "", detection_seconds: float = 0.0) -> None:
        super().__init__(message)
        self.ranks = tuple(int(r) for r in ranks)
        self.phase = phase
        self.detection_seconds = float(detection_seconds)

    def __reduce__(self):
        return (
            _rebuild_hung,
            (self.args[0], self.ranks, self.phase, self.detection_seconds),
        )


def _rebuild_hung(message: str, ranks: tuple, phase: str,
                  detection_seconds: float) -> "HungRankError":
    return HungRankError(message, ranks=ranks, phase=phase,
                         detection_seconds=detection_seconds)


class PayloadCorruptionError(SimMPIError):
    """A payload failed its end-to-end checksum at receive.

    Raised when integrity checking (:mod:`repro.ft.integrity`,
    ``--integrity crc``) finds that a collective contribution, a rendezvous
    slot, or a shared-memory dataplane descriptor no longer matches the
    crc32 computed at send time — a flipped bit anywhere between serialize
    and deserialize.  The supervisor maps it to restart-from-checkpoint
    like any other rank failure.  Attributes:

    ``rank``
        The rank whose payload failed verification (None when unknown).
    ``location``
        Where the mismatch was detected (``"slot"``, a segment name, or
        ``"contribution"``).
    """

    def __init__(self, message: str, *, rank: "int | None" = None,
                 location: str = "") -> None:
        super().__init__(message)
        self.rank = rank
        self.location = location

    def __reduce__(self):
        return (_rebuild_corruption, (self.args[0], self.rank, self.location))


def _rebuild_corruption(message: str, rank: "int | None",
                        location: str) -> "PayloadCorruptionError":
    return PayloadCorruptionError(message, rank=rank, location=location)


class InjectedFault(SimMPIError):
    """A deliberate failure planted by :class:`repro.ft.faults.FaultPlan`.

    Raised rank-side at the planned superstep so crash/recovery paths are
    exercisable deterministically in tests and CI.  Travels the same error
    path as a genuine rank exception on every backend.
    """


class RankFailure(SimMPIError):
    """A checkpointed run died and may be retried from its last epoch.

    Raised by :func:`repro.core.driver.xtrapulp` (instead of the raw rank
    exception, which becomes ``__cause__``) when checkpointing or resuming
    was requested, so supervisors can distinguish "retriable SPMD failure"
    from configuration errors.  Attributes:

    ``run_dir``
        The checkpoint run directory of the failed attempt (or None).
    ``epoch``
        Index of the latest *committed* epoch available for ``resume=``,
        or None if no checkpoint was committed before the failure.
    """

    def __init__(self, message: str, *, run_dir: "str | None" = None,
                 epoch: "int | None" = None) -> None:
        super().__init__(message)
        self.run_dir = run_dir
        self.epoch = epoch
