"""Alpha-beta machine model: modeled parallel time from metered traffic.

The paper reports wall-clock partitioning times on Blue Waters (Cray XE6,
Gemini interconnect).  We cannot run on that machine; instead every
experiment reports a *modeled* execution time assembled from quantities the
simulator measures exactly:

``T = sum over supersteps s of [ max_r compute(s, r)
                                 + alpha * hops(op_s)
                                 + beta  * max_r bytes(s, r) ]``

* the compute term is bulk-synchronous: a superstep lasts as long as its
  slowest rank (measured per-rank with ``thread_time``);
* ``alpha`` is per-message latency; collectives pay ``ceil(log2 p)`` latency
  hops (tree/butterfly algorithms) except Alltoall(v), which pays ``p - 1``
  pairwise exchanges;
* ``beta`` is inverse bandwidth applied to the busiest rank's payload.

The default constants (:data:`BLUE_WATERS_LIKE`) are Gemini-flavored
(~1.5 us latency, ~6 GB/s per-node injection).  Absolute numbers are not the
point — the *shape* of the paper's scaling curves comes out of how compute
and volume move with rank count, degree, and graph structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.simmpi.metrics import CollectiveEvent, CommStats

#: Collectives whose latency cost scales with the full rank count (pairwise
#: exchange pattern) rather than logarithmically (tree/butterfly).
_PAIRWISE_OPS = frozenset({"alltoall", "alltoallv"})


@dataclass(frozen=True)
class MachineModel:
    """Alpha-beta cost constants for one machine flavor.

    Attributes
    ----------
    alpha:
        Per-hop message latency in seconds.
    beta:
        Seconds per byte of the busiest rank's payload (inverse of per-node
        injection bandwidth).
    compute_scale:
        Multiplier applied to measured Python/NumPy compute seconds.  The
        paper's partitioner is optimized C; calibrating the compute term with
        a scale < 1 maps our measured time onto a C-like budget without
        changing any relative comparison (all competitors are scaled alike).
    gamma:
        Seconds per deterministic work unit (one adjacency entry touched)
        charged via :meth:`repro.simmpi.comm.SimComm.charge`.  Default
        4 ns/edge ≈ a 250 M-edge/s/core traversal rate.
    name:
        Human-readable label used in reports.
    """

    alpha: float
    beta: float
    compute_scale: float = 1.0
    gamma: float = 4.0e-9
    name: str = "generic"

    def cost_parts(
        self, event: CollectiveEvent, nprocs: int
    ) -> "tuple[float, float]":
        """``(latency, bandwidth)`` cost components of one collective."""
        if nprocs <= 1:
            return 0.0, 0.0
        if event.op in _PAIRWISE_OPS:
            hops = nprocs - 1
        else:
            hops = max(1, ceil(log2(nprocs)))
        return self.alpha * hops, self.beta * event.max_bytes

    def collective_cost(self, event: CollectiveEvent, nprocs: int) -> float:
        """Communication cost (seconds) of one matched collective."""
        latency, bandwidth = self.cost_parts(event, nprocs)
        return latency + bandwidth

    def cost_parts_batch(
        self, events: Sequence[CollectiveEvent], nprocs: int
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Per-event ``(latency, bandwidth)`` arrays — the NumPy-batched
        form of :meth:`cost_parts`.  One stacked max over an
        ``(events, ranks)`` matrix replaces per-event Python reductions,
        which is what keeps :class:`TimeModel` evaluation flat in the
        event count at thousands of ranks."""
        n = len(events)
        if n == 0 or nprocs <= 1:
            return np.zeros(n), np.zeros(n)
        pairwise = np.fromiter(
            (e.op in _PAIRWISE_OPS for e in events), dtype=bool, count=n
        )
        tree_hops = max(1, ceil(log2(nprocs)))
        latency = self.alpha * np.where(pairwise, nprocs - 1, tree_hops)
        max_bytes = np.stack(
            [e.bytes_sent for e in events]
        ).max(axis=1).astype(np.float64)
        return latency, self.beta * max_bytes


#: Gemini-interconnect-flavored constants for the Blue Waters analog.
#: One simulated rank = one 16-core XE6 node (the paper's configuration:
#: "one MPI task per compute node ... OpenMP threads = shared-memory
#: cores"), so the per-edge work rate is 16 threads x ~250 M edges/s.
BLUE_WATERS_LIKE = MachineModel(
    alpha=1.5e-6, beta=1.0 / 6.0e9, compute_scale=1.0,
    gamma=4.0e-9 / 16.0, name="blue-waters-like",
)

#: A commodity-cluster flavor (Cluster-1 in the paper: 16 Sandy Bridge
#: nodes, QDR-IB-era network ~1 GB/s effective, Epetra-grade ~2 ns/nnz).
CLUSTER_LIKE = MachineModel(
    alpha=2.5e-6, beta=1.0 / 1.0e9, compute_scale=1.0, gamma=2.0e-9,
    name="cluster-like",
)

#: MPI ranks sharing one node (the paper's Fig. 6 "16-way parallelism"
#: setting): shared-memory transport latency, one core per rank.
SINGLE_NODE_MPI = MachineModel(
    alpha=5.0e-7, beta=1.0 / 10.0e9, compute_scale=1.0, gamma=4.0e-9,
    name="single-node-mpi",
)


def _grouped_max(
    wires: List[np.ndarray], groups: List[Optional[np.ndarray]]
) -> np.ndarray:
    """Per-event busiest-group injected bytes: ``max_g sum_{r in g} wire(r)``.

    When every event shares one group map (the common case — one topology
    per run), a single ``np.add.reduceat`` over the stacked
    ``(events, ranks)`` matrix replaces per-event ``bincount`` calls;
    group maps are contiguous ascending by construction
    (:meth:`~repro.simmpi.topology.Topology.node_of_ranks`).  Values are
    integral, so both paths are exact and agree bit-for-bit with the
    scalar accessors.
    """
    n = len(wires)
    out = np.empty(n)
    g0 = groups[0]
    if g0 is not None and all(g is g0 for g in groups):
        mat = np.stack(wires).astype(np.float64)
        starts = np.concatenate(([0], np.flatnonzero(np.diff(g0)) + 1))
        out[:] = np.add.reduceat(mat, starts, axis=1).max(axis=1)
        return out
    for i, (w, g) in enumerate(zip(wires, groups)):
        if g is None:
            out[i] = float(w.sum())
        else:
            per = np.bincount(g, weights=w)
            out[i] = float(per.max()) if per.size else 0.0
    return out


@dataclass(frozen=True)
class TieredMachineModel(MachineModel):
    """Multi-tier alpha-beta constants for topology-aware metering.

    The inherited ``alpha``/``beta`` are the **inter-node** (network)
    constants; ``alpha_intra``/``beta_intra`` price the intra-node
    (shared-memory) tier and ``alpha_rack``/``beta_rack`` the cross-rack
    (network-stage) tier.  Events carrying
    :class:`~repro.simmpi.metrics.TierMetering` (produced by the
    ``hierarchical`` communicator strategy) are priced per tier:

    ``cost = alpha_intra * intra_hops + alpha * inter_hops
           + alpha_rack * xrack_hops
           + beta_intra * max_r wire_intra(r)
           + beta * max_n sum_{r in node n} wire_inter(r)
           + beta_rack * max_k sum_{r in rack k} wire_xrack(r)``

    — the intra bandwidth term is bound by the busiest *rank's*
    shared-memory traffic, the inter term by the busiest *node's* NIC
    (under two-level exchange a node's network traffic is leader-injected,
    so summing the node's ranks is exact), and the rack term by the
    busiest *rack's* uplink (cross-rack traffic is rack-leader injected).
    On rack-less topologies ``xrack_hops`` and ``wire_xrack`` are zero,
    so the rack terms vanish and the formula is bit-identical to the
    historical two-tier one.  Events without tier metering (``flat``
    strategy, barrier-only rounds) fall back to the single-tier formula
    at the inter-node constants, which is exactly the base
    :class:`MachineModel` behavior — so a tiered flavor is a drop-in
    replacement.
    """

    #: Per-hop latency of the shared-memory tier (seconds).
    alpha_intra: float = 5.0e-7
    #: Seconds per byte of the busiest rank's intra-node wire traffic.
    beta_intra: float = 1.0 / 80.0e9
    #: Per-hop latency of a cross-rack network stage (seconds) — an extra
    #: switch traversal on top of the in-rack network.
    alpha_rack: float = 2.5e-6
    #: Seconds per byte of the busiest rack's cross-rack uplink (oversubscribed
    #: spine: a fraction of the in-rack injection bandwidth).
    beta_rack: float = 1.0 / 3.0e9

    def cost_parts(
        self, event: CollectiveEvent, nprocs: int
    ) -> "tuple[float, float]":
        tiers = event.tiers
        if tiers is None:
            return super().cost_parts(event, nprocs)
        latency = (self.alpha_intra * tiers.intra_hops
                   + self.alpha * tiers.inter_hops
                   + self.alpha_rack * tiers.xrack_hops)
        bandwidth = (self.beta_intra * tiers.max_wire_intra
                     + self.beta * tiers.max_node_wire_inter()
                     + self.beta_rack * tiers.max_rack_wire_xrack())
        return latency, bandwidth

    def cost_parts_batch(
        self, events: Sequence[CollectiveEvent], nprocs: int
    ) -> "tuple[np.ndarray, np.ndarray]":
        n = len(events)
        latency = np.zeros(n)
        bandwidth = np.zeros(n)
        if n == 0:
            return latency, bandwidth
        flat_idx = [i for i, e in enumerate(events) if e.tiers is None]
        if flat_idx:
            lat_f, bw_f = super().cost_parts_batch(
                [events[i] for i in flat_idx], nprocs
            )
            latency[flat_idx] = lat_f
            bandwidth[flat_idx] = bw_f
        tiered_idx = [i for i, e in enumerate(events) if e.tiers is not None]
        if not tiered_idx:
            return latency, bandwidth
        tiers = [events[i].tiers for i in tiered_idx]
        hops = np.array(
            [(t.intra_hops, t.inter_hops, t.xrack_hops) for t in tiers],
            dtype=np.float64,
        )
        latency[tiered_idx] = (self.alpha_intra * hops[:, 0]
                               + self.alpha * hops[:, 1]
                               + self.alpha_rack * hops[:, 2])
        wire_intra = np.stack([t.wire_intra for t in tiers])
        bw = self.beta_intra * wire_intra.max(axis=1).astype(np.float64)
        bw += self.beta * _grouped_max(
            [t.wire_inter for t in tiers], [t.node_of for t in tiers]
        )
        racked = [t for t in tiers if t.wire_xrack is not None]
        if racked:
            bw += self.beta_rack * _grouped_max(
                [t.wire_xrack if t.wire_xrack is not None
                 else np.zeros_like(t.wire_inter) for t in tiers],
                [t.rack_of for t in tiers],
            )
        bandwidth[tiered_idx] = bw
        return latency, bandwidth


#: Blue Waters analog with the node structure made explicit: one simulated
#: rank = one core-group of an XE6 node rather than a whole node.  The
#: inter-node constants match :data:`BLUE_WATERS_LIKE` (Gemini: ~1.5 us,
#: ~6 GB/s injection); the intra-node tier is shared memory (~0.5 us,
#: ~80 GB/s — HyperTransport-era socket bandwidth), giving the realistic
#: ~13x bandwidth gap between tiers (10-20x is typical across machines).
#: ``gamma`` is per-rank single-core (ranks no longer bundle 16 threads).
#: The rack tier models the Gemini torus's longer routes between cabinet
#: groups: a couple of extra switch traversals of latency and a tapered
#: (~half-injection) per-rack uplink.  It prices nothing unless the
#: communicator spec names racks (``hierarchical:RxK``).
BLUE_WATERS_TIERED = TieredMachineModel(
    alpha=1.5e-6, beta=1.0 / 6.0e9, compute_scale=1.0, gamma=4.0e-9,
    alpha_intra=5.0e-7, beta_intra=1.0 / 80.0e9,
    alpha_rack=2.5e-6, beta_rack=1.0 / 3.0e9,
    name="blue-waters-tiered",
)


@dataclass
class TimeModel:
    """Assembles a modeled parallel execution time from metered stats.

    Evaluation is NumPy-batched: one pass stacks the per-rank meters of
    all events into ``(events, ranks)`` matrices and reduces them with
    axis operations (see :meth:`MachineModel.cost_parts_batch`), so
    pricing a run costs a handful of vectorized reductions instead of
    ``rounds x ranks`` Python-level work — the difference between
    milliseconds and seconds at 2048 simulated ranks.
    """

    machine: MachineModel = BLUE_WATERS_LIKE

    def superstep_time(self, event: CollectiveEvent, nprocs: int) -> float:
        return (
            self.machine.compute_scale * event.max_compute
            + self.machine.gamma * event.max_work
            + self.machine.collective_cost(event, nprocs)
        )

    def _batched_parts(
        self, stats: CommStats
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
        """Per-event ``(compute, work, latency, bandwidth)`` seconds."""
        events = stats.events
        n = len(events)
        if n == 0:
            z = np.zeros(0)
            return z, z, z, z
        m = self.machine
        compute = m.compute_scale * np.stack(
            [e.compute_seconds for e in events]
        ).max(axis=1)
        p = len(events[0].compute_seconds)
        work = m.gamma * np.stack(
            [e.work_units if e.work_units is not None
             else np.zeros(p) for e in events]
        ).max(axis=1)
        latency, bandwidth = m.cost_parts_batch(events, stats.nprocs)
        return compute, work, latency, bandwidth

    def total_time(self, stats: CommStats) -> float:
        """Modeled wall time of the whole SPMD run (seconds)."""
        compute, work, latency, bandwidth = self._batched_parts(stats)
        return float(compute.sum() + work.sum()
                     + latency.sum() + bandwidth.sum())

    def breakdown(self, stats: CommStats) -> Dict[str, float]:
        """Compute vs. latency vs. bandwidth decomposition of total time."""
        compute, work, latency, bandwidth = self._batched_parts(stats)
        parts = {
            "compute": float(compute.sum()),
            "work": float(work.sum()),
            "latency": float(latency.sum()),
            "bandwidth": float(bandwidth.sum()),
        }
        parts["total"] = sum(parts.values())
        return parts

    def time_by_tag(self, stats: CommStats) -> Dict[str, float]:
        """Modeled time attributed to each phase tag."""
        compute, work, latency, bandwidth = self._batched_parts(stats)
        per_event = compute + work + latency + bandwidth
        out: Dict[str, float] = {}
        for e, t in zip(stats.events, per_event):
            out[e.tag] = out.get(e.tag, 0.0) + float(t)
        return out
