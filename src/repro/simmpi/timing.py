"""Alpha-beta machine model: modeled parallel time from metered traffic.

The paper reports wall-clock partitioning times on Blue Waters (Cray XE6,
Gemini interconnect).  We cannot run on that machine; instead every
experiment reports a *modeled* execution time assembled from quantities the
simulator measures exactly:

``T = sum over supersteps s of [ max_r compute(s, r)
                                 + alpha * hops(op_s)
                                 + beta  * max_r bytes(s, r) ]``

* the compute term is bulk-synchronous: a superstep lasts as long as its
  slowest rank (measured per-rank with ``thread_time``);
* ``alpha`` is per-message latency; collectives pay ``ceil(log2 p)`` latency
  hops (tree/butterfly algorithms) except Alltoall(v), which pays ``p - 1``
  pairwise exchanges;
* ``beta`` is inverse bandwidth applied to the busiest rank's payload.

The default constants (:data:`BLUE_WATERS_LIKE`) are Gemini-flavored
(~1.5 us latency, ~6 GB/s per-node injection).  Absolute numbers are not the
point — the *shape* of the paper's scaling curves comes out of how compute
and volume move with rank count, degree, and graph structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import Dict

from repro.simmpi.metrics import CollectiveEvent, CommStats

#: Collectives whose latency cost scales with the full rank count (pairwise
#: exchange pattern) rather than logarithmically (tree/butterfly).
_PAIRWISE_OPS = frozenset({"alltoall", "alltoallv"})


@dataclass(frozen=True)
class MachineModel:
    """Alpha-beta cost constants for one machine flavor.

    Attributes
    ----------
    alpha:
        Per-hop message latency in seconds.
    beta:
        Seconds per byte of the busiest rank's payload (inverse of per-node
        injection bandwidth).
    compute_scale:
        Multiplier applied to measured Python/NumPy compute seconds.  The
        paper's partitioner is optimized C; calibrating the compute term with
        a scale < 1 maps our measured time onto a C-like budget without
        changing any relative comparison (all competitors are scaled alike).
    gamma:
        Seconds per deterministic work unit (one adjacency entry touched)
        charged via :meth:`repro.simmpi.comm.SimComm.charge`.  Default
        4 ns/edge ≈ a 250 M-edge/s/core traversal rate.
    name:
        Human-readable label used in reports.
    """

    alpha: float
    beta: float
    compute_scale: float = 1.0
    gamma: float = 4.0e-9
    name: str = "generic"

    def cost_parts(
        self, event: CollectiveEvent, nprocs: int
    ) -> "tuple[float, float]":
        """``(latency, bandwidth)`` cost components of one collective."""
        if nprocs <= 1:
            return 0.0, 0.0
        if event.op in _PAIRWISE_OPS:
            hops = nprocs - 1
        else:
            hops = max(1, ceil(log2(nprocs)))
        return self.alpha * hops, self.beta * event.max_bytes

    def collective_cost(self, event: CollectiveEvent, nprocs: int) -> float:
        """Communication cost (seconds) of one matched collective."""
        latency, bandwidth = self.cost_parts(event, nprocs)
        return latency + bandwidth


#: Gemini-interconnect-flavored constants for the Blue Waters analog.
#: One simulated rank = one 16-core XE6 node (the paper's configuration:
#: "one MPI task per compute node ... OpenMP threads = shared-memory
#: cores"), so the per-edge work rate is 16 threads x ~250 M edges/s.
BLUE_WATERS_LIKE = MachineModel(
    alpha=1.5e-6, beta=1.0 / 6.0e9, compute_scale=1.0,
    gamma=4.0e-9 / 16.0, name="blue-waters-like",
)

#: A commodity-cluster flavor (Cluster-1 in the paper: 16 Sandy Bridge
#: nodes, QDR-IB-era network ~1 GB/s effective, Epetra-grade ~2 ns/nnz).
CLUSTER_LIKE = MachineModel(
    alpha=2.5e-6, beta=1.0 / 1.0e9, compute_scale=1.0, gamma=2.0e-9,
    name="cluster-like",
)

#: MPI ranks sharing one node (the paper's Fig. 6 "16-way parallelism"
#: setting): shared-memory transport latency, one core per rank.
SINGLE_NODE_MPI = MachineModel(
    alpha=5.0e-7, beta=1.0 / 10.0e9, compute_scale=1.0, gamma=4.0e-9,
    name="single-node-mpi",
)


@dataclass(frozen=True)
class TieredMachineModel(MachineModel):
    """Two-tier alpha-beta constants for topology-aware metering.

    The inherited ``alpha``/``beta`` are the **inter-node** (network)
    constants; ``alpha_intra``/``beta_intra`` price the intra-node
    (shared-memory) tier.  Events carrying
    :class:`~repro.simmpi.metrics.TierMetering` (produced by the
    ``hierarchical`` communicator strategy) are priced per tier:

    ``cost = alpha_intra * intra_hops + alpha * inter_hops
           + beta_intra * max_r wire_intra(r)
           + beta * max_n sum_{r in node n} wire_inter(r)``

    — the intra bandwidth term is bound by the busiest *rank's*
    shared-memory traffic, the inter term by the busiest *node's* NIC
    (under two-level exchange a node's network traffic is leader-injected,
    so summing the node's ranks is exact).  Events without tier metering
    (``flat`` strategy, barrier-only rounds) fall back to the single-tier
    formula at the inter-node constants, which is exactly the base
    :class:`MachineModel` behavior — so a tiered flavor is a drop-in
    replacement.
    """

    #: Per-hop latency of the shared-memory tier (seconds).
    alpha_intra: float = 5.0e-7
    #: Seconds per byte of the busiest rank's intra-node wire traffic.
    beta_intra: float = 1.0 / 80.0e9

    def cost_parts(
        self, event: CollectiveEvent, nprocs: int
    ) -> "tuple[float, float]":
        tiers = event.tiers
        if tiers is None:
            return super().cost_parts(event, nprocs)
        latency = (self.alpha_intra * tiers.intra_hops
                   + self.alpha * tiers.inter_hops)
        bandwidth = (self.beta_intra * tiers.max_wire_intra
                     + self.beta * tiers.max_node_wire_inter())
        return latency, bandwidth


#: Blue Waters analog with the node structure made explicit: one simulated
#: rank = one core-group of an XE6 node rather than a whole node.  The
#: inter-node constants match :data:`BLUE_WATERS_LIKE` (Gemini: ~1.5 us,
#: ~6 GB/s injection); the intra-node tier is shared memory (~0.5 us,
#: ~80 GB/s — HyperTransport-era socket bandwidth), giving the realistic
#: ~13x bandwidth gap between tiers (10-20x is typical across machines).
#: ``gamma`` is per-rank single-core (ranks no longer bundle 16 threads).
BLUE_WATERS_TIERED = TieredMachineModel(
    alpha=1.5e-6, beta=1.0 / 6.0e9, compute_scale=1.0, gamma=4.0e-9,
    alpha_intra=5.0e-7, beta_intra=1.0 / 80.0e9,
    name="blue-waters-tiered",
)


@dataclass
class TimeModel:
    """Assembles a modeled parallel execution time from metered stats."""

    machine: MachineModel = BLUE_WATERS_LIKE

    def superstep_time(self, event: CollectiveEvent, nprocs: int) -> float:
        return (
            self.machine.compute_scale * event.max_compute
            + self.machine.gamma * event.max_work
            + self.machine.collective_cost(event, nprocs)
        )

    def total_time(self, stats: CommStats) -> float:
        """Modeled wall time of the whole SPMD run (seconds)."""
        return float(
            sum(self.superstep_time(e, stats.nprocs) for e in stats.events)
        )

    def breakdown(self, stats: CommStats) -> Dict[str, float]:
        """Compute vs. latency vs. bandwidth decomposition of total time."""
        compute = latency = bandwidth = work = 0.0
        p = stats.nprocs
        for e in stats.events:
            compute += self.machine.compute_scale * e.max_compute
            work += self.machine.gamma * e.max_work
            lat, bw = self.machine.cost_parts(e, p)
            latency += lat
            bandwidth += bw
        return {
            "compute": compute,
            "work": work,
            "latency": latency,
            "bandwidth": bandwidth,
            "total": compute + work + latency + bandwidth,
        }

    def time_by_tag(self, stats: CommStats) -> Dict[str, float]:
        """Modeled time attributed to each phase tag."""
        out: Dict[str, float] = {}
        for e in stats.events:
            out[e.tag] = out.get(e.tag, 0.0) + self.superstep_time(e, stats.nprocs)
        return out
