"""Rank-side communicator API (the simulated ``MPI.COMM_WORLD``).

Mirrors the mpi4py split between lowercase generic-object methods
(``bcast``, ``allgather``, ``allreduce`` — pickled-object semantics, metered
by pickled size) and uppercase NumPy-buffer methods (``Bcast``,
``Alltoallv``, ``Allreduce``, ... — near-zero-copy, metered by ``nbytes``).
All hot-path communication in the partitioner uses the buffer flavor, per
the mpi4py guidance that buffer-provider objects are the fast path.

Byte-accounting convention (see :mod:`repro.simmpi.metrics`): a rank's
``bytes_sent`` for an event is the payload it injects once — exact for
Alltoall(v) (self-directed slices excluded), and the standard pipelined/
butterfly bandwidth proxy for rooted and all- collectives.

Result allocation goes through :func:`repro.simmpi.dataplane.result_buffer`:
inert ``np.empty`` on the in-process backends and the pickle data plane,
but under the procs backend's shm data plane the designated computer's
merges land directly in the shared result arena, so receivers materialize
them zero-copy.  Executes that deliver one result object to *several*
ranks hand the same object to all of them when
:func:`~repro.simmpi.dataplane.plane_active` (receivers get independent
read-only views — safe across processes).

In-process backends (serial/threads) share an address space, so object
sharing there needs the read-only contract instead: in the default
``shared`` result mode (:func:`~repro.simmpi.dataplane.default_result_sharing`)
the one-result collectives — ``Allreduce``, ``Bcast``, ``Allgatherv``,
``allgather`` — hand every rank the *same* sealed (non-writeable) array,
turning O(P^2) result bytes per collective into O(P), and the
all-to-all collectives replace their per-destination Python merge loops
with one vectorized destination bucketing whose per-rank results are
sealed views of a single buffer.  A rank that must mutate a received
result calls :func:`~repro.simmpi.dataplane.materialize` (copy-on-write).
``result_sharing="copy"`` keeps the historical per-rank private copies as
the verification mode; either way the *values* are bit-identical on every
backend, data plane, and sharing mode.
"""

from __future__ import annotations

import pickle
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.simmpi import dataplane as _dataplane
from repro.simmpi.backends.base import Backend

_REDUCERS: dict[str, Callable[..., Any]] = {
    "sum": np.add.reduce,
    "max": np.maximum.reduce,
    "min": np.minimum.reduce,
    "prod": np.multiply.reduce,
    "land": np.logical_and.reduce,
    "lor": np.logical_or.reduce,
}


def _obj_nbytes(obj: Any) -> int:
    """Metering size of a generic Python object (pickle length)."""
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64  # unpicklable oddity; charge a token amount


def _common_dtype(bufs: Sequence[np.ndarray], what: str) -> Optional[np.dtype]:
    """The single dtype of the non-empty buffers in ``bufs`` (None if all
    are empty).  Zero-length contributions are dtype-exempt: no data of
    theirs moves, so they cannot cause a silent upcast — only ranks that
    actually inject payload must agree."""
    dtypes = {b.dtype for b in bufs if b.size}
    if len(dtypes) > 1:
        raise ValueError(f"{what} dtype mismatch across ranks: {dtypes}")
    return dtypes.pop() if dtypes else None


def _copy_result(array: np.ndarray) -> np.ndarray:
    """A private copy of one rank's result — arena-backed when the shm
    data plane is computing (so the copy is the *only* copy the result
    pays), plain ``array.copy()`` semantics everywhere else."""
    out = _dataplane.result_buffer(array.shape, array.dtype)
    np.copyto(out, array)
    return out


def _merge_pieces(
    pieces: Sequence[np.ndarray], fallback: np.dtype
) -> np.ndarray:
    """Concatenate per-source slices, skipping empties so a zero-length
    contribution's dtype never promotes the result."""
    live = [p for p in pieces if p.size]
    if not live:
        return np.empty(0, dtype=fallback)
    if len(live) == 1:
        return _copy_result(live[0])
    out = _dataplane.result_buffer(
        (sum(p.shape[0] for p in live),), live[0].dtype
    )
    np.concatenate(live, out=out)
    return out


def _dest_perm(cmat: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Scatter permutation for the vectorized all-to-all merge.

    ``cmat[src, dst]`` counts the items source ``src`` sends destination
    ``dst``.  Concatenating every source's send buffer lists the moved
    elements in source-major block order; ``perm`` maps each element of
    that concatenation to its slot in the destination-major layout
    (grouped by destination, source order preserved within each group —
    exactly the order the per-destination concatenation loop produced).
    Returns ``(perm, dst_starts)`` where ``dst_starts`` bounds each
    destination's slice of the permuted buffer.  O(N + P^2) NumPy work
    replaces the O(P^2) Python loop over per-``(src, dst)`` slices.
    """
    nprocs = cmat.shape[0]
    counts_flat = cmat.ravel()
    # element offset of each (src, dst) block in the source-major order
    src_starts = np.zeros(counts_flat.size, dtype=np.int64)
    np.cumsum(counts_flat[:-1], out=src_starts[1:])
    # destination slice bounds, and each block's offset within its slice
    dst_starts = np.zeros(nprocs + 1, dtype=np.int64)
    np.cumsum(cmat.sum(axis=0), out=dst_starts[1:])
    within = np.zeros_like(cmat)
    np.cumsum(cmat[:-1], axis=0, out=within[1:])
    tgt_starts = dst_starts[:-1][np.newaxis, :] + within
    shift = np.repeat(tgt_starts.ravel() - src_starts, counts_flat)
    return shift + np.arange(shift.size, dtype=np.int64), dst_starts


def _gather_live(bufs: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenation of the non-empty buffers (source-major order)."""
    live = [b for b in bufs if b.size]
    return live[0] if len(live) == 1 else np.concatenate(live)


class SimComm:
    """Communicator handle passed to every rank function.

    ``runtime`` is anything satisfying the execution-backend protocol —
    ``nprocs``, ``meter_compute``, and ``collective(...)`` (see
    :class:`repro.simmpi.backends.base.Backend`); in the ``procs`` backend
    it is the rank-side shared-memory endpoint rather than the backend
    object itself.  Not thread-safe within a rank (as with real MPI
    communicators, one rank = one call stream).
    """

    def __init__(self, runtime: Backend, rank: int) -> None:
        self._runtime = runtime
        self.rank = int(rank)
        self.size = runtime.nprocs
        self._tag = ""
        self._work = 0.0
        #: Communicator strategy (see :mod:`repro.simmpi.topology`).  Only
        #: tiered strategies cost anything: the flat default short-circuits
        #: every tier computation, keeping the historical fast path.
        self._comm_strategy = getattr(runtime, "comm_strategy", None)
        self._tiered = bool(
            self._comm_strategy is not None
            and getattr(self._comm_strategy, "tiered", False)
        )
        #: Shared read-only result delivery (see module docstring): from
        #: the backend's ``result_sharing`` attribute, falling back to
        #: ``$REPRO_RESULT_SHARING``.  The procs backend's rank endpoints
        #: pin ``"copy"`` — their results cross a process boundary, so
        #: sharing buys nothing and sealing would leak through pickling.
        self._share_results = (
            getattr(runtime, "result_sharing", None)
            or _dataplane.default_result_sharing()
        ) == "shared"
        #: Collectives completed by this rank so far.  A BSP program keeps
        #: this identical across ranks; checkpoints record it so a resumed
        #: run knows where its re-executed prologue (graph build) ends.
        self.event_count = 0
        #: thread_time bookkeeping is skipped wholesale when compute
        #: metering is off — at thousands of ranks the two clock reads per
        #: deposit are measurable pure overhead.
        self._meter = bool(runtime.meter_compute)
        self._last_thread_time: float = (
            time.thread_time() if self._meter else 0.0
        )

    # -- deterministic work metering ----------------------------------------

    def charge(self, units: float) -> None:
        """Charge deterministic work (e.g. edges touched) to this rank's
        current superstep.  Priced by the machine model's ``gamma``;
        kernels that charge work should run with ``meter_compute=False`` so
        modeled times are exactly reproducible."""
        self._work += float(units)

    # -- phase tagging -----------------------------------------------------

    @contextmanager
    def phase(self, tag: str) -> Iterator[None]:
        """Label subsequent collectives with ``tag`` for per-phase metering."""
        prev = self._tag
        self._tag = tag
        try:
            yield
        finally:
            self._tag = prev

    # -- internals -----------------------------------------------------------

    def _compute_delta(self) -> float:
        if not self._meter:
            return 0.0
        now = time.thread_time()
        delta = now - self._last_thread_time
        return max(delta, 0.0)

    def _mark_resume(self) -> None:
        if self._meter:
            self._last_thread_time = time.thread_time()

    def _collective(
        self,
        op: str,
        contribution: Any,
        nbytes_sent: int,
        execute: Callable[[List[Any]], List[Any]],
        *,
        dest_bytes: Optional[np.ndarray] = None,
        root: Optional[int] = None,
        counts: bool = False,
    ) -> Any:
        work = self._work
        self._work = 0.0
        tier = None
        if self._tiered:
            tier = self._comm_strategy.tier_contribution(
                op, self.rank, nbytes_sent,
                dest_bytes=dest_bytes, root=root, counts=counts,
            )
        if not self._meter:
            # unmetered fast path: no clock reads, no try frame — at
            # thousands of ranks this per-deposit overhead adds up
            result = self._runtime.collective(
                self.rank, op, self._tag, contribution, nbytes_sent, execute,
                0.0, work, tier_bytes=tier,
            )
            self.event_count += 1
            return result
        delta = max(time.thread_time() - self._last_thread_time, 0.0)
        try:
            result = self._runtime.collective(
                self.rank, op, self._tag, contribution, nbytes_sent, execute,
                delta, work, tier_bytes=tier,
            )
            self.event_count += 1
            return result
        finally:
            self._last_thread_time = time.thread_time()

    def _dest_split(self, cts: np.ndarray, item_bytes: int) -> Optional[np.ndarray]:
        """Per-destination payload bytes (self slot zeroed) for the tier
        classification of destination-addressed collectives; None when the
        strategy is flat (nothing would read it)."""
        if not self._tiered:
            return None
        dest = cts * np.int64(item_bytes)
        dest[self.rank] = 0
        return dest

    # -- synchronization ------------------------------------------------------

    def barrier(self) -> None:
        self._collective("barrier", None, 0, lambda c: [None] * len(c))

    # -- checkpoint rendezvous -------------------------------------------------

    def Checkpoint(
        self,
        payload: bytes,
        meta: dict,
        writer: Callable[[List[Tuple[bytes, dict]]], Any],
    ) -> Any:
        """Collective checkpoint: every rank deposits its state ``payload``
        (plus a small ``meta`` dict, identical across ranks), ``writer``
        runs exactly once with the full per-rank list and persists it, and
        its return value is delivered to every rank.

        Metered as one ``checkpoint`` event whose per-rank bytes are the
        payload sizes — deterministic for deterministic snapshots, so
        checkpointing leaves the communication record bit-reproducible.
        The backend's driver-side hook (:attr:`Backend.ckpt_committer`)
        fires when this event is recorded, which is what turns the written
        files into a *committed* epoch (see :mod:`repro.ft.checkpoint`).
        """

        def execute(contribs: List[Any]) -> List[Any]:
            result = writer(contribs)
            return [result] * len(contribs)

        return self._collective(
            "checkpoint", (bytes(payload), dict(meta)), len(payload), execute
        )

    # -- generic-object collectives -------------------------------------------

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast a picklable object from ``root`` to all ranks."""
        mine = self.rank == root
        nbytes = _obj_nbytes(obj) if mine else 0

        def execute(contribs: List[Any]) -> List[Any]:
            value = contribs[root]
            return [value] * len(contribs)

        return self._collective("bcast", obj if mine else None, nbytes,
                                execute, root=root)

    def allgather(self, obj: Any) -> List[Any]:
        """Gather one picklable object per rank onto every rank."""
        nbytes = _obj_nbytes(obj)

        def execute(contribs: List[Any]) -> List[Any]:
            gathered = list(contribs)
            return [gathered] * len(contribs)

        return self._collective("allgather", obj, nbytes, execute)

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        nbytes = _obj_nbytes(obj) if self.rank != root else 0

        def execute(contribs: List[Any]) -> List[Any]:
            out: List[Any] = [None] * len(contribs)
            out[root] = list(contribs)
            return out

        return self._collective("gather", obj, nbytes, execute, root=root)

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        dest = None
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(
                    f"scatter at root needs exactly {self.size} items"
                )
            per_dest = np.array([_obj_nbytes(o) for o in objs], dtype=np.int64)
            per_dest[root] = 0
            nbytes = int(per_dest.sum())
            if self._tiered:
                dest = per_dest
        else:
            nbytes = 0

        def execute(contribs: List[Any]) -> List[Any]:
            return list(contribs[root])

        return self._collective(
            "scatter", list(objs) if self.rank == root else None, nbytes,
            execute, dest_bytes=dest, root=root,
        )

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        """All-reduce a scalar (or small object supporting the numpy ufunc)."""
        reducer = _REDUCERS[op]
        nbytes = _obj_nbytes(value)

        def execute(contribs: List[Any]) -> List[Any]:
            result = reducer(np.asarray(contribs, dtype=object), axis=0)
            # unbox numpy scalars back to Python for ergonomic comparisons
            if isinstance(result, np.generic):
                result = result.item()
            return [result] * len(contribs)

        return self._collective("allreduce", value, nbytes, execute)

    # -- NumPy-buffer collectives ----------------------------------------------

    def Bcast(self, array: np.ndarray, root: int = 0) -> np.ndarray:
        """Broadcast a NumPy array from ``root``; returns the array on every
        rank (the root's own array object is returned unchanged at root)."""
        mine = self.rank == root
        arr = np.ascontiguousarray(array) if mine else None
        nbytes = arr.nbytes if mine else 0
        share = self._share_results

        def execute(contribs: List[Any]) -> List[Any]:
            value = contribs[root]
            n = len(contribs)
            if _dataplane.plane_active():
                # one shared result object: copied into the arena once at
                # descriptor-write time, then descriptor-shared; the root
                # needs nothing back (it keeps its own array)
                return [None if r == root else value for r in range(n)]
            if share:
                # one sealed copy shared by every non-root rank; the
                # root's own (writable) array is never sealed — it keeps
                # its input unchanged, exactly as before
                out = _dataplane.seal(value.copy())
                return [None if r == root else out for r in range(n)]
            return [value if r == root else value.copy() for r in range(n)]

        result = self._collective("bcast", arr, nbytes, execute, root=root)
        return arr if mine else result

    def Allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        """Element-wise all-reduce of equal-shape NumPy arrays."""
        arr = np.ascontiguousarray(array)
        reducer = _REDUCERS[op]
        share = self._share_results

        def execute(contribs: List[Any]) -> List[Any]:
            shapes = {c.shape for c in contribs}
            if len(shapes) != 1:
                raise ValueError(f"Allreduce shape mismatch across ranks: {shapes}")
            total = reducer(np.stack(contribs), axis=0)
            if _dataplane.plane_active():
                return [total] * len(contribs)
            if share:
                return [_dataplane.seal(total)] * len(contribs)
            return [total if r == 0 else total.copy() for r in range(len(contribs))]

        return self._collective("allreduce", arr, arr.nbytes, execute)

    def Reduce(self, array: np.ndarray, op: str = "sum", root: int = 0) -> Optional[np.ndarray]:
        arr = np.ascontiguousarray(array)
        reducer = _REDUCERS[op]
        nbytes = arr.nbytes if self.rank != root else 0

        def execute(contribs: List[Any]) -> List[Any]:
            total = reducer(np.stack(contribs), axis=0)
            out: List[Any] = [None] * len(contribs)
            out[root] = total
            return out

        return self._collective("reduce", arr, nbytes, execute, root=root)

    def Allgatherv(self, array: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenate per-rank 1-D arrays onto every rank.

        Returns ``(concatenated, counts)`` where ``counts[r]`` is rank ``r``'s
        contribution length.
        """
        arr = np.ascontiguousarray(array)
        if arr.ndim != 1:
            raise ValueError("Allgatherv expects 1-D arrays")
        share = self._share_results

        def execute(contribs: List[Any]) -> List[Any]:
            counts = np.array([c.shape[0] for c in contribs], dtype=np.int64)
            total = int(counts.sum())
            if total:
                # same dtype promotion as np.concatenate (empties included),
                # merged straight into the arena under the shm data plane
                merged = _dataplane.result_buffer(
                    (total,), np.result_type(*contribs)
                )
                np.concatenate(contribs, out=merged)
            else:
                merged = contribs[0][:0]
            result = (merged, counts)
            if _dataplane.plane_active():
                return [result] * len(contribs)
            if share:
                _dataplane.seal(merged)
                _dataplane.seal(counts)
                return [result] * len(contribs)
            return [result if r == 0 else (merged.copy(), counts.copy())
                    for r in range(len(contribs))]

        return self._collective("allgatherv", arr, arr.nbytes, execute)

    def Gatherv(self, array: np.ndarray, root: int = 0) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Concatenate per-rank 1-D arrays at ``root`` (None elsewhere)."""
        arr = np.ascontiguousarray(array)
        if arr.ndim != 1:
            raise ValueError("Gatherv expects 1-D arrays")
        nbytes = arr.nbytes if self.rank != root else 0

        def execute(contribs: List[Any]) -> List[Any]:
            counts = np.array([c.shape[0] for c in contribs], dtype=np.int64)
            total = int(counts.sum())
            if total:
                merged = _dataplane.result_buffer(
                    (total,), np.result_type(*contribs)
                )
                np.concatenate(contribs, out=merged)
            else:
                merged = contribs[0][:0]
            out: List[Any] = [None] * len(contribs)
            out[root] = (merged, counts)
            return out

        return self._collective("gatherv", arr, nbytes, execute, root=root)

    def Scatterv(
        self, array: Optional[np.ndarray], counts: Optional[np.ndarray], root: int = 0
    ) -> np.ndarray:
        """Split ``array`` (at root) into ``counts[r]``-length pieces."""
        if self.rank == root:
            if array is None or counts is None:
                raise ValueError("Scatterv at root requires array and counts")
            arr = np.ascontiguousarray(array)
            cts = np.asarray(counts, dtype=np.int64)
            if cts.sum() != arr.shape[0]:
                raise ValueError("Scatterv counts do not sum to array length")
            nbytes = int(arr.nbytes - (cts[root] * arr.itemsize))
            payload = (arr, cts)
            dest = self._dest_split(cts, arr.itemsize)
        else:
            nbytes = 0
            payload = None
            dest = None

        def execute(contribs: List[Any]) -> List[Any]:
            arr_, cts_ = contribs[root]
            offsets = np.zeros(len(contribs) + 1, dtype=np.int64)
            np.cumsum(cts_, out=offsets[1:])
            # the root's own piece stays a view of its input; other ranks
            # get private copies (arena-backed under the shm data plane)
            return [
                _copy_result(arr_[offsets[r]:offsets[r + 1]]) if r != root
                else arr_[offsets[r]:offsets[r + 1]]
                for r in range(len(contribs))
            ]

        return self._collective("scatterv", payload, nbytes, execute,
                                dest_bytes=dest, root=root)

    def Alltoall(self, array: np.ndarray) -> np.ndarray:
        """Exchange one item (or fixed-size row) per rank pair.

        ``array`` must have leading dimension ``size``; returns an array of
        the same shape whose ``r``-th slot is what rank ``r`` sent to us.
        """
        return self._alltoall_impl(array, counts=False)

    def _alltoall_impl(self, array: np.ndarray, *, counts: bool) -> np.ndarray:
        """Alltoall body; ``counts=True`` marks the Alltoallv-internal
        count-header exchange, whose inter-node wire bytes the hierarchical
        strategy models as re-encoded ``uint32`` entries."""
        arr = np.ascontiguousarray(array)
        if arr.shape[0] != self.size:
            raise ValueError(
                f"Alltoall expects leading dim {self.size}, got {arr.shape}"
            )
        slot = arr.nbytes // self.size if self.size else 0
        nbytes = arr.nbytes - slot  # exclude the self-directed slot
        dest = self._dest_split(
            np.ones(self.size, dtype=np.int64), slot
        ) if self._tiered else None
        share = self._share_results

        def execute(contribs: List[Any]) -> List[Any]:
            stacked = np.stack(contribs)  # [src, dst, ...]
            if share and not _dataplane.plane_active():
                # one contiguous [dst, src, ...] transpose; each rank's
                # result is a sealed row view — same values as the
                # per-rank column copies, one vectorized copy total
                axes = (1, 0) + tuple(range(2, stacked.ndim))
                out = _dataplane.seal(
                    np.ascontiguousarray(stacked.transpose(axes))
                )
                return [out[r] for r in range(len(contribs))]
            return [_copy_result(stacked[:, r]) for r in range(len(contribs))]

        return self._collective("alltoall", arr, nbytes, execute,
                                dest_bytes=dest, counts=counts)

    def Alltoallv(
        self, sendbuf: np.ndarray, sendcounts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Variable-count all-to-all of a 1-D buffer.

        ``sendbuf`` holds the data destined for rank 0, then rank 1, etc.;
        ``sendcounts[r]`` items go to rank ``r``.  Returns
        ``(recvbuf, recvcounts)`` with the pieces ordered by source rank.

        Mirrors Algorithm 3's two-step pattern: real MPI first Alltoalls the
        counts, then Alltoallvs the payload; both rounds are metered here
        (the count exchange via :meth:`Alltoall`, the payload as one
        ``alltoallv`` event).
        """
        buf = np.ascontiguousarray(sendbuf)
        cts = np.asarray(sendcounts, dtype=np.int64)
        if buf.ndim != 1:
            raise ValueError("Alltoallv expects a 1-D send buffer")
        if cts.shape != (self.size,):
            raise ValueError(
                f"sendcounts must have shape ({self.size},), got {cts.shape}"
            )
        if cts.sum() != buf.shape[0]:
            raise ValueError(
                f"sendcounts sum {cts.sum()} != sendbuf length {buf.shape[0]}"
            )
        recvcounts = self._alltoall_impl(cts, counts=True)
        offrank = int(buf.nbytes - cts[self.rank] * buf.itemsize)
        dest = self._dest_split(cts, buf.itemsize)
        share = self._share_results

        def execute(contribs: List[Any]) -> List[Any]:
            nprocs = len(contribs)
            bufs = [c[0] for c in contribs]
            counts = [c[1] for c in contribs]
            wire_dtype = _common_dtype(bufs, "Alltoallv")
            if share and not _dataplane.plane_active():
                cmat = np.stack(counts)
                rcmat = _dataplane.seal(np.ascontiguousarray(cmat.T))
                if wire_dtype is None:
                    # nothing moves: per-destination empties keep the
                    # legacy fallback dtype (the destination's own buffer)
                    return [(_dataplane.seal(np.empty(0, bufs[r].dtype)),
                             rcmat[r]) for r in range(nprocs)]
                perm, dst_starts = _dest_perm(cmat)
                out = np.empty(perm.size, dtype=wire_dtype)
                out[perm] = _gather_live(bufs)
                _dataplane.seal(out)
                return [(out[dst_starts[r]:dst_starts[r + 1]], rcmat[r])
                        for r in range(nprocs)]
            send_offsets = []
            for c in counts:
                off = np.zeros(nprocs + 1, dtype=np.int64)
                np.cumsum(c, out=off[1:])
                send_offsets.append(off)
            results = []
            for dst in range(nprocs):
                pieces = [
                    bufs[src][send_offsets[src][dst]:send_offsets[src][dst + 1]]
                    for src in range(nprocs)
                ]
                rc = np.array([p.shape[0] for p in pieces], dtype=np.int64)
                fallback = wire_dtype if wire_dtype is not None else bufs[dst].dtype
                results.append((_merge_pieces(pieces, fallback), rc))
            return results

        recvbuf, rcounts = self._collective(
            "alltoallv", (buf, cts), offrank, execute, dest_bytes=dest
        )
        # cross-check the pre-exchanged counts against the payload split
        if not np.array_equal(rcounts, recvcounts):
            raise AssertionError("Alltoallv internal count mismatch")
        return recvbuf, rcounts

    def Alltoallv_fields(
        self, fields: Sequence[np.ndarray], sendcounts: np.ndarray
    ) -> Tuple[List[np.ndarray], np.ndarray]:
        """Variable-count all-to-all of a multi-field record batch.

        The compact wire primitive: a record is one entry from each array
        in ``fields`` (struct-of-arrays — every field keeps its own,
        possibly narrow, dtype), ``sendcounts[r]`` *records* go to rank
        ``r``, and all fields share the destination grouping (use
        :func:`repro.dist.packing.pack_fields_by_rank`).  Returns
        ``(recv_fields, recvcounts)`` with each field's pieces ordered by
        source rank and ``recvcounts`` in records.

        Metered as one ``alltoallv`` event of the *true* wire size: the
        off-rank record count times the summed field itemsizes — no
        int64 inflation of narrow fields.  Zero-length contributions are
        dtype-exempt, as in :meth:`Alltoallv`.
        """
        bufs = tuple(np.ascontiguousarray(f) for f in fields)
        if not bufs:
            raise ValueError("Alltoallv_fields needs at least one field")
        nrec = bufs[0].shape[0]
        for b in bufs:
            if b.ndim != 1:
                raise ValueError("Alltoallv_fields expects 1-D field arrays")
            if b.shape[0] != nrec:
                raise ValueError("Alltoallv_fields fields must be equal-length")
        cts = np.asarray(sendcounts, dtype=np.int64)
        if cts.shape != (self.size,):
            raise ValueError(
                f"sendcounts must have shape ({self.size},), got {cts.shape}"
            )
        if cts.sum() != nrec:
            raise ValueError(
                f"sendcounts sum {cts.sum()} != record count {nrec}"
            )
        recvcounts = self._alltoall_impl(cts, counts=True)
        record_bytes = sum(b.itemsize for b in bufs)
        offrank = int((nrec - cts[self.rank]) * record_bytes)
        dest = self._dest_split(cts, record_bytes)
        share = self._share_results

        def execute(contribs: List[Any]) -> List[Any]:
            nprocs = len(contribs)
            all_bufs = [c[0] for c in contribs]
            counts = [c[1] for c in contribs]
            widths = {len(b) for b in all_bufs}
            if len(widths) > 1:
                raise ValueError(
                    f"Alltoallv_fields field-count mismatch across ranks: "
                    f"{sorted(widths)}"
                )
            k = widths.pop()
            wire_dtypes = [
                _common_dtype([b[j] for b in all_bufs], "Alltoallv_fields")
                for j in range(k)
            ]
            if share and not _dataplane.plane_active():
                cmat = np.stack(counts)
                rcmat = _dataplane.seal(np.ascontiguousarray(cmat.T))
                if all(d is None for d in wire_dtypes):
                    # no records anywhere (fields are equal-length per
                    # source, so the dtypes are all-None together)
                    return [
                        ([_dataplane.seal(np.empty(0, all_bufs[r][j].dtype))
                          for j in range(k)], rcmat[r])
                        for r in range(nprocs)
                    ]
                perm, dst_starts = _dest_perm(cmat)
                merged_fields = []
                for j in range(k):
                    out = np.empty(perm.size, dtype=wire_dtypes[j])
                    out[perm] = _gather_live([b[j] for b in all_bufs])
                    merged_fields.append(_dataplane.seal(out))
                return [
                    ([f[dst_starts[r]:dst_starts[r + 1]]
                      for f in merged_fields], rcmat[r])
                    for r in range(nprocs)
                ]
            send_offsets = []
            for c in counts:
                off = np.zeros(nprocs + 1, dtype=np.int64)
                np.cumsum(c, out=off[1:])
                send_offsets.append(off)
            results = []
            for dst in range(nprocs):
                lo = [send_offsets[src][dst] for src in range(nprocs)]
                hi = [send_offsets[src][dst + 1] for src in range(nprocs)]
                rc = np.array(
                    [h - l for l, h in zip(lo, hi)], dtype=np.int64
                )
                merged = []
                for j in range(k):
                    fallback = (
                        wire_dtypes[j] if wire_dtypes[j] is not None
                        else all_bufs[dst][j].dtype
                    )
                    merged.append(_merge_pieces(
                        [all_bufs[src][j][lo[src]:hi[src]]
                         for src in range(nprocs)],
                        fallback,
                    ))
                results.append((merged, rc))
            return results

        recv_fields, rcounts = self._collective(
            "alltoallv", (bufs, cts), offrank, execute, dest_bytes=dest
        )
        if not np.array_equal(rcounts, recvcounts):
            raise AssertionError("Alltoallv_fields internal count mismatch")
        return recv_fields, rcounts

    # -- scans -----------------------------------------------------------------

    def exscan(self, value: Any, op: str = "sum") -> Any:
        """Exclusive prefix reduction; rank 0 receives the identity (0)."""
        reducer = _REDUCERS[op]
        nbytes = _obj_nbytes(value)

        def execute(contribs: List[Any]) -> List[Any]:
            out: List[Any] = []
            for r in range(len(contribs)):
                if r == 0:
                    out.append(0)
                else:
                    red = reducer(np.asarray(contribs[:r], dtype=object), axis=0)
                    out.append(red.item() if isinstance(red, np.generic) else red)
            return out

        return self._collective("exscan", value, nbytes, execute)
