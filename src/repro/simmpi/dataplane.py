"""Zero-copy shared-memory data plane for the ``procs`` backend.

The pickle data plane (the ``procs`` backend's original transport) copies
every collective payload up to four times: the sender memcpys it into a
request slot, the designated computer merges contributions into fresh heap
arrays, copies each rank's result into that rank's response slot, and every
receiver copies it back out so the returned arrays own their data.  The
*shm* data plane removes the response-side copies entirely: large NumPy
buffers live directly in long-lived named ``multiprocessing.shared_memory``
segments (per-rank *arenas*), the slots carry compact
``(segment, offset, nbytes)`` descriptors instead of raw bytes, and the
receiving side materializes zero-copy read-only ``np.frombuffer`` views.
A rank that needs to mutate a received buffer copies it first
(:func:`materialize` — the copy-on-write rule); every hot-path consumer in
the repo only reads received buffers, so the common case moves descriptors,
not bytes.

Arena layout and lifecycle
--------------------------

* **Send arenas** (:class:`SendArena`, one per rank, segments named
  ``{session}dps{rank}g{gen}``) hold collective *contributions*.  The
  lockstep barrier protocol guarantees a contribution is consumed by the
  designated computer strictly before the owning rank's next deposit, so a
  send arena is reset (bump pointer back to zero) on every write; it grows
  by replacing its segment with a generation-tagged larger one.
* **The result arena** (:class:`ResultArena`, rank 0 only, segments named
  ``{session}dpr g{gen}``) holds collective *results*.  Receivers keep
  zero-copy views with unbounded lifetime, so its segments are recycled
  only once every rank has *released* the views materialized from them:
  each rank tracks its live views with weak references
  (:class:`ViewLedger`) and publishes a release cursor — the highest
  superstep whose views are all dead — through a fork-shared array; a
  segment whose last write is at or below the minimum cursor over all
  ranks carries no live views anywhere and may be rewritten.

Every arena segment name carries the session's unique ``/dev/shm`` prefix
(under the ``dp`` sub-prefix), so the parent's teardown sweep reclaims all
of them — on normal exit and after a hard ``os._exit`` kill of any rank —
without the arenas having to publish their segment lists.

The compute-side allocation hook (:func:`result_buffer` /
:func:`compute_arena`) lets :mod:`repro.simmpi.comm`'s collective
``execute`` functions write merged results *directly* into the result
arena, so the designated computer's merge pass is the only copy a large
result ever pays.  Outside an active plane (the ``serial``/``threads``
backends, or the pickle data plane) the hook degrades to ``np.empty`` and
nothing changes — bit-identical results and CommStats on every backend,
data plane, wire format, and communicator strategy.
"""

from __future__ import annotations

import os
import weakref
import zlib
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Any, Dict, Iterator, List, NamedTuple, Optional, Tuple

import numpy as np

#: Environment variable consulted when ``ProcsBackend(dataplane=None)``.
DATAPLANE_ENV_VAR = "REPRO_DATAPLANE"

#: Data planes accepted by the procs backend: ``shm`` (descriptor-passing
#: zero-copy plane, default) and ``pickle`` (the original copy-through
#: plane, kept as the verification mode).
DATAPLANES = ("shm", "pickle")

DEFAULT_DATAPLANE = "shm"

#: Buffers below this many bytes stay inline in the rendezvous slot (and
#: therefore arrive as private writable copies); buffers at or above it
#: travel as arena descriptors and arrive as read-only zero-copy views.
DESCRIPTOR_MIN = 4096

#: Arena allocations are aligned to cache lines.
_ALIGN = 64

#: Smallest arena segment (segments grow geometrically from here).
_MIN_SEGMENT = 1 << 20


def default_dataplane() -> str:
    """The procs data plane used when none is requested explicitly."""
    name = os.environ.get(DATAPLANE_ENV_VAR) or DEFAULT_DATAPLANE
    if name not in DATAPLANES:
        raise ValueError(
            f"${DATAPLANE_ENV_VAR}={name!r} is not a valid data plane; "
            f"choices: {DATAPLANES}"
        )
    return name


class ShmSpec(NamedTuple):
    """Descriptor of one out-of-band buffer parked in an arena segment.

    ``pickle`` stores dtype/shape/order in-band, so raw bytes plus a
    segment window reconstruct the exact NumPy array on the far side.
    ``crc`` carries the crc32 of the window's bytes at place time when
    integrity checking is on (``-1`` when off): receivers re-hash the
    window at view time, so corruption anywhere between the arena write
    and the read raises instead of leaking into results.
    """

    segment: str
    offset: int
    nbytes: int
    crc: int = -1


def _pow2_at_least(n: int) -> int:
    size = _MIN_SEGMENT
    while size < n:
        size *= 2
    return size


def _buffer_address(view: memoryview) -> int:
    """Start address of a non-empty buffer (for alias detection)."""
    return np.frombuffer(view, dtype=np.uint8).__array_interface__["data"][0]


def materialize(arr: np.ndarray) -> np.ndarray:
    """Copy-on-write helper: a writable version of a received buffer.

    Zero-copy for arrays that already own writable data; copies only
    read-only buffers — the shm data plane's shared-memory views and the
    in-process backends' shared (sealed) collective results.
    """
    if isinstance(arr, np.ndarray) and not arr.flags.writeable:
        return arr.copy()
    return arr


# -- shared read-only collective results (in-process backends) --------------

#: Environment variable consulted when ``create_runtime(result_sharing=None)``.
RESULT_SHARING_ENV_VAR = "REPRO_RESULT_SHARING"

#: Result-delivery modes of the in-process backends: ``shared`` hands every
#: rank the *same* sealed (read-only) result array — O(P) result bytes per
#: collective instead of the O(P^2) of per-rank copies — while ``copy``
#: keeps the historical private-copy path as the bit-identity verification
#: mode.  Values are identical either way; a rank that must mutate a
#: received result calls :func:`materialize` first (the same copy-on-write
#: contract the shm data plane established).
RESULT_SHARING_MODES = ("shared", "copy")

DEFAULT_RESULT_SHARING = "shared"


def default_result_sharing() -> str:
    """The result-sharing mode used when none is requested explicitly."""
    name = os.environ.get(RESULT_SHARING_ENV_VAR) or DEFAULT_RESULT_SHARING
    if name not in RESULT_SHARING_MODES:
        raise ValueError(
            f"${RESULT_SHARING_ENV_VAR}={name!r} is not a valid result-"
            f"sharing mode; choices: {RESULT_SHARING_MODES}"
        )
    return name


def seal(arr: np.ndarray) -> np.ndarray:
    """Mark an array read-only so it can be shared across in-process ranks.

    The PR-7 zero-copy contract, extended inward: a sealed result object is
    handed to *every* rank of a collective, and any accidental in-place
    mutation raises instead of silently leaking into other ranks.
    """
    arr.flags.writeable = False
    return arr


def _create_segment(name: str, size: int) -> shared_memory.SharedMemory:
    while True:
        try:
            return shared_memory.SharedMemory(name=name, create=True, size=size)
        except FileExistsError:  # pragma: no cover - stale leftover
            name += "x"


class SegmentCache:
    """Per-process attach-by-name cache of arena segments.

    Readers resolve descriptors through this cache so one ``mmap`` per
    segment serves every view materialized from it.  Mappings are dropped
    at :meth:`close`; a mapping still referenced by a live view survives
    (``BufferError`` is expected and swallowed — the view's reference keeps
    the memory valid until the process exits).
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}

    def view(self, spec: ShmSpec) -> memoryview:
        """Read-only window onto the descriptor's bytes (zero-copy)."""
        seg = self._segments.get(spec.segment)
        if seg is None:
            seg = shared_memory.SharedMemory(name=spec.segment)
            self._segments[spec.segment] = seg
        return seg.buf[spec.offset:spec.offset + spec.nbytes].toreadonly()

    def close(self) -> None:
        for seg in self._segments.values():
            try:
                seg.close()
            except BufferError:  # a materialized view is still alive
                pass
        self._segments.clear()


class SendArena:
    """Contribution arena of one rank: reset on every slot write.

    Sound because the rendezvous protocol is lockstep: the designated
    computer's views of superstep *N*'s contributions are dropped before
    the closing barrier of *N*, and the owning rank's next write happens
    strictly after that barrier.  Any result that aliases contribution
    memory is copied into the result arena before descriptors are
    published (see :meth:`ResultArena.place`), so nothing outlives the
    superstep.
    """

    def __init__(self, base: str, integrity: bool = False) -> None:
        self._base = base
        self._gen = 0
        self._seg: Optional[shared_memory.SharedMemory] = None
        self._cursor = 0
        self._integrity = integrity

    def begin_write(self, total_nbytes: int) -> None:
        """Reset the bump pointer; ensure capacity for one slot write."""
        self._cursor = 0
        if total_nbytes == 0:
            return
        need = total_nbytes + _ALIGN * 8  # alignment slack
        if self._seg is None or self._seg.size < need:
            old = self._seg
            self._gen += 1
            self._seg = _create_segment(
                f"{self._base}g{self._gen}", _pow2_at_least(need)
            )
            if old is not None:
                # replaced generations are retired immediately: descriptors
                # naming them were consumed a superstep ago, and unlinking
                # keeps /dev/shm down to one live segment per arena
                try:
                    old.close()
                except BufferError:  # pragma: no cover - stale view alive
                    pass
                old.unlink()

    def place(self, raw: memoryview) -> ShmSpec:
        """Copy one out-of-band buffer into the arena; return its spec."""
        assert self._seg is not None, "begin_write() sizes the arena first"
        off = -self._cursor % _ALIGN + self._cursor
        n = raw.nbytes
        flat = raw.cast("B") if raw.ndim != 1 or raw.format != "B" else raw
        self._seg.buf[off:off + n] = flat
        self._cursor = off + n
        crc = zlib.crc32(flat) if self._integrity else -1
        return ShmSpec(self._seg.name, off, n, crc)

    def corrupt(self, seed: int) -> bool:
        """Flip one byte of this write's placed bytes (fault injection).

        Called *after* the slot write published the descriptors, so their
        crcs describe the uncorrupted bytes — exactly the transport-level
        flip integrity checking exists to catch.  Returns False when the
        current write placed nothing (all payloads were inlined).
        """
        if self._seg is None or self._cursor == 0:
            return False
        idx = seed % self._cursor
        self._seg.buf[idx] ^= 0xFF
        return True

    def close(self) -> None:
        if self._seg is not None:
            try:
                self._seg.close()
            except BufferError:  # pragma: no cover
                pass
            self._seg = None


class _ResultSegment:
    __slots__ = ("seg", "cursor", "last_step", "addrs")

    def __init__(self, seg: shared_memory.SharedMemory) -> None:
        self.seg = seg
        self.cursor = 0
        self.last_step = -1
        self.addrs: List[int] = []


class ResultArena:
    """Result arena of the designated computer (rank 0).

    Allocation is bump-pointer within the current segment; when it fills,
    a *retired* segment whose ``last_step`` every rank has released is
    rewound and reused, else a new generation-tagged segment is created
    (geometric sizing).  Segments are never unlinked mid-run — a receiver
    may attach at any point of the current superstep — and the session
    teardown sweep reclaims all of them by name prefix.
    """

    def __init__(self, base: str, integrity: bool = False) -> None:
        self._base = base
        self._gen = 0
        self._segments: List[_ResultSegment] = []
        self._current: Optional[_ResultSegment] = None
        self._step = 0
        self._min_released = -1
        self._integrity = integrity
        #: address -> spec of blocks handed out by :meth:`alloc_array`
        #: this step (zero-copy detection for arena-resident results).
        self._own: Dict[int, ShmSpec] = {}
        #: address -> crc32 of an own block's final bytes, memoized at the
        #: first :meth:`place` so responses shared across ranks hash once.
        self._own_crc: Dict[int, int] = {}
        #: address -> (spec, pinned buffer) memo of foreign buffers already
        #: copied this step — results shared across ranks (Bcast payload,
        #: an Allgatherv merge) are copied once, then descriptor-shared.
        #: Pinning the source buffer prevents its address being recycled
        #: (and the memo going stale) within the step.
        self._foreign: Dict[Tuple[int, int], Tuple[ShmSpec, memoryview]] = {}
        #: arrays handed out this step (keeps their mappings trivially
        #: alive until the responses are written)
        self._issued: List[np.ndarray] = []

    @property
    def segment_names(self) -> List[str]:
        return [s.seg.name for s in self._segments]

    def begin_step(self, step: int, min_released: int) -> None:
        """Open superstep ``step``; segments last written at or below
        ``min_released`` carry no live views on any rank."""
        self._step = step
        self._min_released = min_released
        self._own.clear()
        self._own_crc.clear()
        self._foreign.clear()
        self._issued.clear()

    def _room(self, seg: _ResultSegment, nbytes: int) -> Optional[int]:
        off = -seg.cursor % _ALIGN + seg.cursor
        return off if off + nbytes <= seg.seg.size else None

    def _block(self, nbytes: int) -> Tuple[_ResultSegment, int]:
        if self._current is not None:
            off = self._room(self._current, nbytes)
            if off is not None:
                return self._current, off
        # rotate: reuse a fully-released retired segment if one fits
        for cand in self._segments:
            if cand is self._current or cand.last_step > self._min_released:
                continue
            if cand.seg.size >= nbytes:
                cand.cursor = 0
                for addr in cand.addrs:
                    self._own.pop(addr, None)
                    self._own_crc.pop(addr, None)
                cand.addrs.clear()
                self._current = cand
                return cand, 0
        self._gen += 1
        seg = _ResultSegment(_create_segment(
            f"{self._base}g{self._gen}", _pow2_at_least(nbytes + _ALIGN)
        ))
        self._segments.append(seg)
        self._current = seg
        return seg, 0

    def _claim(self, nbytes: int) -> Tuple[_ResultSegment, int]:
        seg, off = self._block(nbytes)
        seg.cursor = off + nbytes
        seg.last_step = self._step
        return seg, off

    def alloc_array(self, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """A writable array backed by the arena (the ``execute`` hook).

        The block is remembered by address, so when the result is pickled
        into a response slot its descriptor is emitted without any copy.
        """
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes < DESCRIPTOR_MIN:
            # small results stay inline (and thus privately writable on
            # the receiving side); the arena only carries view-sized data
            return np.empty(shape, dtype=dtype)
        seg, off = self._claim(nbytes)
        arr = np.frombuffer(
            seg.seg.buf, dtype=dtype, count=int(np.prod(shape, dtype=np.int64)),
            offset=off,
        ).reshape(shape)
        addr = arr.__array_interface__["data"][0]
        self._own[addr] = ShmSpec(seg.seg.name, off, nbytes)
        seg.addrs.append(addr)
        self._issued.append(arr)
        return arr

    def begin_write(self, total_nbytes: int) -> None:
        """Slot-write hook (no-op: result blocks are claimed on demand)."""

    def place(self, raw: memoryview) -> ShmSpec:
        """Descriptor for one out-of-band result buffer.

        Zero-copy when the buffer already lives in this arena
        (:meth:`alloc_array`); one memoized copy per step otherwise — a
        result object shared across several ranks' responses is copied
        once and descriptor-shared after that.
        """
        flat = raw if raw.ndim == 1 and raw.format == "B" else raw.cast("B")
        addr = _buffer_address(flat)
        spec = self._own.get(addr)
        if spec is not None and spec.nbytes == flat.nbytes:
            if not self._integrity:
                return spec
            # own blocks are hashed at first place (their bytes are final
            # by then: execute() filled them before the response writes)
            crc = self._own_crc.get(addr)
            if crc is None:
                crc = zlib.crc32(flat)
                self._own_crc[addr] = crc
            return spec._replace(crc=crc)
        memo = self._foreign.get((addr, flat.nbytes))
        if memo is not None:
            return memo[0]
        seg, off = self._claim(flat.nbytes)
        seg.seg.buf[off:off + flat.nbytes] = flat
        crc = zlib.crc32(flat) if self._integrity else -1
        spec = ShmSpec(seg.seg.name, off, flat.nbytes, crc)
        self._foreign[(addr, flat.nbytes)] = (spec, flat)
        return spec

    def close(self) -> None:
        self._own.clear()
        self._own_crc.clear()
        self._foreign.clear()
        self._issued.clear()
        for s in self._segments:
            try:
                s.seg.close()
            except BufferError:  # pragma: no cover
                pass
        self._segments.clear()
        self._current = None


class ViewLedger:
    """Rank-side accounting of live zero-copy views, by superstep.

    Views are found by walking each materialized result for arrays whose
    data address matches a leased arena window; a weak-reference finalizer
    marks each one released when the rank drops its last reference
    (derived views hold their base alive, so slices count).  A buffer that
    hides inside a structure the walk cannot see pins its superstep
    forever — conservative: the arena then never rewrites that region.
    """

    def __init__(self) -> None:
        self._live: Dict[int, int] = {}
        self._pinned: Optional[int] = None
        self._cursor = -1

    def _release(self, step: int) -> None:
        n = self._live.get(step, 0) - 1
        if n <= 0:
            self._live.pop(step, None)
        else:
            self._live[step] = n

    def track(self, obj: Any, leases: List[Tuple[memoryview, int]],
              step: int) -> None:
        """Register the arena-backed arrays inside ``obj``."""
        if not leases:
            return
        by_addr = {addr: mv.nbytes for mv, addr in leases}
        matched = 0
        stack = [obj]
        seen = set()
        while stack and matched < len(by_addr):
            x = stack.pop()
            if id(x) in seen:
                continue
            seen.add(id(x))
            if isinstance(x, np.ndarray):
                addr = x.__array_interface__["data"][0]
                if addr in by_addr:
                    self._live[step] = self._live.get(step, 0) + 1
                    weakref.finalize(x, self._release, step)
                    matched += 1
            elif isinstance(x, (list, tuple, set, frozenset)):
                stack.extend(x)
            elif isinstance(x, dict):
                stack.extend(x.keys())
                stack.extend(x.values())
        if matched < len(by_addr):
            # a leased buffer we cannot watch: freeze recycling at this step
            self._pinned = step if self._pinned is None else min(
                self._pinned, step
            )

    def released(self, upcoming_step: int) -> int:
        """Highest superstep whose views are all dead on this rank."""
        floor = upcoming_step - 1
        if self._live:
            floor = min(floor, min(self._live) - 1)
        if self._pinned is not None:
            floor = min(floor, self._pinned - 1)
        if floor > self._cursor:
            self._cursor = floor
        return self._cursor


# -- compute-side allocation hook -------------------------------------------

_ACTIVE: Optional[ResultArena] = None


def plane_active() -> bool:
    """True while the shm data plane's designated computer is executing a
    collective (rank 0 of the procs backend, between the barriers)."""
    return _ACTIVE is not None


def result_buffer(shape: Tuple[int, ...], dtype: Any) -> np.ndarray:
    """Allocate a collective-result buffer.

    Arena-backed under an active shm data plane — the merge that fills it
    is then the only copy the result ever pays — and plain ``np.empty``
    everywhere else (serial/threads backends, pickle data plane), keeping
    results bit-identical across all of them.
    """
    if _ACTIVE is None:
        return np.empty(shape, dtype=dtype)
    return _ACTIVE.alloc_array(tuple(shape), dtype)


@contextmanager
def compute_arena(arena: Optional[ResultArena]) -> Iterator[None]:
    """Install ``arena`` as the active result allocator for one collective."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = arena
    try:
        yield
    finally:
        _ACTIVE = prev
