"""Two-level (node-aware) communicator strategy.

Models the hierarchical exchange every scalable distributed partitioner
implements (dKaMinPar's node-aggregated message queues, ChainerMN's
``hierarchical`` communicator): ranks sharing a node move data over shared
memory, and the node's *leader* carries one aggregated message per remote
node instead of ``ranks_per_node**2`` rank-pair messages.

For an Alltoallv the protocol is:

1. **intra-node gather** — every rank hands its off-node payload to its
   node leader (shared-memory copy);
2. **inter-node exchange** — each leader sends one aggregated message per
   remote node, carrying all rank-pair payloads between the two nodes,
   with the per-rank-pair sub-counts re-encoded as ``uint32`` headers;
3. **intra-node scatter** — the receiving leader splits the aggregate and
   delivers each piece to its destination rank (shared-memory copy).

Rooted and reduction collectives follow the same shape: reduce/gather to
the leader inside the node, run the collective among leaders only, fan the
result back out.

Payload movement in the simulator is untouched — the rendezvous and its
``execute`` closure run exactly as under ``flat``, so partitions and the
:meth:`~repro.simmpi.metrics.CommStats.signature` record stay
bit-identical.  What this class computes is the *metering*: a
sum-preserving intra/inter classification of each rank's metered bytes,
plus the separate ``wire_intra``/``wire_inter`` model of what the
two-level protocol itself would put on each wire.  The tiered machine
models (:class:`repro.simmpi.timing.TieredMachineModel`) price the wire
model per tier; the classification feeds the volume breakdowns.

Per-op rules (``b`` = the rank's metered ``bytes_sent``):

* **destination-addressed** (``alltoall``, ``alltoallv``, ``scatter``,
  ``scatterv``): ``intra``/``inter`` split ``b`` by the destination's
  node.  Wire: the intra bytes move once locally; a non-leader's inter
  bytes pay an extra local gather hop to the leader; off-node bytes whose
  destination is not its node's leader pay the remote scatter hop; count
  headers (the ``Alltoall`` a payload exchange is prefixed with) cross
  the network re-encoded at 4 bytes per off-node entry.
* **reductions** (``allreduce``, ``reduce``, ``exscan``, ``barrier``):
  non-leaders reduce onto their leader (intra); only leaders enter the
  inter-node phase, so a node injects one contribution instead of
  ``node_size`` — the classic hierarchical-allreduce saving.
* **concatenations** (``allgather``, ``allgatherv``): every rank's
  contribution must reach every node, so ``b`` is inter on multi-node
  topologies; non-leaders pay the local gather hop and leaders the local
  fan-out hop.
* **rooted one-to-all / all-to-one** (``bcast``, ``gather``, ``gatherv``):
  classified by whether the payload crosses the root's node boundary.
* **``checkpoint``**: always inter — snapshot payloads leave the node for
  stable storage regardless of topology (documented exception to the
  node-locality rules).
* anything else (unknown/third-party ops): conservatively all-inter.

Latency hops per round: pairwise ops cost ``n_nodes - 1`` inter hops plus
``3 * (max_node_size - 1)`` intra hops (gather, local exchange, scatter);
tree ops cost ``ceil(log2 n_nodes)`` inter plus ``2 * ceil(log2
max_node_size)`` intra (reduce up, broadcast down).  A single-node
topology degenerates to all-intra; one-rank nodes degenerate to ``flat``.
"""

from __future__ import annotations

from math import ceil, log2
from typing import Optional, Tuple

import numpy as np

from repro.simmpi.topology.registry import Communicator, register_communicator

#: Ops whose payload is addressed to explicit destination ranks.
_DEST_OPS = frozenset({"alltoall", "alltoallv", "scatter", "scatterv"})
#: Ops reduced to a single value (leaders-only inter phase).
_REDUCE_OPS = frozenset({"allreduce", "reduce", "exscan", "barrier"})
#: Ops concatenating every rank's contribution onto every rank.
_CONCAT_OPS = frozenset({"allgather", "allgatherv"})
_GATHER_OPS = frozenset({"gather", "gatherv"})
#: Pairwise exchange patterns (latency scales with participant count).
_PAIRWISE_OPS = frozenset({"alltoall", "alltoallv"})

#: Wire bytes per count-header entry after uint32 re-encoding.  Ghost
#: exchange counts are int64 rank-side, but no aggregated node-pair
#: message carries anywhere near 2**32 records, so the two-level protocol
#: ships the sub-counts narrowed — half the header traffic.
COUNT_WIRE_BYTES = 4


class HierarchicalCommunicator(Communicator):
    """Node-aware two-level metering strategy."""

    name = "hierarchical"
    tiered = True

    def __init__(self, topology) -> None:
        super().__init__(topology)
        self._leader_mask = np.zeros(topology.nprocs, dtype=bool)
        self._leader_mask[::topology.ranks_per_node] = True

    def tier_contribution(
        self,
        op: str,
        rank: int,
        nbytes: int,
        dest_bytes: Optional[np.ndarray] = None,
        root: Optional[int] = None,
        counts: bool = False,
    ) -> Tuple[int, int, int, int]:
        topo = self.topology
        b = int(nbytes)
        multi = topo.multi_node
        leader = topo.is_leader(rank)
        my_node = topo.node_of(rank)

        if op in _DEST_OPS and dest_bytes is not None:
            dest = np.asarray(dest_bytes, dtype=np.int64)
            node_map = self.node_map
            same = node_map == my_node
            same[rank] = False  # self slot carries no metered bytes
            off = ~same
            off[rank] = False
            intra = int(dest[same].sum())
            inter = int(dest[off].sum())
            # wire model: local delivery + gather-to-leader for a
            # non-leader's outbound inter bytes + remote scatter for
            # off-node bytes not addressed to the remote leader
            gather_leg = 0 if leader else inter
            scatter_leg = int(dest[off & ~self._leader_mask].sum())
            wire_intra = intra + gather_leg + scatter_leg
            if counts:
                wire_inter = COUNT_WIRE_BYTES * int(np.count_nonzero(off))
            else:
                wire_inter = inter
            return intra, inter, wire_intra, wire_inter

        if op in _REDUCE_OPS:
            if not multi:
                return b, 0, b, 0
            if leader:
                # leader injects the node's reduced value inter-node and
                # fans the result back down if the node has peers
                fanout = b if topo.node_size(my_node) > 1 else 0
                return 0, b, fanout, b
            return b, 0, b, 0

        if op in _CONCAT_OPS:
            if not multi:
                return b, 0, b, 0
            # the contribution must reach every node: inter by nature;
            # non-leaders also pay the local gather, leaders the fan-out
            local_leg = b if (not leader or topo.node_size(my_node) > 1) else 0
            return 0, b, local_leg, b

        if op == "bcast":
            if root is None or rank != root or b == 0:
                return 0, 0, 0, 0
            if not multi:
                return b, 0, b, 0
            fanout = b if topo.node_size(my_node) > 1 else 0
            return 0, b, fanout, b

        if op in _GATHER_OPS:
            if root is None or b == 0:
                return 0, 0, 0, 0
            if topo.same_node(rank, root):
                return b, 0, b, 0
            gather_leg = 0 if leader else b
            return 0, b, gather_leg, b

        if op == "checkpoint":
            # snapshots leave the node for stable storage regardless of
            # topology; non-leaders stage through the leader's writer
            gather_leg = 0 if (leader or not multi) else b
            return 0, b, gather_leg, b

        # unknown op: conservatively treat every metered byte as inter
        return (0, b, 0, b) if multi else (b, 0, b, 0)

    def hops(self, op: str) -> Tuple[int, int]:
        topo = self.topology
        n_nodes = topo.n_nodes
        width = topo.max_node_size
        if op in _PAIRWISE_OPS:
            intra = 3 * (width - 1)
            inter = n_nodes - 1
            if n_nodes == 1:
                intra = width - 1  # no gather/scatter legs, plain local
        else:
            intra = 2 * (ceil(log2(width)) if width > 1 else 0)
            inter = ceil(log2(n_nodes)) if n_nodes > 1 else 0
            if n_nodes == 1:
                intra = ceil(log2(width)) if width > 1 else 0
        return intra, inter


register_communicator(HierarchicalCommunicator.name, HierarchicalCommunicator)
