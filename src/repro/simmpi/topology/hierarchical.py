"""Two-level (node-aware) communicator strategy.

Models the hierarchical exchange every scalable distributed partitioner
implements (dKaMinPar's node-aggregated message queues, ChainerMN's
``hierarchical`` communicator): ranks sharing a node move data over shared
memory, and the node's *leader* carries one aggregated message per remote
node instead of ``ranks_per_node**2`` rank-pair messages.

For an Alltoallv the protocol is:

1. **intra-node gather** — every rank hands its off-node payload to its
   node leader (shared-memory copy);
2. **inter-node exchange** — each leader sends one aggregated message per
   remote node, carrying all rank-pair payloads between the two nodes,
   with the per-rank-pair sub-counts re-encoded as ``uint32`` headers;
3. **intra-node scatter** — the receiving leader splits the aggregate and
   delivers each piece to its destination rank (shared-memory copy).

Rooted and reduction collectives follow the same shape: reduce/gather to
the leader inside the node, run the collective among leaders only, fan the
result back out.

Payload movement in the simulator is untouched — the rendezvous and its
``execute`` closure run exactly as under ``flat``, so partitions and the
:meth:`~repro.simmpi.metrics.CommStats.signature` record stay
bit-identical.  What this class computes is the *metering*: a
sum-preserving intra/inter classification of each rank's metered bytes,
plus the separate ``wire_intra``/``wire_inter`` model of what the
two-level protocol itself would put on each wire.  The tiered machine
models (:class:`repro.simmpi.timing.TieredMachineModel`) price the wire
model per tier; the classification feeds the volume breakdowns.

Per-op rules (``b`` = the rank's metered ``bytes_sent``):

* **destination-addressed** (``alltoall``, ``alltoallv``, ``scatter``,
  ``scatterv``): ``intra``/``inter`` split ``b`` by the destination's
  node.  Wire: the intra bytes move once locally; a non-leader's inter
  bytes pay an extra local gather hop to the leader; off-node bytes whose
  destination is not its node's leader pay the remote scatter hop; count
  headers (the ``Alltoall`` a payload exchange is prefixed with) cross
  the network re-encoded at 4 bytes per off-node entry.
* **reductions** (``allreduce``, ``reduce``, ``exscan``, ``barrier``):
  non-leaders reduce onto their leader (intra); only leaders enter the
  inter-node phase, so a node injects one contribution instead of
  ``node_size`` — the classic hierarchical-allreduce saving.
* **concatenations** (``allgather``, ``allgatherv``): every rank's
  contribution must reach every node, so ``b`` is inter on multi-node
  topologies; non-leaders pay the local gather hop and leaders the local
  fan-out hop.
* **rooted one-to-all / all-to-one** (``bcast``, ``gather``, ``gatherv``):
  classified by whether the payload crosses the root's node boundary.
* **``checkpoint``**: always inter — snapshot payloads leave the node for
  stable storage regardless of topology (documented exception to the
  node-locality rules).
* anything else (unknown/third-party ops): conservatively all-inter.

Latency hops per round: pairwise ops cost ``n_nodes - 1`` inter hops plus
``3 * (max_node_size - 1)`` intra hops (gather, local exchange, scatter);
tree ops cost ``ceil(log2 n_nodes)`` inter plus ``2 * ceil(log2
max_node_size)`` intra (reduce up, broadcast down).  A single-node
topology degenerates to all-intra; one-rank nodes degenerate to ``flat``.

Rack topologies (``hierarchical:RxK``) add a third tier: payload is
classified ``intra`` (same node) / ``inter`` (off-node, same rack) /
``xrack`` (off-rack), still summing to the rank's metered bytes, and the
wire model grows a ``wire_xrack`` leg — cross-rack traffic is
*rack-leader* injected (the lowest rank of a rack aggregates its nodes'
off-rack messages), so the rack tier's bandwidth bound is the busiest
rack's uplink.  Latency adds ``n_racks - 1`` (pairwise) or ``ceil(log2
n_racks)`` (tree) cross-rack hops while the inter hop count narrows to
the within-rack node count.  Without racks every formula reduces to the
two-tier form above, bit-identically.

All locality classes are computed as **contiguous slice sums** (ranks are
packed node-major, nodes rack-major), so a deposit costs O(1) NumPy
reductions instead of the per-rank boolean masks an explicit node-map
comparison would allocate.
"""

from __future__ import annotations

from math import ceil, log2
from typing import Optional, Tuple

import numpy as np

from repro.simmpi.topology.registry import Communicator, register_communicator

#: Ops whose payload is addressed to explicit destination ranks.
_DEST_OPS = frozenset({"alltoall", "alltoallv", "scatter", "scatterv"})
#: Ops reduced to a single value (leaders-only inter phase).
_REDUCE_OPS = frozenset({"allreduce", "reduce", "exscan", "barrier"})
#: Ops concatenating every rank's contribution onto every rank.
_CONCAT_OPS = frozenset({"allgather", "allgatherv"})
_GATHER_OPS = frozenset({"gather", "gatherv"})
#: Pairwise exchange patterns (latency scales with participant count).
_PAIRWISE_OPS = frozenset({"alltoall", "alltoallv"})

#: Wire bytes per count-header entry after uint32 re-encoding.  Ghost
#: exchange counts are int64 rank-side, but no aggregated node-pair
#: message carries anywhere near 2**32 records, so the two-level protocol
#: ships the sub-counts narrowed — half the header traffic.
COUNT_WIRE_BYTES = 4


class HierarchicalCommunicator(Communicator):
    """Node-aware two-level metering strategy."""

    name = "hierarchical"
    tiered = True

    def __init__(self, topology) -> None:
        super().__init__(topology)
        #: Shared rank -> rack map (None without a rack tier), reused by
        #: every event's TierMetering like :attr:`node_map`.
        self.rack_map = (topology.rack_of_ranks()
                         if topology.has_racks else None)

    def tier_contribution(
        self,
        op: str,
        rank: int,
        nbytes: int,
        dest_bytes: Optional[np.ndarray] = None,
        root: Optional[int] = None,
        counts: bool = False,
    ) -> Tuple[int, ...]:
        """Rack-less topologies return the historical 4-tuple ``(intra,
        inter, wire_intra, wire_inter)``; rack topologies return a 6-tuple
        with ``xrack`` and ``wire_xrack`` appended after each pair:
        ``(intra, inter, xrack, wire_intra, wire_inter, wire_xrack)``.
        Conservation holds per width: the classification entries sum to
        ``nbytes`` either way."""
        topo = self.topology
        racked = topo.has_racks
        b = int(nbytes)
        multi = topo.multi_node
        multi_rack = topo.multi_rack
        leader = topo.is_leader(rank)
        my_node = topo.node_of(rank)

        def out(intra, inter, wire_intra, wire_inter, xrack=0, wire_xrack=0):
            if racked:
                return intra, inter, xrack, wire_intra, wire_inter, wire_xrack
            return intra, inter, wire_intra, wire_inter

        if op in _DEST_OPS and dest_bytes is not None:
            # contiguous packing (ranks node-major, nodes rack-major) turns
            # every locality class into a slice sum — no O(P) boolean masks
            dest = np.asarray(dest_bytes, dtype=np.int64)
            node_lo = topo.leader_of(rank)
            node_hi = node_lo + topo.node_size(my_node)
            total = int(dest.sum())
            intra = int(dest[node_lo:node_hi].sum())  # self slot is zero
            off_node = total - intra
            # wire model: local delivery + gather-to-leader for a
            # non-leader's outbound off-node bytes + remote scatter for
            # off-node bytes not addressed to the remote leader
            gather_leg = 0 if leader else off_node
            leaders_total = int(dest[::topo.ranks_per_node].sum())
            scatter_leg = off_node - (leaders_total - int(dest[node_lo]))
            wire_intra = intra + gather_leg + scatter_leg
            if multi_rack:
                rack_lo, rack_hi = topo.rack_span(topo.rack_of(rank))
                in_rack = int(dest[rack_lo:rack_hi].sum())
                inter = in_rack - intra
                xrack = total - in_rack
            else:
                inter, xrack = off_node, 0
            if counts:
                nnz_total = int(np.count_nonzero(dest))
                nnz_node = int(np.count_nonzero(dest[node_lo:node_hi]))
                if multi_rack:
                    nnz_rack = int(np.count_nonzero(dest[rack_lo:rack_hi]))
                    wire_inter = COUNT_WIRE_BYTES * (nnz_rack - nnz_node)
                    wire_xrack = COUNT_WIRE_BYTES * (nnz_total - nnz_rack)
                else:
                    wire_inter = COUNT_WIRE_BYTES * (nnz_total - nnz_node)
                    wire_xrack = 0
            else:
                wire_inter, wire_xrack = inter, xrack
            return out(intra, inter, wire_intra, wire_inter, xrack, wire_xrack)

        if op in _REDUCE_OPS:
            if not multi:
                return out(b, 0, b, 0)
            if not leader:
                return out(b, 0, b, 0)
            # leader injects the node's reduced value upward and fans the
            # result back down if the node has peers
            fanout = b if topo.node_size(my_node) > 1 else 0
            if multi_rack and topo.is_rack_leader(rank):
                # rack leader carries the rack's value across racks and
                # redistributes the global result to its peer node leaders
                rack_lo, rack_hi = topo.rack_span(topo.rack_of(rank))
                rack_nodes = -(-(rack_hi - rack_lo) // topo.ranks_per_node)
                rack_fanout = b if rack_nodes > 1 else 0
                return out(0, 0, fanout, rack_fanout, b, b)
            return out(0, b, fanout, b)

        if op in _CONCAT_OPS:
            if not multi:
                return out(b, 0, b, 0)
            # the contribution must reach every node: inter by nature;
            # non-leaders also pay the local gather, leaders the fan-out
            local_leg = b if (not leader or topo.node_size(my_node) > 1) else 0
            if multi_rack:
                return out(0, 0, local_leg, b, b, b)
            return out(0, b, local_leg, b)

        if op == "bcast":
            if root is None or rank != root or b == 0:
                return out(0, 0, 0, 0)
            if not multi:
                return out(b, 0, b, 0)
            fanout = b if topo.node_size(my_node) > 1 else 0
            if multi_rack:
                return out(0, 0, fanout, b, b, b)
            return out(0, b, fanout, b)

        if op in _GATHER_OPS:
            if root is None or b == 0:
                return out(0, 0, 0, 0)
            if topo.same_node(rank, root):
                return out(b, 0, b, 0)
            gather_leg = 0 if leader else b
            if multi_rack and not topo.same_rack(rank, root):
                return out(0, 0, gather_leg, b, b, b)
            return out(0, b, gather_leg, b)

        if op == "checkpoint":
            # snapshots leave the node for stable storage regardless of
            # topology (documented exception: never charged to the rack
            # tier); non-leaders stage through the leader's writer
            gather_leg = 0 if (leader or not multi) else b
            return out(0, b, gather_leg, b)

        # unknown op: conservatively charge every metered byte to the
        # widest tier the topology has
        if not multi:
            return out(b, 0, b, 0)
        if multi_rack:
            return out(0, 0, 0, 0, b, b)
        return out(0, b, 0, b)

    def hops(self, op: str) -> Tuple[int, ...]:
        """``(intra, inter)`` latency hops, with a third cross-rack entry
        appended on rack topologies (legacy values preserved otherwise:
        on a rack topology the inter entry narrows to the within-rack
        node count)."""
        topo = self.topology
        n_nodes = topo.n_nodes
        width = topo.max_node_size
        racked = topo.has_racks
        peers = topo.max_nodes_per_rack if racked else n_nodes
        n_racks = topo.n_racks
        if op in _PAIRWISE_OPS:
            intra = 3 * (width - 1)
            inter = peers - 1
            xrack = n_racks - 1
            if n_nodes == 1:
                intra = width - 1  # no gather/scatter legs, plain local
        else:
            intra = 2 * (ceil(log2(width)) if width > 1 else 0)
            inter = ceil(log2(peers)) if peers > 1 else 0
            xrack = ceil(log2(n_racks)) if n_racks > 1 else 0
            if n_nodes == 1:
                intra = ceil(log2(width)) if width > 1 else 0
        if racked:
            return intra, inter, xrack
        return intra, inter


register_communicator(HierarchicalCommunicator.name, HierarchicalCommunicator)
