"""ChainerMN-style communicator registry for topology-aware metering.

A *communicator strategy* decides how the simulator's collectives map onto
a machine topology: which bytes stay inside a node, which cross the
network, and what the two-level exchange protocol would actually put on
each wire.  Strategies are registered by name and instantiated through
:func:`create_communicator`, mirroring ChainerMN's
``create_communicator("hierarchical", ...)`` factory (and the backend
registry in :mod:`repro.simmpi.backends`)::

    comm = create_communicator("hierarchical:8", nprocs=64)
    rt = create_runtime("threads", nprocs=64, comm=comm)

Shipped strategies:

=============  ==========================  =====================================
name           topology                    metering
=============  ==========================  =====================================
flat           one rank = one node         single tier (today's behavior)
naive          alias of ``flat``           single tier
hierarchical   ranks grouped into nodes    two-level: intra/inter split + wire
=============  ==========================  =====================================

The strategy never touches payload movement: every collective still runs as
one rendezvous with the exact same ``execute`` closure, so results and the
:meth:`~repro.simmpi.metrics.CommStats.signature` record are bit-identical
across strategies.  What changes is *supplementary* metering — the
:class:`~repro.simmpi.metrics.TierMetering` attached to each event — which
the tiered machine models price per tier.

The default strategy (used when ``comm=None``) is ``flat``, overridable
with the ``REPRO_COMM`` environment variable — the same pattern as
``REPRO_BACKEND``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple, Type, Union

import numpy as np

from repro.simmpi.topology.model import Topology, make_topology, parse_comm_spec

#: Environment variable consulted when ``create_communicator(None, ...)``.
COMM_ENV_VAR = "REPRO_COMM"

#: Fallback when neither the caller nor the environment picks a strategy.
DEFAULT_COMM = "flat"

_REGISTRY: Dict[str, Type["Communicator"]] = {}


class Communicator:
    """Base communicator strategy.

    Subclasses set :attr:`name` and :attr:`tiered`; tiered strategies
    implement :meth:`tier_contribution` (rank-side, called at every
    collective deposit) and :meth:`hops` (per-op latency structure).
    """

    #: Registry name of the strategy (set by each subclass).
    name: str = "abstract"
    #: Whether this strategy produces per-tier metering.  Non-tiered
    #: strategies are zero-overhead: SimComm skips the tier computation
    #: entirely and events carry ``tiers=None``.
    tiered: bool = False

    #: Shared rank -> rack map, or None without a rack tier (tiered
    #: subclasses over rack topologies set an instance attribute).
    rack_map = None

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        #: Shared rank -> node map, reused by every event's TierMetering.
        self.node_map = topology.node_of_ranks()

    def tier_contribution(
        self,
        op: str,
        rank: int,
        nbytes: int,
        dest_bytes: Optional[np.ndarray] = None,
        root: Optional[int] = None,
        counts: bool = False,
    ) -> Optional[Tuple[int, ...]]:
        """This rank's ``(intra, inter, wire_intra, wire_inter)`` bytes for
        one collective deposit, or None for single-tier metering.

        ``intra + inter == nbytes`` always (a sum-preserving classification
        of the metered payload); the ``wire_*`` pair is the separate
        two-level protocol model and need not sum to ``nbytes``.
        ``dest_bytes`` gives per-destination payload for destination-
        addressed ops (self entry zero), ``root`` the root of rooted ops,
        and ``counts`` flags an Alltoallv-internal count-header exchange.

        Strategies over rack topologies return the widened 6-tuple
        ``(intra, inter, xrack, wire_intra, wire_inter, wire_xrack)``
        instead (conservation becomes ``intra + inter + xrack == nbytes``);
        the width must be uniform across ranks and ops of a run.
        """
        return None

    def hops(self, op: str) -> Tuple[int, ...]:
        """``(intra_hops, inter_hops)`` latency hops of one ``op`` round
        (plus a third cross-rack entry on rack topologies)."""
        return (0, 0)

    def describe(self) -> str:
        return f"{self.name}: {self.topology.describe()}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.topology!r})"


class FlatCommunicator(Communicator):
    """Today's single-tier behavior: one rank = one node, every off-rank
    byte crosses the network at one modeled cost.  Default strategy."""

    name = "flat"
    tiered = False


def register_communicator(name: str, cls: Type[Communicator]) -> None:
    """Register a communicator strategy class under ``name``."""
    if not issubclass(cls, Communicator):
        raise TypeError(f"{cls!r} is not a Communicator subclass")
    _REGISTRY[name] = cls


def available_communicators() -> List[str]:
    """Names accepted by :func:`create_communicator`, sorted."""
    return sorted(_REGISTRY)


def default_comm() -> str:
    """The spec used when no strategy is requested explicitly."""
    return os.environ.get(COMM_ENV_VAR) or DEFAULT_COMM


def create_communicator(
    comm: Union[str, None, Communicator] = None,
    *,
    nprocs: int,
    ranks_per_node: Optional[int] = None,
    nodes_per_rack: Optional[int] = None,
) -> Communicator:
    """Create a communicator strategy from a spec (ChainerMN-style factory).

    Parameters
    ----------
    comm:
        Spec string (``"flat"``, ``"hierarchical"``, ``"hierarchical:16"``,
        ``"hierarchical:8x4"``, ...), an already-constructed
        :class:`Communicator` (passed through after a rank-count check), or
        None to use ``$REPRO_COMM`` falling back to ``"flat"``.
    nprocs:
        Number of simulated MPI ranks the strategy will meter.
    ranks_per_node, nodes_per_rack:
        Topology overrides; a ``:RxK`` suffix in the spec wins over these.
    """
    if isinstance(comm, Communicator):
        if comm.topology.nprocs != nprocs:
            raise ValueError(
                f"communicator instance is for "
                f"{comm.topology.nprocs} ranks, requested {nprocs}"
            )
        return comm
    spec = comm if comm is not None else default_comm()
    try:
        name, rpn, npr = parse_comm_spec(spec)
    except ValueError:
        if not isinstance(spec, str):
            raise
        name, rpn, npr = spec, None, None
    try:
        cls = _REGISTRY[name]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown communicator strategy {spec!r}; "
            f"valid choices: {available_communicators()}"
        ) from None
    topo = make_topology(
        nprocs,
        rpn if rpn is not None else ranks_per_node,
        npr if npr is not None else nodes_per_rack,
    )
    return cls(topo)


register_communicator(FlatCommunicator.name, FlatCommunicator)
# ChainerMN calls its baseline "naive"; accept that name as an alias.
register_communicator("naive", FlatCommunicator)
