"""Machine topology model: simulated ranks grouped into nodes (and racks).

The paper's runs place one MPI task per Blue Waters node, so the flat
simulator historically equated *rank* with *node* — every pair of ranks
communicated at one modeled cost.  Real machines are hierarchical: ranks
that share a node exchange data through shared memory at a fraction of the
network's latency and many times its bandwidth, and modern distributed
partitioners (dKaMinPar, Tera-Scale Multilevel) lean on node-aware message
aggregation to reach their scaling regime.

:class:`Topology` captures that structure for the simulator: ``nprocs``
simulated ranks packed into nodes of ``ranks_per_node`` (the last node may
be short), optionally grouped further into racks of ``nodes_per_rack``
nodes.  Rank 0 of each node is its *leader* — the rank that injects the
node's aggregated traffic into the inter-node network under the two-level
exchange protocol (see :mod:`repro.simmpi.topology.hierarchical`).

A topology-aware communicator is requested with a compact spec string
(``PulpParams.comm`` / ``--comm`` / ``$REPRO_COMM``)::

    flat                    today's single-tier behavior (default)
    naive                   alias of flat
    hierarchical            two-level, 8 ranks/node
    hierarchical:16         two-level, 16 ranks/node
    hierarchical:8x4        two-level, 8 ranks/node, 4 nodes/rack

:func:`parse_comm_spec` validates the grammar without needing a rank
count; :func:`make_topology` instantiates the concrete grouping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

#: Default node width when a hierarchical spec names none (the paper's
#: XE6 nodes run 16 integer cores; 8 is the common dual-socket MPI split).
DEFAULT_RANKS_PER_NODE = 8


def parse_comm_spec(spec: str) -> Tuple[str, Optional[int], Optional[int]]:
    """Split a communicator spec into ``(name, ranks_per_node, nodes_per_rack)``.

    Only the grammar is checked here (``name[:R[xK]]`` with positive
    integer ``R``/``K``); whether ``name`` is registered is the registry's
    concern, so specs can be validated by :class:`~repro.core.params.PulpParams`
    without importing the strategy implementations.
    """
    if not isinstance(spec, str) or not spec:
        raise ValueError(f"communicator spec must be a non-empty string, got {spec!r}")
    name, sep, rest = spec.partition(":")
    if not name:
        raise ValueError(f"communicator spec {spec!r} has an empty name")
    if not sep:
        return name, None, None
    rpn_s, xsep, npr_s = rest.partition("x")
    if not rest or (xsep and not npr_s):
        raise ValueError(
            f"malformed communicator spec {spec!r}; expected NAME[:R[xK]] "
            f"with integer R ranks/node and K nodes/rack"
        )
    # int() tolerates surrounding whitespace and sign characters; the
    # grammar does not ("8 x 4" is a typo, not a spec)
    if not rpn_s.isdigit() or (npr_s and not npr_s.isdigit()):
        raise ValueError(
            f"malformed communicator spec {spec!r}; expected NAME[:R[xK]] "
            f"with integer R ranks/node and K nodes/rack"
        )
    rpn = int(rpn_s)
    npr = int(npr_s) if npr_s else None
    if rpn < 1 or (npr is not None and npr < 1):
        raise ValueError(f"communicator spec {spec!r}: R and K must be >= 1")
    return name, rpn, npr


@dataclass(frozen=True)
class Topology:
    """Ranks packed into nodes of ``ranks_per_node`` (last node may be
    short), nodes optionally packed into racks of ``nodes_per_rack``.

    ``nodes_per_rack=0`` means no rack tier (one flat sea of nodes).
    """

    nprocs: int
    ranks_per_node: int
    nodes_per_rack: int = 0

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {self.nprocs}")
        if self.ranks_per_node < 1:
            raise ValueError(
                f"ranks_per_node must be >= 1, got {self.ranks_per_node}"
            )
        if self.nodes_per_rack < 0:
            raise ValueError(
                f"nodes_per_rack must be >= 0, got {self.nodes_per_rack}"
            )

    # -- node tier ---------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return -(-self.nprocs // self.ranks_per_node)

    @property
    def multi_node(self) -> bool:
        return self.n_nodes > 1

    @property
    def max_node_size(self) -> int:
        """Ranks on the fullest node (the intra-tier fan-in bound)."""
        return min(self.ranks_per_node, self.nprocs)

    def node_of(self, rank: int) -> int:
        return rank // self.ranks_per_node

    def node_of_ranks(self) -> np.ndarray:
        """``(nprocs,)`` int32 map rank -> node id."""
        return (np.arange(self.nprocs, dtype=np.int32)
                // np.int32(self.ranks_per_node))

    def node_size(self, node: int) -> int:
        lo = node * self.ranks_per_node
        if not 0 <= lo < self.nprocs:
            raise ValueError(f"no node {node} in {self}")
        return min(self.ranks_per_node, self.nprocs - lo)

    def leader_of(self, rank: int) -> int:
        """The node leader: lowest rank of ``rank``'s node."""
        return (rank // self.ranks_per_node) * self.ranks_per_node

    def is_leader(self, rank: int) -> bool:
        return rank % self.ranks_per_node == 0

    # -- rack tier ---------------------------------------------------------

    @property
    def has_racks(self) -> bool:
        return self.nodes_per_rack > 0

    @property
    def n_racks(self) -> int:
        if not self.has_racks:
            return 1
        return -(-self.n_nodes // self.nodes_per_rack)

    @property
    def multi_rack(self) -> bool:
        return self.has_racks and self.n_racks > 1

    @property
    def ranks_per_rack(self) -> int:
        """Rank stride of one rack (full racks; the last may be short)."""
        if not self.has_racks:
            return self.nprocs
        return self.ranks_per_node * self.nodes_per_rack

    @property
    def max_nodes_per_rack(self) -> int:
        """Nodes in the fullest rack (the rack tier's fan-in bound)."""
        if not self.has_racks:
            return self.n_nodes
        return min(self.nodes_per_rack, self.n_nodes)

    def rack_of(self, rank: int) -> int:
        if not self.has_racks:
            return 0
        return self.node_of(rank) // self.nodes_per_rack

    def rack_of_ranks(self) -> np.ndarray:
        """``(nprocs,)`` int32 map rank -> rack id (all zero without racks)."""
        if not self.has_racks:
            return np.zeros(self.nprocs, dtype=np.int32)
        return self.node_of_ranks() // np.int32(self.nodes_per_rack)

    def rack_span(self, rack: int) -> Tuple[int, int]:
        """Contiguous rank range ``[lo, hi)`` of ``rack`` (ranks are packed
        node-major, so a rack is always one slice of the rank axis)."""
        stride = self.ranks_per_rack
        lo = rack * stride
        if not 0 <= lo < self.nprocs:
            raise ValueError(f"no rack {rack} in {self}")
        return lo, min(lo + stride, self.nprocs)

    def rack_leader_of(self, rank: int) -> int:
        """The rack leader: lowest rank of ``rank``'s rack (the rank that
        injects the rack's aggregated cross-rack traffic)."""
        return self.rack_of(rank) * self.ranks_per_rack

    def is_rack_leader(self, rank: int) -> bool:
        return self.has_racks and rank % self.ranks_per_rack == 0

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def same_rack(self, a: int, b: int) -> bool:
        return self.rack_of(a) == self.rack_of(b)

    def describe(self) -> str:
        rack = (f" x {self.nodes_per_rack} nodes/rack ({self.n_racks} racks)"
                if self.has_racks else "")
        return (f"{self.nprocs} ranks = {self.n_nodes} nodes "
                f"x {self.ranks_per_node} ranks/node{rack}")


def make_topology(
    nprocs: int,
    ranks_per_node: Optional[int] = None,
    nodes_per_rack: Optional[int] = None,
) -> Topology:
    """Build a :class:`Topology`, defaulting to 8-wide nodes (clamped so a
    tiny run is still one full node rather than an error)."""
    rpn = ranks_per_node if ranks_per_node is not None else DEFAULT_RANKS_PER_NODE
    return Topology(
        nprocs=nprocs,
        ranks_per_node=min(rpn, max(nprocs, 1)),
        nodes_per_rack=nodes_per_rack or 0,
    )
