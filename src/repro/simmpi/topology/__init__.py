"""Topology-aware communication subsystem for the simulated MPI runtime.

Public surface:

* :class:`~repro.simmpi.topology.model.Topology` /
  :func:`~repro.simmpi.topology.model.make_topology` /
  :func:`~repro.simmpi.topology.model.parse_comm_spec` — the machine model
  (ranks grouped into nodes, optionally racks) and the
  ``name[:ranks_per_node[xnodes_per_rack]]`` spec grammar;
* :func:`~repro.simmpi.topology.registry.create_communicator` and friends —
  the ChainerMN-style strategy registry (``flat`` / ``naive`` /
  ``hierarchical``);
* :class:`~repro.simmpi.topology.hierarchical.HierarchicalCommunicator` —
  the two-level exchange metering strategy.
"""

from repro.simmpi.topology.model import (
    DEFAULT_RANKS_PER_NODE,
    Topology,
    make_topology,
    parse_comm_spec,
)
from repro.simmpi.topology.registry import (
    COMM_ENV_VAR,
    DEFAULT_COMM,
    Communicator,
    FlatCommunicator,
    available_communicators,
    create_communicator,
    default_comm,
    register_communicator,
)
from repro.simmpi.topology.hierarchical import (
    COUNT_WIRE_BYTES,
    HierarchicalCommunicator,
)

__all__ = [
    "Topology",
    "make_topology",
    "parse_comm_spec",
    "DEFAULT_RANKS_PER_NODE",
    "Communicator",
    "FlatCommunicator",
    "HierarchicalCommunicator",
    "create_communicator",
    "register_communicator",
    "available_communicators",
    "default_comm",
    "COMM_ENV_VAR",
    "DEFAULT_COMM",
    "COUNT_WIRE_BYTES",
]
