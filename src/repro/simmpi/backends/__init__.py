"""Pluggable execution backends for the simulated MPI runtime.

Backends are interchangeable implementations of the
:class:`~repro.simmpi.backends.base.Backend` interface (spawn ranks,
rendezvous, collective compute, teardown), selected by name through a
chainermn-style factory::

    rt = create_runtime("procs", nprocs=8)
    out = rt.run(rank_fn)
    rt.close()

Shipped backends:

=========  =======================  =============================  =======================================
name       parallelism              determinism                    recommended use
=========  =======================  =============================  =======================================
serial     none (round-robin)       results *and* schedule         debugging rank code, minimal repros
threads    native threads (GIL)     results                        default; NumPy-heavy kernels
procs      forked processes + shm   results                        pure-Python rank code, strong scaling
=========  =======================  =============================  =======================================

All backends execute identical collective semantics and metering, so a
fixed-seed program yields bit-identical results and
:class:`~repro.simmpi.metrics.CommStats` on every backend.

The default backend (used when ``backend=None``) is ``threads``, overridable
with the ``REPRO_BACKEND`` environment variable — which is how CI runs the
whole backend-tagged test selection once per backend.  Third-party backends
can be added with :func:`register_backend`.

The ``procs`` backend additionally has a selectable **data plane**
(:mod:`repro.simmpi.dataplane`): ``shm`` (default) moves large payloads as
zero-copy shared-memory descriptors, ``pickle`` is the original
copy-through transport kept for verification.  Select it with the
``dataplane`` argument or ``$REPRO_DATAPLANE``; the in-process backends
ignore it (they have no wire to cross).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Type, Union

from repro.simmpi.backends.base import Backend
from repro.simmpi.backends.procs import ProcsBackend
from repro.simmpi.backends.serial import SerialBackend
from repro.simmpi.backends.threads import ThreadsBackend
from repro.simmpi.dataplane import RESULT_SHARING_MODES
from repro.simmpi.topology import Communicator, create_communicator

#: Environment variable consulted when ``create_runtime(backend=None)``.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Fallback when neither the caller nor the environment picks a backend.
DEFAULT_BACKEND = "threads"

_REGISTRY: Dict[str, Type[Backend]] = {}


def register_backend(name: str, cls: Type[Backend]) -> None:
    """Register an execution backend class under ``name``."""
    if not issubclass(cls, Backend):
        raise TypeError(f"{cls!r} is not a Backend subclass")
    _REGISTRY[name] = cls


def available_backends() -> List[str]:
    """Names accepted by :func:`create_runtime`, sorted."""
    return sorted(_REGISTRY)


def default_backend() -> str:
    """The name used when no backend is requested explicitly."""
    return os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND


def create_runtime(
    backend: Union[str, None, Backend] = None,
    *,
    nprocs: int,
    meter_compute: bool = True,
    comm: Union[str, None, Communicator] = None,
    dataplane: Optional[str] = None,
    result_sharing: Optional[str] = None,
    watchdog: Any = None,
    integrity: Optional[str] = None,
) -> Backend:
    """Create an execution backend by name (chainermn-style factory).

    Parameters
    ----------
    backend:
        Registry name (``"serial"``, ``"threads"``, ``"procs"``, ...), an
        already-constructed :class:`Backend` (passed through after a rank
        count check), or None to use ``$REPRO_BACKEND`` falling back to
        ``"threads"``.
    nprocs:
        Number of simulated MPI ranks.
    meter_compute:
        Forwarded to the backend; see :class:`Backend`.
    comm:
        Communicator strategy for topology-aware metering — a spec string
        (``"flat"``, ``"hierarchical:8"``, ...), a
        :class:`~repro.simmpi.topology.Communicator` instance, or None to
        honor ``$REPRO_COMM`` falling back to ``"flat"``.  See
        :mod:`repro.simmpi.topology`.
    dataplane:
        Payload transport for the ``procs`` backend (``"shm"`` zero-copy
        descriptors — the default — or ``"pickle"`` copy-through), or None
        to honor ``$REPRO_DATAPLANE``.  Backends without a data plane
        accept only None (they move no bytes between address spaces).  See
        :mod:`repro.simmpi.dataplane`.
    result_sharing:
        In-process result delivery (``"shared"`` sealed read-only results
        handed to every rank — the default — or ``"copy"`` historical
        per-rank private copies), or None to honor
        ``$REPRO_RESULT_SHARING``.  Applies to the in-process backends
        (serial/threads); the procs backend's results already cross
        process boundaries, so its rank endpoints pin the historical
        copy semantics either way.  See :mod:`repro.simmpi.dataplane`.
    watchdog:
        Liveness deadline — seconds (a number), a
        :class:`~repro.ft.watchdog.WatchdogConfig`, or None to honor
        ``$REPRO_WATCHDOG_TIMEOUT`` (unset/0 means no watchdog: every
        wait is unbounded, the historical behavior).  A configured
        watchdog kills/fails ranks that make no progress for that long
        and surfaces them as
        :class:`~repro.simmpi.errors.HungRankError`.
    integrity:
        Payload integrity mode (``"crc"`` checksums every payload and
        verifies at receive; ``"off"`` skips all checksum work), or None
        to honor ``$REPRO_INTEGRITY`` falling back to ``"off"``.
    """
    from repro.ft.integrity import validate_integrity
    from repro.ft.watchdog import as_watchdog_config

    if result_sharing is not None and result_sharing not in RESULT_SHARING_MODES:
        raise ValueError(
            f"unknown result-sharing mode {result_sharing!r}; "
            f"choices: {RESULT_SHARING_MODES}"
        )
    if integrity is not None:
        integrity = validate_integrity(integrity)
    if isinstance(backend, Backend):
        if backend.nprocs != nprocs:
            raise ValueError(
                f"backend instance has nprocs={backend.nprocs}, "
                f"requested {nprocs}"
            )
        if comm is not None:
            backend.comm_strategy = create_communicator(comm, nprocs=nprocs)
        if result_sharing is not None:
            backend.result_sharing = result_sharing
        if watchdog is not None:
            backend.watchdog = as_watchdog_config(watchdog)
        if integrity is not None:
            backend.integrity = integrity
        return backend
    name = backend if backend is not None else default_backend()
    try:
        cls = _REGISTRY[name]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown execution backend {name!r}; "
            f"valid choices: {available_backends()}"
        ) from None
    kwargs = {"meter_compute": meter_compute}
    if dataplane is not None:
        if not issubclass(cls, ProcsBackend):
            raise ValueError(
                f"backend {name!r} has no data plane; dataplane= applies "
                f"to 'procs' only"
            )
        kwargs["dataplane_name"] = dataplane
    rt = cls(nprocs, **kwargs)
    rt.comm_strategy = create_communicator(comm, nprocs=nprocs)
    if result_sharing is not None:
        rt.result_sharing = result_sharing
    if watchdog is not None:
        rt.watchdog = as_watchdog_config(watchdog)
    if integrity is not None:
        rt.integrity = integrity
    return rt


register_backend(SerialBackend.name, SerialBackend)
register_backend(ThreadsBackend.name, ThreadsBackend)
register_backend(ProcsBackend.name, ProcsBackend)

__all__ = [
    "Backend",
    "SerialBackend",
    "ThreadsBackend",
    "ProcsBackend",
    "create_runtime",
    "register_backend",
    "available_backends",
    "default_backend",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
]
