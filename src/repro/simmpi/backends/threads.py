"""Thread-per-rank execution backend (the historical ``Runtime``).

Each rank runs as a native thread executing the user's rank function with a
:class:`repro.simmpi.comm.SimComm` handle.  All inter-rank interaction goes
through *collectives*, implemented as rendezvous points: every rank deposits
its contribution, the last rank to arrive executes the collective (pure
NumPy, no further synchronization), and all ranks pick up their results.

Because ranks only mutate rank-local state between rendezvous, the results
of a run are deterministic and independent of thread scheduling.  Threads
buy real parallelism for NumPy-heavy rank code (NumPy releases the GIL),
and per-rank compute time is measured with ``time.thread_time`` so a rank
is never charged for time spent blocked.  Pure-Python rank code, however,
serializes on the GIL — use the ``procs`` backend to study that regime.

Misuse that would hang or corrupt a real MPI job is turned into errors:

* ranks calling different collectives at the same superstep →
  :class:`~repro.simmpi.errors.CollectiveMismatchError`;
* a rank returning while others wait in a collective →
  :class:`~repro.simmpi.errors.DeadlockError`;
* an exception in one rank's code releases all other ranks with
  :class:`~repro.simmpi.errors.RemoteRankError` and re-raises the original
  exception from :meth:`ThreadsBackend.run`.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional, Sequence

from repro.simmpi.backends.base import Backend, _Pending
from repro.simmpi.errors import (
    CollectiveMismatchError,
    DeadlockError,
    HungRankError,
    RemoteRankError,
    format_ranks,
)


class ThreadsBackend(Backend):
    """One native thread per rank; collectives are condition-variable
    rendezvous executed by the last arriving rank."""

    name = "threads"

    def __init__(self, nprocs: int, *, meter_compute: bool = True) -> None:
        super().__init__(nprocs, meter_compute=meter_compute)
        self._cond = threading.Condition()
        self._pending: Optional[_Pending] = None
        self._generation = 0
        self._n_finished = 0
        self._failure: Optional[BaseException] = None

    # -- rendezvous engine -------------------------------------------------

    def _fail(self, exc: BaseException) -> None:
        """Record the first failure and wake everyone (cond held)."""
        if self._failure is None:
            self._failure = exc
        self._pending = None
        self._generation += 1
        self._cond.notify_all()

    def _collective_parallel(
        self,
        rank: int,
        op: str,
        tag: str,
        contribution: Any,
        nbytes_sent: int,
        execute: Callable[[List[Any]], List[Any]],
        compute_seconds: float,
        work_units: float,
        tier_bytes: Optional[tuple] = None,
        checksum: Optional[int] = None,
    ) -> Any:
        with self._cond:
            if self._failure is not None:
                raise RemoteRankError(f"rank {rank}: aborted") from self._failure
            if self._n_finished > 0:
                exc = DeadlockError(
                    f"rank {rank} entered collective {op!r} (tag {tag!r}, "
                    f"superstep {self.stats.rounds}) but {self._n_finished} "
                    f"rank(s) already returned"
                )
                self._fail(exc)
                raise exc

            if self._pending is None:
                self._pending = _Pending(self.nprocs, op, tag)
            pending = self._pending
            if pending.op != op:
                exc = CollectiveMismatchError(
                    f"rank {rank} called {op!r} (tag {tag!r}) while "
                    f"{format_ranks(pending.blocked_ranks())} already in "
                    f"{pending.op!r} (tag {pending.tag!r}, "
                    f"superstep {self.stats.rounds})"
                )
                self._fail(exc)
                raise exc

            pending.contribs[rank] = contribution
            pending.nbytes[rank] = nbytes_sent
            pending.compute[rank] = compute_seconds
            pending.work[rank] = work_units
            pending.tiers[rank] = tier_bytes
            pending.arrived += 1
            pending.deposited[rank] = True
            if checksum is not None:
                if pending.checksums is None:
                    pending.checksums = [None] * self.nprocs
                pending.checksums[rank] = checksum
            my_generation = self._generation

            if pending.arrived == self.nprocs:
                try:
                    if pending.checksums is not None:
                        self._verify_checksums(pending)
                    pending.results = execute(pending.contribs)
                except BaseException as exc:  # propagate to all ranks
                    self._fail(exc)
                    raise
                self._record(op, pending.tag, pending.nbytes,
                             pending.compute, pending.work,
                             tiers=self._tier_matrix(pending.tiers))
                self._pending = None
                self._generation += 1
                self._cond.notify_all()
                return pending.results[rank]

            wd = self.watchdog
            if wd is None:
                while (self._generation == my_generation
                       and self._failure is None):
                    self._cond.wait()
            else:
                # Deadline-bounded rendezvous: slice the wait so a stalled
                # peer (e.g. wedged outside any fault hook) surfaces as
                # HungRankError instead of blocking this rank forever.
                slice_s = wd.slice_seconds()
                warn_at = wd.timeout * wd.warn_fraction
                start = time.monotonic()
                extensions = 0
                while (self._generation == my_generation
                       and self._failure is None):
                    if self._cond.wait(timeout=slice_s):
                        continue
                    waited = time.monotonic() - start
                    if waited >= warn_at and extensions < wd.probes:
                        extensions += 1
                        self.stats.deadline_extensions += 1
                    if waited < wd.timeout:
                        continue
                    # blame the ranks that never reached the rendezvous —
                    # this rank deposited and is merely the one noticing
                    stalled = tuple(
                        r for r, d in enumerate(pending.deposited) if not d
                    ) or (rank,)
                    exc = HungRankError(
                        f"{format_ranks(stalled)} made no progress for "
                        f"{waited:.3g}s (deadline {wd.timeout:.3g}s): "
                        f"missing from collective {op!r} (tag {tag!r}, "
                        f"superstep {self.stats.rounds}) with "
                        f"{format_ranks(pending.blocked_ranks())} deposited "
                        f"and waiting",
                        ranks=stalled, phase=tag, detection_seconds=waited,
                    )
                    self._fail(exc)
                    raise exc
            if self._failure is not None:
                raise RemoteRankError(f"rank {rank}: aborted") from self._failure
            assert pending.results is not None
            return pending.results[rank]

    # -- running SPMD programs ----------------------------------------------

    def _run_parallel(
        self,
        fn: Callable[..., Any],
        args: tuple,
        rank_args: Optional[Sequence[Sequence[Any]]],
        kwargs: dict,
    ) -> List[Any]:
        from repro.simmpi.comm import SimComm

        self._n_finished = 0
        self._failure = None
        self._pending = None

        results: List[Any] = [None] * self.nprocs
        errors: List[Optional[BaseException]] = [None] * self.nprocs

        def worker(rank: int) -> None:
            comm = SimComm(self, rank)
            extra = tuple(rank_args[rank]) if rank_args is not None else ()
            try:
                results[rank] = fn(comm, *extra, *args, **kwargs)
            except BaseException as exc:
                errors[rank] = exc
                with self._cond:
                    if not isinstance(exc, (RemoteRankError,)):
                        self._fail(exc)
            finally:
                with self._cond:
                    self._n_finished += 1
                    pending = self._pending
                    if (
                        pending is not None
                        and pending.arrived + self._n_finished >= self.nprocs
                        and pending.arrived < self.nprocs
                        and self._failure is None
                    ):
                        self._fail(
                            DeadlockError(
                                f"{pending.arrived} rank(s) "
                                f"({format_ranks(pending.blocked_ranks())}) "
                                f"stuck in collective {pending.op!r} "
                                f"(tag {pending.tag!r}, superstep "
                                f"{self.stats.rounds}) after other ranks "
                                f"returned"
                            )
                        )

        threads = [
            threading.Thread(target=worker, args=(r,), name=f"simmpi-rank-{r}",
                             daemon=self.watchdog is not None)
            for r in range(self.nprocs)
        ]
        for t in threads:
            t.start()
        if self.watchdog is None:
            for t in threads:
                t.join()
        else:
            for r in self._join_bounded(threads):
                if errors[r] is None:
                    errors[r] = HungRankError(
                        f"rank {r} never returned after the run failed; "
                        f"thread abandoned past the "
                        f"{self.watchdog.timeout:.3g}s deadline",
                        ranks=(r,),
                        detection_seconds=self.watchdog.timeout,
                    )

        self._raise_collected(errors, self._failure)
        return results
