"""Serial execution backend: cooperative round-robin superstep interpreter.

Exactly **one rank executes at any instant**.  Rank 0 runs until it deposits
at its first collective, then hands a baton to rank 1, and so on in strict
round-robin order; the last depositor executes the collective and *keeps
running* with its own result (see below), the baton continuing around the
ring from it.  Scheduling is therefore a pure function of the program —
prints, breakpoints, and profiles are identical run-to-run — which makes
this the backend of choice for debugging rank code and for minimal repro
cases.  There is no lock discipline to reason about: the baton *is* the
schedule, so shared engine state is only ever touched by one runnable rank
at a time.

Ranks are carried by parked worker threads purely so that ordinary blocking
rank functions can be suspended mid-call; the threads never run
concurrently, hence "serial".  At thousands of ranks the engine cost is
dominated by those park/wake cycles, so the baton is engineered down to the
cheapest primitive available:

* each baton is a **raw ``threading.Lock``** held by its parked rank —
  waking a rank is one C-level ``release``, parking is one ``acquire``,
  with no per-wait allocation (a ``threading.Event`` wait builds a fresh
  waiter lock inside its ``Condition`` every call);
* the locks are allocated once per run and reused across every superstep;
* **executor-continue**: the last depositor of a superstep executes the
  collective and simply returns with its result instead of parking and
  being re-woken — one full OS park/wake cycle saved per collective,
  counted in :attr:`~repro.simmpi.metrics.CommStats.saved_switches`.  The
  deposit order still rotates deterministically (the executor of superstep
  ``s`` deposits first at superstep ``s+1``), so the schedule remains a
  pure function of the program.

Error semantics match the other backends: mismatched collectives raise
:class:`~repro.simmpi.errors.CollectiveMismatchError`, abandoned rendezvous
raise :class:`~repro.simmpi.errors.DeadlockError`, and a failing rank
releases the others with :class:`~repro.simmpi.errors.RemoteRankError`.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.simmpi.backends.base import Backend, _Pending
from repro.simmpi.errors import (
    CollectiveMismatchError,
    DeadlockError,
    HungRankError,
    RemoteRankError,
    format_ranks,
)


class SerialBackend(Backend):
    """Deterministic single-runner backend with round-robin scheduling."""

    name = "serial"

    def __init__(self, nprocs: int, *, meter_compute: bool = True) -> None:
        super().__init__(nprocs, meter_compute=meter_compute)
        self._batons: List[threading.Lock] = []
        self._finished: List[bool] = []
        self._in_collective: List[bool] = []
        self._n_finished = 0
        self._pending: Optional[_Pending] = None
        self._failure: Optional[BaseException] = None
        #: Rank most recently handed the baton — the one actually running,
        #: so a deadline-tripped parked rank can blame the true laggard.
        self._baton_holder: Optional[int] = None

    # -- the baton ---------------------------------------------------------

    def _pass_baton(self, from_rank: int) -> None:
        """Hand execution to the next runnable rank after ``from_rank``."""
        for offset in range(1, self.nprocs + 1):
            r = (from_rank + offset) % self.nprocs
            if not self._finished[r] and not self._in_collective[r]:
                self._release_baton(r)
                return
        # No runnable rank left.  If some ranks are still parked inside an
        # unfinished collective, nobody can ever complete it.
        if self._pending is not None and self._failure is None:
            pending = self._pending
            self._fail(DeadlockError(
                f"{pending.arrived} rank(s) "
                f"({format_ranks(pending.blocked_ranks())}) parked in "
                f"collective {pending.op!r} (tag {pending.tag!r}, "
                f"superstep {self.stats.rounds}) with no runnable rank left"
            ))

    def _release_baton(self, rank: int) -> None:
        """Wake ``rank`` (idempotent, like the Event.set it replaced: a
        baton released twice before the owner re-parks must not raise)."""
        self._baton_holder = rank
        try:
            self._batons[rank].release()
        except RuntimeError:
            pass  # already released — the wake is already in flight

    def _wait_baton(self, rank: int) -> None:
        wd = self.watchdog
        if wd is None:
            self._batons[rank].acquire()
            return
        # Deadline-bounded park: slice the acquire so a stalled schedule
        # (e.g. the baton holder wedged outside any fault hook) surfaces as
        # HungRankError after the timeout instead of blocking forever.  The
        # wait spans a full scheduling round by design — see the deadline
        # semantics note in repro.ft.watchdog.
        slice_s = wd.slice_seconds()
        warn_at = wd.timeout * wd.warn_fraction
        start = time.monotonic()
        extensions = 0
        while not self._batons[rank].acquire(timeout=slice_s):
            waited = time.monotonic() - start
            if waited >= warn_at and extensions < wd.probes:
                extensions += 1
                self.stats.deadline_extensions += 1
            if waited < wd.timeout:
                continue
            pending = self._pending
            # blame the rank actually holding the baton — it is the one
            # that stopped advancing; this rank is merely parked behind it
            holder = self._baton_holder
            stalled = (holder,) if holder is not None and holder != rank \
                else (rank,)
            exc = HungRankError(
                f"{format_ranks(stalled)} held the scheduling baton for "
                f"{waited:.3g}s without progress (deadline "
                f"{wd.timeout:.3g}s) at superstep {self.stats.rounds}; "
                f"rank {rank} gave up waiting",
                ranks=stalled,
                phase=pending.tag if pending is not None else "",
                detection_seconds=waited,
            )
            self._fail(exc)
            raise exc

    def _fail(self, exc: BaseException) -> None:
        """Record the first failure and wake every parked rank."""
        if self._failure is None:
            self._failure = exc
        self._pending = None
        for r in range(self.nprocs):
            self._release_baton(r)

    # -- rendezvous engine -------------------------------------------------

    def collective(
        self,
        rank: int,
        op: str,
        tag: str,
        contribution: Any,
        nbytes_sent: int,
        execute: Callable[[List[Any]], List[Any]],
        compute_seconds: float,
        work_units: float = 0.0,
        tier_bytes: Optional[tuple] = None,
    ) -> Any:
        # The base class's dispatch layer (fault check, single-rank
        # short-circuit, delegate to _collective_parallel) is folded into
        # the deposit path: one Python frame per deposit is measurable at
        # thousands of ranks.
        corrupt_spec = self._fault_check(rank, op, tag)
        if self.nprocs == 1:
            results = execute([contribution])
            self._record(op, tag,
                         np.zeros(1, dtype=np.int64),
                         np.array([compute_seconds]),
                         np.array([work_units]))
            return results[0]
        checksum: Optional[int] = None
        if self.integrity == "crc" or corrupt_spec is not None:
            from repro.ft import integrity as _integrity

            if self.integrity == "crc":
                checksum = _integrity.checksum_obj(contribution)
            if corrupt_spec is not None:
                _integrity.corrupt_object(
                    contribution,
                    _integrity.corruption_seed(rank, corrupt_spec.step,
                                               corrupt_spec.attempt),
                )
        if self._failure is not None:
            raise RemoteRankError(f"rank {rank}: aborted") from self._failure
        if self._n_finished > 0:
            exc = DeadlockError(
                f"rank {rank} entered collective {op!r} (tag {tag!r}, "
                f"superstep {self.stats.rounds}) but {self._n_finished} "
                f"rank(s) already returned"
            )
            self._fail(exc)
            raise exc

        if self._pending is None:
            self._pending = _Pending(self.nprocs, op, tag)
        pending = self._pending
        if pending.op != op:
            exc = CollectiveMismatchError(
                f"rank {rank} called {op!r} (tag {tag!r}) while "
                f"{format_ranks(pending.blocked_ranks())} already in "
                f"{pending.op!r} (tag {pending.tag!r}, "
                f"superstep {self.stats.rounds})"
            )
            self._fail(exc)
            raise exc

        pending.contribs[rank] = contribution
        pending.nbytes[rank] = nbytes_sent
        pending.compute[rank] = compute_seconds
        pending.work[rank] = work_units
        pending.tiers[rank] = tier_bytes
        pending.arrived += 1
        pending.deposited[rank] = True
        if checksum is not None:
            if pending.checksums is None:
                pending.checksums = [None] * self.nprocs
            pending.checksums[rank] = checksum
        self._in_collective[rank] = True

        if pending.arrived == self.nprocs:
            try:
                if pending.checksums is not None:
                    self._verify_checksums(pending)
                pending.results = execute(pending.contribs)
            except BaseException as exc:  # propagate to all ranks
                self._fail(exc)
                raise
            self._record(op, pending.tag, pending.nbytes,
                         pending.compute, pending.work,
                         tiers=self._tier_matrix(pending.tiers))
            self._pending = None
            for r in range(self.nprocs):
                self._in_collective[r] = False
            # executor-continue: the last depositor already holds the
            # "baton" (it is the running rank), so it proceeds with its
            # result directly instead of parking and being re-woken —
            # the other ranks resume one by one as it passes the baton
            # at its next deposit (or on return).
            self.stats.saved_switches += 1
            return pending.results[rank]

        self._pass_baton(rank)
        self._wait_baton(rank)
        if self._failure is not None:
            raise RemoteRankError(f"rank {rank}: aborted") from self._failure
        assert pending.results is not None
        return pending.results[rank]

    def _collective_parallel(
        self,
        rank: int,
        op: str,
        tag: str,
        contribution: Any,
        nbytes_sent: int,
        execute: Callable[[List[Any]], List[Any]],
        compute_seconds: float,
        work_units: float,
        tier_bytes: Optional[tuple] = None,
        checksum: Optional[int] = None,
    ) -> Any:
        """Interface-compat shim: the deposit body lives in
        :meth:`collective` (the base dispatch is folded in)."""
        return self.collective(rank, op, tag, contribution, nbytes_sent,
                               execute, compute_seconds, work_units,
                               tier_bytes)

    # -- running SPMD programs ----------------------------------------------

    def _run_parallel(
        self,
        fn: Callable[..., Any],
        args: tuple,
        rank_args: Optional[Sequence[Sequence[Any]]],
        kwargs: dict,
    ) -> List[Any]:
        from repro.simmpi.comm import SimComm

        n = self.nprocs
        # one reusable lock per rank, acquired here so every worker's
        # first _wait_baton parks until the baton reaches it
        self._batons = [threading.Lock() for _ in range(n)]
        for baton in self._batons:
            baton.acquire()
        self._finished = [False] * n
        self._in_collective = [False] * n
        self._n_finished = 0
        self._pending = None
        self._failure = None

        results: List[Any] = [None] * n
        errors: List[Optional[BaseException]] = [None] * n

        def worker(rank: int) -> None:
            self._wait_baton(rank)
            if self._failure is None:
                comm = SimComm(self, rank)
                extra = tuple(rank_args[rank]) if rank_args is not None else ()
                try:
                    results[rank] = fn(comm, *extra, *args, **kwargs)
                except BaseException as exc:
                    errors[rank] = exc
                    if not isinstance(exc, RemoteRankError):
                        self._fail(exc)
            self._finished[rank] = True
            self._in_collective[rank] = False
            self._n_finished += 1
            if self._failure is None:
                pending = self._pending
                if (
                    pending is not None
                    and pending.arrived + self._n_finished >= n
                    and pending.arrived < n
                ):
                    self._fail(DeadlockError(
                        f"{pending.arrived} rank(s) "
                        f"({format_ranks(pending.blocked_ranks())}) stuck "
                        f"in collective {pending.op!r} (tag {pending.tag!r}, "
                        f"superstep {self.stats.rounds}) after other ranks "
                        f"returned"
                    ))
                else:
                    self._pass_baton(rank)

        threads = [
            threading.Thread(target=worker, args=(r,),
                             name=f"simmpi-serial-rank-{r}",
                             daemon=self.watchdog is not None)
            for r in range(n)
        ]
        for t in threads:
            t.start()
        self._release_baton(0)  # rank 0 opens the round-robin
        if self.watchdog is None:
            for t in threads:
                t.join()
        else:
            for r in self._join_bounded(threads):
                if errors[r] is None:
                    errors[r] = HungRankError(
                        f"rank {r} never returned after the run failed; "
                        f"thread abandoned past the "
                        f"{self.watchdog.timeout:.3g}s deadline",
                        ranks=(r,),
                        detection_seconds=self.watchdog.timeout,
                    )

        self._raise_collected(errors, self._failure)
        return results
