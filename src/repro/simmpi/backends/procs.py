"""Process-per-rank execution backend over POSIX shared memory.

Escapes the GIL for pure-Python rank code: each rank is a forked OS process,
and all rendezvous traffic travels through ``multiprocessing.shared_memory``
segments, serialized with pickle protocol 5 so NumPy payloads are written as
raw out-of-band buffers (and read back zero-copy by the computing rank).

Rendezvous is a lockstep **barrier + designated-computer** protocol.  Every
superstep, each rank publishes one action into its own shared-memory request
slot — a collective contribution, a "done" marker once its rank function has
returned, or an "err" marker carrying an exception — and enters a barrier.
Between the two barrier phases rank 0 (the designated computer) reads all
request slots, checks that the actions agree, executes the collective with
its own ``execute`` closure, writes each rank's result into that rank's
response slot, and ships the metering record to the parent.  Mixed
done/collective actions become a
:class:`~repro.simmpi.errors.DeadlockError`, disagreeing collectives a
:class:`~repro.simmpi.errors.CollectiveMismatchError`, and an "err" marker
releases every rank with :class:`~repro.simmpi.errors.RemoteRankError`
while the original exception is re-raised from :meth:`ProcsBackend.run`.

Shared-memory lifecycle: all slots are created by the parent **before**
forking (so every process shares one resource tracker), a slot that outgrows
its segment creates a replacement and immediately unlinks the old one, and
the parent unlinks whatever segment each slot currently names in a
``finally`` — on normal exit *and* when a rank raises — so no segment and no
``resource_tracker`` warning outlives a run.  The parent also supervises the
children: if one dies without reporting (hard crash), it breaks the barrier
so the surviving ranks error out instead of hanging.

Requires the ``fork`` start method (fork is what lets closures and
unpicklable shared arguments reach the ranks), so this backend is
POSIX-only.
"""

from __future__ import annotations

import multiprocessing
import pickle
import struct
import threading
import time
from multiprocessing import shared_memory, sharedctypes
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.simmpi.backends.base import Backend
from repro.simmpi.errors import (
    CollectiveMismatchError,
    DeadlockError,
    RemoteRankError,
)

_HEADER = struct.Struct("<qq")  # (pickle length, number of oob buffers)
_BUFLEN = struct.Struct("<q")
_NAME_CAP = 120  # shm segment names are short ("psm_...")


def _picklable(exc: BaseException) -> BaseException:
    """Return ``exc`` if it round-trips through pickle, else a stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RemoteRankError(f"unpicklable rank exception: {exc!r}")


class _Slot:
    """A growable shared-memory blob.

    The payload lives in a ``SharedMemory`` segment; the segment's *current*
    name is published in a fork-shared ctypes array so any process can
    (re-)attach after the owner replaced the segment with a larger one.
    Writers and readers of one slot are separated by the superstep barriers,
    so the slot itself needs no locking.
    """

    INITIAL = 1 << 16

    def __init__(self) -> None:
        seg = shared_memory.SharedMemory(create=True, size=self.INITIAL)
        self._published = sharedctypes.RawArray("c", _NAME_CAP)
        self._publish(seg.name)
        self._seg: Optional[shared_memory.SharedMemory] = seg

    def _publish(self, name: str) -> None:
        raw = name.encode()
        if len(raw) >= _NAME_CAP:  # pragma: no cover - names are ~14 chars
            raise ValueError(f"shm name too long: {name!r}")
        self._published[: len(raw)] = raw
        self._published[len(raw):] = b"\0" * (_NAME_CAP - len(raw))

    def _segment(self) -> shared_memory.SharedMemory:
        want = self._published.value.decode()
        if self._seg is None or self._seg.name != want:
            self.close()
            self._seg = shared_memory.SharedMemory(name=want)
        return self._seg

    def _ensure(self, nbytes: int) -> shared_memory.SharedMemory:
        seg = self._segment()
        if seg.size >= nbytes:
            return seg
        size = max(seg.size, self.INITIAL)
        while size < nbytes:
            size *= 2
        new = shared_memory.SharedMemory(create=True, size=size)
        self._publish(new.name)
        self._seg = new
        # the grower retires the replaced segment; other processes re-attach
        # by the published name and close their stale mapping lazily
        try:
            seg.close()
        except BufferError:  # pragma: no cover - a view still alive
            pass
        seg.unlink()
        return new

    def write(self, obj: Any) -> None:
        """Serialize ``obj`` into the slot (NumPy buffers out-of-band)."""
        oob: List[pickle.PickleBuffer] = []
        payload = pickle.dumps(obj, protocol=5, buffer_callback=oob.append)
        raws = [b.raw() for b in oob]
        total = (_HEADER.size + _BUFLEN.size * len(raws) + len(payload)
                 + sum(r.nbytes for r in raws))
        buf = self._ensure(total).buf
        off = 0
        _HEADER.pack_into(buf, off, len(payload), len(raws))
        off += _HEADER.size
        for r in raws:
            _BUFLEN.pack_into(buf, off, r.nbytes)
            off += _BUFLEN.size
        buf[off:off + len(payload)] = payload
        off += len(payload)
        for r in raws:
            buf[off:off + r.nbytes] = r
            off += r.nbytes

    def read(self, *, copy: bool) -> Any:
        """Deserialize the slot's payload.

        ``copy=False`` reconstructs NumPy arrays as zero-copy views into the
        segment — only safe for consumers that drop every reference before
        the slot is rewritten (the designated computer).  Rank-facing reads
        use ``copy=True`` so returned arrays own their data.
        """
        buf = self._segment().buf
        payload_len, n_bufs = _HEADER.unpack_from(buf, 0)
        off = _HEADER.size
        lens = []
        for _ in range(n_bufs):
            lens.append(_BUFLEN.unpack_from(buf, off)[0])
            off += _BUFLEN.size
        payload = bytes(buf[off:off + payload_len])
        off += payload_len
        buffers = []
        for n in lens:
            view = buf[off:off + n]
            # bytearray, not bytes: rank-facing copies must be writable
            buffers.append(bytearray(view) if copy else view)
            off += n
        return pickle.loads(payload, buffers=buffers)

    def close(self) -> None:
        """Drop this process's mapping (never destroys the segment)."""
        if self._seg is not None:
            try:
                self._seg.close()
            except BufferError:  # pragma: no cover - exported view alive
                pass
            self._seg = None

    def unlink(self) -> None:
        """Destroy whatever segment the slot currently names (teardown)."""
        try:
            seg = self._segment()
        except FileNotFoundError:
            return
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already retired
            pass
        self.close()


class _Session:
    """Per-run shared state: slots, barrier, failure cell, stats channel."""

    def __init__(self, ctx, nprocs: int) -> None:
        self.nprocs = nprocs
        self.barrier = ctx.Barrier(nprocs)
        self.fail_flag = sharedctypes.RawValue("i", 0)
        self.request = [_Slot() for _ in range(nprocs)]
        self.response = [_Slot() for _ in range(nprocs)]
        self.failure = _Slot()
        self.stats_queue = ctx.SimpleQueue()

    def set_failure(self, exc: BaseException) -> None:
        self.failure.write(_picklable(exc))
        self.fail_flag.value = 1

    def get_failure(self) -> Optional[BaseException]:
        if not self.fail_flag.value:
            return None
        return self.failure.read(copy=True)

    def teardown(self) -> None:
        """Parent-side: destroy every live segment (idempotent)."""
        for slot in (*self.request, *self.response, self.failure):
            slot.unlink()


class _RankEndpoint:
    """Rank-side collective engine; satisfies SimComm's runtime protocol."""

    def __init__(self, session: _Session, rank: int,
                 meter_compute: bool) -> None:
        self._session = session
        self.rank = rank
        self.nprocs = session.nprocs
        self.meter_compute = meter_compute
        self._step = 0

    # SimComm calls this with the same signature as Backend.collective.
    def collective(
        self,
        rank: int,
        op: str,
        tag: str,
        contribution: Any,
        nbytes_sent: int,
        execute: Callable[[List[Any]], List[Any]],
        compute_seconds: float,
        work_units: float = 0.0,
    ) -> Any:
        action = ("coll", op, tag, int(nbytes_sent), float(compute_seconds),
                  float(work_units), contribution)
        kind, value = self._superstep(action, execute)
        assert kind == "result"
        return value

    def drain(self) -> None:
        """Keep answering supersteps with "done" until every rank is done."""
        while True:
            kind, _ = self._superstep(("done", None), None)
            if kind == "all_done":
                return

    def announce_error(self, exc: BaseException) -> None:
        """Publish a rank failure as this rank's next superstep action."""
        try:
            self._superstep(("err", _picklable(exc)), None)
        except RemoteRankError:
            pass  # expected: the superstep we just poisoned aborts

    # -- protocol ----------------------------------------------------------

    def _barrier(self) -> None:
        try:
            self._session.barrier.wait()
        except threading.BrokenBarrierError:
            raise RemoteRankError(
                f"rank {self.rank}: barrier broken (a peer process died)"
            ) from None

    def _superstep(self, action: tuple, execute: Optional[Callable]) -> tuple:
        sess = self._session
        sess.request[self.rank].write(action)
        self._barrier()
        if self.rank == 0:
            try:
                self._compute(execute)
            finally:
                self._barrier()
        else:
            self._barrier()
        self._step += 1
        failure = sess.get_failure()
        if failure is not None:
            raise RemoteRankError(
                f"rank {self.rank}: aborted"
            ) from failure
        return sess.response[self.rank].read(copy=True)

    def _compute(self, execute: Optional[Callable]) -> None:
        """Designated-computer step (rank 0, between the two barriers)."""
        sess = self._session
        if sess.fail_flag.value:
            return  # a previous superstep already failed
        actions = [sess.request[r].read(copy=False)
                   for r in range(self.nprocs)]
        kinds = [a[0] for a in actions]
        if "err" in kinds:
            sess.set_failure(actions[kinds.index("err")][1])
            return
        if all(k == "done" for k in kinds):
            for r in range(self.nprocs):
                sess.response[r].write(("all_done", None))
            return
        if "done" in kinds:
            n_done = kinds.count("done")
            op = next(a[1] for a in actions if a[0] == "coll")
            sess.set_failure(DeadlockError(
                f"{self.nprocs - n_done} rank(s) stuck in collective "
                f"{op!r} after {n_done} rank(s) returned"
            ))
            return
        ops = sorted({a[1] for a in actions})
        if len(ops) != 1:
            sess.set_failure(CollectiveMismatchError(
                f"ranks disagree on the collective for one superstep: {ops}"
            ))
            return
        contribs = [a[6] for a in actions]
        try:
            assert execute is not None  # rank 0 posted "coll" too
            results = execute(contribs)
        except BaseException as exc:
            sess.set_failure(_picklable(exc))
            return
        sess.stats_queue.put((
            self._step,
            actions[0][1],  # op
            actions[0][2],  # tag (SPMD programs tag uniformly)
            np.array([a[3] for a in actions], dtype=np.int64),
            np.array([a[4] for a in actions], dtype=np.float64),
            np.array([a[5] for a in actions], dtype=np.float64),
        ))
        for r, res in enumerate(results):
            sess.response[r].write(("result", res))

    def close(self) -> None:
        for slot in (*self._session.request, *self._session.response,
                     self._session.failure):
            slot.close()


def _rank_process_main(
    session: _Session,
    rank: int,
    meter_compute: bool,
    fn: Callable[..., Any],
    args: tuple,
    rank_args: Optional[Sequence[Sequence[Any]]],
    kwargs: dict,
) -> None:
    from repro.simmpi.comm import SimComm

    endpoint = _RankEndpoint(session, rank, meter_compute)
    try:
        comm = SimComm(endpoint, rank)
        extra = tuple(rank_args[rank]) if rank_args is not None else ()
        try:
            result = fn(comm, *extra, *args, **kwargs)
        except RemoteRankError as exc:
            final = ("exit-err", _picklable(exc))
        except BaseException as exc:
            endpoint.announce_error(exc)
            final = ("exit-err", _picklable(exc))
        else:
            final = ("exit-ok", result)
            try:
                endpoint.drain()
            except RemoteRankError:
                pass  # a peer failed while we drained; keep our result
        try:
            session.request[rank].write(final)
        except Exception:
            session.request[rank].write(
                ("exit-err",
                 RemoteRankError(f"rank {rank}: unserializable outcome"))
            )
    finally:
        endpoint.close()


class ProcsBackend(Backend):
    """One forked process per rank; payloads in POSIX shared memory."""

    name = "procs"

    def __init__(self, nprocs: int, *, meter_compute: bool = True) -> None:
        super().__init__(nprocs, meter_compute=meter_compute)
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ValueError(
                "the 'procs' backend requires the 'fork' start method "
                "(POSIX); use backend='threads' or 'serial' instead"
            )
        self._ctx = multiprocessing.get_context("fork")

    def _run_parallel(
        self,
        fn: Callable[..., Any],
        args: tuple,
        rank_args: Optional[Sequence[Sequence[Any]]],
        kwargs: dict,
    ) -> List[Any]:
        session = _Session(self._ctx, self.nprocs)
        try:
            procs = [
                self._ctx.Process(
                    target=_rank_process_main,
                    args=(session, r, self.meter_compute, fn, args,
                          rank_args, kwargs),
                    daemon=True,
                    name=f"simmpi-proc-{r}",
                )
                for r in range(self.nprocs)
            ]
            for p in procs:
                p.start()
            events = self._supervise(session, procs)
            for p in procs:
                p.join()
            for step, op, tag, nbytes, compute, work in sorted(events):
                self._record(op, tag, nbytes, compute, work)
            return self._collect(session, procs)
        finally:
            session.teardown()

    def _supervise(self, session: _Session, procs: list) -> list:
        """Drain the stats channel while children run; break the barrier if
        a child dies without reporting (so peers error out, not hang)."""
        events = []
        aborted = False
        while True:
            drained = False
            while not session.stats_queue.empty():
                events.append(session.stats_queue.get())
                drained = True
            if not any(p.is_alive() for p in procs):
                break
            if not aborted and any(
                p.exitcode not in (0, None) for p in procs
            ):
                session.barrier.abort()
                aborted = True
            if not drained:
                time.sleep(0.001)
        while not session.stats_queue.empty():
            events.append(session.stats_queue.get())
        return events

    def _collect(self, session: _Session, procs: list) -> List[Any]:
        results: List[Any] = [None] * self.nprocs
        errors: List[Optional[BaseException]] = [None] * self.nprocs
        for r in range(self.nprocs):
            outcome: Any = None
            if procs[r].exitcode == 0:
                try:
                    outcome = session.request[r].read(copy=True)
                except Exception:
                    outcome = None
            if not (isinstance(outcome, tuple) and len(outcome) == 2
                    and outcome[0] in ("exit-ok", "exit-err")):
                errors[r] = RemoteRankError(
                    f"rank {r} process died without reporting "
                    f"(exitcode {procs[r].exitcode})"
                )
            elif outcome[0] == "exit-err":
                errors[r] = outcome[1]
            else:
                results[r] = outcome[1]
        self._raise_collected(errors, session.get_failure())
        return results
