"""Process-per-rank execution backend over POSIX shared memory.

Escapes the GIL for pure-Python rank code: each rank is a forked OS process,
and all rendezvous traffic travels through ``multiprocessing.shared_memory``
segments, serialized with pickle protocol 5 so NumPy payloads are written as
raw out-of-band buffers.

Rendezvous is a lockstep **barrier + designated-computer** protocol.  Every
superstep, each rank publishes one action into its own shared-memory request
slot — a collective contribution, a "done" marker once its rank function has
returned, or an "err" marker carrying an exception — and enters a barrier.
Between the two barrier phases rank 0 (the designated computer) reads all
request slots, checks that the actions agree, executes the collective with
its own ``execute`` closure, writes each rank's result into that rank's
response slot, and ships the metering record to the parent.  Mixed
done/collective actions become a
:class:`~repro.simmpi.errors.DeadlockError`, disagreeing collectives a
:class:`~repro.simmpi.errors.CollectiveMismatchError`, and an "err" marker
releases every rank with :class:`~repro.simmpi.errors.RemoteRankError`
while the original exception is re-raised from :meth:`ProcsBackend.run`.

How payload *bytes* move is the backend's **data plane**
(:mod:`repro.simmpi.dataplane`), selected per backend instance or via
``$REPRO_DATAPLANE``:

* ``shm`` (default) — zero-copy descriptor passing.  Large NumPy buffers
  are parked in per-rank arena segments (send arenas for contributions,
  rank 0's result arena for results) and the slots carry compact
  ``(segment, offset, nbytes)`` descriptors; receivers materialize
  read-only ``np.frombuffer`` views and account for their lifetime with
  per-rank release cursors so result segments are recycled only once no
  rank still views them.
* ``pickle`` — the original copy-through plane (every payload byte is
  written into the slot and copied back out on receive), kept as the
  verification mode; ``benchmarks/test_procs_zero_copy.py`` gates the
  shm plane's wall-clock win and bit-identity against it.

Shared-memory lifecycle: all slots are created by the parent **before**
forking (so every process shares one resource tracker), a slot that outgrows
its segment creates a replacement and immediately unlinks the old one, and
the parent unlinks whatever segment each slot currently names in a
``finally`` — on normal exit *and* when a rank raises — so no segment and no
``resource_tracker`` warning outlives a run.  Every segment of a session
carries a unique session prefix in its (explicit) name — arena segments
under the ``dp`` sub-prefix — so teardown sweeps the arenas (whose segments
intentionally live until teardown) and then reclaims anything orphaned by a
creator that died *mid-replacement* — the window where a freshly-grown
segment exists but no live slot names it yet.  A child killed hard at any
point (even ``os._exit`` inside a superstep, as the fault-injection tests
do) therefore leaks nothing.  The parent also supervises the children: if
one dies without reporting (hard crash), it breaks the barrier so the
surviving ranks error out instead of hanging.

Requires the ``fork`` start method (fork is what lets closures and
unpicklable shared arguments reach the ranks), so this backend is
POSIX-only.
"""

from __future__ import annotations

import glob
import multiprocessing
import os
import pickle
import struct
import threading
import time
import traceback
import uuid
import zlib
from multiprocessing import shared_memory, sharedctypes
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.ft.watchdog import HeartbeatBoard, Watchdog, WatchdogConfig
from repro.simmpi import dataplane
from repro.simmpi.backends.base import Backend
from repro.simmpi.errors import (
    CollectiveMismatchError,
    DeadlockError,
    HungRankError,
    PayloadCorruptionError,
    RemoteRankError,
    UnpicklableRankError,
    format_ranks,
)

# (pickle length, buffer-spec length, inlined-buffer length, crc32).  The
# crc is over the whole written region (payload + spec + inlined buffers);
# -1 means "no checksum" (integrity off), so the layout is shared by both
# integrity modes and only the verification work is conditional.
_HEADER = struct.Struct("<qqqq")
_NAME_CAP = 120  # shm segment names are short ("simmpi...")


def _session_prefix() -> str:
    """A name prefix unique to one session (pid + random token)."""
    return f"simmpi{os.getpid()}x{uuid.uuid4().hex[:6]}"


def _sweep_shm(prefix: str) -> List[str]:
    """Destroy every ``/dev/shm`` segment named under ``prefix``.

    Safety net for segments orphaned by a hard-killed child — e.g. one that
    died between creating a grown replacement segment and retiring the old
    one, when neither name is the slot's published segment anymore.  Going
    through :class:`SharedMemory` (attach + unlink) rather than ``os.remove``
    keeps the fork-shared resource tracker's registry consistent.  Returns
    the names reclaimed (normal runs return ``[]``).
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux POSIX
        return []
    reclaimed: List[str] = []
    for path in sorted(glob.glob(os.path.join(shm_dir,
                                              glob.escape(prefix) + "*"))):
        name = os.path.basename(path)
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:  # pragma: no cover - raced another sweep
            continue
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - raced another sweep
            pass
        seg.close()
        reclaimed.append(name)
    return reclaimed


def _sanitize_exc(exc: BaseException) -> BaseException:
    """Return ``exc`` if it round-trips through pickle, else a stand-in.

    The stand-in (:class:`UnpicklableRankError`) preserves what the
    original carried: the exception type name, its ``args`` (each arg
    individually pickle-checked, unpicklable ones replaced by their
    ``repr``), and the fully formatted traceback — in the stand-in's
    message and as ``original_type`` / ``original_args`` /
    ``original_traceback`` attributes.  Unlike a :class:`RemoteRankError`
    it keeps the priority of a rank's *own* failure, so the parent
    re-raises it rather than a peer's generic "aborted" observation.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        pass
    try:
        tb = "".join(traceback.format_exception(
            type(exc), exc, exc.__traceback__))
    except Exception:  # pragma: no cover - pathological __str__
        tb = f"<traceback unavailable for {type(exc).__name__}>"
    safe_args: List[Any] = []
    for arg in exc.args:
        try:
            pickle.loads(pickle.dumps(arg))
            safe_args.append(arg)
        except Exception:
            safe_args.append(repr(arg))
    return UnpicklableRankError(
        f"unpicklable rank exception {type(exc).__name__}"
        f"(args={tuple(safe_args)!r})\n"
        f"--- original traceback ---\n{tb}",
        original_type=type(exc).__name__,
        original_args=tuple(safe_args),
        original_traceback=tb,
    )


class _Slot:
    """A growable shared-memory blob.

    The payload lives in a ``SharedMemory`` segment; the segment's *current*
    name is published in a fork-shared ctypes array so any process can
    (re-)attach after the owner replaced the segment with a larger one.
    Writers and readers of one slot are separated by the superstep barriers,
    so the slot itself needs no locking.

    Layout: the fixed header, the pickle of the object, the pickled
    buffer-spec list (one entry per out-of-band buffer: an ``int`` byte
    count for a buffer inlined after the spec, or a
    :class:`~repro.simmpi.dataplane.ShmSpec` descriptor for a buffer parked
    in an arena segment), then the inlined buffers in order.
    """

    INITIAL = 1 << 16

    def __init__(self, base: str, integrity: bool = False) -> None:
        self._base = base
        self._integrity = integrity
        #: Per-process counters of checksum verifications performed /
        #: failed by reads of this slot (rank 0 ships its deltas through
        #: the stats channel; the parent counts its own reads directly).
        self.nchecks = 0
        self.nfailures = 0
        seg = self._create(0, self.INITIAL)
        self._published = sharedctypes.RawArray("c", _NAME_CAP)
        self._publish(seg.name)
        self._seg: Optional[shared_memory.SharedMemory] = seg

    def _create(self, gen: int, size: int) -> shared_memory.SharedMemory:
        """Create generation ``gen`` of this slot's segment.

        Explicit names (``{base}g{gen}``) keep every segment of a session
        under its prefix so :func:`_sweep_shm` can find orphans by name.
        """
        while True:
            name = f"{self._base}g{gen}"
            try:
                return shared_memory.SharedMemory(
                    name=name, create=True, size=size
                )
            except FileExistsError:  # pragma: no cover - stale leftover
                gen += 1

    def _publish(self, name: str) -> None:
        raw = name.encode()
        if len(raw) >= _NAME_CAP:  # pragma: no cover - names are ~14 chars
            raise ValueError(f"shm name too long: {name!r}")
        self._published[: len(raw)] = raw
        self._published[len(raw):] = b"\0" * (_NAME_CAP - len(raw))

    def _segment(self) -> shared_memory.SharedMemory:
        want = self._published.value.decode()
        if self._seg is None or self._seg.name != want:
            self.close()
            self._seg = shared_memory.SharedMemory(name=want)
        return self._seg

    def _ensure(self, nbytes: int) -> shared_memory.SharedMemory:
        seg = self._segment()
        if seg.size >= nbytes:
            return seg
        size = max(seg.size, self.INITIAL)
        while size < nbytes:
            size *= 2
        gen = int(seg.name.rsplit("g", 1)[1]) + 1
        new = self._create(gen, size)
        self._publish(new.name)
        self._seg = new
        # the grower retires the replaced segment; other processes re-attach
        # by the published name and close their stale mapping lazily
        try:
            seg.close()
        except BufferError:  # pragma: no cover - a view still alive
            pass
        seg.unlink()
        return new

    def write(self, obj: Any,
              arena: Optional[dataplane.SendArena] = None) -> None:
        """Serialize ``obj`` into the slot (NumPy buffers out-of-band).

        With an ``arena`` (the shm data plane), out-of-band buffers of at
        least :data:`~repro.simmpi.dataplane.DESCRIPTOR_MIN` bytes are
        placed through the arena and only their descriptors enter the slot;
        smaller buffers — and, without an arena, all buffers — are inlined.
        """
        oob: List[pickle.PickleBuffer] = []
        payload = pickle.dumps(obj, protocol=5, buffer_callback=oob.append)
        raws = [b.raw() for b in oob]
        entries: List[Any] = []
        inline: List[memoryview] = []
        if arena is not None:
            arena.begin_write(sum(
                r.nbytes for r in raws
                if r.nbytes >= dataplane.DESCRIPTOR_MIN
            ))
            for r in raws:
                if r.nbytes >= dataplane.DESCRIPTOR_MIN:
                    entries.append(arena.place(r))
                else:
                    entries.append(r.nbytes)
                    inline.append(r)
        else:
            for r in raws:
                entries.append(r.nbytes)
                inline.append(r)
        spec = pickle.dumps(entries, protocol=5) if entries else b""
        inline_len = sum(r.nbytes for r in inline)
        total = _HEADER.size + len(payload) + len(spec) + inline_len
        buf = self._ensure(total).buf
        off = _HEADER.size
        buf[off:off + len(payload)] = payload
        off += len(payload)
        buf[off:off + len(spec)] = spec
        off += len(spec)
        for r in inline:
            buf[off:off + r.nbytes] = r
            off += r.nbytes
        # checksum the bytes as written to shared memory — the region a
        # flip between this write and the peer's read would damage
        crc = zlib.crc32(buf[_HEADER.size:off]) if self._integrity else -1
        _HEADER.pack_into(buf, 0, len(payload), len(spec), inline_len, crc)

    def read(
        self, mode: str, cache: Optional[dataplane.SegmentCache] = None,
    ) -> Tuple[Any, List[Tuple[memoryview, int]]]:
        """Deserialize the slot; returns ``(obj, leases)``.

        ``mode`` sets how out-of-band buffers materialize:

        * ``"borrow"`` — zero-copy for everything (slot windows for inlined
          buffers, arena views for descriptors).  Only safe for consumers
          that drop every reference before the slot/arena is rewritten: the
          designated computer reading contributions within one superstep.
        * ``"view"`` — rank-facing zero-copy: descriptors become read-only
          arena views, returned as ``(view, address)`` leases for the
          caller's :class:`~repro.simmpi.dataplane.ViewLedger`; inlined
          buffers are copied (small, and the copies stay privately
          writable).
        * ``"own"`` — every buffer is copied out, so returned arrays own
          writable data (the pickle data plane, and the parent collecting
          exit payloads after the children are gone).
        """
        buf = self._segment().buf
        payload_len, spec_len, inline_len, crc = _HEADER.unpack_from(buf, 0)
        if crc != -1:
            # verify before any deserialization: a flipped byte must raise
            # the typed corruption error, never a garbled UnpicklingError
            region = _HEADER.size + payload_len + spec_len + inline_len
            self.nchecks += 1
            actual = zlib.crc32(buf[_HEADER.size:region])
            if actual != crc:
                self.nfailures += 1
                raise PayloadCorruptionError(
                    f"slot checksum mismatch (expected {crc:#010x}, got "
                    f"{actual:#010x}) reading {self._base!r}",
                    location=f"slot {self._base!r}",
                )
        off = _HEADER.size
        payload = bytes(buf[off:off + payload_len])
        off += payload_len
        entries: List[Any] = (
            pickle.loads(bytes(buf[off:off + spec_len])) if spec_len else []
        )
        off += spec_len
        buffers: List[Any] = []
        leases: List[Tuple[memoryview, int]] = []
        for e in entries:
            if isinstance(e, dataplane.ShmSpec):
                assert cache is not None, "descriptor read needs a cache"
                view = cache.view(e)
                if e.crc != -1:
                    self.nchecks += 1
                    actual = zlib.crc32(view)
                    if actual != e.crc:
                        self.nfailures += 1
                        raise PayloadCorruptionError(
                            f"arena descriptor checksum mismatch (expected "
                            f"{e.crc:#010x}, got {actual:#010x}) for "
                            f"{e.nbytes} bytes in segment {e.name!r}",
                            location=f"descriptor {e.name!r}+{e.offset}",
                        )
                if mode == "own":
                    buffers.append(bytearray(view))
                else:
                    buffers.append(view)
                    if mode == "view":
                        leases.append(
                            (view, dataplane._buffer_address(view))
                        )
            else:  # inlined, e is the byte count
                window = buf[off:off + e]
                off += e
                # bytearray, not bytes: rank-facing copies must be writable
                buffers.append(window if mode == "borrow"
                               else bytearray(window))
        return pickle.loads(payload, buffers=buffers), leases

    def corrupt(self, seed: int) -> bool:
        """Flip one byte of the last written message (fault injection).

        Targets the inlined-buffer region when there is one (numeric data —
        the silent-corruption case crc exists to catch) and the pickle
        region otherwise.  Runs *after* :meth:`write` sealed the header
        crc, so the flip models damage in flight.
        """
        buf = self._segment().buf
        payload_len, spec_len, inline_len, _ = _HEADER.unpack_from(buf, 0)
        if inline_len > 0:
            start, length = _HEADER.size + payload_len + spec_len, inline_len
        else:
            start, length = _HEADER.size, payload_len + spec_len
        if length <= 0:
            return False
        buf[start + seed % length] ^= 0xFF
        return True

    def close(self) -> None:
        """Drop this process's mapping (never destroys the segment)."""
        if self._seg is not None:
            try:
                self._seg.close()
            except BufferError:  # pragma: no cover - exported view alive
                pass
            self._seg = None

    def unlink(self) -> None:
        """Destroy whatever segment the slot currently names (teardown)."""
        try:
            seg = self._segment()
        except FileNotFoundError:
            return
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already retired
            pass
        self.close()


class _Session:
    """Per-run shared state: slots, barrier, failure cell, stats channel,
    and the data plane's release cursors."""

    def __init__(self, ctx, nprocs: int, plane: str,
                 integrity: bool = False,
                 watchdog: Optional[WatchdogConfig] = None) -> None:
        self.nprocs = nprocs
        self.dataplane = plane
        self.integrity = integrity
        self.watchdog = watchdog
        self.shm_prefix = _session_prefix()
        self.barrier = ctx.Barrier(nprocs)
        self.fail_flag = sharedctypes.RawValue("i", 0)
        self.request = [_Slot(f"{self.shm_prefix}req{r}", integrity)
                        for r in range(nprocs)]
        self.response = [_Slot(f"{self.shm_prefix}rsp{r}", integrity)
                         for r in range(nprocs)]
        self.failure = _Slot(f"{self.shm_prefix}fail", integrity)
        #: Fork-shared liveness board: each rank beats (superstep, phase,
        #: clock) before every rendezvous; the supervisor-side Watchdog
        #: polls it.  Allocated unconditionally (three tiny RawArrays) so
        #: the session shape does not depend on the watchdog setting, but
        #: ranks only beat when a watchdog is configured.
        self.heartbeats = HeartbeatBoard(nprocs)
        #: per-rank release cursors: the highest superstep whose zero-copy
        #: result views that rank has fully dropped.  Rank 0 recycles a
        #: result-arena segment only when min(cursors) has passed its last
        #: write (fork-shared; written by each rank pre-barrier, read by
        #: rank 0 post-barrier, so no torn reads matter — stale values are
        #: merely conservative).
        self.release_cursors = sharedctypes.RawArray(
            "q", [-1] * nprocs
        )
        self.stats_queue = ctx.SimpleQueue()

    def set_failure(self, exc: BaseException) -> None:
        self.failure.write(_sanitize_exc(exc))
        self.fail_flag.value = 1

    def get_failure(
        self, cache: Optional[dataplane.SegmentCache] = None,
    ) -> Optional[BaseException]:
        if not self.fail_flag.value:
            return None
        exc, _ = self.failure.read("own", cache)
        return exc

    def teardown(self) -> List[str]:
        """Parent-side: destroy every live segment (idempotent), then sweep
        the session prefix for segments orphaned by a hard-killed child.

        Arena segments (the ``dp`` sub-prefix) intentionally live until
        teardown — zero-copy views may reference them to the very end — so
        they are swept first as *expected* cleanup; only what the second
        sweep then finds is a true orphan.  Returns the orphaned names
        (``[]`` for clean runs)."""
        for slot in (*self.request, *self.response, self.failure):
            slot.unlink()
        _sweep_shm(f"{self.shm_prefix}dp")
        return _sweep_shm(self.shm_prefix)


class _RankEndpoint:
    """Rank-side collective engine; satisfies SimComm's runtime protocol."""

    #: Procs results already cross a process boundary (pickle slots or shm
    #: descriptors), so in-process result sharing buys nothing and would
    #: leak the sealed (read-only) flag through pickling — pin the
    #: historical copy semantics regardless of $REPRO_RESULT_SHARING.
    result_sharing = "copy"

    def __init__(self, session: _Session, rank: int, meter_compute: bool,
                 fault_plan: Any = None, comm_strategy: Any = None) -> None:
        self._session = session
        self.rank = rank
        self.nprocs = session.nprocs
        self.meter_compute = meter_compute
        self._fault_plan = fault_plan
        #: SimComm reads this to compute rank-side tier contributions,
        #: exactly as it does off the in-process backends.
        self.comm_strategy = comm_strategy
        self._step = 0
        self._watchdog = session.watchdog
        self._barrier_timeout = (
            session.watchdog.rank_barrier_timeout()
            if session.watchdog is not None else None
        )
        shm_plane = session.dataplane == "shm"
        self._shm_plane = shm_plane
        self._cache = dataplane.SegmentCache()
        self._send_arena = (
            dataplane.SendArena(f"{session.shm_prefix}dps{rank}",
                                integrity=session.integrity)
            if shm_plane else None
        )
        self._result_arena = (
            dataplane.ResultArena(f"{session.shm_prefix}dpr",
                                  integrity=session.integrity)
            if shm_plane and rank == 0 else None
        )
        self._ledger = dataplane.ViewLedger() if shm_plane else None

    # SimComm calls this with the same signature as Backend.collective.
    def collective(
        self,
        rank: int,
        op: str,
        tag: str,
        contribution: Any,
        nbytes_sent: int,
        execute: Callable[[List[Any]], List[Any]],
        compute_seconds: float,
        work_units: float = 0.0,
        tier_bytes: Any = None,
    ) -> Any:
        corrupt_spec = None
        if self._fault_plan is not None:
            # can_die=True: ranks are real processes here, so a "die" fault
            # is an actual os._exit mid-superstep, and a long "delay" is a
            # real stall for the supervisor-side watchdog to detect.
            corrupt_spec = self._fault_plan.check(
                self.rank, op, tag, can_die=True,
                deadline=(self._watchdog.timeout
                          if self._watchdog is not None else None),
            )
        if tier_bytes is not None:
            tier_bytes = tuple(int(t) for t in tier_bytes)
        action = ("coll", op, tag, int(nbytes_sent), float(compute_seconds),
                  float(work_units), contribution, tier_bytes)
        corrupt_seed = None
        if corrupt_spec is not None:
            from repro.ft.integrity import corruption_seed

            corrupt_seed = corruption_seed(self.rank, corrupt_spec.step,
                                           corrupt_spec.attempt)
        kind, value = self._superstep(action, execute,
                                      corrupt_seed=corrupt_seed)
        assert kind == "result"
        return value

    def drain(self) -> None:
        """Keep answering supersteps with "done" until every rank is done."""
        while True:
            kind, _ = self._superstep(("done", None), None)
            if kind == "all_done":
                return

    def announce_error(self, exc: BaseException) -> None:
        """Publish a rank failure as this rank's next superstep action."""
        try:
            self._superstep(("err", _sanitize_exc(exc)), None)
        except RemoteRankError:
            pass  # expected: the superstep we just poisoned aborts

    # -- protocol ----------------------------------------------------------

    def _barrier(self) -> None:
        try:
            # The child-side timeout is a last-ditch escape hatch only (the
            # watchdog kills hung peers first, which breaks the barrier and
            # wakes everyone); see WatchdogConfig.rank_barrier_timeout.
            self._session.barrier.wait(timeout=self._barrier_timeout)
        except threading.BrokenBarrierError:
            raise RemoteRankError(
                f"rank {self.rank}: barrier broken (a peer process died)"
            ) from None

    def _superstep(self, action: tuple, execute: Optional[Callable],
                   corrupt_seed: Optional[int] = None) -> tuple:
        sess = self._session
        step = self._step
        if self._ledger is not None:
            # publish before the barrier so rank 0 reads it after: "every
            # view of supersteps <= cursor is dead on this rank"
            sess.release_cursors[self.rank] = self._ledger.released(step)
        if self._watchdog is not None:
            phase = action[2] if action[0] == "coll" else action[0]
            sess.heartbeats.beat(self.rank, step, phase)
        sess.request[self.rank].write(action, arena=self._send_arena)
        if corrupt_seed is not None:
            # in-flight corruption: flip one byte after the checksum (if
            # any) was sealed — arena payload first, slot region otherwise
            if (self._send_arena is None
                    or not self._send_arena.corrupt(corrupt_seed)):
                sess.request[self.rank].corrupt(corrupt_seed)
        self._barrier()
        if self.rank == 0:
            try:
                self._compute(execute)
            finally:
                self._barrier()
        else:
            self._barrier()
        self._step += 1
        failure = sess.get_failure(self._cache)
        if failure is not None:
            raise RemoteRankError(
                f"rank {self.rank}: aborted"
            ) from failure
        obj, leases = sess.response[self.rank].read(
            "view" if self._shm_plane else "own", self._cache
        )
        if self._ledger is not None:
            self._ledger.track(obj, leases, step)
        return obj

    def _compute(self, execute: Optional[Callable]) -> None:
        """Designated-computer step (rank 0, between the two barriers).

        Any failure here — including a checksum mismatch raised while
        *reading* a request slot — must land in the session failure cell,
        never escape: the closing barrier in :meth:`_superstep` releases
        the peers unconditionally, and they expect either a response or
        ``fail_flag``.
        """
        sess = self._session
        if sess.fail_flag.value:
            return  # a previous superstep already failed
        try:
            self._compute_inner(execute)
        except BaseException as exc:
            sess.set_failure(_sanitize_exc(exc))

    def _compute_inner(self, execute: Optional[Callable]) -> None:
        sess = self._session
        arena = self._result_arena
        if arena is not None:
            arena.begin_step(self._step, min(sess.release_cursors))
        nchecks0 = sum(s.nchecks for s in sess.request)
        # "borrow": zero-copy contribution views, valid only inside this
        # superstep — every reference is a local dropped on return, before
        # the closing barrier lets the owning ranks overwrite their arenas
        actions = [sess.request[r].read("borrow", self._cache)[0]
                   for r in range(self.nprocs)]
        kinds = [a[0] for a in actions]
        if "err" in kinds:
            sess.set_failure(actions[kinds.index("err")][1])
            return
        if all(k == "done" for k in kinds):
            for r in range(self.nprocs):
                sess.response[r].write(("all_done", None))
            return
        if "done" in kinds:
            stuck = [r for r, k in enumerate(kinds) if k == "coll"]
            n_done = kinds.count("done")
            op = next(a[1] for a in actions if a[0] == "coll")
            sess.set_failure(DeadlockError(
                f"{len(stuck)} rank(s) ({format_ranks(stuck)}) stuck in "
                f"collective {op!r} at superstep {self._step} after "
                f"{n_done} rank(s) returned"
            ))
            return
        ops = sorted({a[1] for a in actions})
        if len(ops) != 1:
            per_rank = ", ".join(
                f"rank {r}: {a[1]!r}" for r, a in enumerate(actions)
            )
            sess.set_failure(CollectiveMismatchError(
                f"ranks disagree on the collective at superstep "
                f"{self._step}: {per_rank}"
            ))
            return
        contribs = [a[6] for a in actions]
        try:
            assert execute is not None  # rank 0 posted "coll" too
            with dataplane.compute_arena(arena):
                results = execute(contribs)
        except BaseException as exc:
            sess.set_failure(_sanitize_exc(exc))
            return
        tier_rows = [a[7] for a in actions]
        tiers = (None if any(t is None for t in tier_rows)
                 else np.asarray(tier_rows, dtype=np.int64))
        sess.stats_queue.put((
            self._step,
            actions[0][1],  # op
            actions[0][2],  # tag (SPMD programs tag uniformly)
            np.array([a[3] for a in actions], dtype=np.int64),
            np.array([a[4] for a in actions], dtype=np.float64),
            np.array([a[5] for a in actions], dtype=np.float64),
            tiers,
            sum(s.nchecks for s in sess.request) - nchecks0,
        ))
        for r, res in enumerate(results):
            sess.response[r].write(("result", res), arena=arena)

    def close(self) -> None:
        for slot in (*self._session.request, *self._session.response,
                     self._session.failure):
            slot.close()
        if self._send_arena is not None:
            self._send_arena.close()
        if self._result_arena is not None:
            self._result_arena.close()
        self._cache.close()


def _rank_process_main(
    session: _Session,
    rank: int,
    meter_compute: bool,
    fault_plan: Any,
    comm_strategy: Any,
    fn: Callable[..., Any],
    args: tuple,
    rank_args: Optional[Sequence[Sequence[Any]]],
    kwargs: dict,
) -> None:
    from repro.simmpi.comm import SimComm

    endpoint = _RankEndpoint(session, rank, meter_compute, fault_plan,
                             comm_strategy)
    try:
        comm = SimComm(endpoint, rank)
        extra = tuple(rank_args[rank]) if rank_args is not None else ()
        try:
            result = fn(comm, *extra, *args, **kwargs)
        except RemoteRankError as exc:
            final = ("exit-err", _sanitize_exc(exc))
        except BaseException as exc:
            endpoint.announce_error(exc)
            final = ("exit-err", _sanitize_exc(exc))
        else:
            final = ("exit-ok", result)
            try:
                endpoint.drain()
            except RemoteRankError:
                pass  # a peer failed while we drained; keep our result
        # the exit payload may be large (per-rank partition arrays): ship
        # it through the send arena too — the last superstep is over, the
        # arena reset is safe, and its final segment lives until teardown
        try:
            session.request[rank].write(final, arena=endpoint._send_arena)
        except Exception:
            session.request[rank].write(
                ("exit-err",
                 RemoteRankError(f"rank {rank}: unserializable outcome"))
            )
    finally:
        endpoint.close()


class ProcsBackend(Backend):
    """One forked process per rank; payloads in POSIX shared memory."""

    name = "procs"

    def __init__(self, nprocs: int, *, meter_compute: bool = True,
                 dataplane_name: Optional[str] = None) -> None:
        super().__init__(nprocs, meter_compute=meter_compute)
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ValueError(
                "the 'procs' backend requires the 'fork' start method "
                "(POSIX); use backend='threads' or 'serial' instead"
            )
        if dataplane_name is None:
            dataplane_name = dataplane.default_dataplane()
        if dataplane_name not in dataplane.DATAPLANES:
            raise ValueError(
                f"unknown data plane {dataplane_name!r}; "
                f"choices: {dataplane.DATAPLANES}"
            )
        self.dataplane = dataplane_name
        self._ctx = multiprocessing.get_context("fork")
        #: shm name prefix of the most recent session and the orphaned
        #: segment names its teardown sweep reclaimed (hygiene tests
        #: assert the sweep found nothing to do / that nothing survives).
        self.last_shm_prefix: Optional[str] = None
        self.last_shm_reclaimed: List[str] = []

    def _run_parallel(
        self,
        fn: Callable[..., Any],
        args: tuple,
        rank_args: Optional[Sequence[Sequence[Any]]],
        kwargs: dict,
    ) -> List[Any]:
        session = _Session(self._ctx, self.nprocs, self.dataplane,
                           integrity=self.integrity == "crc",
                           watchdog=self.watchdog)
        self.last_shm_prefix = session.shm_prefix
        watchdog: Optional[Watchdog] = None
        try:
            procs = [
                self._ctx.Process(
                    target=_rank_process_main,
                    args=(session, r, self.meter_compute, self.fault_plan,
                          self.comm_strategy, fn, args, rank_args, kwargs),
                    daemon=True,
                    name=f"simmpi-proc-{r}",
                )
                for r in range(self.nprocs)
            ]
            for p in procs:
                p.start()
            if self.watchdog is not None:
                watchdog = Watchdog(self.watchdog, session.heartbeats, procs)
                watchdog.start()
            self._supervise(session, procs)
            for p in procs:
                p.join()
            return self._collect(session, procs, watchdog)
        finally:
            if watchdog is not None:
                watchdog.stop()
                self.stats.heartbeats_seen += watchdog.heartbeats_seen
                self.stats.deadline_extensions += watchdog.deadline_extensions
            self.last_shm_reclaimed = session.teardown()

    def _supervise(self, session: _Session, procs: list) -> None:
        """Drain the stats channel while children run; break the barrier if
        a child dies without reporting (so peers error out, not hang).

        Events are **recorded as they drain**: the queue has a single
        producer (rank 0, the designated computer) that enqueues in
        superstep order, so FIFO draining preserves the record order — and
        recording mid-run is what lets the checkpoint-commit hook in
        :meth:`Backend._record` fire at the epoch boundary instead of after
        the run (a crashed run must still have its committed epochs)."""
        aborted = False
        while True:
            drained = False
            while not session.stats_queue.empty():
                _step, op, tag, nbytes, compute, work, tiers, nchecks = \
                    session.stats_queue.get()
                self._record(op, tag, nbytes, compute, work, tiers=tiers)
                self.stats.checksum_verifications += nchecks
                drained = True
            if not any(p.is_alive() for p in procs):
                break
            if not aborted and any(
                p.exitcode not in (0, None) for p in procs
            ):
                session.barrier.abort()
                aborted = True
            if not drained:
                time.sleep(0.001)
        while not session.stats_queue.empty():
            _step, op, tag, nbytes, compute, work, tiers, nchecks = \
                session.stats_queue.get()
            self._record(op, tag, nbytes, compute, work, tiers=tiers)
            self.stats.checksum_verifications += nchecks

    def _collect(self, session: _Session, procs: list,
                 watchdog: Optional[Watchdog] = None) -> List[Any]:
        results: List[Any] = [None] * self.nprocs
        errors: List[Optional[BaseException]] = [None] * self.nprocs
        killed = tuple(watchdog.killed) if watchdog is not None else ()
        cache = dataplane.SegmentCache()
        try:
            for r in range(self.nprocs):
                if r in killed:
                    # watchdog kill: typed as a hang, not a generic remote
                    # death, so the recovery supervisor can classify it
                    errors[r] = HungRankError(
                        f"rank {r} made no progress for "
                        f"{watchdog.detection_seconds:.3g}s (deadline "
                        f"{watchdog.config.timeout:.3g}s) in phase "
                        f"{watchdog.killed_phase!r}; killed by the watchdog",
                        ranks=killed,
                        phase=watchdog.killed_phase,
                        detection_seconds=watchdog.detection_seconds,
                    )
                    continue
                outcome: Any = None
                if procs[r].exitcode == 0:
                    try:
                        outcome, _ = session.request[r].read("own", cache)
                    except PayloadCorruptionError as exc:
                        errors[r] = exc
                        continue
                    except Exception:
                        outcome = None
                if not (isinstance(outcome, tuple) and len(outcome) == 2
                        and outcome[0] in ("exit-ok", "exit-err")):
                    errors[r] = RemoteRankError(
                        f"rank {r} process died without reporting "
                        f"(exitcode {procs[r].exitcode})"
                    )
                elif outcome[0] == "exit-err":
                    errors[r] = outcome[1]
                else:
                    results[r] = outcome[1]
            failure = session.get_failure(cache)
            # the parent's own slot reads above verified checksums too
            self.stats.checksum_verifications += (
                sum(s.nchecks for s in session.request)
                + session.failure.nchecks
            )
            self.stats.checksum_failures += sum(
                1 for e in (*errors, failure)
                if isinstance(e, PayloadCorruptionError)
            )
            self._raise_collected(errors, failure)
        finally:
            cache.close()
        return results
