"""Abstract execution-backend interface for the simulated MPI runtime.

A *backend* owns the four mechanics every SPMD execution needs:

1. **spawn** — start one execution context per simulated rank and run the
   user's rank function in it (`:meth:`Backend.run``);
2. **rendezvous** — block each rank at a collective until all ranks have
   deposited a matching contribution (`:meth:`Backend.collective``);
3. **collective compute** — apply the collective's ``execute`` function to
   the full contribution list exactly once and hand each rank its slice;
4. **teardown** — release any OS resources (threads, processes, shared
   memory) the backend acquired (`:meth:`Backend.close``).

Everything *above* this interface — :class:`repro.simmpi.comm.SimComm`,
the partitioner, the analytics engine — is backend-agnostic: the same rank
code runs unmodified on every backend, and because metering happens at the
rendezvous (op, tag, per-rank bytes/work), a fixed-seed program produces
bit-identical results and :class:`~repro.simmpi.metrics.CommStats` on all
of them.  That invariant is the subsystem's correctness oracle and is
enforced by ``tests/test_backends_conformance.py``.

Concrete backends live next to this module and are selected by name via
:func:`repro.simmpi.backends.create_runtime` (chainermn-style registry).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.simmpi.errors import RemoteRankError
from repro.simmpi.metrics import CollectiveEvent, CommStats, TierMetering


class _Pending:
    """State of the collective currently being assembled (in-process)."""

    __slots__ = ("op", "tag", "contribs", "nbytes", "compute", "work",
                 "tiers", "arrived", "results", "deposited", "checksums")

    def __init__(self, nprocs: int, op: str, tag: str) -> None:
        self.op = op
        self.tag = tag
        self.contribs: List[Any] = [None] * nprocs
        self.nbytes = np.zeros(nprocs, dtype=np.int64)
        self.compute = np.zeros(nprocs, dtype=np.float64)
        self.work = np.zeros(nprocs, dtype=np.float64)
        #: Per-rank (intra, inter, wire_intra, wire_inter) tuples deposited
        #: by tiered communicator strategies; all-None under ``flat``.
        self.tiers: List[Optional[tuple]] = [None] * nprocs
        self.arrived = 0
        self.results: Optional[List[Any]] = None
        #: Which ranks have deposited (diagnostics: deadlock/mismatch
        #: errors name the blocked ranks, not just their count).
        self.deposited: List[bool] = [False] * nprocs
        #: Per-rank contribution crc32s (integrity mode only, else None).
        self.checksums: Optional[List[Optional[int]]] = None

    def blocked_ranks(self) -> List[int]:
        return [r for r, d in enumerate(self.deposited) if d]


class Backend(ABC):
    """Abstract execution backend (one subclass per parallelism strategy).

    Parameters
    ----------
    nprocs:
        Number of simulated MPI ranks.
    meter_compute:
        If False, skip the per-rank ``thread_time`` calls (slightly faster;
        modeled times then contain only communication and charged-work
        terms).  Deterministic kernels run with this off.
    """

    #: Registry name of the backend (set by each subclass).
    name: str = "abstract"

    def __init__(self, nprocs: int, *, meter_compute: bool = True) -> None:
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = int(nprocs)
        self.meter_compute = bool(meter_compute)
        self.stats = CommStats(self.nprocs)
        #: Optional :class:`repro.ft.faults.FaultPlan` (duck-typed: anything
        #: with ``check(rank, op, tag, can_die=...)``).  Consulted rank-side
        #: before every collective deposit so deterministic crashes/delays
        #: can be planted at exact supersteps on every backend.
        self.fault_plan: Optional[Any] = None
        #: Communicator strategy (see :mod:`repro.simmpi.topology`) that
        #: classifies each collective's traffic into machine tiers.  None
        #: or a non-tiered strategy keeps the historical flat metering;
        #: set by :func:`repro.simmpi.backends.create_runtime`.
        self.comm_strategy: Optional[Any] = None
        #: Optional :class:`repro.ft.checkpoint.CkptCommitter` (duck-typed:
        #: ``commit(stats)``).  Invoked in the driver/parent process right
        #: after a ``checkpoint`` collective is recorded — the process that
        #: owns ``stats`` is the only one that can write the epoch's event
        #: prefix, and running commit at record time orders it after the
        #: rank files were persisted by the collective's writer.
        self.ckpt_committer: Optional[Any] = None
        #: Result-delivery mode for in-process collective results
        #: (``"shared"`` sealed read-only objects handed to every rank, or
        #: ``"copy"`` per-rank private copies); None defers to
        #: ``$REPRO_RESULT_SHARING``.  See :mod:`repro.simmpi.dataplane`
        #: and :mod:`repro.simmpi.comm`; set by
        #: :func:`repro.simmpi.backends.create_runtime`.
        self.result_sharing: Optional[str] = None
        # deferred import: repro.ft sits above simmpi in the layering, but
        # these two are leaf config modules (env parsing + dataclasses)
        # with no backend dependency, so the cycle is only cosmetic
        from repro.ft.integrity import default_integrity
        from repro.ft.watchdog import default_watchdog

        #: Liveness policy (:class:`repro.ft.watchdog.WatchdogConfig`) or
        #: None for unbounded waits (historical behavior).  Resolved from
        #: ``$REPRO_WATCHDOG_TIMEOUT`` at construction; overridable via
        #: :func:`repro.simmpi.backends.create_runtime`.
        self.watchdog = default_watchdog()
        #: Payload integrity mode (``"crc"`` / ``"off"``), resolved from
        #: ``$REPRO_INTEGRITY`` at construction; overridable via
        #: :func:`repro.simmpi.backends.create_runtime`.  ``"crc"``
        #: checksums every payload at send and verifies at receive.
        self.integrity = default_integrity()

    # -- fault injection ---------------------------------------------------

    def _fault_check(self, rank: int, op: str, tag: str, *,
                     can_die: bool = False) -> Optional[Any]:
        """Give the fault plan a chance to fire before a deposit.

        ``can_die`` tells the plan whether hard process death is available
        (only the ``procs`` backend runs ranks in killable processes; the
        in-process backends downgrade ``die`` to a raised fault).  The
        watchdog deadline, if any, is forwarded so injected delays past it
        surface as hangs.  Returns the matched ``corrupt`` spec (or None).
        """
        plan = self.fault_plan
        if plan is None:
            return None
        deadline = self.watchdog.timeout if self.watchdog is not None else None
        return plan.check(rank, op, tag, can_die=can_die, deadline=deadline)

    # -- rendezvous + collective compute -----------------------------------

    def collective(
        self,
        rank: int,
        op: str,
        tag: str,
        contribution: Any,
        nbytes_sent: int,
        execute: Callable[[List[Any]], List[Any]],
        compute_seconds: float,
        work_units: float = 0.0,
        tier_bytes: Optional[tuple] = None,
    ) -> Any:
        """Deposit ``contribution`` for ``op``; block until all ranks match.

        ``execute`` maps the full list of contributions (indexed by rank) to
        a list of per-rank results; it runs exactly once per superstep.
        ``nbytes_sent`` is this rank's off-rank payload for the metering
        convention documented in :mod:`repro.simmpi.metrics`;
        ``tier_bytes`` is the strategy's optional ``(intra, inter,
        wire_intra, wire_inter)`` classification of that payload.

        Under ``integrity == "crc"`` the contribution is checksummed here
        (at "send time") and the checksum rides along to the rendezvous,
        where the receiving side re-computes and compares before
        ``execute`` runs — an injected ``corrupt`` fault flips a payload
        byte *after* the checksum is taken, modeling in-flight damage.
        """
        corrupt_spec = self._fault_check(rank, op, tag)
        if self.nprocs == 1:
            results = execute([contribution])
            # single-rank runs meter zero off-rank bytes, so there is no
            # traffic to classify into tiers either
            self._record(op, tag,
                         np.zeros(1, dtype=np.int64),
                         np.array([compute_seconds]),
                         np.array([work_units]))
            return results[0]
        checksum: Optional[int] = None
        if self.integrity == "crc":
            from repro.ft.integrity import checksum_obj

            checksum = checksum_obj(contribution)
        if corrupt_spec is not None:
            from repro.ft.integrity import corrupt_object, corruption_seed

            seed = corruption_seed(rank, corrupt_spec.step,
                                   corrupt_spec.attempt)
            corrupt_object(contribution, seed)
        return self._collective_parallel(
            rank, op, tag, contribution, nbytes_sent, execute,
            compute_seconds, work_units, tier_bytes, checksum=checksum,
        )

    def _collective_parallel(
        self,
        rank: int,
        op: str,
        tag: str,
        contribution: Any,
        nbytes_sent: int,
        execute: Callable[[List[Any]], List[Any]],
        compute_seconds: float,
        work_units: float,
        tier_bytes: Optional[tuple] = None,
        checksum: Optional[int] = None,
    ) -> Any:
        raise NotImplementedError(
            f"{type(self).__name__} does not execute collectives in the "
            "driver process; ranks use their own endpoints"
        )

    def _verify_checksums(self, pending: _Pending) -> None:
        """Re-checksum every deposited contribution against its send-time
        crc just before the collective executes (in-process receive side).

        Raises :class:`~repro.simmpi.errors.PayloadCorruptionError` naming
        the damaged ranks; the caller is expected to ``_fail`` peers first
        — this helper only detects and counts.
        """
        from repro.ft.integrity import checksum_obj
        from repro.simmpi.errors import PayloadCorruptionError, format_ranks

        assert pending.checksums is not None
        self.stats.checksum_verifications += self.nprocs
        bad = [r for r, crc in enumerate(pending.checksums)
               if crc is not None
               and checksum_obj(pending.contribs[r]) != crc]
        if bad:
            self.stats.checksum_failures += len(bad)
            raise PayloadCorruptionError(
                f"payload checksum mismatch for {format_ranks(bad)} in "
                f"collective {pending.op!r} (tag {pending.tag!r}, "
                f"superstep {self.stats.rounds})",
                rank=bad[0],
                location=f"{self.name} rendezvous",
            )

    @staticmethod
    def _tier_matrix(tier_list: Sequence[Optional[tuple]]):
        """Stack per-rank tier tuples into an ``(nprocs, 4)`` (two-tier) or
        ``(nprocs, 6)`` (rack-tier) int64 matrix, or None if any rank
        deposited without tier metering (flat)."""
        if any(t is None for t in tier_list):
            return None
        return np.asarray(tier_list, dtype=np.int64)

    def _record(
        self,
        op: str,
        tag: str,
        bytes_sent: np.ndarray,
        compute_seconds: np.ndarray,
        work_units: np.ndarray,
        tiers: Optional[np.ndarray] = None,
    ) -> None:
        tier_view: Optional[TierMetering] = None
        if tiers is not None and self.comm_strategy is not None:
            hop_parts = self.comm_strategy.hops(op)
            intra_hops, inter_hops = hop_parts[0], hop_parts[1]
            xrack_hops = hop_parts[2] if len(hop_parts) > 2 else 0
            if tiers.shape[1] == 6:
                # rack-tier column order: intra, inter, xrack, then wires
                tier_view = TierMetering(
                    intra_bytes=tiers[:, 0], inter_bytes=tiers[:, 1],
                    wire_intra=tiers[:, 3], wire_inter=tiers[:, 4],
                    intra_hops=intra_hops, inter_hops=inter_hops,
                    node_of=self.comm_strategy.node_map,
                    xrack_bytes=tiers[:, 2], wire_xrack=tiers[:, 5],
                    xrack_hops=xrack_hops,
                    rack_of=getattr(self.comm_strategy, "rack_map", None),
                )
            else:
                tier_view = TierMetering(
                    intra_bytes=tiers[:, 0], inter_bytes=tiers[:, 1],
                    wire_intra=tiers[:, 2], wire_inter=tiers[:, 3],
                    intra_hops=intra_hops, inter_hops=inter_hops,
                    node_of=self.comm_strategy.node_map,
                )
        self.stats.record(CollectiveEvent(
            op=op, tag=tag, bytes_sent=bytes_sent,
            compute_seconds=compute_seconds, work_units=work_units,
            tiers=tier_view,
        ))
        if op == "checkpoint" and self.ckpt_committer is not None:
            self.ckpt_committer.commit(self.stats)

    # -- spawning SPMD programs --------------------------------------------

    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        rank_args: Optional[Sequence[Sequence[Any]]] = None,
        **kwargs: Any,
    ) -> List[Any]:
        """Run ``fn(comm, *rank_args[r], *args, **kwargs)`` on every rank.

        Returns the list of per-rank return values.  ``args``/``kwargs`` are
        shared across ranks (treat them as read-only inside ``fn``);
        ``rank_args`` supplies per-rank positional arguments.
        """
        from repro.simmpi.comm import SimComm

        if rank_args is not None and len(rank_args) != self.nprocs:
            raise ValueError(
                f"rank_args has {len(rank_args)} entries for {self.nprocs} ranks"
            )
        if self.nprocs == 1:
            comm = SimComm(self, 0)
            extra = tuple(rank_args[0]) if rank_args is not None else ()
            return [fn(comm, *extra, *args, **kwargs)]
        return self._run_parallel(fn, args, rank_args, kwargs)

    @abstractmethod
    def _run_parallel(
        self,
        fn: Callable[..., Any],
        args: tuple,
        rank_args: Optional[Sequence[Sequence[Any]]],
        kwargs: dict,
    ) -> List[Any]:
        """Run the SPMD program with ``nprocs >= 2`` ranks."""

    def _join_bounded(self, threads: Sequence[Any]) -> List[int]:
        """Join rank worker threads under the watchdog deadline.

        ``threads[r]`` carries rank ``r``.  Unlike the procs supervisor,
        an in-process backend cannot kill a wedged rank — the deadline
        machinery instead guarantees that every *parked* rank self-detects
        a stall (sliced waits) and fails the run; this join then gives the
        remaining threads one ``timeout + grace`` window to unwind and
        **abandons** any that do not (they were created as daemons when a
        watchdog is configured, so interpreter exit is not held hostage).
        Returns the ranks abandoned this way ([] normally).
        """
        wd = self.watchdog
        assert wd is not None
        slice_s = wd.slice_seconds()
        alive = {r: t for r, t in enumerate(threads)}
        abandon_at: Optional[float] = None
        while alive:
            for r, t in list(alive.items()):
                t.join(timeout=slice_s)
                if not t.is_alive():
                    del alive[r]
            if not alive:
                break
            if getattr(self, "_failure", None) is not None:
                now = time.monotonic()
                if abandon_at is None:
                    abandon_at = now + wd.timeout + wd.grace
                elif now >= abandon_at:
                    return sorted(alive)
        return []

    @staticmethod
    def _raise_collected(
        errors: Sequence[Optional[BaseException]],
        failure: Optional[BaseException] = None,
    ) -> None:
        """Re-raise the most meaningful failure of a finished run.

        Priority: a rank's own (non-remote) exception, then the recorded
        first failure (e.g. a DeadlockError raised on behalf of ranks that
        only ever observed a RemoteRankError), then any RemoteRankError.
        """
        primary = next((e for e in errors if e is not None
                        and not isinstance(e, RemoteRankError)), None)
        if primary is not None:
            raise primary
        if failure is not None and not isinstance(failure, RemoteRankError):
            raise failure
        secondary = next((e for e in errors if e is not None), None)
        if secondary is not None:
            raise secondary

    # -- teardown ----------------------------------------------------------

    def close(self) -> None:
        """Release backend resources.  Idempotent; default is a no-op."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(nprocs={self.nprocs}, "
                f"meter_compute={self.meter_compute})")
