"""Abstract execution-backend interface for the simulated MPI runtime.

A *backend* owns the four mechanics every SPMD execution needs:

1. **spawn** — start one execution context per simulated rank and run the
   user's rank function in it (`:meth:`Backend.run``);
2. **rendezvous** — block each rank at a collective until all ranks have
   deposited a matching contribution (`:meth:`Backend.collective``);
3. **collective compute** — apply the collective's ``execute`` function to
   the full contribution list exactly once and hand each rank its slice;
4. **teardown** — release any OS resources (threads, processes, shared
   memory) the backend acquired (`:meth:`Backend.close``).

Everything *above* this interface — :class:`repro.simmpi.comm.SimComm`,
the partitioner, the analytics engine — is backend-agnostic: the same rank
code runs unmodified on every backend, and because metering happens at the
rendezvous (op, tag, per-rank bytes/work), a fixed-seed program produces
bit-identical results and :class:`~repro.simmpi.metrics.CommStats` on all
of them.  That invariant is the subsystem's correctness oracle and is
enforced by ``tests/test_backends_conformance.py``.

Concrete backends live next to this module and are selected by name via
:func:`repro.simmpi.backends.create_runtime` (chainermn-style registry).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.simmpi.errors import RemoteRankError
from repro.simmpi.metrics import CollectiveEvent, CommStats, TierMetering


class _Pending:
    """State of the collective currently being assembled (in-process)."""

    __slots__ = ("op", "tag", "contribs", "nbytes", "compute", "work",
                 "tiers", "arrived", "results")

    def __init__(self, nprocs: int, op: str, tag: str) -> None:
        self.op = op
        self.tag = tag
        self.contribs: List[Any] = [None] * nprocs
        self.nbytes = np.zeros(nprocs, dtype=np.int64)
        self.compute = np.zeros(nprocs, dtype=np.float64)
        self.work = np.zeros(nprocs, dtype=np.float64)
        #: Per-rank (intra, inter, wire_intra, wire_inter) tuples deposited
        #: by tiered communicator strategies; all-None under ``flat``.
        self.tiers: List[Optional[tuple]] = [None] * nprocs
        self.arrived = 0
        self.results: Optional[List[Any]] = None


class Backend(ABC):
    """Abstract execution backend (one subclass per parallelism strategy).

    Parameters
    ----------
    nprocs:
        Number of simulated MPI ranks.
    meter_compute:
        If False, skip the per-rank ``thread_time`` calls (slightly faster;
        modeled times then contain only communication and charged-work
        terms).  Deterministic kernels run with this off.
    """

    #: Registry name of the backend (set by each subclass).
    name: str = "abstract"

    def __init__(self, nprocs: int, *, meter_compute: bool = True) -> None:
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = int(nprocs)
        self.meter_compute = bool(meter_compute)
        self.stats = CommStats(self.nprocs)
        #: Optional :class:`repro.ft.faults.FaultPlan` (duck-typed: anything
        #: with ``check(rank, op, tag, can_die=...)``).  Consulted rank-side
        #: before every collective deposit so deterministic crashes/delays
        #: can be planted at exact supersteps on every backend.
        self.fault_plan: Optional[Any] = None
        #: Communicator strategy (see :mod:`repro.simmpi.topology`) that
        #: classifies each collective's traffic into machine tiers.  None
        #: or a non-tiered strategy keeps the historical flat metering;
        #: set by :func:`repro.simmpi.backends.create_runtime`.
        self.comm_strategy: Optional[Any] = None
        #: Optional :class:`repro.ft.checkpoint.CkptCommitter` (duck-typed:
        #: ``commit(stats)``).  Invoked in the driver/parent process right
        #: after a ``checkpoint`` collective is recorded — the process that
        #: owns ``stats`` is the only one that can write the epoch's event
        #: prefix, and running commit at record time orders it after the
        #: rank files were persisted by the collective's writer.
        self.ckpt_committer: Optional[Any] = None
        #: Result-delivery mode for in-process collective results
        #: (``"shared"`` sealed read-only objects handed to every rank, or
        #: ``"copy"`` per-rank private copies); None defers to
        #: ``$REPRO_RESULT_SHARING``.  See :mod:`repro.simmpi.dataplane`
        #: and :mod:`repro.simmpi.comm`; set by
        #: :func:`repro.simmpi.backends.create_runtime`.
        self.result_sharing: Optional[str] = None

    # -- fault injection ---------------------------------------------------

    def _fault_check(self, rank: int, op: str, tag: str, *,
                     can_die: bool = False) -> None:
        """Give the fault plan a chance to fire before a deposit.

        ``can_die`` tells the plan whether hard process death is available
        (only the ``procs`` backend runs ranks in killable processes; the
        in-process backends downgrade ``die`` to a raised fault).
        """
        plan = self.fault_plan
        if plan is not None:
            plan.check(rank, op, tag, can_die=can_die)

    # -- rendezvous + collective compute -----------------------------------

    def collective(
        self,
        rank: int,
        op: str,
        tag: str,
        contribution: Any,
        nbytes_sent: int,
        execute: Callable[[List[Any]], List[Any]],
        compute_seconds: float,
        work_units: float = 0.0,
        tier_bytes: Optional[tuple] = None,
    ) -> Any:
        """Deposit ``contribution`` for ``op``; block until all ranks match.

        ``execute`` maps the full list of contributions (indexed by rank) to
        a list of per-rank results; it runs exactly once per superstep.
        ``nbytes_sent`` is this rank's off-rank payload for the metering
        convention documented in :mod:`repro.simmpi.metrics`;
        ``tier_bytes`` is the strategy's optional ``(intra, inter,
        wire_intra, wire_inter)`` classification of that payload.
        """
        self._fault_check(rank, op, tag)
        if self.nprocs == 1:
            results = execute([contribution])
            # single-rank runs meter zero off-rank bytes, so there is no
            # traffic to classify into tiers either
            self._record(op, tag,
                         np.zeros(1, dtype=np.int64),
                         np.array([compute_seconds]),
                         np.array([work_units]))
            return results[0]
        return self._collective_parallel(
            rank, op, tag, contribution, nbytes_sent, execute,
            compute_seconds, work_units, tier_bytes,
        )

    def _collective_parallel(
        self,
        rank: int,
        op: str,
        tag: str,
        contribution: Any,
        nbytes_sent: int,
        execute: Callable[[List[Any]], List[Any]],
        compute_seconds: float,
        work_units: float,
        tier_bytes: Optional[tuple] = None,
    ) -> Any:
        raise NotImplementedError(
            f"{type(self).__name__} does not execute collectives in the "
            "driver process; ranks use their own endpoints"
        )

    @staticmethod
    def _tier_matrix(tier_list: Sequence[Optional[tuple]]):
        """Stack per-rank tier tuples into an ``(nprocs, 4)`` (two-tier) or
        ``(nprocs, 6)`` (rack-tier) int64 matrix, or None if any rank
        deposited without tier metering (flat)."""
        if any(t is None for t in tier_list):
            return None
        return np.asarray(tier_list, dtype=np.int64)

    def _record(
        self,
        op: str,
        tag: str,
        bytes_sent: np.ndarray,
        compute_seconds: np.ndarray,
        work_units: np.ndarray,
        tiers: Optional[np.ndarray] = None,
    ) -> None:
        tier_view: Optional[TierMetering] = None
        if tiers is not None and self.comm_strategy is not None:
            hop_parts = self.comm_strategy.hops(op)
            intra_hops, inter_hops = hop_parts[0], hop_parts[1]
            xrack_hops = hop_parts[2] if len(hop_parts) > 2 else 0
            if tiers.shape[1] == 6:
                # rack-tier column order: intra, inter, xrack, then wires
                tier_view = TierMetering(
                    intra_bytes=tiers[:, 0], inter_bytes=tiers[:, 1],
                    wire_intra=tiers[:, 3], wire_inter=tiers[:, 4],
                    intra_hops=intra_hops, inter_hops=inter_hops,
                    node_of=self.comm_strategy.node_map,
                    xrack_bytes=tiers[:, 2], wire_xrack=tiers[:, 5],
                    xrack_hops=xrack_hops,
                    rack_of=getattr(self.comm_strategy, "rack_map", None),
                )
            else:
                tier_view = TierMetering(
                    intra_bytes=tiers[:, 0], inter_bytes=tiers[:, 1],
                    wire_intra=tiers[:, 2], wire_inter=tiers[:, 3],
                    intra_hops=intra_hops, inter_hops=inter_hops,
                    node_of=self.comm_strategy.node_map,
                )
        self.stats.record(CollectiveEvent(
            op=op, tag=tag, bytes_sent=bytes_sent,
            compute_seconds=compute_seconds, work_units=work_units,
            tiers=tier_view,
        ))
        if op == "checkpoint" and self.ckpt_committer is not None:
            self.ckpt_committer.commit(self.stats)

    # -- spawning SPMD programs --------------------------------------------

    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        rank_args: Optional[Sequence[Sequence[Any]]] = None,
        **kwargs: Any,
    ) -> List[Any]:
        """Run ``fn(comm, *rank_args[r], *args, **kwargs)`` on every rank.

        Returns the list of per-rank return values.  ``args``/``kwargs`` are
        shared across ranks (treat them as read-only inside ``fn``);
        ``rank_args`` supplies per-rank positional arguments.
        """
        from repro.simmpi.comm import SimComm

        if rank_args is not None and len(rank_args) != self.nprocs:
            raise ValueError(
                f"rank_args has {len(rank_args)} entries for {self.nprocs} ranks"
            )
        if self.nprocs == 1:
            comm = SimComm(self, 0)
            extra = tuple(rank_args[0]) if rank_args is not None else ()
            return [fn(comm, *extra, *args, **kwargs)]
        return self._run_parallel(fn, args, rank_args, kwargs)

    @abstractmethod
    def _run_parallel(
        self,
        fn: Callable[..., Any],
        args: tuple,
        rank_args: Optional[Sequence[Sequence[Any]]],
        kwargs: dict,
    ) -> List[Any]:
        """Run the SPMD program with ``nprocs >= 2`` ranks."""

    @staticmethod
    def _raise_collected(
        errors: Sequence[Optional[BaseException]],
        failure: Optional[BaseException] = None,
    ) -> None:
        """Re-raise the most meaningful failure of a finished run.

        Priority: a rank's own (non-remote) exception, then the recorded
        first failure (e.g. a DeadlockError raised on behalf of ranks that
        only ever observed a RemoteRankError), then any RemoteRankError.
        """
        primary = next((e for e in errors if e is not None
                        and not isinstance(e, RemoteRankError)), None)
        if primary is not None:
            raise primary
        if failure is not None and not isinstance(failure, RemoteRankError):
            raise failure
        secondary = next((e for e in errors if e is not None), None)
        if secondary is not None:
            raise secondary

    # -- teardown ----------------------------------------------------------

    def close(self) -> None:
        """Release backend resources.  Idempotent; default is a no-op."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(nprocs={self.nprocs}, "
                f"meter_compute={self.meter_compute})")
