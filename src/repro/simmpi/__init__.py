"""Simulated MPI substrate.

The paper runs XtraPuLP as an MPI+OpenMP program on up to 8192 nodes of the
NCSA Blue Waters machine.  This package provides the stand-in transport: a
deterministic, in-process bulk-synchronous runtime in which each simulated
MPI rank executes the *same per-rank code* a real MPI program would, and all
inter-rank interaction goes through metered collective operations on NumPy
buffers (``Bcast``, ``Alltoall``, ``Alltoallv``, ``Allreduce``, ...).

How ranks execute is pluggable (:mod:`repro.simmpi.backends`): ``serial``
runs them as a deterministic round-robin superstep interpreter, ``threads``
runs one native thread per rank (NumPy releases the GIL), and ``procs``
forks one process per rank and moves payloads through
``multiprocessing.shared_memory``, escaping the GIL for pure-Python rank
code.  The procs backend's payload transport is itself selectable
(:mod:`repro.simmpi.dataplane`): the default ``shm`` data plane parks
large NumPy buffers in long-lived arena segments and ships zero-copy
``(segment, offset, nbytes)`` descriptors — receivers get read-only
shared views; :func:`~repro.simmpi.dataplane.materialize` is the
copy-on-write escape hatch — while ``pickle`` is the original
copy-through plane kept as a verification mode (``$REPRO_DATAPLANE``).
Collectives are rendezvous points in every backend; because the
algorithms built on top are bulk-synchronous (all communication happens in
collectives, ranks only mutate rank-local state in between), a fixed-seed
program produces bit-identical results and communication records on all
backends — pick one with :func:`~repro.simmpi.backends.create_runtime` or
the ``REPRO_BACKEND`` environment variable.

How communication is *priced* is equally pluggable
(:mod:`repro.simmpi.topology`): a ChainerMN-style communicator registry
maps ranks onto a machine topology (nodes, optionally racks).  The default
``flat`` strategy keeps today's one-rank-per-node metering; the
``hierarchical`` strategy models a two-level exchange (intra-node gather
to a per-node leader, one aggregated inter-node message per node pair,
intra-node scatter) and splits every event's bytes/hops into intra- vs
inter-node tiers — without touching payload movement, so results and
communication records stay bit-identical across strategies.  Pick one with
the ``comm=`` argument of ``create_runtime``/``run_spmd`` or the
``REPRO_COMM`` environment variable; tiered machine flavors
(:data:`~repro.simmpi.timing.BLUE_WATERS_TIERED`) price each tier with its
own alpha/beta constants.

Every byte that crosses a rank boundary is accounted by
:class:`~repro.simmpi.metrics.CommStats`, and
:class:`~repro.simmpi.timing.TimeModel` turns the per-superstep record of
(max-rank compute time, collective payload sizes) into a modeled parallel
execution time using an alpha-beta (latency/bandwidth) machine model.  The
benchmark harness reports this modeled time alongside wall time; scaling
*shapes* in the paper's figures are driven by per-rank work and message
volume, both of which are measured exactly here.
"""

from repro.simmpi.backends import (
    Backend,
    ProcsBackend,
    SerialBackend,
    ThreadsBackend,
    available_backends,
    create_runtime,
    default_backend,
    register_backend,
)
from repro.simmpi.comm import SimComm
from repro.simmpi.dataplane import (
    DATAPLANE_ENV_VAR,
    DATAPLANES,
    default_dataplane,
    materialize,
)
from repro.simmpi.errors import (
    CollectiveMismatchError,
    DeadlockError,
    HungRankError,
    PayloadCorruptionError,
    RemoteRankError,
    SimMPIError,
    UnpicklableRankError,
    format_ranks,
)
from repro.simmpi.metrics import CommStats, CollectiveEvent, TierMetering
from repro.simmpi.runtime import Runtime, run_spmd
from repro.simmpi.timing import (
    BLUE_WATERS_LIKE,
    BLUE_WATERS_TIERED,
    MachineModel,
    TieredMachineModel,
    TimeModel,
)
from repro.simmpi.topology import (
    COMM_ENV_VAR,
    Communicator,
    FlatCommunicator,
    HierarchicalCommunicator,
    Topology,
    available_communicators,
    create_communicator,
    default_comm,
    make_topology,
    parse_comm_spec,
)

__all__ = [
    "SimComm",
    "Runtime",
    "run_spmd",
    "Backend",
    "SerialBackend",
    "ThreadsBackend",
    "ProcsBackend",
    "create_runtime",
    "register_backend",
    "available_backends",
    "default_backend",
    "DATAPLANES",
    "DATAPLANE_ENV_VAR",
    "default_dataplane",
    "materialize",
    "CommStats",
    "CollectiveEvent",
    "TierMetering",
    "MachineModel",
    "TieredMachineModel",
    "TimeModel",
    "BLUE_WATERS_LIKE",
    "BLUE_WATERS_TIERED",
    "Topology",
    "make_topology",
    "parse_comm_spec",
    "Communicator",
    "FlatCommunicator",
    "HierarchicalCommunicator",
    "create_communicator",
    "available_communicators",
    "default_comm",
    "COMM_ENV_VAR",
    "SimMPIError",
    "CollectiveMismatchError",
    "DeadlockError",
    "HungRankError",
    "PayloadCorruptionError",
    "RemoteRankError",
    "UnpicklableRankError",
    "format_ranks",
]
