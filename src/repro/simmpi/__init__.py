"""Simulated MPI substrate.

The paper runs XtraPuLP as an MPI+OpenMP program on up to 8192 nodes of the
NCSA Blue Waters machine.  This package provides the stand-in transport: a
deterministic, in-process bulk-synchronous runtime in which each simulated
MPI rank executes the *same per-rank code* a real MPI program would, and all
inter-rank interaction goes through metered collective operations on NumPy
buffers (``Bcast``, ``Alltoall``, ``Alltoallv``, ``Allreduce``, ...).

How ranks execute is pluggable (:mod:`repro.simmpi.backends`): ``serial``
runs them as a deterministic round-robin superstep interpreter, ``threads``
runs one native thread per rank (NumPy releases the GIL), and ``procs``
forks one process per rank and moves payloads through
``multiprocessing.shared_memory``, escaping the GIL for pure-Python rank
code.  Collectives are rendezvous points in every backend; because the
algorithms built on top are bulk-synchronous (all communication happens in
collectives, ranks only mutate rank-local state in between), a fixed-seed
program produces bit-identical results and communication records on all
backends — pick one with :func:`~repro.simmpi.backends.create_runtime` or
the ``REPRO_BACKEND`` environment variable.

Every byte that crosses a rank boundary is accounted by
:class:`~repro.simmpi.metrics.CommStats`, and
:class:`~repro.simmpi.timing.TimeModel` turns the per-superstep record of
(max-rank compute time, collective payload sizes) into a modeled parallel
execution time using an alpha-beta (latency/bandwidth) machine model.  The
benchmark harness reports this modeled time alongside wall time; scaling
*shapes* in the paper's figures are driven by per-rank work and message
volume, both of which are measured exactly here.
"""

from repro.simmpi.backends import (
    Backend,
    ProcsBackend,
    SerialBackend,
    ThreadsBackend,
    available_backends,
    create_runtime,
    default_backend,
    register_backend,
)
from repro.simmpi.comm import SimComm
from repro.simmpi.errors import (
    CollectiveMismatchError,
    DeadlockError,
    RemoteRankError,
    SimMPIError,
)
from repro.simmpi.metrics import CommStats, CollectiveEvent
from repro.simmpi.runtime import Runtime, run_spmd
from repro.simmpi.timing import MachineModel, TimeModel, BLUE_WATERS_LIKE

__all__ = [
    "SimComm",
    "Runtime",
    "run_spmd",
    "Backend",
    "SerialBackend",
    "ThreadsBackend",
    "ProcsBackend",
    "create_runtime",
    "register_backend",
    "available_backends",
    "default_backend",
    "CommStats",
    "CollectiveEvent",
    "MachineModel",
    "TimeModel",
    "BLUE_WATERS_LIKE",
    "SimMPIError",
    "CollectiveMismatchError",
    "DeadlockError",
    "RemoteRankError",
]
