"""The reproduction's graph test suite (the Table I analog).

The paper's inputs are multi-GB downloads (UF collection, SNAP, Koblenz,
Web Data Commons) unavailable offline; every experiment here runs on
scaled-down *class representatives* generated to match the structural
signature that drives each paper result:

=================  ==========================================  ================
paper graphs       signature                                    representative
=================  ==========================================  ================
lj/orkut/
friendster/
twitter            skewed degrees, low diameter, no id          ``social``
                   locality (random snapshot order)
wikilinks/dbpedia  hyperlink graphs, similar profile            ``social``
indochina…uk-2007,
wdc12-*            communities + crawl-ordered ids: block       ``webcrawl``
                   partitions cut little but balance terribly
rmat_22..28        R-MAT, Graph500 parameters                   ``rmat``
RandER             uniform random                               ``erdos_renyi``
RandHD             1-D local random, high diameter              ``rand_hd``
InternalMesh*,
nlpkkt*            regular stencils, davg 13, high diameter     ``mesh3d``
=================  ==========================================  ================

Sizes are parameterized: ``scale="tiny"`` for unit tests, ``"small"`` for
quick benches, ``"medium"`` for the headline runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.graph import (
    Graph,
    erdos_renyi,
    mesh3d,
    rand_hd,
    rmat,
    social,
    webcrawl,
)

#: Per-scale target vertex counts.
SCALE_N = {"tiny": 1 << 10, "small": 1 << 13, "medium": 1 << 15, "large": 1 << 17}


@dataclass(frozen=True)
class SuiteEntry:
    """One suite graph: constructor plus metadata."""

    name: str
    family: str           # social | webcrawl | rmat | random | randhd | mesh
    build: Callable[[int, int], Graph]   # (n, seed) -> Graph
    paper_analog: str
    recommended_init: str = "hybrid"     # xtrapulp init strategy


def _mesh_dims(n: int) -> tuple[int, int, int]:
    side = max(2, round(n ** (1.0 / 3.0)))
    return side, side, side


SUITE: Dict[str, SuiteEntry] = {
    e.name: e
    for e in [
        SuiteEntry(
            "social", "social",
            lambda n, seed: social(n, 24, seed=seed),
            "lj / orkut / twitter / friendster",
        ),
        SuiteEntry(
            "webcrawl", "webcrawl",
            lambda n, seed: webcrawl(n, 24, seed=seed),
            "uk-2002 / uk-2007 / wdc12-*",
        ),
        SuiteEntry(
            "rmat", "rmat",
            lambda n, seed: rmat(max(1, (n - 1).bit_length()), 16, seed=seed),
            "rmat_22 .. rmat_28",
        ),
        SuiteEntry(
            "rander", "random",
            lambda n, seed: erdos_renyi(n, 16, seed=seed),
            "RandER",
        ),
        SuiteEntry(
            "randhd", "randhd",
            lambda n, seed: rand_hd(n, 16, seed=seed),
            "RandHD",
            recommended_init="block",
        ),
        SuiteEntry(
            "mesh", "mesh",
            lambda n, seed: mesh3d(*_mesh_dims(n)),
            "nlpkkt160/200/240, InternalMesh1-4",
            recommended_init="hybrid",
        ),
    ]
}

#: The six graphs used by the paper's Cluster-1 strong-scaling and quality
#: figures (lj, orkut, friendster, wdc12-pay, rmat_24, nlpkkt240) — one per
#: structural profile.
REPRESENTATIVE_SIX: List[str] = [
    "social", "webcrawl", "rmat", "rander", "randhd", "mesh",
]


def get_graph(
    name: str, scale: str = "small", *, seed: Optional[int] = None
) -> Graph:
    """Build a suite graph at the given scale."""
    if name not in SUITE:
        raise KeyError(f"unknown suite graph {name!r}; have {sorted(SUITE)}")
    if scale not in SCALE_N:
        raise KeyError(f"unknown scale {scale!r}; have {sorted(SCALE_N)}")
    entry = SUITE[name]
    # stable per-name seed (str hash() is salted per process)
    base_seed = 1000 + sum(ord(c) for c in name) if seed is None else seed
    return entry.build(SCALE_N[scale], base_seed)


def suite_names() -> List[str]:
    return sorted(SUITE)
