"""HC: harmonic centrality of ``k`` sample sources (multi-source BFS).

The paper computes harmonic centrality *of* 100 vertices: for each sampled
source s, ``HC(s) = sum over reachable v of 1 / d(s, v)`` — k full BFS
traversals, the most expensive kernel in Fig. 8."""

from __future__ import annotations

import numpy as np

from repro.dist.distgraph import DistGraph
from repro.dist.ops import ExchangePlan, distributed_bfs_levels
from repro.simmpi.comm import SimComm


def harmonic_centrality(
    comm: SimComm,
    dg: DistGraph,
    plan: ExchangePlan,
    *,
    num_sources: int = 100,
    seed: int = 7,
) -> np.ndarray:
    """Per owned vertex: its harmonic centrality if it is one of the
    ``num_sources`` sampled vertices, else 0.

    Sources are drawn deterministically from the global id space, so every
    rank agrees without extra communication.
    """
    rng = np.random.default_rng(seed)
    k = min(num_sources, dg.global_n)
    sources = rng.choice(dg.global_n, size=k, replace=False)
    out = np.zeros(dg.n_local, dtype=np.float64)
    for s in sources:
        levels = distributed_bfs_levels(comm, dg, plan, int(s))
        reached = levels > 0
        local_hc = float((1.0 / levels[reached]).sum()) if np.any(reached) else 0.0
        hc = comm.allreduce(local_hc, op="sum")
        owner = dg.dist.owner(int(s))
        if owner == dg.rank:
            lid = int(dg.owned_lids(np.array([s]))[0])
            out[lid] = hc
    return out
