"""Distributed graph analytics (the paper's Fig. 8 workloads, from [29]).

Six bulk-synchronous kernels run over a partitioned
:class:`~repro.dist.distgraph.DistGraph`, where the *partition is the
distribution* — the whole point of Fig. 8 is that a better partition cuts
the analytics' communication volume and therefore end-to-end time:

* HC — harmonic centrality of ``k`` sources (multi-BFS),
* KC — approximate k-core decomposition (iterated h-index),
* LP — label-propagation community detection,
* PR — PageRank (power iteration),
* SCC — largest strongly connected component (trim + FW-BW),
* WCC — weakly connected components (min-label propagation).
"""

from repro.analytics.engine import AnalyticResult, run_analytic
from repro.analytics.pagerank import pagerank
from repro.analytics.wcc import weakly_connected_components
from repro.analytics.scc import largest_scc
from repro.analytics.kcore import kcore_decomposition
from repro.analytics.labelprop import label_propagation_communities
from repro.analytics.harmonic import harmonic_centrality

__all__ = [
    "AnalyticResult",
    "run_analytic",
    "pagerank",
    "weakly_connected_components",
    "largest_scc",
    "kcore_decomposition",
    "label_propagation_communities",
    "harmonic_centrality",
]
