"""Runner and shared helpers for the distributed analytics.

:func:`run_analytic` wires one kernel through the simulated-MPI runtime:
distribute the graph by the chosen partition (or strategy), build the halo
exchange plan, run the kernel SPMD, and assemble a global result plus the
modeled end-to-end time — the quantity Fig. 8 compares across partitioning
strategies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Union

import numpy as np

from repro.dist.build import build_dist_graph
from repro.dist.distgraph import DistGraph
from repro.dist.distribution import Distribution, make_distribution
from repro.dist.ops import ExchangePlan
from repro.graph.builders import symmetrize
from repro.graph.csr import Graph
from repro.simmpi.comm import SimComm
from repro.simmpi.metrics import CommStats
from repro.simmpi.backends import Backend, create_runtime
from repro.simmpi.timing import BLUE_WATERS_LIKE, MachineModel, TimeModel


@dataclass
class AnalyticResult:
    """Global output of one analytic run."""

    name: str
    values: np.ndarray          # one entry per global vertex
    stats: CommStats
    wall_seconds: float
    machine: MachineModel = BLUE_WATERS_LIKE

    @property
    def modeled_seconds(self) -> float:
        """Modeled parallel time of the kernel itself (build/plan excluded)."""
        model = TimeModel(self.machine)
        keep = [
            e.tag for e in self.stats.events if e.tag not in ("build", "plan")
        ]
        return model.total_time(self.stats.filtered(keep))


def segment_sums(dg: DistGraph, values_of_neighbors: np.ndarray) -> np.ndarray:
    """Per-owned-vertex sum of an array aligned with ``dg.adj``."""
    src = np.repeat(
        np.arange(dg.n_local, dtype=np.int64), dg.local_degrees
    )
    return np.bincount(src, weights=values_of_neighbors, minlength=dg.n_local)


def attach_directed(dg: DistGraph, directed: Graph) -> None:
    """Attach out/in directed adjacency (local ids) to a DistGraph built on
    the symmetric closure of ``directed``.

    Every directed arc incident to an owned vertex has both endpoints in
    the owned+ghost lid space (the symmetric closure's ghost layer covers
    the union of in- and out-neighborhoods), so arcs localize directly.
    """
    if not directed.directed:
        raise ValueError("attach_directed expects a directed graph")

    def localize(gids: np.ndarray) -> np.ndarray:
        out = np.empty(gids.size, dtype=np.int64)
        owner = dg.dist.owner(gids)
        mine = owner == dg.rank
        if np.any(mine):
            out[mine] = dg.owned_lids(gids[mine])
        if np.any(~mine):
            out[~mine] = dg.ghost_lids(gids[~mine])
        return out

    from repro.graph.gather import neighbor_gather

    owned = dg.owned_gids
    out_nbrs, out_counts = neighbor_gather(directed.offsets, directed.adj, owned)
    dg.dir_out_offsets = np.zeros(dg.n_local + 1, dtype=np.int64)
    np.cumsum(out_counts, out=dg.dir_out_offsets[1:])
    dg.dir_out_adj = localize(out_nbrs)

    rev = directed.reversed()
    in_nbrs, in_counts = neighbor_gather(rev.offsets, rev.adj, owned)
    dg.dir_in_offsets = np.zeros(dg.n_local + 1, dtype=np.int64)
    np.cumsum(in_counts, out=dg.dir_in_offsets[1:])
    dg.dir_in_adj = localize(in_nbrs)


def run_analytic(
    graph: Graph,
    kernel: Callable[..., np.ndarray],
    *,
    nprocs: int,
    distribution: Union[str, Distribution, np.ndarray] = "block",
    machine: MachineModel = BLUE_WATERS_LIKE,
    directed: Optional[Graph] = None,
    name: Optional[str] = None,
    backend: Union[str, None, Backend] = None,
    **kernel_kwargs: Any,
) -> AnalyticResult:
    """Run ``kernel(comm, dg, plan, **kwargs)`` SPMD and gather its output.

    ``kernel`` returns one value per *owned* vertex; the runner reassembles
    the global array.  ``distribution`` may be a strategy name, a
    Distribution, or a partition array (parts == ranks, the Fig. 8 setup).
    ``directed`` optionally supplies the directed original whose in/out
    adjacency SCC-style kernels need; ``graph`` must then be its symmetric
    closure.
    """
    if isinstance(distribution, np.ndarray):
        dist: Distribution = make_distribution(
            "partition", graph.n, nprocs, parts=distribution
        )
    elif isinstance(distribution, str):
        dist = make_distribution(distribution, graph.n, nprocs)
    else:
        dist = distribution
    if directed is not None and symmetrize(directed).n != graph.n:
        raise ValueError("directed graph does not match the symmetric closure")

    def rank_main(comm: SimComm):
        dg = build_dist_graph(comm, graph, dist)
        if directed is not None:
            with comm.phase("build"):
                attach_directed(dg, directed)
        plan = ExchangePlan(comm, dg)
        with comm.phase(name or getattr(kernel, "__name__", "analytic")):
            values = kernel(comm, dg, plan, **kernel_kwargs)
        return dg.owned_gids, np.asarray(values)

    # kernels charge deterministic work units; disable the noisy
    # thread-time metering so modeled times are exactly reproducible
    runtime = create_runtime(backend, nprocs=nprocs, meter_compute=False)
    try:
        t0 = time.perf_counter()
        per_rank = runtime.run(rank_main)
        wall = time.perf_counter() - t0
    finally:
        runtime.close()
    first = per_rank[0][1]
    values = np.empty(graph.n, dtype=first.dtype)
    for gids, vals in per_rank:
        values[gids] = vals
    return AnalyticResult(
        name=name or getattr(kernel, "__name__", "analytic"),
        values=values,
        stats=runtime.stats,
        wall_seconds=wall,
        machine=machine,
    )
