"""LP: label-propagation community detection (Raghavan et al. [26])."""

from __future__ import annotations

import numpy as np

from repro.dist.distgraph import DistGraph
from repro.dist.ops import ExchangePlan
from repro.graph.gather import neighbor_gather_with_sources
from repro.simmpi.comm import SimComm


def label_propagation_communities(
    comm: SimComm,
    dg: DistGraph,
    plan: ExchangePlan,
    *,
    iters: int = 10,
    seed: int = 1,
) -> np.ndarray:
    """Community label per owned vertex after ``iters`` sweeps.

    Each vertex adopts the most frequent label among its neighbors
    (lowest label breaks ties); labels start as global ids.  Fixed sweep
    count as in the paper's analytics suite — LP is used as a benchmark
    kernel, not run to convergence.
    """
    labels = dg.l2g.astype(np.int64).copy()
    rng = np.random.default_rng(seed + dg.rank)
    _ = rng
    all_owned = np.arange(dg.n_local, dtype=np.int64)
    for _ in range(max(1, iters)):
        changed = 0
        if dg.n_local:
            neigh, srcs, _c = neighbor_gather_with_sources(
                dg.offsets, dg.adj, all_owned
            )
            comm.charge(2 * neigh.size)  # gather + sort-dominated sweep
            nl = labels[neigh]
            # plurality label per source: count (src, label) pairs
            order = np.lexsort((nl, srcs))
            s = srcs[order]
            l = nl[order]
            group = np.concatenate(
                ([True], (s[1:] != s[:-1]) | (l[1:] != l[:-1]))
            )
            starts = np.flatnonzero(group)
            sizes = np.diff(np.append(starts, s.size))
            g_src = s[starts]
            g_lab = l[starts]
            # pick the largest group per source; ties → smaller label
            pick_order = np.lexsort((g_lab, -sizes, g_src))
            first = np.concatenate(
                ([True], g_src[pick_order][1:] != g_src[pick_order][:-1])
            )
            sel = pick_order[first]
            winner = np.full(dg.n_local, -1, dtype=np.int64)
            winner[g_src[sel]] = g_lab[sel]
            upd = (winner >= 0) & (winner != labels[: dg.n_local])
            changed = int(upd.sum())
            labels[: dg.n_local][upd] = winner[upd]
        plan.pull(comm, labels)
        total = comm.allreduce(changed, op="sum")
        if total == 0:
            break
    return labels[: dg.n_local].copy()
