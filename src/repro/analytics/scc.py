"""SCC: extraction of the largest strongly connected component.

The paper's kernel ([29]) finds the giant SCC of a directed graph with the
trim + forward-backward scheme:

1. **Trim** — iteratively discard vertices with zero in- or out-degree
   among the remaining vertices (they are singleton SCCs).
2. **Pivot** — pick the remaining vertex with the largest
   ``in-degree × out-degree`` product (a giant-SCC member with high
   probability).
3. **FW-BW** — BFS from the pivot along out-edges and along in-edges; the
   intersection of the two reachable sets is the pivot's SCC — for web
   graphs, the giant one.

Requires the directed adjacency attached by
:func:`repro.analytics.engine.attach_directed`.
"""

from __future__ import annotations

import numpy as np

from repro.dist.distgraph import DistGraph
from repro.dist.ops import ExchangePlan
from repro.graph.gather import neighbor_gather
from repro.simmpi.comm import SimComm


def _directed_reach(
    comm: SimComm,
    dg: DistGraph,
    plan: ExchangePlan,
    offsets: np.ndarray,
    adj: np.ndarray,
    start_owned: np.ndarray,
    alive: np.ndarray,
) -> np.ndarray:
    """Mask (owned+ghost) of vertices reachable from ``start_owned`` along
    the given local arcs, restricted to ``alive`` vertices."""
    reach = np.zeros(dg.n_total, dtype=np.int64)
    reach[start_owned] = 1
    plan.pull(comm, reach)
    expanded = np.zeros(dg.n_local, dtype=bool)
    owned_alive = alive[: dg.n_local]
    while True:
        frontier = np.flatnonzero(
            (reach[: dg.n_local] == 1) & ~expanded & owned_alive
        )
        total = comm.allreduce(int(frontier.size), op="sum")
        if total == 0:
            break
        expanded[frontier] = True
        if frontier.size:
            neigh, _ = neighbor_gather(offsets, adj, frontier)
            comm.charge(neigh.size)
            fresh = neigh[(reach[neigh] == 0) & alive[neigh]]
            if fresh.size:
                reach[np.unique(fresh)] = 1
        # ghost discoveries fold back to their owners, then owners'
        # authoritative state refreshes every ghost copy
        plan.push(comm, reach, op="max")
        plan.pull(comm, reach)
    return reach.astype(bool)


def largest_scc(
    comm: SimComm,
    dg: DistGraph,
    plan: ExchangePlan,
    *,
    max_trim_rounds: int = 30,
) -> np.ndarray:
    """Per owned vertex: 1 if in the largest SCC, else 0."""
    if dg.dir_out_offsets is None or dg.dir_in_offsets is None:
        raise ValueError(
            "largest_scc needs directed adjacency; pass directed= to "
            "run_analytic"
        )
    out_off, out_adj = dg.dir_out_offsets, dg.dir_out_adj
    in_off, in_adj = dg.dir_in_offsets, dg.dir_in_adj

    alive = np.ones(dg.n_total, dtype=bool)
    # --- trim: repeatedly drop vertices with no alive in- or out-neighbor
    for _ in range(max_trim_rounds):
        owned_alive = np.flatnonzero(alive[: dg.n_local])
        dropped = 0
        if owned_alive.size:
            o_neigh, o_counts = neighbor_gather(out_off, out_adj, owned_alive)
            i_neigh, i_counts = neighbor_gather(in_off, in_adj, owned_alive)
            comm.charge(o_neigh.size + i_neigh.size + owned_alive.size)
            o_src = np.repeat(np.arange(owned_alive.size), o_counts)
            i_src = np.repeat(np.arange(owned_alive.size), i_counts)
            out_deg = np.bincount(
                o_src, weights=alive[o_neigh].astype(np.float64),
                minlength=owned_alive.size,
            )
            in_deg = np.bincount(
                i_src, weights=alive[i_neigh].astype(np.float64),
                minlength=owned_alive.size,
            )
            trim = owned_alive[(out_deg == 0) | (in_deg == 0)]
            dropped = trim.size
            alive[trim] = False
        alive_f = alive.astype(np.int64)
        plan.pull(comm, alive_f)
        alive = alive_f.astype(bool)
        total = comm.allreduce(int(dropped), op="sum")
        if total == 0:
            break

    # --- pivot: max alive in*out degree product, gid tiebreak
    owned_alive = np.flatnonzero(alive[: dg.n_local])
    if owned_alive.size:
        o_deg = np.diff(out_off)[owned_alive]
        i_deg = np.diff(in_off)[owned_alive]
        score = (o_deg.astype(np.float64) + 1) * (i_deg.astype(np.float64) + 1)
        best = int(np.argmax(score))
        local_best = (float(score[best]), int(dg.l2g[owned_alive[best]]))
    else:
        local_best = (-1.0, -1)
    candidates = comm.allgather(local_best)
    pivot_gid = max(candidates)[1]
    if pivot_gid < 0:
        return np.zeros(dg.n_local, dtype=np.int64)

    start = np.empty(0, dtype=np.int64)
    if dg.dist.owner(pivot_gid) == dg.rank:
        start = dg.owned_lids(np.array([pivot_gid]))

    fwd = _directed_reach(comm, dg, plan, out_off, out_adj, start, alive)
    bwd = _directed_reach(comm, dg, plan, in_off, in_adj, start, alive)
    scc = fwd & bwd & alive
    return scc[: dg.n_local].astype(np.int64)
