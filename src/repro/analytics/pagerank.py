"""PageRank (PR): damped power iteration over the distributed graph."""

from __future__ import annotations

import numpy as np

from repro.analytics.engine import segment_sums
from repro.dist.distgraph import DistGraph
from repro.dist.ops import ExchangePlan
from repro.simmpi.comm import SimComm


def pagerank(
    comm: SimComm,
    dg: DistGraph,
    plan: ExchangePlan,
    *,
    iters: int = 20,
    damping: float = 0.85,
) -> np.ndarray:
    """SPMD PageRank; returns the owned vertices' scores (summing to ~1
    globally, with dangling mass redistributed uniformly).

    Each superstep pulls fresh ghost contributions (one Alltoallv — the
    traffic a good partition shrinks), then accumulates neighbor
    contributions locally.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    n = dg.global_n
    deg = dg.degrees_full.astype(np.float64)  # owned + ghost degrees
    x = np.full(dg.n_total, 1.0 / n, dtype=np.float64)
    contrib = np.zeros(dg.n_total, dtype=np.float64)
    for _ in range(max(1, iters)):
        comm.charge(dg.adj.size + 2 * dg.n_local)
        np.divide(x, np.maximum(deg, 1.0), out=contrib)
        contrib[: dg.n_local][dg.local_degrees == 0] = 0.0
        plan.pull(comm, contrib)
        sums = segment_sums(dg, contrib[dg.adj])
        # dangling vertices spread their mass uniformly
        local_dangling = float(
            x[: dg.n_local][dg.local_degrees == 0].sum()
        )
        dangling = comm.allreduce(local_dangling, op="sum")
        x[: dg.n_local] = (
            (1.0 - damping) / n + damping * (sums + dangling / n)
        )
        plan.pull(comm, x)
    return x[: dg.n_local].copy()
