"""KC: approximate k-core decomposition by iterated h-indices.

Lü et al. (2016) show that repeatedly replacing each vertex's value by the
h-index of its neighbors' values converges from the degrees to the core
numbers; a bounded number of rounds gives the paper's "approximate K-core
decomposition" (it is exact once converged)."""

from __future__ import annotations

import numpy as np

from repro.dist.distgraph import DistGraph
from repro.dist.ops import ExchangePlan
from repro.graph.gather import neighbor_gather_with_sources
from repro.simmpi.comm import SimComm


def _segment_h_index(
    values: np.ndarray, srcs: np.ndarray, n: int
) -> np.ndarray:
    """h-index per source: the largest h with >= h entries >= h.

    ``values``/``srcs`` are parallel arrays grouped per source vertex.
    """
    out = np.zeros(n, dtype=np.int64)
    if values.size == 0:
        return out
    # sort within each source by descending value
    order = np.lexsort((-values, srcs))
    s = srcs[order]
    v = values[order]
    starts = np.flatnonzero(np.concatenate(([True], s[1:] != s[:-1])))
    first_of = np.zeros(s.size, dtype=np.int64)
    first_of[starts] = starts
    first_of = np.maximum.accumulate(first_of)
    rank_within = np.arange(s.size, dtype=np.int64) - first_of + 1
    ok = v >= rank_within
    h = np.where(ok, rank_within, 0)
    np.maximum.at(out, s, h)
    return out


def kcore_decomposition(
    comm: SimComm,
    dg: DistGraph,
    plan: ExchangePlan,
    *,
    max_rounds: int = 50,
) -> np.ndarray:
    """Core number per owned vertex (exact at convergence; ``max_rounds``
    bounds the superstep count like the paper's approximate variant)."""
    core = dg.degrees_full.astype(np.int64).copy()
    all_owned = np.arange(dg.n_local, dtype=np.int64)
    for _ in range(max(1, max_rounds)):
        changed = 0
        if dg.n_local:
            neigh, srcs, _c = neighbor_gather_with_sources(
                dg.offsets, dg.adj, all_owned
            )
            comm.charge(2 * neigh.size)
            h = _segment_h_index(core[neigh], srcs, dg.n_local)
            new = np.minimum(core[: dg.n_local], h)
            changed = int(np.count_nonzero(new != core[: dg.n_local]))
            core[: dg.n_local] = new
        plan.pull(comm, core)
        total = comm.allreduce(changed, op="sum")
        if total == 0:
            break
    return core[: dg.n_local].copy()
