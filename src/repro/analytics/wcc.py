"""WCC: weakly connected components by min-label propagation."""

from __future__ import annotations

import numpy as np

from repro.dist.distgraph import DistGraph
from repro.dist.ops import ExchangePlan
from repro.graph.gather import neighbor_gather
from repro.simmpi.comm import SimComm


def weakly_connected_components(
    comm: SimComm, dg: DistGraph, plan: ExchangePlan
) -> np.ndarray:
    """Component id (= minimum member gid) per owned vertex.

    Classic hook-free label propagation: every vertex repeatedly adopts the
    minimum label in its closed neighborhood; converges in O(component
    diameter) supersteps.
    """
    labels = dg.l2g.astype(np.int64).copy()
    active = np.arange(dg.n_local, dtype=np.int64)
    while True:
        changed = np.empty(0, dtype=np.int64)
        neigh = np.empty(0, dtype=np.int64)
        if active.size:
            neigh, counts = neighbor_gather(dg.offsets, dg.adj, active)
            comm.charge(neigh.size + active.size)
        if neigh.size:
            src = np.repeat(active, counts)
            nl = labels[neigh]
            # per-source min of neighbor labels
            order = np.argsort(src, kind="stable")
            s_sorted = src[order]
            v_sorted = nl[order]
            starts = np.flatnonzero(
                np.concatenate(([True], s_sorted[1:] != s_sorted[:-1]))
            )
            mins = np.minimum.reduceat(v_sorted, starts)
            who = s_sorted[starts]
            better = mins < labels[who]
            changed = who[better]
            labels[changed] = mins[better]
        # owned labels are authoritative (each rank owns all incident edges
        # of its vertices), so refreshing ghosts is the only traffic needed
        plan.pull(comm, labels)
        # vertices whose neighborhood may still improve: those adjacent to a
        # change; conservatively re-activate all owned vertices while any
        # rank changed something (simple and correct; converges fast)
        total = comm.allreduce(int(changed.size), op="sum")
        if total == 0:
            break
        active = np.arange(dg.n_local, dtype=np.int64)
    return labels[: dg.n_local].copy()
