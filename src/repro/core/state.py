"""Per-rank partitioning state shared by all XtraPuLP phases."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.core.params import PulpParams
from repro.dist.distgraph import DistGraph
from repro.dist.wire import WireSpec, make_wire_spec
from repro.graph.gather import neighbor_gather_with_sources
from repro.simmpi.comm import SimComm

UNASSIGNED = np.int64(-1)


@dataclass
class RankState:
    """One rank's partitioning state.

    ``parts`` covers owned + ghost vertices (local-id indexed).  Global
    per-part totals ``Sv``/``Se``/``Sc`` are kept consistent across ranks by
    Allreduce at iteration boundaries; within an iteration each rank tracks
    its local deltas ``Cv``/``Ce``/``Cc`` and *estimates* global sizes as
    ``S + mult * C`` (the paper's distributed-update throttle, §III.C).
    """

    dg: DistGraph
    num_parts: int
    params: PulpParams
    parts: np.ndarray = field(init=False)
    iter_tot: int = 0
    rng: np.random.Generator = field(init=False)
    work_pending: float = 0.0
    edges_touched: float = 0.0
    sweep_log: List[Tuple[str, int, int, int, float]] = field(
        default_factory=list
    )
    vweights: np.ndarray = field(init=False)
    global_vweight: float = field(init=False)
    wire: WireSpec = field(init=False)
    #: Last Allreduced global per-part totals, stored by each phase at its
    #: end.  Phases re-Allreduce at entry, so these are *not* read on the
    #: hot path — they exist so a phase-boundary checkpoint captures the
    #: totals the run had agreed on (diagnostics + snapshot fidelity).
    Sv: Optional[np.ndarray] = None
    Se: Optional[np.ndarray] = None
    Sc: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.parts = np.full(self.dg.n_total, UNASSIGNED, dtype=np.int64)
        self.rng = np.random.default_rng(self.params.seed + 7919 * self.dg.rank)
        # resolved from global quantities, so every rank picks the same
        # record dtypes (a cross-rank invariant of the wire protocol)
        self.wire = make_wire_spec(
            self.params.wire, self.dg.max_ghost_global, self.num_parts
        )
        # unit vertex weights by default; see set_vertex_weights
        self.vweights = np.ones(self.dg.n_local, dtype=np.float64)
        self.global_vweight = float(self.dg.global_n)

    def set_vertex_weights(self, weights: np.ndarray, total: float) -> None:
        """Enable weighted vertex balancing: ``weights`` are this rank's
        owned vertices' weights, ``total`` the global sum (the balance
        target becomes ``(1 + Rat_v) * total / p``)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.dg.n_local,):
            raise ValueError("weights must cover exactly the owned vertices")
        if weights.size and weights.min() <= 0:
            raise ValueError("vertex weights must be positive")
        self.vweights = weights
        self.global_vweight = float(total)

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything that crosses a phase boundary, as plain data.

        Captured at the step boundaries of the driver's plan (see
        :mod:`repro.ft.checkpoint`): the part labels over owned + ghost
        vertices, the iteration counter, the RNG bit-generator state, and
        the work/sweep accounting.  Phase-local structures (frontier,
        size estimates) are rebuilt by each phase at entry and need no
        capture.  ``pickle`` of the result is deterministic for equal
        states — checkpoint payloads are part of the bit-reproducible
        communication record.
        """
        return {
            "format": 1,
            "rank": int(self.dg.rank),
            "n_local": int(self.dg.n_local),
            "n_total": int(self.dg.n_total),
            "parts": self.parts.copy(),
            "iter_tot": int(self.iter_tot),
            "rng_state": self.rng.bit_generator.state,
            "work_pending": float(self.work_pending),
            "edges_touched": float(self.edges_touched),
            "sweep_log": list(self.sweep_log),
            "Sv": None if self.Sv is None else np.asarray(self.Sv).copy(),
            "Se": None if self.Se is None else np.asarray(self.Se).copy(),
            "Sc": None if self.Sc is None else np.asarray(self.Sc).copy(),
        }

    def restore(self, snap: dict) -> None:
        """Re-enter the state captured by :meth:`snapshot` (same rank of
        the same distributed graph; shape mismatches raise)."""
        for key, want in (("rank", self.dg.rank),
                          ("n_local", self.dg.n_local),
                          ("n_total", self.dg.n_total)):
            if int(snap[key]) != int(want):
                raise ValueError(
                    f"snapshot {key}={snap[key]} does not match this "
                    f"rank's {key}={want}"
                )
        parts = np.asarray(snap["parts"], dtype=np.int64)
        if parts.shape != self.parts.shape:
            raise ValueError(
                f"snapshot parts shape {parts.shape} != {self.parts.shape}"
            )
        self.parts[:] = parts
        self.iter_tot = int(snap["iter_tot"])
        self.rng.bit_generator.state = snap["rng_state"]
        self.work_pending = float(snap["work_pending"])
        self.edges_touched = float(snap["edges_touched"])
        self.sweep_log = list(snap["sweep_log"])
        self.Sv = snap["Sv"]
        self.Se = snap["Se"]
        self.Sc = snap["Sc"]

    # -- targets -------------------------------------------------------------

    @property
    def target_max_vertices(self) -> float:
        """``Imb_v = (1 + Rat_v) W(V) / p`` (eq. 1; weighted if weights set)."""
        return (
            (1.0 + self.params.vert_imbalance)
            * self.global_vweight / self.num_parts
        )

    @property
    def target_max_edges(self) -> float:
        """``Imb_e``, degree-based (2m directed entries total)."""
        total_deg = 2.0 * self.dg.global_m
        return (1.0 + self.params.edge_imbalance) * total_deg / self.num_parts

    def mult(self, comm: SimComm) -> float:
        return self.params.mult(comm.size, self.iter_tot)

    # -- global totals ---------------------------------------------------------

    def flush_work(self, comm: SimComm) -> None:
        """Charge accumulated sweep work to the next collective."""
        if self.work_pending:
            comm.charge(self.work_pending)
            self.work_pending = 0.0

    def compute_vertex_sizes(self, comm: SimComm) -> np.ndarray:
        """Global per-part vertex weight ``Sv`` (Allreduce of local sums;
        plain counts when weights are the default units)."""
        comm.charge(self.dg.n_local)
        owned = self.parts[: self.dg.n_local]
        ok = owned >= 0
        local = np.bincount(
            owned[ok], weights=self.vweights[ok], minlength=self.num_parts
        )
        return comm.Allreduce(local, op="sum")

    def compute_edge_sizes(self, comm: SimComm) -> np.ndarray:
        """Global per-part edge sizes ``Se`` = sum of member degrees."""
        comm.charge(self.dg.n_local)
        owned = self.parts[: self.dg.n_local]
        deg = self.dg.local_degrees
        ok = owned >= 0
        local = np.bincount(
            owned[ok], weights=deg[ok].astype(np.float64),
            minlength=self.num_parts,
        ).astype(np.int64)
        return comm.Allreduce(local, op="sum")

    def compute_cut_sizes(self, comm: SimComm) -> np.ndarray:
        """Global per-part cut sizes ``Sc``: cut edges touching each part.

        Counting from the owned endpoint of every stored arc credits each
        undirected cut edge once to each of its two endpoint parts.
        """
        comm.charge(self.dg.adj.size)
        local = np.zeros(self.num_parts, dtype=np.int64)
        for lids, _ in self.iter_blocks():
            neigh, srcs, _ = neighbor_gather_with_sources(
                self.dg.offsets, self.dg.adj, lids
            )
            p_src = self.parts[lids][srcs]
            p_dst = self.parts[neigh]
            cut = p_src != p_dst
            local += np.bincount(p_src[cut], minlength=self.num_parts)
        return comm.Allreduce(local, op="sum")

    # -- block iteration -----------------------------------------------------

    def iter_blocks(self) -> Iterator[Tuple[np.ndarray, slice]]:
        """Yield (owned lid block, slice) chunks of ``params.block_size``."""
        n = self.dg.n_local
        bs = self.params.block_size
        for start in range(0, n, bs):
            stop = min(start + bs, n)
            yield np.arange(start, stop, dtype=np.int64), slice(start, stop)

    # -- neighbor-part score matrices -------------------------------------------

    def block_part_counts(
        self,
        lids: np.ndarray,
        *,
        degree_weighted: bool,
        sparse: Optional[bool] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-vertex, per-part neighbor tallies for a block.

        Returns ``(weighted, plain)``: ``weighted[i, k]`` sums
        ``degree(u)`` (or 1) over neighbors ``u`` of ``lids[i]`` in part k;
        ``plain`` is always the unweighted tally (needed for cut deltas).
        Neighbors still UNASSIGNED are ignored.

        For large ``num_parts`` the dense ``nb × p`` bincount is mostly
        zeros (each vertex's neighbors span few parts), so a sparse tally
        — ``np.unique`` over ``srcs * p + nparts`` keys, counts scattered
        into the dense result — avoids streaming a huge mostly-zero
        histogram per pass.  ``sparse=None`` picks by a density heuristic;
        both paths produce bit-identical matrices (the per-key summation
        order is preserved by ``unique``'s stable inverse).
        """
        p = self.num_parts
        nb = lids.size
        neigh, srcs, _ = neighbor_gather_with_sources(
            self.dg.offsets, self.dg.adj, lids
        )
        nparts = self.parts[neigh]
        ok = nparts >= 0
        if not np.all(ok):
            neigh, srcs, nparts = neigh[ok], srcs[ok], nparts[ok]
        key = srcs * p + nparts
        # sweep cost: gather + tally passes over the block's edges, plus the
        # per-part weight/cap vector work
        self.work_pending += 2.0 * neigh.size + float(nb) + float(p)
        self.edges_touched += float(neigh.size)
        if sparse is None:
            # sparse pays an O(E log E) sort to skip O(nb * p) histogram
            # passes; worthwhile once the dense matrix is <1/8 occupied
            # and wide enough for the difference to matter
            sparse = p >= 64 and neigh.size * 8 < nb * p
        if sparse:
            uniq, inv = np.unique(key, return_inverse=True)
            plain = np.zeros(nb * p, dtype=np.int64)
            plain[uniq] = np.bincount(inv, minlength=uniq.size)
            plain = plain.reshape(nb, p)
            if degree_weighted:
                w = self.dg.degrees_full[neigh].astype(np.float64)
                weighted = np.zeros(nb * p, dtype=np.float64)
                weighted[uniq] = np.bincount(
                    inv, weights=w, minlength=uniq.size
                )
                weighted = weighted.reshape(nb, p)
            else:
                weighted = plain.astype(np.float64)
            return weighted, plain
        plain = np.bincount(key, minlength=nb * p).reshape(nb, p)
        if degree_weighted:
            w = self.dg.degrees_full[neigh].astype(np.float64)
            weighted = np.bincount(key, weights=w, minlength=nb * p).reshape(nb, p)
        else:
            weighted = plain.astype(np.float64)
        return weighted, plain
