"""Top-level XtraPuLP driver (Algorithm 1).

``xtrapulp(graph, num_parts, nprocs=...)`` runs the full pipeline inside a
simulated-MPI SPMD program:

1. distribute the graph (random or block 1-D distribution, §III.A);
2. initialize (Algorithm 2 hybrid by default);
3. ``I_outer`` rounds of vertex balancing + refinement (Algorithms 4, 5);
4. ``I_outer`` rounds of edge balancing + refinement (§III.E) —
   skipped in single-objective mode (the Fig. 6 configuration);
5. gather the partition to a global array.

The result carries the partition, per-phase communication stats, and the
modeled parallel time (see :mod:`repro.simmpi.timing`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from repro.core.edge_balance import edge_balance_phase, edge_refine_phase
from repro.core.initialization import initialize
from repro.core.params import PulpParams
from repro.core.quality import PartitionQuality, partition_quality
from repro.core.refinement import vertex_refine_phase
from repro.core.state import RankState
from repro.core.vertex_balance import vertex_balance_phase
from repro.dist.build import build_dist_graph
from repro.dist.distribution import Distribution, make_distribution
from repro.graph.csr import Graph
from repro.simmpi.backends import Backend, create_runtime
from repro.simmpi.comm import SimComm
from repro.simmpi.metrics import CommStats
from repro.simmpi.timing import BLUE_WATERS_LIKE, MachineModel, TimeModel

#: Phase tags that count toward partitioning time (build/gather excluded,
#: matching the paper's timed region).
PARTITION_PHASES = (
    "init",
    "vertex_balance",
    "vertex_refine",
    "edge_balance",
    "edge_refine",
)


@dataclass
class PartitionResult:
    """Output of one :func:`xtrapulp` run."""

    parts: np.ndarray
    num_parts: int
    nprocs: int
    params: PulpParams
    stats: CommStats
    wall_seconds: float
    machine: MachineModel = BLUE_WATERS_LIKE
    backend: str = "threads"
    _graph: Optional[Graph] = field(default=None, repr=False)

    @property
    def modeled_seconds(self) -> float:
        """Modeled parallel partitioning time (build/gather excluded)."""
        model = TimeModel(self.machine)
        return model.total_time(self.stats.filtered(PARTITION_PHASES))

    def modeled_seconds_by_phase(self) -> Dict[str, float]:
        model = TimeModel(self.machine)
        times = model.time_by_tag(self.stats)
        return {k: times.get(k, 0.0) for k in PARTITION_PHASES}

    def quality(self, graph: Optional[Graph] = None) -> PartitionQuality:
        g = graph if graph is not None else self._graph
        if g is None:
            raise ValueError("pass the graph to quality() (not retained)")
        return partition_quality(g, self.parts, self.num_parts)


def _rank_main(
    comm: SimComm,
    graph: Graph,
    dist: Distribution,
    num_parts: int,
    params: PulpParams,
    initial_parts: Optional[np.ndarray] = None,
    vertex_weights: Optional[np.ndarray] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The SPMD body: returns (owned gids, owned parts) per rank."""
    dg = build_dist_graph(comm, graph, dist)
    state = RankState(dg=dg, num_parts=num_parts, params=params)
    if vertex_weights is not None:
        state.set_vertex_weights(
            vertex_weights[dg.owned_gids], float(vertex_weights.sum())
        )
    initialize(comm, state, initial_parts)

    state.iter_tot = 0
    for _ in range(params.outer_iters):
        vertex_balance_phase(comm, state, params.balance_iters)
        vertex_refine_phase(comm, state, params.refine_iters)
    if not params.single_objective:
        state.iter_tot = 0
        for _ in range(params.outer_iters):
            edge_balance_phase(comm, state, params.balance_iters)
            edge_refine_phase(comm, state, params.refine_iters)
    return dg.owned_gids, state.parts[: dg.n_local].copy()


def xtrapulp(
    graph: Graph,
    num_parts: int,
    *,
    nprocs: int = 4,
    params: Optional[PulpParams] = None,
    distribution: Union[str, Distribution] = "random",
    machine: MachineModel = BLUE_WATERS_LIKE,
    keep_graph: bool = True,
    initial_parts: Optional[np.ndarray] = None,
    vertex_weights: Optional[np.ndarray] = None,
    backend: Union[str, None, Backend] = None,
) -> PartitionResult:
    """Partition ``graph`` into ``num_parts`` parts on ``nprocs`` simulated
    MPI ranks.

    Parameters
    ----------
    graph:
        Undirected (symmetric CSR) graph.
    num_parts:
        Number of parts ``p`` (independent of ``nprocs``, as in the paper's
        Blue Waters runs computing 256 parts on 2048 nodes).
    nprocs:
        Simulated MPI rank count.
    params:
        Algorithm tunables; defaults to the paper's settings.
    distribution:
        ``"random"`` (paper default for irregular graphs), ``"block"``, or a
        pre-built :class:`~repro.dist.distribution.Distribution`.
    machine:
        Alpha-beta model used for modeled times in the result.
    keep_graph:
        Retain a graph reference on the result so ``result.quality()``
        works without re-passing it.
    initial_parts:
        Optional existing assignment to *improve* instead of initializing
        from scratch (the paper's §V.E workflow); overrides
        ``params.init_strategy``.
    vertex_weights:
        Optional positive per-vertex weights: the vertex balance constraint
        becomes per-part *weight* <= ``(1 + Rat_v) W(V) / p`` (the weighted
        partitioning of the PuLP family; unit weights reproduce the paper's
        setting exactly).
    backend:
        Execution backend for the simulated ranks (``"serial"``,
        ``"threads"``, ``"procs"``, or a pre-built
        :class:`~repro.simmpi.backends.base.Backend`); None honors
        ``$REPRO_BACKEND`` and defaults to ``"threads"``.  Identical
        partitions and communication stats are produced on every backend.
    """
    if graph.directed:
        raise ValueError("xtrapulp partitions undirected (symmetric) graphs")
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if num_parts > graph.n:
        raise ValueError(f"cannot cut {graph.n} vertices into {num_parts} parts")
    if vertex_weights is not None:
        vertex_weights = np.asarray(vertex_weights, dtype=np.float64)
        if vertex_weights.shape != (graph.n,):
            raise ValueError("vertex_weights must have one entry per vertex")
        if vertex_weights.size and vertex_weights.min() <= 0:
            raise ValueError("vertex_weights must be positive")
    params = params or PulpParams()
    if isinstance(distribution, str):
        dist = make_distribution(
            distribution, graph.n, nprocs, seed=params.seed
        )
    else:
        dist = distribution
        if dist.n != graph.n or dist.nprocs != nprocs:
            raise ValueError("distribution does not match graph/nprocs")

    # all phases charge deterministic work units (priced by the machine
    # model's gamma), so modeled times are exactly reproducible
    runtime = create_runtime(backend, nprocs=nprocs, meter_compute=False)
    try:
        t0 = time.perf_counter()
        per_rank = runtime.run(
            _rank_main, graph, dist, num_parts, params, initial_parts,
            vertex_weights,
        )
        wall = time.perf_counter() - t0
    finally:
        runtime.close()

    parts = np.empty(graph.n, dtype=np.int64)
    seen = 0
    for gids, owned_parts in per_rank:
        parts[gids] = owned_parts
        seen += gids.size
    if seen != graph.n:
        raise AssertionError(f"gathered {seen} of {graph.n} vertex labels")

    return PartitionResult(
        parts=parts,
        num_parts=num_parts,
        nprocs=nprocs,
        params=params,
        stats=runtime.stats,
        wall_seconds=wall,
        machine=machine,
        backend=runtime.name,
        _graph=graph if keep_graph else None,
    )
