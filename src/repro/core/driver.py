"""Top-level XtraPuLP driver (Algorithm 1).

``xtrapulp(graph, num_parts, nprocs=...)`` runs the full pipeline inside a
simulated-MPI SPMD program:

1. distribute the graph (random or block 1-D distribution, §III.A);
2. initialize (Algorithm 2 hybrid by default);
3. ``I_outer`` rounds of vertex balancing + refinement (Algorithms 4, 5);
4. ``I_outer`` rounds of edge balancing + refinement (§III.E) —
   skipped in single-objective mode (the Fig. 6 configuration);
5. gather the partition to a global array.

The result carries the partition, per-phase communication stats, and the
modeled parallel time (see :mod:`repro.simmpi.timing`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.core.edge_balance import edge_balance_phase, edge_refine_phase
from repro.core.initialization import initialize
from repro.core.params import PulpParams
from repro.core.quality import PartitionQuality, partition_quality
from repro.core.refinement import vertex_refine_phase
from repro.core.state import RankState
from repro.core.vertex_balance import vertex_balance_phase
from repro.dist.build import build_dist_graph
from repro.dist.distribution import Distribution, make_distribution
from repro.ft.checkpoint import (
    CkptContext,
    CkptCommitter,
    CkptPolicy,
    checkpoint_after,
    dist_signature,
    find_latest_committed,
    graph_signature,
    inputs_signature,
    load_checkpoint,
    load_manifest,
    make_context,
    step_plan,
    validate_manifest,
    write_checkpoint,
)
from repro.graph.csr import Graph
from repro.multilevel.info import MultilevelInfo
from repro.simmpi.backends import Backend, create_runtime
from repro.simmpi.comm import SimComm
from repro.simmpi.topology import default_comm
from repro.simmpi.errors import RankFailure
from repro.simmpi.metrics import CommStats
from repro.simmpi.timing import BLUE_WATERS_LIKE, MachineModel, TimeModel

#: Phase tags that count toward partitioning time (build/gather excluded,
#: matching the paper's timed region).  The last three are emitted only
#: by multilevel runs (coarsening, per-level weighted refinement, and
#: partition projection — all genuine partitioning work).
PARTITION_PHASES = (
    "init",
    "vertex_balance",
    "vertex_refine",
    "edge_balance",
    "edge_refine",
    "coarsen",
    "ml_refine",
    "project",
)


@dataclass
class PartitionResult:
    """Output of one :func:`xtrapulp` run."""

    parts: np.ndarray
    num_parts: int
    nprocs: int
    params: PulpParams
    stats: CommStats
    wall_seconds: float
    machine: MachineModel = BLUE_WATERS_LIKE
    backend: str = "threads"
    comm: str = "flat"
    multilevel: Optional[MultilevelInfo] = None
    _graph: Optional[Graph] = field(default=None, repr=False)

    @property
    def modeled_seconds(self) -> float:
        """Modeled parallel partitioning time (build/gather excluded)."""
        model = TimeModel(self.machine)
        return model.total_time(self.stats.filtered(PARTITION_PHASES))

    def modeled_seconds_by_phase(self) -> Dict[str, float]:
        model = TimeModel(self.machine)
        times = model.time_by_tag(self.stats)
        return {k: times.get(k, 0.0) for k in PARTITION_PHASES}

    def quality(self, graph: Optional[Graph] = None) -> PartitionQuality:
        g = graph if graph is not None else self._graph
        if g is None:
            raise ValueError("pass the graph to quality() (not retained)")
        return partition_quality(g, self.parts, self.num_parts)


#: Phase functions of the step plan, with the params field naming their
#: iteration count (see :func:`repro.ft.checkpoint.step_plan`).
_PHASE_FUNCS = {
    "vertex_balance": (vertex_balance_phase, "balance_iters"),
    "vertex_refine": (vertex_refine_phase, "refine_iters"),
    "edge_balance": (edge_balance_phase, "balance_iters"),
    "edge_refine": (edge_refine_phase, "refine_iters"),
}


def _rank_main(
    comm: SimComm,
    graph: Graph,
    dist: Distribution,
    num_parts: int,
    params: PulpParams,
    initial_parts: Optional[np.ndarray] = None,
    vertex_weights: Optional[np.ndarray] = None,
    ckpt: Optional[CkptContext] = None,
    resume: Optional[Dict[str, Any]] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The SPMD body: returns (owned gids, owned parts) per rank.

    The outer loop executes the step plan of
    :func:`repro.ft.checkpoint.step_plan`; a fresh run starts at step 0
    (initialization), a resumed run restores its rank snapshot after the
    (deterministic, re-executed) graph build and re-enters the loop at the
    checkpoint's ``next_step``.  With a :class:`CkptContext`, the policy's
    boundaries deposit a checkpoint collective after the step completes.

    ``params.multilevel`` swaps in the V-cycle body (which returns a
    3-tuple carrying its :class:`MultilevelInfo`); imported lazily to
    keep ``core`` ↔ ``multilevel`` imports acyclic.
    """
    if params.multilevel:
        from repro.multilevel.driver import multilevel_rank_main

        return multilevel_rank_main(
            comm, graph, dist, num_parts, params, initial_parts,
            vertex_weights, ckpt, resume,
        )
    dg = build_dist_graph(comm, graph, dist)
    n_build = comm.event_count  # same on every rank: the build is BSP
    state = RankState(dg=dg, num_parts=num_parts, params=params)
    if vertex_weights is not None:
        state.set_vertex_weights(
            vertex_weights[dg.owned_gids], float(vertex_weights.sum())
        )
    plan = step_plan(params)
    start = 0
    if resume is not None:
        state.restore(resume["snapshots"][comm.rank])
        start = int(resume["next_step"])
    for idx in range(start, len(plan)):
        stage, _outer, phase_name = plan[idx]
        if phase_name == "init":
            initialize(comm, state, initial_parts)
            state.iter_tot = 0
        else:
            if plan[idx - 1][0] != stage:
                # first step of a stage: the iteration counter that drives
                # the (X, Y) multiplier schedule restarts (as the legacy
                # vertex/edge loop structure did)
                state.iter_tot = 0
            fn, iters_field = _PHASE_FUNCS[phase_name]
            fn(comm, state, getattr(params, iters_field))
        if ckpt is not None and checkpoint_after(plan, idx, ckpt.policy.every):
            write_checkpoint(
                comm, state, ckpt, epoch=idx, step=plan[idx], n_build=n_build
            )
    return dg.owned_gids, state.parts[: dg.n_local].copy()


def xtrapulp(
    graph: Graph,
    num_parts: int,
    *,
    nprocs: int = 4,
    params: Optional[PulpParams] = None,
    distribution: Union[str, Distribution] = "random",
    machine: MachineModel = BLUE_WATERS_LIKE,
    keep_graph: bool = True,
    initial_parts: Optional[np.ndarray] = None,
    vertex_weights: Optional[np.ndarray] = None,
    backend: Union[str, None, Backend] = None,
    checkpoint: Union[None, str, os.PathLike, CkptPolicy] = None,
    resume: Union[None, str, os.PathLike] = None,
    fault_plan: Any = None,
    watchdog: Any = None,
    integrity: Optional[str] = None,
) -> PartitionResult:
    """Partition ``graph`` into ``num_parts`` parts on ``nprocs`` simulated
    MPI ranks.

    Parameters
    ----------
    graph:
        Undirected (symmetric CSR) graph.
    num_parts:
        Number of parts ``p`` (independent of ``nprocs``, as in the paper's
        Blue Waters runs computing 256 parts on 2048 nodes).
    nprocs:
        Simulated MPI rank count.
    params:
        Algorithm tunables; defaults to the paper's settings.
    distribution:
        ``"random"`` (paper default for irregular graphs), ``"block"``, or a
        pre-built :class:`~repro.dist.distribution.Distribution`.
    machine:
        Alpha-beta model used for modeled times in the result.
    keep_graph:
        Retain a graph reference on the result so ``result.quality()``
        works without re-passing it.
    initial_parts:
        Optional existing assignment to *improve* instead of initializing
        from scratch (the paper's §V.E workflow); overrides
        ``params.init_strategy``.
    vertex_weights:
        Optional positive per-vertex weights: the vertex balance constraint
        becomes per-part *weight* <= ``(1 + Rat_v) W(V) / p`` (the weighted
        partitioning of the PuLP family; unit weights reproduce the paper's
        setting exactly).
    backend:
        Execution backend for the simulated ranks (``"serial"``,
        ``"threads"``, ``"procs"``, or a pre-built
        :class:`~repro.simmpi.backends.base.Backend`); None honors
        ``$REPRO_BACKEND`` and defaults to ``"threads"``.  Identical
        partitions and communication stats are produced on every backend.
        The communicator strategy (``params.comm`` / ``$REPRO_COMM``)
        independently selects topology-aware metering — again without
        changing partitions or the communication record (see
        :mod:`repro.simmpi.topology`).
    checkpoint:
        Enable phase-boundary checkpointing: a
        :class:`~repro.ft.checkpoint.CkptPolicy`, or a run-directory path
        (policy defaults then apply).  Epochs are committed atomically; a
        failed checkpointed run raises
        :class:`~repro.simmpi.errors.RankFailure` carrying the run
        directory and last committed epoch.
    resume:
        Path of a run directory (its latest committed epoch is used) or of
        one ``epoch_NNNN`` directory.  The manifest is validated against
        the live graph/distribution/params/inputs; the run then restores
        every rank's snapshot and re-enters the outer loop mid-flight.  A
        resumed run's partition *and* communication record are
        bit-identical to an uninterrupted run's.
    fault_plan:
        Optional :class:`~repro.ft.faults.FaultPlan` planting deterministic
        failures (testing/benchmarking; on the ``procs`` backend a ``die``
        fault hard-kills the rank's OS process mid-superstep).
    watchdog:
        Liveness deadline for the run — seconds, a
        :class:`~repro.ft.watchdog.WatchdogConfig`, or None to honor
        ``$REPRO_WATCHDOG_TIMEOUT`` (default: no watchdog, unbounded
        waits).  A rank that makes no progress for that long is killed
        (``procs``) or failed in place (in-process backends) and surfaces
        as :class:`~repro.simmpi.errors.HungRankError` — which, combined
        with ``checkpoint``, makes a hang recoverable exactly like a
        crash.
    integrity:
        ``"crc"`` checksums every collective payload at send and verifies
        at receive (detected corruption raises
        :class:`~repro.simmpi.errors.PayloadCorruptionError`); ``"off"``
        skips all checksum work; None honors ``$REPRO_INTEGRITY``.
    """
    if graph.directed:
        raise ValueError("xtrapulp partitions undirected (symmetric) graphs")
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if num_parts > graph.n:
        raise ValueError(f"cannot cut {graph.n} vertices into {num_parts} parts")
    if vertex_weights is not None:
        vertex_weights = np.asarray(vertex_weights, dtype=np.float64)
        if vertex_weights.shape != (graph.n,):
            raise ValueError("vertex_weights must have one entry per vertex")
        if vertex_weights.size and vertex_weights.min() <= 0:
            raise ValueError("vertex_weights must be positive")
    params = params or PulpParams()
    if params.multilevel and initial_parts is not None:
        raise ValueError(
            "multilevel does not accept initial_parts (projecting an "
            "existing assignment down the hierarchy is not supported)"
        )
    if isinstance(distribution, str):
        dist = make_distribution(
            distribution, graph.n, nprocs, seed=params.seed
        )
    else:
        dist = distribution
        if dist.n != graph.n or dist.nprocs != nprocs:
            raise ValueError("distribution does not match graph/nprocs")

    # -- fault-tolerance setup (no-op unless requested) -------------------
    ft_requested = checkpoint is not None or resume is not None
    policy: Optional[CkptPolicy] = None
    if checkpoint is not None:
        policy = (
            checkpoint if isinstance(checkpoint, CkptPolicy)
            else CkptPolicy(dir=os.fspath(checkpoint))
        )
    resume_arg: Optional[Dict[str, Any]] = None
    base_events: list = []
    n_skip = 0
    ft_run_dir: Optional[str] = None
    if resume is not None:
        ckpt_data = load_checkpoint(os.fspath(resume))
        validate_manifest(
            ckpt_data.manifest,
            nprocs=nprocs,
            num_parts=num_parts,
            graph_sig=graph_signature(graph),
            dist_sig=dist_signature(dist),
            params_repr=repr(params),
            inputs_sig=inputs_signature(initial_parts, vertex_weights),
        )
        base_events = ckpt_data.base_events
        n_skip = int(ckpt_data.manifest["n_build"])
        resume_arg = {
            "next_step": ckpt_data.next_step,
            "snapshots": ckpt_data.snapshots,
        }
        ft_run_dir = os.path.dirname(os.path.abspath(ckpt_data.epoch_dir))
    ckpt_ctx: Optional[CkptContext] = None
    if policy is not None:
        ft_run_dir = policy.dir
        if policy.every != "off":
            ckpt_ctx = make_context(
                policy, graph=graph, dist=dist, params=params, nprocs=nprocs,
                num_parts=num_parts, initial_parts=initial_parts,
                vertex_weights=vertex_weights,
            )

    # all phases charge deterministic work units (priced by the machine
    # model's gamma), so modeled times are exactly reproducible
    comm_spec = params.comm if params.comm is not None else default_comm()
    runtime = create_runtime(backend, nprocs=nprocs, meter_compute=False,
                             comm=comm_spec, watchdog=watchdog,
                             integrity=integrity)
    if ft_requested and runtime.stats.rounds:
        runtime.close()
        raise ValueError(
            "checkpoint/resume needs a fresh runtime: the given backend "
            "already carries recorded events, which would corrupt the "
            "spliced communication record"
        )
    if fault_plan is not None:
        runtime.fault_plan = fault_plan
    if ckpt_ctx is not None:
        os.makedirs(policy.dir, exist_ok=True)
        runtime.ckpt_committer = CkptCommitter(
            policy.dir, base_events=base_events, n_skip=n_skip
        )
    try:
        t0 = time.perf_counter()
        per_rank = runtime.run(
            _rank_main, graph, dist, num_parts, params, initial_parts,
            vertex_weights, ckpt_ctx, resume_arg,
        )
        wall = time.perf_counter() - t0
    except Exception as exc:
        if not ft_requested:
            raise
        epoch: Optional[int] = None
        if ft_run_dir is not None:
            latest = find_latest_committed(ft_run_dir)
            if latest is not None:
                epoch = int(load_manifest(latest)["epoch"])
        raise RankFailure(
            f"checkpointed run failed: {exc} "
            f"(run_dir={ft_run_dir!r}, last committed epoch: {epoch})",
            run_dir=ft_run_dir,
            epoch=epoch,
        ) from exc
    finally:
        runtime.close()

    parts = np.empty(graph.n, dtype=np.int64)
    seen = 0
    ml_info: Optional[MultilevelInfo] = None
    for item in per_rank:
        gids, owned_parts = item[0], item[1]
        if len(item) == 3:
            # multilevel body: every rank returns the same info object
            ml_info = item[2]
        parts[gids] = owned_parts
        seen += gids.size
    if seen != graph.n:
        raise AssertionError(f"gathered {seen} of {graph.n} vertex labels")

    stats = runtime.stats
    if resume_arg is not None:
        # splice: checkpointed prefix + live events minus the re-executed
        # build (deterministic, so the prefix already contains it) — the
        # record an uninterrupted run would have produced
        spliced = CommStats(nprocs)
        spliced.events = list(base_events) + stats.events[n_skip:]
        spliced.recoveries = list(stats.recoveries)
        # health counters describe the live engine, not the event record —
        # carry them so a resumed run still reports its watchdog/integrity
        # activity (they are excluded from the signature either way)
        spliced.heartbeats_seen = stats.heartbeats_seen
        spliced.deadline_extensions = stats.deadline_extensions
        spliced.checksum_verifications = stats.checksum_verifications
        spliced.checksum_failures = stats.checksum_failures
        stats = spliced

    return PartitionResult(
        parts=parts,
        num_parts=num_parts,
        nprocs=nprocs,
        params=params,
        stats=stats,
        wall_seconds=wall,
        machine=machine,
        backend=runtime.name,
        comm=(runtime.comm_strategy.name if runtime.comm_strategy is not None
              else "flat"),
        multilevel=ml_info,
        _graph=graph if keep_graph else None,
    )
