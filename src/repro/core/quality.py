"""Partition quality metrics (§II and §V.B of the paper).

All metrics operate on the full graph plus a global part assignment, so
they are usable on any partitioner's output (XtraPuLP, baselines,
ParMETIS-like) for apples-to-apples comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

from repro.graph.csr import Graph


def _check(graph: Graph, parts: np.ndarray, num_parts: int) -> np.ndarray:
    parts = np.asarray(parts)
    if parts.shape != (graph.n,):
        raise ValueError(f"parts must have shape ({graph.n},), got {parts.shape}")
    if parts.size and (parts.min() < 0 or parts.max() >= num_parts):
        raise ValueError("part labels out of range")
    return parts


def edge_cut(graph: Graph, parts: np.ndarray, num_parts: int) -> int:
    """``|C(G, Π)|``: number of undirected edges with endpoints in
    different parts."""
    parts = _check(graph, parts, num_parts)
    src, dst = graph.edges()
    return int(np.count_nonzero(parts[src] != parts[dst]) // 2)


def edge_cut_ratio(graph: Graph, parts: np.ndarray, num_parts: int) -> float:
    """Cut edges / total edges — Fig. 4's first metric (lower is better)."""
    m = graph.num_edges
    return edge_cut(graph, parts, num_parts) / m if m else 0.0


def cut_edges_per_part(graph: Graph, parts: np.ndarray, num_parts: int) -> np.ndarray:
    """``|C(G, π_k)|`` for every part: cut edges with ≥1 endpoint in k.

    Each cut edge contributes once to both endpoint parts.
    """
    parts = _check(graph, parts, num_parts)
    src, dst = graph.edges()
    cut = parts[src] != parts[dst]
    # every undirected cut edge appears twice (both directions); counting
    # the src side of each stored arc hits each (edge, endpoint-part) once
    return np.bincount(parts[src][cut], minlength=num_parts).astype(np.int64)


def scaled_max_cut_ratio(graph: Graph, parts: np.ndarray, num_parts: int) -> float:
    """max_k |C(G, π_k)| / (m / p) — Fig. 4's second metric."""
    m = graph.num_edges
    if m == 0:
        return 0.0
    per_part = cut_edges_per_part(graph, parts, num_parts)
    return float(per_part.max() / (m / num_parts))


def vertex_counts(
    graph: Graph,
    parts: np.ndarray,
    num_parts: int,
    weights: "np.ndarray | None" = None,
) -> np.ndarray:
    parts = _check(graph, parts, num_parts)
    if weights is None:
        return np.bincount(parts, minlength=num_parts).astype(np.int64)
    return np.bincount(
        parts, weights=np.asarray(weights, dtype=np.float64),
        minlength=num_parts,
    )


def edge_counts(graph: Graph, parts: np.ndarray, num_parts: int) -> np.ndarray:
    """Per-part edge size as the sum of member degrees (the incident-edge
    count the partitioner balances; interior edges count twice)."""
    parts = _check(graph, parts, num_parts)
    return np.bincount(
        parts, weights=graph.degrees.astype(np.float64), minlength=num_parts
    ).astype(np.int64)


def interior_edge_counts(
    graph: Graph, parts: np.ndarray, num_parts: int
) -> np.ndarray:
    """``|E(π_k)|`` per §II: edges with *both* endpoints in part k."""
    parts = _check(graph, parts, num_parts)
    src, dst = graph.edges()
    same = parts[src] == parts[dst]
    return (
        np.bincount(parts[src][same], minlength=num_parts).astype(np.int64) // 2
    )


def vertex_balance(
    graph: Graph,
    parts: np.ndarray,
    num_parts: int,
    weights: "np.ndarray | None" = None,
) -> float:
    """max part vertex count (or weight) / (total / p); 1.0 is perfect."""
    counts = vertex_counts(graph, parts, num_parts, weights)
    total = counts.sum()
    return float(counts.max() / (total / num_parts)) if total else 0.0


def edge_balance(graph: Graph, parts: np.ndarray, num_parts: int) -> float:
    """max part edge size / (total / p), degree-based (Fig. 5's 'Max Edge
    Imbalance')."""
    counts = edge_counts(graph, parts, num_parts)
    total = counts.sum()
    return float(counts.max() / (total / num_parts)) if total else 0.0


@dataclass(frozen=True)
class PartitionQuality:
    """Bundle of every §V.B metric for one (graph, partition) pair."""

    num_parts: int
    cut: int
    cut_ratio: float
    max_cut_ratio: float
    vertex_balance: float
    edge_balance: float

    def formatted(self) -> str:
        return (
            f"p={self.num_parts:<4d} cut={self.cut:<10d} "
            f"ratio={self.cut_ratio:6.4f}  maxcut={self.max_cut_ratio:6.3f}  "
            f"vbal={self.vertex_balance:5.3f}  ebal={self.edge_balance:5.3f}"
        )


def partition_quality(
    graph: Graph, parts: np.ndarray, num_parts: int
) -> PartitionQuality:
    return PartitionQuality(
        num_parts=num_parts,
        cut=edge_cut(graph, parts, num_parts),
        cut_ratio=edge_cut_ratio(graph, parts, num_parts),
        max_cut_ratio=scaled_max_cut_ratio(graph, parts, num_parts),
        vertex_balance=vertex_balance(graph, parts, num_parts),
        edge_balance=edge_balance(graph, parts, num_parts),
    )


def performance_ratios(
    results: Mapping[str, Sequence[float]]
) -> Dict[str, float]:
    """The paper's "performance ratio": geometric mean, over tests, of each
    method's metric divided by the best metric on that test.

    ``results[method][t]`` is method's metric value on test ``t`` (lower
    better); 1.0 means the method was best on every test.
    """
    methods = list(results)
    if not methods:
        return {}
    arr = np.array([results[m] for m in methods], dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] == 0:
        raise ValueError("each method needs the same, non-empty test list")
    best = arr.min(axis=0)
    best = np.where(best <= 0, 1e-12, best)
    ratios = np.maximum(arr, 1e-12) / best
    geo = np.exp(np.log(ratios).mean(axis=1))
    return dict(zip(methods, geo.tolist()))
