"""Active-set (frontier) sweep engine for the label-propagation phases.

Late balance/refine iterations move very few vertices, yet a full sweep
re-gathers and re-tallies the neighborhood of *every* owned vertex each
iteration.  This engine restricts every iteration after the first to the
*active set*: vertices that moved, or that are adjacent to a vertex
(owned or ghost) that moved since their last evaluation — the active-set
local search of dKaMinPar (arXiv:2303.01417) and distributed
unconstrained local search (arXiv:2406.03169), adapted to the XtraPuLP
BSP skeleton.

Seeding rules, per phase iteration:

* iteration 0 of a phase sweeps all owned vertices (the part weights,
  capacities, and ratchets change discontinuously at phase boundaries,
  so every vertex's score is stale);
* a vertex that moved re-enters the frontier (the global size estimates
  it was scored against keep drifting);
* owned neighbors of a locally moved vertex enter the frontier — the
  graph is symmetric and every incident edge of an owned vertex is
  stored locally, so the owned-side CSR transpose *is* the forward
  adjacency restricted to targets ``< n_local``;
* owned neighbors of every ghost copy rewritten by ``exchange_updates``
  enter the frontier, via the ghost→owned reverse incidence
  (``DistGraph.ghost_touch_sources``) built once at construction time —
  ghosts own no forward CSR row, so the reverse structure is required;
* neighbor touches *accumulate* rather than activate immediately: a
  vertex re-enters the frontier once its touch count since its last
  evaluation reaches ``max(1, DIRT_FRACTION * degree)``.  For low-degree
  vertices this is the plain one-touch rule; for hubs — whose plurality
  over hundreds of neighbors cannot flip because one of them moved — it
  suppresses the constant re-scoring that otherwise dominates
  edges-touched on skewed graphs.  Touches are never discarded, so any
  sustained neighborhood drift still reactivates the vertex.

Vertices outside the frontier keep their last decision; they can miss a
part's capacity re-opening, which is the standard active-set
approximation (bounded by the property tests: same balance constraints,
edge cut within a few percent of the exhaustive sweeps).

Determinism: the active set lives in a boolean mask over owned lids and
is materialized with ``flatnonzero`` (ascending lids), then chunked with
the same ``params.block_size`` as the legacy sweep.  A full active set
therefore yields bit-identical blocks — hence bit-identical moves — to
the legacy path (``params.frontier = "full"`` forces this every
iteration; ``False`` bypasses the engine's bookkeeping entirely).

Work model: scoring work is charged by ``block_part_counts`` only for
blocks actually swept, so a shrinking active set shrinks
``CommStats.work_by_tag()`` and the modeled gamma term directly;
frontier maintenance charges the transpose edges it walks plus one
O(n_local) mask pass per iteration (the same convention used for other
full-vector passes, e.g. ``compute_vertex_sizes``).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.core.exchange import exchange_updates
from repro.core.state import RankState
from repro.simmpi.comm import SimComm

#: A vertex reactivates once touches-since-last-eval >= max(1, frac * deg).
DIRT_FRACTION = 1.0 / 16.0


class FrontierSweeper:
    """Drives one phase's sweep iterations over the active set.

    Usage, replacing the legacy ``iter_blocks`` inner loop::

        sweeper = FrontierSweeper(state, phase="vertex_balance")
        for _ in range(iters):
            for lids in sweeper.blocks():
                ...score block, admit moves...
                sweeper.note_moves(moved)
            sweeper.exchange(comm)       # flush work + ExchangeUpdates
            ...Allreduce size deltas...

    ``blocks()`` yields the iteration's active lid chunks; ``note_moves``
    feeds admitted moves back; ``exchange`` runs the collective update
    exchange (all moved vertices, exactly as the legacy path) and seeds
    the next iteration's frontier from local and ghost touches.
    """

    def __init__(
        self,
        state: RankState,
        phase: str,
        cleanup_iter: Optional[int] = None,
        seed_lids: Optional[np.ndarray] = None,
    ) -> None:
        self.state = state
        self.dg = state.dg
        self.phase = phase
        #: iteration index (0-based) forced to a full sweep — refine phases
        #: schedule one late exhaustive cleanup pass (a few iterations
        #: before the end, so subsequent active sweeps damp its
        #: simultaneous-move overshoot) to catch moves the active-set
        #: approximation missed
        self.cleanup_iter = cleanup_iter
        self._iter = 0
        mode = state.params.frontier
        # track=False → legacy full sweeps with zero frontier bookkeeping;
        # "full" keeps the bookkeeping but re-seeds everything (bit-identity
        # verification mode)
        self.track = bool(mode)
        self.force_full = mode == "full"
        #: active owned lids for the current iteration; None = all owned
        self._frontier: Optional[np.ndarray] = None
        self._moved: List[np.ndarray] = []
        self._edges_mark = state.edges_touched
        if self.track and not self.force_full:
            # per-vertex touch accumulator + activation thresholds
            self._dirt = np.zeros(self.dg.n_local, dtype=np.int64)
            self._thresh = np.maximum(
                DIRT_FRACTION * self.dg.local_degrees, 1.0
            )
        else:
            self._dirt = None
            self._thresh = None
        if seed_lids is not None and self.track and not self.force_full:
            # caller knows where the action is (e.g. multilevel projection
            # seeds cluster boundaries): start from that active set instead
            # of the exhaustive iteration-0 sweep.  The cleanup pass still
            # catches anything the seed missed.
            self._frontier = np.unique(
                np.asarray(seed_lids, dtype=np.int64)
            )

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> dict:
        """The sweeper's mid-phase position as plain data.

        The driver checkpoints only at phase boundaries — where no sweeper
        is live — so this is not on the checkpoint path; it exists so
        finer-than-phase checkpointing (and tests) can capture an active
        set mid-phase and resume it bit-identically via :meth:`restore`.
        """
        return {
            "phase": self.phase,
            "iter": int(self._iter),
            "frontier": (
                None if self._frontier is None else self._frontier.copy()
            ),
            "moved": [m.copy() for m in self._moved],
            "dirt": None if self._dirt is None else self._dirt.copy(),
            "edges_mark": float(self._edges_mark),
        }

    def restore(self, snap: dict) -> None:
        if snap["phase"] != self.phase:
            raise ValueError(
                f"snapshot is for phase {snap['phase']!r}, "
                f"this sweeper drives {self.phase!r}"
            )
        self._iter = int(snap["iter"])
        fr = snap["frontier"]
        self._frontier = None if fr is None else np.asarray(fr, dtype=np.int64)
        self._moved = [np.asarray(m, dtype=np.int64) for m in snap["moved"]]
        if self._dirt is not None and snap["dirt"] is not None:
            self._dirt[:] = snap["dirt"]
        self._edges_mark = float(snap["edges_mark"])

    # -- iteration body ------------------------------------------------------

    @property
    def active_count(self) -> int:
        """Owned vertices swept in the current iteration."""
        return (
            self.dg.n_local if self._frontier is None else self._frontier.size
        )

    def blocks(self) -> Iterator[np.ndarray]:
        """Yield the iteration's active lids in ``block_size`` chunks.

        A full frontier yields exactly the legacy ``iter_blocks`` chunks
        (ascending lids, same boundaries), preserving the between-block
        estimate-refresh schedule bit-for-bit.
        """
        self._edges_mark = self.state.edges_touched
        if self._iter == self.cleanup_iter:
            self._frontier = None  # cleanup: exhaustive final pass
        bs = self.state.params.block_size
        if self._frontier is None:
            n = self.dg.n_local
            for start in range(0, n, bs):
                stop = min(start + bs, n)
                yield np.arange(start, stop, dtype=np.int64)
        else:
            lids = self._frontier
            for start in range(0, lids.size, bs):
                yield lids[start:start + bs]

    def note_moves(self, moved: np.ndarray) -> None:
        """Record owned lids moved in the current iteration (per block)."""
        if moved.size:
            self._moved.append(moved)

    # -- iteration boundary --------------------------------------------------

    def exchange(self, comm: SimComm) -> np.ndarray:
        """Finish the iteration: flush charged sweep work, run
        ``exchange_updates`` for every vertex moved this iteration, and
        seed the next iteration's frontier.  Returns the moved lids."""
        state = self.state
        moved = (
            np.concatenate(self._moved) if self._moved
            else np.empty(0, dtype=np.int64)
        )
        self._moved = []
        state.sweep_log.append((
            self.phase,
            state.iter_tot,
            self.active_count,
            self.dg.n_local,
            state.edges_touched - self._edges_mark,
        ))
        state.flush_work(comm)
        ghost_lids = exchange_updates(
            comm, self.dg, state.parts, moved, wire=state.wire
        )
        self._iter += 1
        if self.track:
            if self.force_full:
                # verification mode: seed every owned vertex, exercising
                # the explicit-lids chunking path; charges nothing extra,
                # so stats AND partitions must match the legacy path
                self._frontier = np.arange(self.dg.n_local, dtype=np.int64)
            else:
                self._seed_next(moved, ghost_lids)
                # frontier-maintenance work rides the iteration's trailing
                # collective (every phase Allreduces its size deltas next)
                state.flush_work(comm)
        return moved

    def _seed_next(self, moved: np.ndarray, ghost_lids: np.ndarray) -> None:
        """Next active set = moved ∪ {touched vertices over their
        degree-proportional activation threshold}."""
        dg, state = self.dg, self.state
        n = dg.n_local
        dirt = self._dirt
        touched = 0.0
        if moved.size:
            neigh, _ = dg.neighbor_block(moved)
            owned = neigh[neigh < n]
            if owned.size:
                dirt += np.bincount(owned, minlength=n)
            touched += float(neigh.size)
        if ghost_lids.size:
            srcs = dg.ghost_touch_sources(ghost_lids)
            if srcs.size:
                dirt += np.bincount(srcs, minlength=n)
            touched += float(srcs.size)
        mask = dirt >= self._thresh
        if moved.size:
            mask[moved] = True  # movers always re-score (sizes keep drifting)
        dirt[mask] = 0  # evaluated next iteration: touches consumed
        # transpose touches + the O(n) dirt/mask passes
        state.work_pending += touched + float(n)
        self._frontier = np.flatnonzero(mask).astype(np.int64)
