"""Partition structure analysis beyond the paper's headline metrics.

Tools a downstream user needs to understand *why* a partition behaves the
way it does in an application: per-part boundary sizes, the part-adjacency
(quotient) graph with inter-part edge volumes, part contiguity (connected
parts localize better), and per-rank communication estimates for a halo-
exchange workload — the quantity Fig. 8's analytics actually pay for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.quality import PartitionQuality, partition_quality
from repro.graph.csr import Graph
from repro.graph.gather import neighbor_gather


def boundary_vertices(graph: Graph, parts: np.ndarray) -> np.ndarray:
    """Mask of vertices with at least one neighbor in another part."""
    parts = np.asarray(parts)
    src, dst = graph.edges()
    cut = parts[src] != parts[dst]
    mask = np.zeros(graph.n, dtype=bool)
    mask[src[cut]] = True
    return mask


def boundary_sizes(graph: Graph, parts: np.ndarray, num_parts: int) -> np.ndarray:
    """Per part: number of its vertices on the boundary."""
    mask = boundary_vertices(graph, parts)
    return np.bincount(
        np.asarray(parts)[mask], minlength=num_parts
    ).astype(np.int64)


def part_adjacency(
    graph: Graph, parts: np.ndarray, num_parts: int
) -> np.ndarray:
    """Quotient matrix Q where ``Q[i, j]`` is the number of undirected
    edges between parts i and j (diagonal = interior edges)."""
    parts = np.asarray(parts, dtype=np.int64)
    src, dst = graph.edges()
    lo = np.minimum(parts[src], parts[dst])
    hi = np.maximum(parts[src], parts[dst])
    key = lo * np.int64(num_parts) + hi
    # both stored arcs of an undirected edge map to the same (lo, hi) cell
    upper = (
        np.bincount(key, minlength=num_parts * num_parts) // 2
    ).reshape(num_parts, num_parts)
    return upper + np.triu(upper, 1).T


def ghost_counts(graph: Graph, parts: np.ndarray, num_parts: int) -> np.ndarray:
    """Per part: distinct remote vertices adjacent to the part — the x/halo
    entries a rank owning that part must fetch every superstep (the SpMV /
    analytics communication driver)."""
    parts = np.asarray(parts, dtype=np.int64)
    src, dst = graph.edges()
    remote = parts[src] != parts[dst]
    if not np.any(remote):
        return np.zeros(num_parts, dtype=np.int64)
    key = parts[src][remote] * np.int64(graph.n) + dst[remote]
    key = np.unique(key)
    return np.bincount(
        (key // graph.n).astype(np.int64), minlength=num_parts
    ).astype(np.int64)


def part_connectivity(
    graph: Graph, parts: np.ndarray, num_parts: int
) -> np.ndarray:
    """Per part: number of connected components of the induced subgraph
    (1 = contiguous part; contiguity helps locality-sensitive workloads)."""
    parts = np.asarray(parts, dtype=np.int64)
    out = np.zeros(num_parts, dtype=np.int64)
    visited = np.zeros(graph.n, dtype=bool)
    for k in range(num_parts):
        members = np.flatnonzero(parts == k)
        comps = 0
        for seed_v in members:
            if visited[seed_v]:
                continue
            comps += 1
            frontier = np.array([seed_v], dtype=np.int64)
            visited[seed_v] = True
            while frontier.size:
                neigh, _ = neighbor_gather(graph.offsets, graph.adj, frontier)
                same = neigh[(parts[neigh] == k) & ~visited[neigh]]
                frontier = np.unique(same)
                visited[frontier] = True
        out[k] = comps
    return out


@dataclass(frozen=True)
class PartitionReport:
    """Full structural report for one partition."""

    quality: PartitionQuality
    boundary_fraction: float        # boundary vertices / n
    max_ghosts: int                 # worst per-part halo size
    total_ghosts: int               # sum of per-part halo sizes
    quotient_density: float         # fraction of part pairs sharing an edge
    contiguous_parts: int           # parts with exactly one component

    def formatted(self) -> str:
        return (
            f"{self.quality.formatted()}\n"
            f"boundary={100 * self.boundary_fraction:.1f}% of vertices  "
            f"ghosts: max={self.max_ghosts} total={self.total_ghosts}\n"
            f"quotient density={self.quotient_density:.2f}  "
            f"contiguous parts={self.contiguous_parts}/"
            f"{self.quality.num_parts}"
        )


def analyze_partition(
    graph: Graph, parts: np.ndarray, num_parts: int
) -> PartitionReport:
    """Compute the full :class:`PartitionReport`."""
    ghosts = ghost_counts(graph, parts, num_parts)
    q = part_adjacency(graph, parts, num_parts)
    off = ~np.eye(num_parts, dtype=bool)
    pairs = num_parts * (num_parts - 1) // 2
    density = (
        float(np.count_nonzero(np.triu(q, 1))) / pairs if pairs else 0.0
    )
    connectivity = part_connectivity(graph, parts, num_parts)
    _ = off
    return PartitionReport(
        quality=partition_quality(graph, parts, num_parts),
        boundary_fraction=(
            float(boundary_vertices(graph, parts).mean()) if graph.n else 0.0
        ),
        max_ghosts=int(ghosts.max()) if num_parts else 0,
        total_ghosts=int(ghosts.sum()),
        quotient_density=density,
        contiguous_parts=int(np.count_nonzero(connectivity == 1)),
    )
