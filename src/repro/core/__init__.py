"""XtraPuLP: distributed multi-constraint multi-objective label-propagation
partitioning (the paper's core contribution).

Public entry points:

* :func:`~repro.core.driver.xtrapulp` — partition a
  :class:`~repro.graph.csr.Graph` into ``p`` parts on ``nprocs`` simulated
  ranks, returning a :class:`~repro.core.driver.PartitionResult`.
* :mod:`~repro.core.quality` — the paper's quality metrics (edge cut ratio,
  scaled max per-part cut, vertex/edge imbalance, performance ratios).
* :class:`~repro.core.params.PulpParams` — all tunables, including the
  dynamic-multiplier constants ``(X, Y)`` studied in Fig. 7.
"""

from repro.core.params import PulpParams
from repro.core.driver import PartitionResult, xtrapulp
from repro.core.quality import (
    cut_edges_per_part,
    edge_balance,
    edge_cut,
    edge_cut_ratio,
    partition_quality,
    performance_ratios,
    scaled_max_cut_ratio,
    vertex_balance,
)

__all__ = [
    "PulpParams",
    "xtrapulp",
    "PartitionResult",
    "edge_cut",
    "edge_cut_ratio",
    "cut_edges_per_part",
    "scaled_max_cut_ratio",
    "vertex_balance",
    "edge_balance",
    "partition_quality",
    "performance_ratios",
]
