"""XtraPuLP initialization (Algorithm 2) plus random/block alternatives.

The hybrid strategy grows parts outward from ``p`` random roots: each BSP
round, every still-unassigned vertex that has at least one assigned
neighbor adopts a *uniformly random part among the distinct parts present
in its neighborhood* (the paper deliberately randomizes instead of taking
the maximal-count label — "doing so tends to result in slightly more
balanced partitions").  Vertices never reached (disconnected from all
roots) are assigned random parts at the end.

The paper notes the number of rounds is on the order of the graph
diameter, and that for high-diameter graph classes random or block
initialization should be used instead — both provided here.
"""

from __future__ import annotations

import numpy as np

from repro.core.exchange import exchange_updates
from repro.core.state import UNASSIGNED, RankState
from repro.graph.gather import neighbor_gather_with_sources
from repro.simmpi.comm import SimComm


def _random_distinct_neighbor_parts(
    state: RankState, lids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """For each vertex in ``lids``, a uniformly random *distinct* part among
    its assigned neighbors' parts (Algorithm 2's RandTrueIndex).

    Returns (chosen_parts, has_assigned_neighbor_mask).
    """
    p = state.num_parts
    neigh, srcs, _ = neighbor_gather_with_sources(
        state.dg.offsets, state.dg.adj, lids
    )
    state.work_pending += 2.0 * neigh.size + float(lids.size)
    nparts = state.parts[neigh]
    ok = nparts >= 0
    srcs, nparts = srcs[ok], nparts[ok]
    chosen = np.full(lids.size, UNASSIGNED, dtype=np.int64)
    has = np.zeros(lids.size, dtype=bool)
    if srcs.size == 0:
        return chosen, has
    # dedupe (vertex, part) pairs so each distinct part is equally likely
    keys = np.unique(srcs * np.int64(p) + nparts)
    verts = keys // p
    parts = keys % p
    # group boundaries per vertex in the deduped list
    counts = np.bincount(verts, minlength=lids.size)
    starts = np.zeros(lids.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    has = counts > 0
    pick = starts[has] + (
        state.rng.random(int(has.sum())) * counts[has]
    ).astype(np.int64)
    chosen[has] = parts[pick]
    return chosen, has


def initialize_hybrid(comm: SimComm, state: RankState) -> None:
    """Algorithm 2: root broadcast + random-label BFS growth."""
    dg, p = state.dg, state.num_parts
    if p > dg.global_n:
        raise ValueError(f"cannot cut {dg.global_n} vertices into {p} parts")
    # Master draws p unique roots and broadcasts.  Roots are drawn among
    # *connected* (degree >= 1) vertices when possible: a root that is an
    # isolated vertex can never grow its part through label propagation
    # (minor robustness deviation from Algorithm 2's uniform draw; identical
    # on component-preprocessed inputs like the paper's).
    candidates = np.flatnonzero(dg.degrees_full[: dg.n_local] > 0).astype(np.int64)
    sample_rng = np.random.default_rng(state.params.seed + 31 * comm.rank)
    take = min(candidates.size, 4 * p)
    sample = dg.l2g[
        sample_rng.choice(candidates, size=take, replace=False)
    ] if take else np.empty(0, dtype=np.int64)
    pool, _ = comm.Allgatherv(sample)  # O(p * nprocs) gids, not O(n)
    if comm.rank == 0:
        rng_root = np.random.default_rng(state.params.seed)
        if pool.size < p:
            pool = np.arange(dg.global_n, dtype=np.int64)
        roots = rng_root.choice(pool, size=p, replace=False).astype(np.int64)
    else:
        roots = None
    roots = comm.Bcast(roots if comm.rank == 0 else np.empty(p, dtype=np.int64))
    state.parts[:] = UNASSIGNED
    # claim owned roots: part = order of selection
    owner = dg.dist.owner(roots)
    mine = np.flatnonzero(owner == comm.rank)
    updates: list[np.ndarray] = []
    if mine.size:
        lids = dg.owned_lids(roots[mine])
        state.parts[lids] = mine
        updates.append(lids)
    exchange_updates(
        comm, dg, state.parts,
        np.concatenate(updates) if updates else np.empty(0, dtype=np.int64),
        wire=state.wire,
    )

    max_rounds = state.params.max_init_rounds
    if max_rounds is None:
        max_rounds = max(2 * dg.global_n, 64)  # diameter is a trivial upper bound
    for _ in range(max_rounds):
        unassigned = np.flatnonzero(state.parts[: dg.n_local] < 0).astype(np.int64)
        assigned_now = np.empty(0, dtype=np.int64)
        if unassigned.size:
            chosen, has = _random_distinct_neighbor_parts(state, unassigned)
            assigned_now = unassigned[has]
            state.parts[assigned_now] = chosen[has]
        state.flush_work(comm)
        n_updates = comm.allreduce(int(assigned_now.size), op="sum")
        exchange_updates(comm, dg, state.parts, assigned_now, wire=state.wire)
        if n_updates == 0:
            break

    # leftovers (unreached components): random parts
    leftover = np.flatnonzero(state.parts[: dg.n_local] < 0).astype(np.int64)
    if leftover.size:
        state.parts[leftover] = state.rng.integers(
            0, p, size=leftover.size, dtype=np.int64
        )
    # all ranks must join this exchange even with no leftovers
    exchange_updates(comm, dg, state.parts, leftover, wire=state.wire)


def initialize_random(comm: SimComm, state: RankState) -> None:
    """Uniform random part per owned vertex (high-diameter fallback)."""
    dg, p = state.dg, state.num_parts
    lids = np.arange(dg.n_local, dtype=np.int64)
    state.parts[:] = UNASSIGNED
    state.parts[lids] = state.rng.integers(0, p, size=dg.n_local, dtype=np.int64)
    exchange_updates(comm, dg, state.parts, lids, wire=state.wire)


def initialize_block(comm: SimComm, state: RankState) -> None:
    """Contiguous global-id blocks → parts (vertex-block partitioning).

    The paper uses this as the analytics-experiment starting point
    ("first initializing with vertex block partitioning", §V.E).
    """
    dg, p = state.dg, state.num_parts
    lids = np.arange(dg.n_local, dtype=np.int64)
    gids = dg.owned_gids
    base, extra = divmod(dg.global_n, p)
    # part k owns [k*base + min(k, extra) + ..., ...); invert by search
    bounds = np.arange(1, p + 1, dtype=np.int64) * base + np.minimum(
        np.arange(1, p + 1), extra
    )
    state.parts[:] = UNASSIGNED
    state.parts[lids] = np.searchsorted(bounds, gids, side="right")
    exchange_updates(comm, dg, state.parts, lids, wire=state.wire)


def reseed_dead_parts(comm: SimComm, state: RankState) -> int:
    """Revive parts that have no connected members (collective).

    Label propagation can only move a vertex into a part that already owns
    one of its neighbors, so a part whose connected membership hits zero
    (e.g. its Algorithm-2 root was strangled at birth) can never regain
    edges.  Each dead part is reseeded with one high-degree vertex donated
    by the most-populated parts; subsequent balance iterations grow a
    region around the new seed.  Returns the number of parts reseeded.
    A robustness extension over the paper (whose billion-vertex inputs
    never see p parts collapse); no-op when every part is alive.
    """
    dg, p = state.dg, state.num_parts
    deg = dg.degrees_full[: dg.n_local]
    owned = state.parts[: dg.n_local]
    conn = owned[(deg > 0) & (owned >= 0)]
    alive = comm.Allreduce(
        np.bincount(conn, minlength=p).astype(np.int64), op="sum"
    )
    dead = np.flatnonzero(alive == 0)
    if dead.size == 0:
        return 0
    # each rank proposes its highest-degree vertices from the biggest parts
    donors = np.argsort(alive)[::-1][: max(2, dead.size)]
    donor_mask = np.isin(owned, donors) & (deg > 1)
    cand = np.flatnonzero(donor_mask)
    take = min(cand.size, 2 * dead.size)
    if take:
        top = cand[np.argsort(deg[cand])[::-1][:take]]
        proposal = np.column_stack([dg.l2g[top], deg[top]]).ravel()
    else:
        proposal = np.empty(0, dtype=np.int64)
    merged, _ = comm.Allgatherv(proposal.astype(np.int64))
    gids, degs = merged[0::2], merged[1::2]
    if gids.size == 0:
        return 0
    # deterministic global choice: highest degree first, gid tiebreak
    order = np.lexsort((gids, -degs))
    chosen = gids[order][: dead.size]
    targets = dead[: chosen.size]
    owner = dg.dist.owner(chosen)
    mine = np.flatnonzero(owner == comm.rank)
    moved = np.empty(0, dtype=np.int64)
    if mine.size:
        lids = dg.owned_lids(chosen[mine])
        state.parts[lids] = targets[mine]
        moved = lids
    exchange_updates(comm, dg, state.parts, moved, wire=state.wire)
    return int(targets.size)


def initialize_from_parts(
    comm: SimComm, state: RankState, initial_parts: np.ndarray
) -> None:
    """Adopt an existing global assignment as the starting point.

    The paper's §V.E workflow: "run the balancing stage of XTRAPULP after
    first initializing with vertex block partitioning" — i.e. XtraPuLP as
    a partition *improver*.  ``initial_parts`` is a full global array
    (identical on every rank, read-only).
    """
    dg, p = state.dg, state.num_parts
    initial_parts = np.asarray(initial_parts)
    if initial_parts.shape != (dg.global_n,):
        raise ValueError(
            f"initial_parts must cover all {dg.global_n} vertices"
        )
    if initial_parts.size and (
        initial_parts.min() < 0 or initial_parts.max() >= p
    ):
        raise ValueError("initial part labels out of range")
    lids = np.arange(dg.n_local, dtype=np.int64)
    state.parts[:] = UNASSIGNED
    state.parts[lids] = initial_parts[dg.owned_gids]
    exchange_updates(comm, dg, state.parts, lids, wire=state.wire)


def initialize(
    comm: SimComm,
    state: RankState,
    initial_parts: "np.ndarray | None" = None,
) -> None:
    """Dispatch on ``params.init_strategy`` (or adopt ``initial_parts``)."""
    with comm.phase("init"):
        strategy = state.params.init_strategy
        if initial_parts is not None:
            initialize_from_parts(comm, state, initial_parts)
        elif strategy == "hybrid":
            initialize_hybrid(comm, state)
        elif strategy == "random":
            initialize_random(comm, state)
        elif strategy == "block":
            initialize_block(comm, state)
        else:  # pragma: no cover - params validates
            raise ValueError(strategy)
        bad = int(np.count_nonzero(state.parts[: state.dg.n_local] < 0))
        total_bad = comm.allreduce(bad, op="sum")
        if total_bad:
            raise AssertionError(f"{total_bad} vertices left unassigned by init")
        reseed_dead_parts(comm, state)
