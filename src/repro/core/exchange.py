"""The paper's ExchangeUpdates communication routine (Algorithm 3).

After a propagation sweep, each rank ships the updates of its *updated*
owned vertices to every rank holding a ghost copy (the vertex's off-rank
neighbor owners), via a counts Alltoall followed by a payload Alltoallv —
exactly the paper's two-step exchange, with the per-vertex ``toSend`` rank
sets precomputed at DistGraph build time.

Two wire formats (:mod:`repro.dist.wire`):

* ``gid64`` — the paper's literal record: interleaved 64-bit
  ``(vertex gid, new part)`` pairs, resolved on receive with a
  ``searchsorted`` over the ghost gids (16 B/record);
* ``compact`` (default) — owner-relative addressing: each record is the
  destination rank's ghost slot index (``DistGraph.send_ghost_slot``,
  narrowest unsigned dtype) plus the part label (narrowest signed dtype),
  shipped as independently-typed field planes and applied by direct
  indexed assignment (4–8 B/record, no per-exchange gid lookup).

Both formats send the same records in the same stable destination-major
order, so the receive-side writes — and everything downstream — are
bit-identical.

Receive buffers are consumed read-only (indexed assignment *from* them
into the rank-local ``parts`` array), which is what lets the procs
backend's shm data plane deliver them as zero-copy shared-memory views:
the hot-path exchange of the whole partitioner moves descriptors, not
bytes (:mod:`repro.simmpi.dataplane`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dist.distgraph import DistGraph
from repro.dist.packing import pack_by_rank, pack_fields_by_rank, unpack_fields
from repro.dist.wire import WireSpec
from repro.graph.gather import expand_ranges
from repro.simmpi.comm import SimComm


def exchange_updates(
    comm: SimComm,
    dg: DistGraph,
    parts: np.ndarray,
    updated_lids: np.ndarray,
    wire: Optional[WireSpec] = None,
) -> np.ndarray:
    """Propagate part updates for ``updated_lids`` (owned local ids) and
    apply incoming updates to this rank's ghost entries of ``parts``.

    ``wire`` selects the message format (None → legacy ``gid64``).
    Returns the local ids of the ghost entries that were updated (each
    ghost has one owner, so the ids are unique) — the frontier engine
    seeds the next active set from them.  Collective: all ranks must call
    it each sweep (possibly with empty updates) and agree on the format.
    """
    updated_lids = np.asarray(updated_lids, dtype=np.int64)
    # destination ranks: each updated vertex goes to all its neighbor ranks
    starts = dg.send_rank_offsets[updated_lids]
    counts = dg.send_rank_offsets[updated_lids + 1] - starts
    idx = expand_ranges(starts, counts)
    dest = dg.send_rank_adj[idx]
    new_parts = np.repeat(parts[updated_lids], counts)

    if wire is not None and wire.compact:
        slots = dg.send_ghost_slot[idx].astype(wire.slot_dtype)
        planes, reccounts = pack_fields_by_rank(
            comm.size, dest, (slots, new_parts.astype(wire.part_dtype))
        )
        recv, _ = comm.Alltoallv_fields(planes, reccounts)
        rslots, rparts = recv
        if rslots.size == 0:
            return np.empty(0, dtype=np.int64)
        ghost_lids = rslots.astype(np.int64) + dg.n_local
        parts[ghost_lids] = rparts
        return ghost_lids

    gids = np.repeat(dg.l2g[updated_lids], counts)
    sendbuf, sendcounts = pack_by_rank(comm.size, dest, (gids, new_parts))
    recvbuf, _ = comm.Alltoallv(sendbuf, sendcounts)
    if recvbuf.size == 0:
        return np.empty(0, dtype=np.int64)
    rgids, rparts = unpack_fields(recvbuf, 2)
    ghost_lids = dg.ghost_lids(rgids)
    parts[ghost_lids] = rparts
    return ghost_lids
