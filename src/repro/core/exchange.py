"""The paper's ExchangeUpdates communication routine (Algorithm 3).

After a propagation sweep, each rank ships the ``(vertex gid, new part)``
pairs of its *updated* owned vertices to every rank holding a ghost copy
(the vertex's off-rank neighbor owners), via a counts Alltoall followed by
a payload Alltoallv — exactly the paper's two-step exchange, with the
per-vertex ``toSend`` rank sets precomputed at DistGraph build time.
"""

from __future__ import annotations

import numpy as np

from repro.dist.distgraph import DistGraph
from repro.dist.packing import pack_by_rank, unpack_fields
from repro.graph.gather import expand_ranges
from repro.simmpi.comm import SimComm


def exchange_updates(
    comm: SimComm,
    dg: DistGraph,
    parts: np.ndarray,
    updated_lids: np.ndarray,
) -> np.ndarray:
    """Propagate part updates for ``updated_lids`` (owned local ids) and
    apply incoming updates to this rank's ghost entries of ``parts``.

    Returns the local ids of the ghost entries that were updated (each
    ghost has one owner, so the ids are unique) — the frontier engine
    seeds the next active set from them.  Collective: all ranks must call
    it each sweep (possibly with empty updates).
    """
    updated_lids = np.asarray(updated_lids, dtype=np.int64)
    # destination ranks: each updated vertex goes to all its neighbor ranks
    starts = dg.send_rank_offsets[updated_lids]
    counts = dg.send_rank_offsets[updated_lids + 1] - starts
    idx = expand_ranges(starts, counts)
    dest = dg.send_rank_adj[idx]
    gids = np.repeat(dg.l2g[updated_lids], counts)
    new_parts = np.repeat(parts[updated_lids], counts)

    sendbuf, sendcounts = pack_by_rank(comm.size, dest, (gids, new_parts))
    recvbuf, _ = comm.Alltoallv(sendbuf, sendcounts)
    if recvbuf.size == 0:
        return np.empty(0, dtype=np.int64)
    rgids, rparts = unpack_fields(recvbuf, 2)
    ghost_lids = dg.ghost_lids(rgids)
    parts[ghost_lids] = rparts
    return ghost_lids
