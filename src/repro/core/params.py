"""XtraPuLP parameters (defaults from Algorithm 1 and §III.C)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union


@dataclass(frozen=True)
class PulpParams:
    """All partitioner tunables.

    Attributes
    ----------
    outer_iters, balance_iters, refine_iters:
        Algorithm 1's ``I_outer=3``, ``I_bal=5``, ``I_ref=10``; the total
        iteration budget ``I_tot = I_outer * (I_bal + I_ref)`` drives the
        multiplier schedule (the schedule is shared by the vertex and edge
        outer loops, each running ``iter_tot`` from 0 to ``I_tot``).
    x, y:
        The dynamic-multiplier constants (§III.C):
        ``mult = nprocs * ((X - Y) * iter_tot / I_tot + Y)``, i.e. each rank
        may initially claim ``1/Y ×`` its fair share of updates to a part
        and exactly its share at the final iteration.  The paper selects
        (1.0, 0.25) empirically *for its per-move atomic update
        granularity*; our vectorized sweeps refresh estimates per block, a
        coarser granularity, and the same empirical procedure (the Fig. 7
        sweep, see ``benchmarks/test_fig7_xy_heatmaps.py``) selects
        (1.0, 1.0) here — achieving the balance constraints with a small
        cut penalty, mirroring the paper's own X/Y trade-off analysis.
    vert_imbalance, edge_imbalance:
        The constraint ratios ``Rat_v``/``Rat_e``; target part sizes are
        ``Imb_v = (1 + Rat_v) n / p`` and ``Imb_e = (1 + Rat_e) m_deg / p``
        (edge size of a part = sum of its vertices' degrees, the quantity
        the incremental bookkeeping can track).  Default 10% like the
        paper's experiments.
    block_size:
        Vertices per vectorized propagation block.  Part-size estimates and
        weights refresh *between* blocks, approximating the paper's
        asynchronous thread-level updates; smaller blocks ≈ finer-grained
        asynchrony (ablation bench).
    frontier:
        Active-set sweep control (:mod:`repro.core.frontier`).  ``True``
        (default): iteration 0 of every balance/refine phase sweeps all
        owned vertices, later iterations re-score only vertices that moved
        or are adjacent to a moved vertex (owned or ghost).  ``False``:
        legacy full sweeps every iteration.  ``"full"``: run the frontier
        machinery but re-seed every owned vertex each iteration — a
        verification mode that must reproduce the legacy path bit-for-bit
        (enforced by the frontier tests).
    wire:
        ``ExchangeUpdates`` message format (:mod:`repro.dist.wire`).
        ``"compact"`` (default): owner-relative ghost-slot addressing in
        the narrowest sufficient dtypes (4–8 bytes/record, applied on
        receive by direct indexing); ``"gid64"``: the paper's interleaved
        64-bit ``(gid, part)`` pairs (16 bytes/record, gid ``searchsorted``
        on receive) — kept as a bit-identity verification mode, same
        pattern as ``frontier="full"`` (enforced by the wire tests).
    comm:
        Communicator strategy spec (:mod:`repro.simmpi.topology`), the
        ChainerMN-style ``name[:ranks_per_node[xnodes_per_rack]]`` grammar:
        ``"flat"`` (one rank = one node, today's metering), ``"naive"``
        (alias), or ``"hierarchical[:R[xK]]"`` (two-level exchange metering
        with ``R`` ranks/node).  None (default) honors ``$REPRO_COMM``,
        falling back to ``flat``.  Strategy choice never changes the
        partition or the communication record — only the tier metering the
        tiered machine models price.
    re_init, re_step, rc_init, rc_step:
        Schedule for the edge-balance bias factors (§III.E): ``Re`` grows by
        ``re_step`` per iteration while the edge-balance constraint is
        unmet, then freezes; ``Rc`` starts growing once balance is met.
    init_strategy:
        ``"hybrid"`` (Algorithm 2: BFS-growing + random neighbor-label
        adoption), ``"random"``, or ``"block"``.
    max_init_rounds:
        Safety bound on Algorithm 2's propagation loop (≈ graph diameter
        rounds are needed; the bound only matters for pathological inputs).
    single_objective:
        If True, skip the edge balance/refinement stage entirely — the
        configuration the paper uses for the Fig. 6 comparison against
        single-constraint partitioners (KaHIP et al.).
    shared_memory:
        PuLP mode: treat the ranks as threads of one address space — size
        updates are exact (``mult == 1`` always, no distributed throttle).
        Used by :func:`repro.baselines.pulp_shared.pulp` together with a
        zero-latency machine model.
    multilevel:
        Run the multilevel V-cycle (:mod:`repro.multilevel`) instead of
        the flat pipeline: coarsen to a small graph, partition it with
        the flat machinery, project back up with bounded weighted refine
        sweeps per level.  The edge stage still runs last, on the fine
        graph.
    ml_levels:
        Maximum hierarchy depth including the input graph (coarsening
        also stops at the size target or on stagnation).
    ml_coarsen:
        Clustering used by the coarsener: ``"lp"`` (distributed
        size-constrained label propagation, clusters may span ranks) or
        ``"hem"`` (per-rank heavy-edge matching on the owned-induced
        subgraph — the shared-memory kernel reused verbatim).
    ml_coarsest_factor:
        Coarsening size target, in vertices per part: stop once the
        level has at most ``ml_coarsest_factor * num_parts`` vertices
        (never below ``2 * nprocs``).
    ml_refine_iters:
        Weighted refine sweeps per uncoarsening level.
    ml_imbalance_relax:
        Adaptive balance schedule: level ``l`` (0 = finest) targets
        ``Rat_v * (1 + relax * l / (n_levels - 1))`` — loose at the
        coarsest level, where a handful of heavy clusters makes the
        strict constraint block nearly every cut-improving move, then
        tightened by a balance pass per uncoarsening level until the
        finest level enforces exactly ``Rat_v``.  ``0`` disables the
        relaxation.
    seed:
        Base RNG seed; rank r uses ``seed + r`` streams.
    """

    outer_iters: int = 3
    balance_iters: int = 5
    refine_iters: int = 10
    x: float = 1.0
    y: float = 1.0
    vert_imbalance: float = 0.10
    edge_imbalance: float = 0.10
    block_size: int = 4096
    frontier: Union[bool, str] = True
    wire: str = "compact"
    comm: Optional[str] = None
    re_init: float = 1.0
    re_step: float = 1.0
    rc_init: float = 1.0
    rc_step: float = 1.0
    init_strategy: str = "hybrid"
    max_init_rounds: Optional[int] = None
    single_objective: bool = False
    shared_memory: bool = False
    multilevel: bool = False
    ml_levels: int = 8
    ml_coarsen: str = "lp"
    ml_coarsest_factor: int = 30
    ml_refine_iters: int = 6
    ml_imbalance_relax: float = 2.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.outer_iters < 1 or self.balance_iters < 0 or self.refine_iters < 0:
            raise ValueError("iteration counts must be positive")
        if self.balance_iters + self.refine_iters == 0:
            raise ValueError("need at least one balance or refine iteration")
        if self.vert_imbalance < 0 or self.edge_imbalance < 0:
            raise ValueError("imbalance ratios must be non-negative")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
        if self.frontier not in (True, False, "full"):
            raise ValueError(
                f"frontier must be True, False, or 'full', got {self.frontier!r}"
            )
        if self.wire not in ("compact", "gid64"):
            raise ValueError(
                f"wire must be 'compact' or 'gid64', got {self.wire!r}"
            )
        if self.comm is not None:
            # grammar check only (cheap, import-light); the registry
            # validates the strategy name when the runtime is built
            from repro.simmpi.topology.model import parse_comm_spec

            parse_comm_spec(self.comm)
        if self.init_strategy not in ("hybrid", "random", "block"):
            raise ValueError(f"unknown init strategy {self.init_strategy!r}")
        if self.ml_coarsen not in ("lp", "hem"):
            raise ValueError(
                f"ml_coarsen must be 'lp' or 'hem', got {self.ml_coarsen!r}"
            )
        if self.ml_levels < 1:
            raise ValueError("ml_levels must be >= 1")
        if self.ml_coarsest_factor < 1:
            raise ValueError("ml_coarsest_factor must be >= 1")
        if self.ml_refine_iters < 1:
            raise ValueError("ml_refine_iters must be >= 1")
        if self.ml_imbalance_relax < 0:
            raise ValueError("ml_imbalance_relax must be non-negative")

    @property
    def total_iters(self) -> int:
        """``I_tot``: multiplier-schedule denominator (Algorithm 1)."""
        return self.outer_iters * (self.balance_iters + self.refine_iters)

    def with_(self, **kwargs) -> "PulpParams":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **kwargs)

    def mult(self, nprocs: int, iter_tot: int) -> float:
        """The dynamic multiplier at schedule position ``iter_tot``.

        Clamped to >= 1: a rank's own moves change the global part size at
        least one-for-one, so the size estimate ``S + mult*C`` must grow at
        least that fast.  The paper's formula can dip below 1 when
        ``nprocs * Y < 1`` (tiny rank counts, far below its target scale),
        which would let a single rank overshoot a part's capacity by
        ``1/(nprocs*Y)``; the clamp is inactive at the paper's scale.
        """
        if self.shared_memory:
            # PuLP-mode: atomics make every thread's updates globally
            # visible, i.e. the collective estimate is exact.  With
            # per-rank *local* deltas, exactness means each rank gets
            # precisely its 1/nprocs share: mult == nprocs.
            return float(nprocs)
        frac = min(iter_tot / max(self.total_iters, 1), 1.0)
        return max(nprocs * ((self.x - self.y) * frac + self.y), 1.0)
