"""Vectorized per-part move-capacity enforcement.

The paper's implementation updates ``Cv``/``Wv`` atomically after *every*
move, so within one sweep a rank stops assigning vertices to part ``k`` as
soon as its size estimate ``S(k) + mult * C(k)`` crosses the bound.  Our
sweeps are vectorized over vertex blocks, so the same semantics are
recovered by post-selection: given the block's move candidates (in vertex
order, matching the paper's sequential scan), admit them first-come until
the part's capacity — ``(limit_k - est_k) / mult`` in the relevant unit
(vertices, or degree sum for the edge constraint) — is exhausted.
"""

from __future__ import annotations

import numpy as np


def enforce_count_capacity(
    tgt: np.ndarray, cap: np.ndarray
) -> np.ndarray:
    """Keep-mask over candidates: at most ``cap[k]`` candidates may target
    part ``k``; earlier candidates (lower index = paper's scan order) win.

    Parameters
    ----------
    tgt:
        Target part per candidate, candidates in vertex order.
    cap:
        Per-part admission capacity (float or int; non-positive = closed).
    """
    tgt = np.asarray(tgt, dtype=np.int64)
    if tgt.size == 0:
        return np.zeros(0, dtype=bool)
    order = np.argsort(tgt, kind="stable")
    sorted_tgt = tgt[order]
    # position of each candidate within its part group
    group_start = np.searchsorted(sorted_tgt, np.arange(cap.size, dtype=np.int64))
    pos = np.arange(sorted_tgt.size, dtype=np.int64) - group_start[sorted_tgt]
    keep_sorted = pos < np.floor(np.maximum(cap, 0.0))[sorted_tgt]
    keep = np.zeros(tgt.size, dtype=bool)
    keep[order] = keep_sorted
    return keep


def enforce_weight_capacity(
    tgt: np.ndarray, weights: np.ndarray, cap: np.ndarray
) -> np.ndarray:
    """Keep-mask with weighted capacity: per part, admit candidates in scan
    order while the running sum of their ``weights`` stays within
    ``cap[k]``.

    Used for the edge constraint (weights = vertex degrees) and for the
    cut constraint (weights = signed cut deltas; the running-sum rule stops
    admissions once the cumulative delta would exceed the headroom).
    """
    tgt = np.asarray(tgt, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if tgt.size == 0:
        return np.zeros(0, dtype=bool)
    order = np.argsort(tgt, kind="stable")
    sorted_tgt = tgt[order]
    w_sorted = weights[order]
    # exact per-group running sums (a global cumsum minus group offsets
    # suffers float cancellation): pad each part's candidates into its own
    # row of a (parts x widest-group) matrix and cumsum along the rows —
    # every row is an independent sequential prefix sum, so the float
    # addition order (and hence the result) is bit-identical to summing
    # each group on its own
    bounds = np.searchsorted(
        sorted_tgt, np.arange(cap.size + 1, dtype=np.int64)
    )
    n = w_sorted.size
    width = int(np.diff(bounds).max())
    if cap.size * width <= max(8 * n, 4096):
        pos = np.arange(n, dtype=np.int64) - bounds[:-1][sorted_tgt]
        mat = np.zeros((cap.size, width), dtype=np.float64)
        mat[sorted_tgt, pos] = w_sorted
        np.cumsum(mat, axis=1, out=mat)
        within = mat[sorted_tgt, pos]
    else:
        # degenerate padding (one giant group among many near-empty
        # parts): fall back to per-part slices
        within = np.empty_like(w_sorted)
        for k in range(cap.size):
            lo, hi = bounds[k], bounds[k + 1]
            if hi > lo:
                within[lo:hi] = np.cumsum(w_sorted[lo:hi])
    keep_sorted = within <= np.maximum(cap, 0.0)[sorted_tgt]
    keep = np.zeros(tgt.size, dtype=bool)
    keep[order] = keep_sorted
    return keep
