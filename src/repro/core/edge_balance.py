"""XtraPuLP edge balancing and refinement stage (§III.E).

Same skeleton as the vertex phases, with three coupled quantities tracked
per part: vertices ``Sv``, edges ``Se`` (sum of member degrees — the
incrementally-trackable edge size), and cut edges ``Sc`` (cut edges
touching the part).  Neighbor tallies are weighted by
``Re * We(k) + Rc * Wc(k)``:

* ``We(k) = max(Imb_e / est_e(k) - 1, 0)`` attracts vertices to parts
  underweight in edges;
* ``Wc(k) = max(Maxc / est_c(k) - 1, 0)`` attracts to parts underweight in
  cut, which both balances the per-part cut and lowers its max;
* ``Re`` ramps while the edge-balance constraint is unmet, then freezes and
  ``Rc`` ramps (the paper's two-regime bias schedule).

Moving vertex ``v`` (degree d, n_x neighbors in old part x, n_w in new part
w) changes cut sizes by ``ΔSc(x) = 2 n_x − d`` and ``ΔSc(w) = d − 2 n_w``;
other parts are unchanged.  The (X, Y)-scheduled multiplier throttles all
three estimates, and per-part admissions are capacity-limited in vertex,
degree, and cut units (:mod:`repro.core.capacity`).

Both phases sweep the :class:`repro.core.frontier.FrontierSweeper` active
set: a full first iteration, then only vertices that moved or saw a
neighbor (owned or ghost) move.
"""

from __future__ import annotations

import numpy as np

from repro.core.capacity import enforce_weight_capacity
from repro.core.frontier import FrontierSweeper
from repro.core.state import RankState
from repro.simmpi.comm import SimComm


def _commit(
    state: RankState,
    lids: np.ndarray,
    cand: np.ndarray,
    w: np.ndarray,
    plain: np.ndarray,
    Cv: np.ndarray,
    Ce: np.ndarray,
    Cc: np.ndarray,
) -> np.ndarray:
    """Apply the admitted moves; fold deltas into Cv/Ce/Cc."""
    p = state.num_parts
    moved = lids[cand]
    if moved.size == 0:
        return moved
    old = state.parts[moved].copy()
    new = w[cand]
    deg = state.dg.local_degrees[moved].astype(np.float64)
    mw = state.vweights[moved]
    n_x = plain[cand, old].astype(np.float64)
    n_w = plain[cand, new].astype(np.float64)
    state.parts[moved] = new
    Cv += np.bincount(new, weights=mw, minlength=p)
    Cv -= np.bincount(old, weights=mw, minlength=p)
    Ce += np.bincount(new, weights=deg, minlength=p)
    Ce -= np.bincount(old, weights=deg, minlength=p)
    Cc += np.bincount(old, weights=2.0 * n_x - deg, minlength=p)
    Cc += np.bincount(new, weights=deg - 2.0 * n_w, minlength=p)
    return moved


def _finish_iteration(
    comm: SimComm,
    state: RankState,
    sweeper: FrontierSweeper,
    Sv: np.ndarray,
    Se: np.ndarray,
    Sc: np.ndarray,
    Cv: np.ndarray,
    Ce: np.ndarray,
    Cc: np.ndarray,
) -> None:
    sweeper.exchange(comm)
    deltas = comm.Allreduce(np.stack([Cv, Ce, Cc]), op="sum")
    Sv += deltas[0]
    Se += deltas[1]
    Sc += deltas[2]
    state.iter_tot += 1


def edge_balance_phase(comm: SimComm, state: RankState, iters: int) -> None:
    """Edge balancing iterations (the §III.E analog of Algorithm 4)."""
    p = state.num_parts
    dg = state.dg
    imb_v = state.target_max_vertices
    imb_e = state.target_max_edges
    params = state.params
    with comm.phase("edge_balance"):
        from repro.core.initialization import reseed_dead_parts

        reseed_dead_parts(comm, state)
        Sv = state.compute_vertex_sizes(comm).astype(np.float64)
        Se = state.compute_edge_sizes(comm).astype(np.float64)
        Sc = state.compute_cut_sizes(comm).astype(np.float64)
        re_bias = params.re_init
        rc_bias = params.rc_init
        maxv = max(float(Sv.max()), imb_v)
        maxe = max(float(Se.max()), imb_e)
        sweeper = FrontierSweeper(state, phase="edge_balance")
        for _ in range(iters):
            # ratchet: balancing must not push any maximum above its entry level
            maxv = max(min(maxv, float(Sv.max())), imb_v)
            maxe = max(min(maxe, float(Se.max())), imb_e)
            maxc = max(float(Sc.max()), 1.0)
            mult = state.mult(comm)
            if float(Se.max()) > imb_e:
                re_bias += params.re_step
            else:
                rc_bias += params.rc_step
            Cv = np.zeros(p, dtype=np.float64)
            Ce = np.zeros(p, dtype=np.float64)
            Cc = np.zeros(p, dtype=np.float64)
            for lids in sweeper.blocks():
                est_v = Sv + mult * Cv
                est_e = Se + mult * Ce
                est_c = Sc + mult * Cc
                We = np.maximum(imb_e / np.maximum(est_e, 1.0) - 1.0, 0.0)
                Wc = np.maximum(maxc / np.maximum(est_c, 1.0) - 1.0, 0.0)
                weighted, plain = state.block_part_counts(
                    lids, degree_weighted=True
                )
                scores = weighted * (re_bias * We + rc_bias * Wc)
                deg = dg.local_degrees[lids].astype(np.float64)
                blocked = ((est_v + 1.0) > maxv)[None, :] | (
                    est_e[None, :] + deg[:, None] > maxe
                )
                scores[blocked] = 0.0
                x = state.parts[lids]
                wsel = np.argmax(scores, axis=1)
                rows = np.arange(lids.size)
                move = (
                    (wsel != x)
                    & (scores[rows, wsel] > scores[rows, x])
                    & (scores[rows, wsel] > 0.0)
                )
                cand = np.flatnonzero(move)
                if cand.size:
                    vw = state.vweights[lids]
                    cap_v = (maxv - est_v) / max(mult, 1e-12)
                    # two-tier edge capacity: a part below the target fills
                    # only to Imb_e (the We weight's zero-crossing); a part
                    # already above it may still take cut-balancing moves up
                    # to the ratcheted maximum
                    limit_e = np.where(est_e < imb_e, imb_e, maxe)
                    cap_e = (limit_e - est_e) / max(mult, 1e-12)
                    keep = enforce_weight_capacity(wsel[cand], vw[cand], cap_v)
                    keep &= enforce_weight_capacity(
                        wsel[cand], deg[cand], cap_e
                    )
                    cand = cand[keep]
                moved = _commit(state, lids, cand, wsel, plain, Cv, Ce, Cc)
                sweeper.note_moves(moved)
            _finish_iteration(comm, state, sweeper, Sv, Se, Sc, Cv, Ce, Cc)
        state.Sv, state.Se, state.Sc = Sv, Se, Sc  # for boundary snapshots


def edge_refine_phase(comm: SimComm, state: RankState, iters: int) -> None:
    """Edge-stage refinement: plurality moves constrained by the current
    vertex, edge, *and* cut maxima (the paper's final stage)."""
    p = state.num_parts
    dg = state.dg
    imb_v = state.target_max_vertices
    imb_e = state.target_max_edges
    with comm.phase("edge_refine"):
        Sv = state.compute_vertex_sizes(comm).astype(np.float64)
        Se = state.compute_edge_sizes(comm).astype(np.float64)
        Sc = state.compute_cut_sizes(comm).astype(np.float64)
        maxv = max(float(Sv.max()), imb_v)
        maxe = max(float(Se.max()), imb_e)
        # late full cleanup pass, damped by the remaining active sweeps
        # (see vertex refinement)
        sweeper = FrontierSweeper(
            state, phase="edge_refine", cleanup_iter=max(0, iters - 3)
        )
        for _ in range(iters):
            # ratchet: the vertex/edge maxima may only tighten
            maxv = max(min(maxv, float(Sv.max())), imb_v)
            maxe = max(min(maxe, float(Se.max())), imb_e)
            maxc = max(float(Sc.max()), 1.0)
            mult = state.mult(comm)
            Cv = np.zeros(p, dtype=np.float64)
            Ce = np.zeros(p, dtype=np.float64)
            Cc = np.zeros(p, dtype=np.float64)
            for lids in sweeper.blocks():
                est_v = Sv + mult * Cv
                est_e = Se + mult * Ce
                est_c = Sc + mult * Cc
                _, plain = state.block_part_counts(lids, degree_weighted=False)
                scores = plain.astype(np.float64)
                deg = dg.local_degrees[lids].astype(np.float64)
                d_cut_gain = deg[:, None] - 2.0 * plain  # ΔSc at the target
                blocked = (
                    ((est_v + 1.0) > maxv)[None, :]
                    | (est_e[None, :] + deg[:, None] > maxe)
                    | (est_c[None, :] + d_cut_gain > maxc)
                )
                scores[blocked] = 0.0
                x = state.parts[lids]
                wsel = np.argmax(scores, axis=1)
                rows = np.arange(lids.size)
                move = (wsel != x) & (scores[rows, wsel] > scores[rows, x])
                cand = np.flatnonzero(move)
                if cand.size:
                    vw = state.vweights[lids]
                    cap_v = (maxv - est_v) / max(mult, 1e-12)
                    cap_e = (maxe - est_e) / max(mult, 1e-12)
                    cap_c = (maxc - est_c) / max(mult, 1e-12)
                    gain = deg[cand] - 2.0 * plain[cand, wsel[cand]]
                    keep = enforce_weight_capacity(wsel[cand], vw[cand], cap_v)
                    keep &= enforce_weight_capacity(wsel[cand], deg[cand], cap_e)
                    keep &= enforce_weight_capacity(wsel[cand], gain, cap_c)
                    cand = cand[keep]
                moved = _commit(state, lids, cand, wsel, plain, Cv, Ce, Cc)
                sweeper.note_moves(moved)
            _finish_iteration(comm, state, sweeper, Sv, Se, Sc, Cv, Ce, Cc)
        state.Sv, state.Se, state.Sc = Sv, Se, Sc  # for boundary snapshots
