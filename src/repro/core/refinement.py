"""XtraPuLP vertex refinement phase (Algorithm 5).

Constrained plurality label propagation (an FM-refinement variant): each
vertex moves to the part holding most of its neighbors, provided the
target's estimated size stays below ``Maxv`` — the imbalance target
``Imb_v`` once the constraint is satisfied, otherwise the current worst
part size.  ``Maxv`` is *ratcheted* (never allowed to grow across
iterations of one refinement phase), so refinement can only maintain or
improve the worst imbalance — the paper's "without increasing the size of
any part greater than the current most imbalanced part", made robust
against the BSP attractor creep that per-iteration recomputation allows.
Per-part admissions obey the same multiplier-scaled capacity rule as the
balance phase.  Sweeps run over the
:class:`repro.core.frontier.FrontierSweeper` active set (full first
iteration, moved-or-touched vertices afterwards).
"""

from __future__ import annotations

import numpy as np

from repro.core.capacity import enforce_weight_capacity
from repro.core.frontier import FrontierSweeper
from repro.core.state import RankState
from repro.simmpi.comm import SimComm


def vertex_refine_phase(comm: SimComm, state: RankState, iters: int) -> None:
    """Run ``iters`` refinement iterations (Algorithm 5)."""
    p = state.num_parts
    imb_v = state.target_max_vertices
    with comm.phase("vertex_refine"):
        Sv = state.compute_vertex_sizes(comm).astype(np.float64)
        maxv = max(float(Sv.max()), imb_v)
        # one late exhaustive cleanup pass catches moves the active-set
        # approximation missed; it sits a few iterations before the end so
        # the remaining active sweeps damp the simultaneous-move overshoot
        # a full BSP sweep commits when the state is not yet a fixed point
        sweeper = FrontierSweeper(
            state, phase="vertex_refine", cleanup_iter=max(0, iters - 3)
        )
        for _ in range(iters):
            maxv = max(min(maxv, float(Sv.max())), imb_v)  # ratchet down only
            mult = state.mult(comm)
            Cv = np.zeros(p, dtype=np.float64)
            for lids in sweeper.blocks():
                est = Sv + mult * Cv
                vw = state.vweights[lids]
                _, plain = state.block_part_counts(lids, degree_weighted=False)
                scores = plain.astype(np.float64)
                # part full for vertex v once est + w(v) would exceed Maxv
                scores[(est[None, :] + vw[:, None]) > maxv] = 0.0
                x = state.parts[lids]
                w = np.argmax(scores, axis=1)
                rows = np.arange(lids.size)
                move = (w != x) & (scores[rows, w] > scores[rows, x])
                cand = np.flatnonzero(move)
                if cand.size:
                    cap = (maxv - est) / max(mult, 1e-12)
                    keep = enforce_weight_capacity(w[cand], vw[cand], cap)
                    cand = cand[keep]
                if cand.size:
                    moved = lids[cand]
                    old = x[cand]
                    new = w[cand]
                    state.parts[moved] = new
                    mw = state.vweights[moved]
                    Cv += np.bincount(new, weights=mw, minlength=p)
                    Cv -= np.bincount(old, weights=mw, minlength=p)
                    sweeper.note_moves(moved)
            sweeper.exchange(comm)
            Cv_global = comm.Allreduce(Cv, op="sum")
            Sv += Cv_global
            state.iter_tot += 1
        state.Sv = Sv  # last agreed totals, for phase-boundary snapshots
