"""XtraPuLP vertex balancing phase (Algorithm 4).

Weighted label propagation: part k's attractiveness is its degree-weighted
neighbor tally times ``Wv(k) = max(Imb_v / est_k - 1, 0)`` where
``est_k = Sv(k) + mult * Cv(k)`` — the global size at the last Allreduce
plus this rank's local delta scaled by the dynamic multiplier (§III.C).
The weight hits zero once the estimate reaches the target ``Imb_v``, so a
rank may admit at most ``(Imb_v - est_k) / mult`` new vertices into part k
per sweep; :mod:`repro.core.capacity` enforces exactly that admission rule
over the vectorized blocks, recovering the paper's per-move atomic-update
semantics.

Sweeps run over the active set maintained by
:class:`repro.core.frontier.FrontierSweeper`: after the first iteration of
a phase only vertices that moved or saw a neighbor move are re-scored
(``params.frontier`` restores exhaustive sweeps).
"""

from __future__ import annotations

import numpy as np

from repro.core.capacity import enforce_weight_capacity
from repro.core.frontier import FrontierSweeper
from repro.core.state import RankState
from repro.simmpi.comm import SimComm


def _rebalance_isolated(
    state: RankState,
    iso: np.ndarray,
    Sv: np.ndarray,
    Cv: np.ndarray,
    imb_v: float,
    mult: float,
) -> np.ndarray:
    """Move degree-0 vertices from overweight to underweight parts.

    Label propagation can never pull a vertex into a part none of its
    neighbors belong to, so parts seeded in isolated regions would starve
    forever.  Degree-0 vertices have zero cut impact and can be placed
    anywhere; this (documented) extension beyond Algorithm 4 reassigns them
    to the parts with headroom, capacity-limited like every other move.
    """
    if iso.size == 0:
        return iso
    est = Sv + mult * Cv
    movers = iso[est[state.parts[iso]] > imb_v]
    if movers.size == 0:
        return movers
    vw = state.vweights
    gaps = np.maximum((imb_v - est) / max(mult, 1e-12), 0.0)
    # fill the most-underweight parts first; one slot per mean mover weight
    mean_w = float(vw[movers].mean())
    slot_counts = np.ceil(gaps / max(mean_w, 1e-12)).astype(np.int64)
    # descending by gap with *ascending part id* breaking ties — the
    # reversed ascending argsort put the highest part id first among equal
    # gaps, making slot order depend on how many parts happened to tie
    order = np.argsort(-gaps, kind="stable")
    slots = np.repeat(order, slot_counts[order])
    take = min(movers.size, slots.size)
    movers = movers[:take]
    new = slots[:take]
    keep = enforce_weight_capacity(new, vw[movers], gaps)
    movers, new = movers[keep], new[keep]
    if movers.size == 0:
        return movers
    old = state.parts[movers]
    state.parts[movers] = new
    Cv += np.bincount(new, weights=vw[movers], minlength=state.num_parts)
    Cv -= np.bincount(old, weights=vw[movers], minlength=state.num_parts)
    return movers


def vertex_balance_phase(comm: SimComm, state: RankState, iters: int) -> None:
    """Run ``iters`` balancing iterations (Algorithm 4)."""
    p = state.num_parts
    dg = state.dg
    imb_v = state.target_max_vertices
    iso = np.flatnonzero(dg.local_degrees == 0).astype(np.int64)
    with comm.phase("vertex_balance"):
        from repro.core.initialization import reseed_dead_parts

        reseed_dead_parts(comm, state)
        Sv = state.compute_vertex_sizes(comm).astype(np.float64)
        sweeper = FrontierSweeper(state, phase="vertex_balance")
        for _ in range(iters):
            maxv = max(float(Sv.max()), imb_v)
            mult = state.mult(comm)
            Cv = np.zeros(p, dtype=np.float64)
            # isolated vertices sit outside label propagation (no neighbors
            # to seed a frontier from), so they are reconsidered every
            # iteration regardless of the active set
            moved_iso = _rebalance_isolated(state, iso, Sv, Cv, imb_v, mult)
            sweeper.note_moves(moved_iso)
            for lids in sweeper.blocks():
                est = Sv + mult * Cv
                vw = state.vweights[lids]
                Wv = np.maximum(imb_v / np.maximum(est, 1.0) - 1.0, 0.0)
                weighted, _ = state.block_part_counts(lids, degree_weighted=True)
                scores = weighted * Wv
                # a part is full for vertex v once est + w(v) exceeds Maxv
                scores[(est[None, :] + vw[:, None]) > maxv] = 0.0
                x = state.parts[lids]
                w = np.argmax(scores, axis=1)
                rows = np.arange(lids.size)
                move = (w != x) & (scores[rows, w] > scores[rows, x]) & (
                    scores[rows, w] > 0.0
                )
                cand = np.flatnonzero(move)
                if cand.size:
                    # admission capacity: weight reaches 0 at est == Imb_v
                    cap = (imb_v - est) / max(mult, 1e-12)
                    keep = enforce_weight_capacity(w[cand], vw[cand], cap)
                    cand = cand[keep]
                if cand.size:
                    moved = lids[cand]
                    old = x[cand]
                    new = w[cand]
                    state.parts[moved] = new
                    mw = state.vweights[moved]
                    Cv += np.bincount(new, weights=mw, minlength=p)
                    Cv -= np.bincount(old, weights=mw, minlength=p)
                    sweeper.note_moves(moved)
            sweeper.exchange(comm)
            Cv_global = comm.Allreduce(Cv, op="sum")
            Sv += Cv_global
            state.iter_tot += 1
        state.Sv = Sv  # last agreed totals, for phase-boundary snapshots
