"""Command-line interface: ``python -m repro.cli graph.txt -p 16``.

Reads a graph (edge-list, METIS, or ``.npz``), partitions it with
XtraPuLP, prints the quality report, and optionally writes the part
assignment (one part id per line, vertex order).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro.core import PulpParams, xtrapulp
from repro.graph import io
from repro.simmpi import available_backends


def _load_graph(path: str):
    if path.endswith(".npz"):
        return io.load_npz(path)
    if path.endswith((".metis", ".graph", ".chaco")):
        return io.read_metis(path)
    return io.read_edge_list(path)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="XtraPuLP graph partitioner (paper reproduction)",
    )
    parser.add_argument("graph", help="edge list (.txt), METIS (.metis/.graph), or .npz")
    parser.add_argument("-p", "--parts", type=int, default=16,
                        help="number of parts (default 16)")
    parser.add_argument("-r", "--ranks", type=int, default=4,
                        help="simulated MPI ranks (default 4)")
    parser.add_argument("-o", "--output",
                        help="write part ids here (one per line)")
    parser.add_argument("--init", choices=["hybrid", "random", "block"],
                        default="hybrid", help="initialization strategy")
    parser.add_argument("--vert-imbalance", type=float, default=0.10)
    parser.add_argument("--edge-imbalance", type=float, default=0.10)
    parser.add_argument("--single-objective", action="store_true",
                        help="skip the edge balance/refinement stage")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--distribution", choices=["random", "block"],
                        default="random")
    parser.add_argument("--backend", choices=available_backends(),
                        default=None,
                        help="execution backend for the simulated ranks "
                             "(default: $REPRO_BACKEND or 'threads'); all "
                             "backends produce identical partitions")
    parser.add_argument("--wire", choices=["compact", "gid64"],
                        default="compact",
                        help="ExchangeUpdates message format: 'compact' "
                             "ghost-slot records (default) or the paper's "
                             "64-bit (gid, part) pairs; both produce "
                             "identical partitions")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        graph = _load_graph(args.graph)
    except Exception as exc:
        print(f"error reading {args.graph}: {exc}", file=sys.stderr)
        return 2
    print(f"loaded {graph}")
    if args.parts < 1 or args.parts > graph.n:
        print(f"error: cannot cut {graph.n} vertices into {args.parts} parts",
              file=sys.stderr)
        return 2
    params = PulpParams(
        init_strategy=args.init,
        vert_imbalance=args.vert_imbalance,
        edge_imbalance=args.edge_imbalance,
        single_objective=args.single_objective,
        seed=args.seed,
        wire=args.wire,
    )
    result = xtrapulp(
        graph, args.parts, nprocs=args.ranks, params=params,
        distribution=args.distribution, backend=args.backend,
    )
    q = result.quality()
    print(q.formatted())
    print(f"modeled parallel time: {result.modeled_seconds * 1e3:.1f} ms on "
          f"{args.ranks} ranks ({result.backend} backend); "
          f"wall {result.wall_seconds:.2f} s; "
          f"{result.stats.total_bytes / 2**20:.2f} MiB communicated")
    if args.output:
        np.savetxt(args.output, result.parts, fmt="%d")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
