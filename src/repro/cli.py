"""Command-line interface: ``python -m repro.cli graph.txt -p 16``.

Reads a graph (edge-list, METIS, or ``.npz``), partitions it with
XtraPuLP, prints the quality report, and optionally writes the part
assignment (one part id per line, vertex order).

Fault tolerance: ``--checkpoint-dir`` snapshots the run at phase
boundaries (``--checkpoint-every`` picks the granularity) and ``--resume``
restarts a killed run from its last committed epoch, bit-identically.
``--watchdog-timeout`` bounds how long any rank may stall before it is
declared hung and killed; ``--integrity crc`` verifies a crc32 of every
collective payload at receive.  Exit codes distinguish the outcomes (see
``--help`` epilog): 0 success, 1 run failed, 2 usage/input error, 3 run
failed but a committed checkpoint is available for ``--resume``, 4 success
after resuming, 5 a rank hung and was killed by the watchdog with a
committed checkpoint available for ``--resume``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro.core import PulpParams, xtrapulp
from repro.graph import io
from repro.simmpi import available_backends

#: Exit codes (documented in ``--help``): distinct values let wrapper
#: scripts drive the retry loop (re-exec with ``--resume`` on 3 or 5;
#: 5 additionally tells the wrapper the failure was a detected hang, so
#: it can e.g. quarantine the node before relaunching).
EXIT_OK = 0
EXIT_FAILED = 1
EXIT_USAGE = 2
EXIT_FAILED_CKPT = 3
EXIT_RESUMED = 4
EXIT_HUNG = 5


def _load_graph(path: str):
    if path.endswith(".npz"):
        return io.load_npz(path)
    if path.endswith((".metis", ".graph", ".chaco")):
        return io.read_metis(path)
    return io.read_edge_list(path)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="XtraPuLP graph partitioner (paper reproduction)",
        epilog=(
            "exit codes: 0 partitioned successfully; 1 run failed; "
            "2 usage or input error; 3 run failed but a committed "
            "checkpoint epoch is available (re-run with --resume); "
            "4 partitioned successfully after resuming from a checkpoint; "
            "5 a rank hung, was killed by the watchdog, and a committed "
            "checkpoint epoch is available (re-run with --resume)"
        ),
    )
    parser.add_argument("graph", help="edge list (.txt), METIS (.metis/.graph), or .npz")
    parser.add_argument("-p", "--parts", type=int, default=16,
                        help="number of parts (default 16)")
    parser.add_argument("-r", "--ranks", type=int, default=4,
                        help="simulated MPI ranks (default 4)")
    parser.add_argument("-o", "--output",
                        help="write part ids here (one per line)")
    parser.add_argument("--init", choices=["hybrid", "random", "block"],
                        default="hybrid", help="initialization strategy")
    parser.add_argument("--vert-imbalance", type=float, default=0.10)
    parser.add_argument("--edge-imbalance", type=float, default=0.10)
    parser.add_argument("--single-objective", action="store_true",
                        help="skip the edge balance/refinement stage")
    parser.add_argument("--seed", type=int, default=42)
    ml = parser.add_argument_group("multilevel")
    ml.add_argument("--multilevel", action="store_true",
                    help="run the multilevel V-cycle: coarsen the graph, "
                         "partition the coarsest level with the flat "
                         "machinery, then uncoarsen with weighted refine "
                         "sweeps per level (lower cut, ~2x modeled time)")
    ml.add_argument("--ml-levels", type=int, default=8, metavar="N",
                    help="maximum hierarchy depth including the input "
                         "graph (default 8; coarsening also stops at the "
                         "size target or on stagnation)")
    ml.add_argument("--ml-coarsen", choices=["lp", "hem"], default="lp",
                    help="coarsening clustering: 'lp' distributed "
                         "size-constrained label propagation (default) or "
                         "'hem' per-rank heavy-edge matching")
    parser.add_argument("--distribution", choices=["random", "block"],
                        default="random")
    parser.add_argument("--backend", choices=available_backends(),
                        default=None,
                        help="execution backend for the simulated ranks "
                             "(default: $REPRO_BACKEND or 'threads'); all "
                             "backends produce identical partitions")
    parser.add_argument("--dataplane", choices=["shm", "pickle"],
                        default=None,
                        help="payload transport of the procs backend: 'shm' "
                             "zero-copy shared-memory descriptors (default) "
                             "or 'pickle' copy-through (verification mode); "
                             "equivalent to $REPRO_DATAPLANE, ignored by "
                             "in-process backends, identical partitions "
                             "either way")
    parser.add_argument("--result-sharing", choices=["shared", "copy"],
                        default=None,
                        help="in-process collective result delivery: "
                             "'shared' sealed read-only results handed to "
                             "every rank (default; O(ranks) result bytes "
                             "per collective) or 'copy' per-rank private "
                             "copies (verification mode); equivalent to "
                             "$REPRO_RESULT_SHARING, identical partitions "
                             "either way")
    parser.add_argument("--wire", choices=["compact", "gid64"],
                        default="compact",
                        help="ExchangeUpdates message format: 'compact' "
                             "ghost-slot records (default) or the paper's "
                             "64-bit (gid, part) pairs; both produce "
                             "identical partitions")
    parser.add_argument("--comm", metavar="STRATEGY[:R[xK]]",
                        default=None,
                        help="communicator strategy for topology-aware "
                             "metering: 'flat' (one rank = one node), "
                             "'naive' (alias), or 'hierarchical[:R[xK]]' "
                             "(hierarchical exchange, R ranks/node, default "
                             "8; K nodes/rack adds a third cross-rack tier, "
                             "e.g. hierarchical:16x4). Default: $REPRO_COMM "
                             "or 'flat'. Strategy choice never changes the "
                             "partition, only the modeled tier traffic")
    ft = parser.add_argument_group("fault tolerance")
    ft.add_argument("--checkpoint-dir", metavar="DIR",
                    help="checkpoint the run into DIR at phase boundaries; "
                         "each epoch is committed atomically and a crashed "
                         "run exits 3 when one is available to --resume")
    ft.add_argument("--checkpoint-every", choices=["outer", "phase", "off"],
                    default="outer",
                    help="checkpoint granularity: after each outer "
                         "iteration (default), after every phase, or off")
    ft.add_argument("--resume", metavar="PATH",
                    help="resume from a run directory (latest committed "
                         "epoch) or a specific epoch_NNNN directory; the "
                         "resumed run is bit-identical to an uninterrupted "
                         "one and exits 4 on success")
    ft.add_argument("--inject-fault",
                    metavar="RANK:PHASE:STEP[:ACTION[:SECONDS]]",
                    help="plant a deterministic fault (testing): the given "
                         "rank fails at the given collective index of the "
                         "given phase; ACTION is raise (default), die "
                         "(hard process kill, procs backend), delay "
                         "(sleep SECONDS; past --watchdog-timeout this "
                         "models an indefinite hang), or corrupt (flip "
                         "one payload byte in flight)")
    ft.add_argument("--watchdog-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="declare a rank hung after SECONDS without "
                         "progress and kill it (procs backend) or fail it "
                         "in place (in-process backends); 0 or unset "
                         "disables the watchdog ($REPRO_WATCHDOG_TIMEOUT); "
                         "with --checkpoint-dir a detected hang exits 5 "
                         "and is resumable like a crash")
    ft.add_argument("--integrity", choices=["crc", "off"], default=None,
                    help="payload integrity: 'crc' checksums every "
                         "collective payload at send and verifies at "
                         "receive (detected corruption fails the run "
                         "typed, resumable from checkpoint); default "
                         "$REPRO_INTEGRITY or 'off'; identical partitions "
                         "either way")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.dataplane:
        import os

        from repro.simmpi.dataplane import DATAPLANE_ENV_VAR

        os.environ[DATAPLANE_ENV_VAR] = args.dataplane
    if args.result_sharing:
        import os

        from repro.simmpi.dataplane import RESULT_SHARING_ENV_VAR

        os.environ[RESULT_SHARING_ENV_VAR] = args.result_sharing
    if args.watchdog_timeout is not None:
        import os

        from repro.ft.watchdog import WATCHDOG_ENV_VAR

        # exported too, so a wrapper's --resume re-exec and any forked
        # rank process see the same liveness policy
        os.environ[WATCHDOG_ENV_VAR] = repr(args.watchdog_timeout)
    if args.integrity:
        import os

        from repro.ft.integrity import INTEGRITY_ENV_VAR

        os.environ[INTEGRITY_ENV_VAR] = args.integrity
    try:
        graph = _load_graph(args.graph)
    except Exception as exc:
        print(f"error reading {args.graph}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(f"loaded {graph}")
    if args.parts < 1 or args.parts > graph.n:
        print(f"error: cannot cut {graph.n} vertices into {args.parts} parts",
              file=sys.stderr)
        return EXIT_USAGE
    try:
        params = PulpParams(
            init_strategy=args.init,
            vert_imbalance=args.vert_imbalance,
            edge_imbalance=args.edge_imbalance,
            single_objective=args.single_objective,
            seed=args.seed,
            wire=args.wire,
            comm=args.comm,
            multilevel=args.multilevel,
            ml_levels=args.ml_levels,
            ml_coarsen=args.ml_coarsen,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    checkpoint = None
    if args.checkpoint_dir:
        from repro.ft import CkptPolicy

        checkpoint = CkptPolicy(
            dir=args.checkpoint_dir, every=args.checkpoint_every
        )
    fault_plan = None
    if args.inject_fault:
        from repro.ft import FaultPlan, parse_fault_spec

        try:
            fault_plan = FaultPlan([parse_fault_spec(args.inject_fault)])
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
    try:
        result = xtrapulp(
            graph, args.parts, nprocs=args.ranks, params=params,
            distribution=args.distribution, backend=args.backend,
            checkpoint=checkpoint, resume=args.resume,
            fault_plan=fault_plan, watchdog=args.watchdog_timeout,
            integrity=args.integrity,
        )
    except Exception as exc:
        from repro.ft import CheckpointError, classify_failure
        from repro.simmpi.errors import RankFailure

        if isinstance(exc, CheckpointError):
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        if isinstance(exc, RankFailure):
            print(f"error: {exc}", file=sys.stderr)
            if exc.run_dir is not None and exc.epoch is not None:
                print(f"resume with: --resume {exc.run_dir}", file=sys.stderr)
                if classify_failure(exc) == "hang":
                    return EXIT_HUNG
                return EXIT_FAILED_CKPT
            return EXIT_FAILED
        print(f"error: partitioning failed: {exc}", file=sys.stderr)
        return EXIT_FAILED
    q = result.quality()
    print(q.formatted())
    if result.multilevel is not None:
        info = result.multilevel
        sizes = " > ".join(str(n) for n, _ in info.level_sizes)
        print(f"multilevel: {info.levels} levels ({info.coarsen_mode} "
              f"coarsening), vertices {sizes}; cut trajectory "
              + " -> ".join(f"{c:.0f}" for c in info.cut_trajectory))
    print(f"modeled parallel time: {result.modeled_seconds * 1e3:.1f} ms on "
          f"{args.ranks} ranks ({result.backend} backend, "
          f"{result.comm} comm); "
          f"wall {result.wall_seconds:.2f} s; "
          f"{result.stats.total_bytes / 2**20:.2f} MiB communicated")
    if result.stats.tiered:
        intra = result.stats.modeled_intra_bytes()
        inter = result.stats.modeled_inter_bytes()
        xrack = result.stats.modeled_xrack_bytes()
        if xrack:
            print(f"three-level wire model: {intra / 2**20:.2f} MiB "
                  f"intra-node, {inter / 2**20:.2f} MiB inter-node, "
                  f"{xrack / 2**20:.2f} MiB cross-rack")
        else:
            print(f"two-level wire model: {intra / 2**20:.2f} MiB "
                  f"intra-node, {inter / 2**20:.2f} MiB inter-node")
    if args.output:
        np.savetxt(args.output, result.parts, fmt="%d")
        print(f"wrote {args.output}")
    if args.resume:
        print(f"resumed from checkpoint: {args.resume}")
        return EXIT_RESUMED
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
