"""From-scratch multilevel graph partitioner (ParMETIS / KaHIP stand-ins).

The classic three-phase scheme the paper compares against:

1. **Coarsening** — repeatedly contract the graph to a small weighted
   graph.  ``quality="default"`` uses heavy-edge matching (the
   METIS/ParMETIS family); ``quality="high"`` uses size-constrained
   label-propagation clustering, the coarsening of Meyerhenke, Sanders &
   Schulz 2015 (KaHIP), plus a heavier refinement schedule.
2. **Initial partitioning** — greedy graph growing from random seeds at the
   coarsest level (George & Liu-style), best of several restarts.
3. **Uncoarsening** — project the partition up and apply boundary
   FM-flavored refinement (positive-gain moves under a balance cap) at
   every level.

The implementation is deliberately faithful to the family's resource
profile, which drives the paper's Table II story: multilevel methods store
the whole level hierarchy (high memory), coarsen poorly on heavy-skew
graphs (hub vertices resist matching), and do far more work per edge than
single-level label propagation.  A hierarchy-size budget emulates the
out-of-memory failures ParMETIS shows on the paper's larger irregular
inputs: exceeding it raises :class:`MultilevelResourceError`, our analog of
the empty cells in Table II.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.graph.builders import to_scipy
from repro.graph.csr import Graph
from repro.multilevel.kernels import (
    contract,
    heavy_edge_matching,
    lp_clustering,
    segment_best_label,
)

# the coarsening kernels live in repro.multilevel.kernels (shared with the
# distributed coarsener); the historical underscore names stay importable
_segment_best_label = segment_best_label
_heavy_edge_matching = heavy_edge_matching
_lp_clustering = lp_clustering
_contract = contract


class MultilevelResourceError(MemoryError):
    """Coarsening hierarchy exceeded its memory budget (ParMETIS-OOM analog).

    Carries the hierarchy ``level`` at which the failure occurred and the
    ``requested`` allocation size (edges the level would have added) so
    callers can report *where* a graph refused to coarsen, not just that
    it did.
    """

    def __init__(self, message: str, *, level: int = -1,
                 requested: int = 0) -> None:
        super().__init__(message)
        self.level = int(level)
        self.requested = int(requested)


@dataclass
class _Level:
    """One level of the coarsening hierarchy."""

    adj: sparse.csr_matrix        # weighted symmetric adjacency, no diagonal
    vweights: np.ndarray          # fine-vertex mass of each coarse vertex
    mapping: Optional[np.ndarray]  # fine lid -> coarse lid (None at finest)


@dataclass
class MultilevelResult:
    parts: np.ndarray
    num_parts: int
    seconds: float
    levels: int
    coarsest_n: int
    quality_mode: str
    history: List[Tuple[int, int]] = field(default_factory=list)  # (n, nnz)
    work_units: float = 0.0

    def modeled_seconds(
        self, gamma: float = 4.0e-9, parallel_speedup: float = 8.0
    ) -> float:
        """Deterministic modeled time, comparable with the label-propagation
        partitioners' gamma-priced modeled times.

        ``parallel_speedup`` maps the inherently sequential hierarchy walk
        onto the paper's 16-256-way ParMETIS runs; multilevel methods scale
        notoriously poorly on irregular inputs, hence the conservative 8x
        default (documented in EXPERIMENTS.md)."""
        return gamma * self.work_units / max(parallel_speedup, 1.0)


# ---------------------------------------------------------------------------
# segment utilities (per-vertex aggregation over sorted edge arrays)
# ---------------------------------------------------------------------------

def _part_weight_sums(
    src: np.ndarray, part_of_dst: np.ndarray, w: np.ndarray, n: int, p: int
) -> np.ndarray:
    """Dense (n, p) matrix of per-vertex edge weight to each part."""
    key = src * np.int64(p) + part_of_dst
    return np.bincount(key, weights=w, minlength=n * p).reshape(n, p)


# ---------------------------------------------------------------------------
# initial partition at the coarsest level
# ---------------------------------------------------------------------------

def _graph_growing(
    adj: sparse.csr_matrix,
    vweights: np.ndarray,
    num_parts: int,
    rng: np.random.Generator,
    restarts: int = 4,
) -> np.ndarray:
    """Greedy BFS region growing, repeatedly feeding the lightest part."""
    n = adj.shape[0]
    if num_parts >= n:
        return np.arange(n, dtype=np.int64) % num_parts
    indptr, indices = adj.indptr, adj.indices
    best_parts: Optional[np.ndarray] = None
    best_cut = np.inf
    coo = adj.tocoo()
    for _ in range(max(1, restarts)):
        parts = np.full(n, -1, dtype=np.int64)
        load = np.zeros(num_parts, dtype=np.float64)
        frontiers: List[List[int]] = [[] for _ in range(num_parts)]
        seeds = rng.choice(n, size=num_parts, replace=False)
        for k, s in enumerate(seeds):
            parts[s] = k
            load[k] += vweights[s]
            frontiers[k].extend(indices[indptr[s]:indptr[s + 1]].tolist())
        remaining = int(n - num_parts)
        while remaining > 0:
            k = int(np.argmin(load))
            v = -1
            fk = frontiers[k]
            while fk:
                u = fk.pop()
                if parts[u] < 0:
                    v = u
                    break
            if v < 0:  # frontier exhausted: grab any unassigned vertex
                unass = np.flatnonzero(parts < 0)
                v = int(unass[rng.integers(unass.size)])
            parts[v] = k
            load[k] += vweights[v]
            frontiers[k].extend(indices[indptr[v]:indptr[v + 1]].tolist())
            remaining -= 1
        cut = float(coo.data[parts[coo.row] != parts[coo.col]].sum()) / 2.0
        if cut < best_cut:
            best_cut = cut
            best_parts = parts
    assert best_parts is not None
    return best_parts


# ---------------------------------------------------------------------------
# FM-flavored boundary refinement
# ---------------------------------------------------------------------------

def _rebalance_level(
    adj: sparse.csr_matrix,
    vweights: np.ndarray,
    parts: np.ndarray,
    num_parts: int,
    max_load: float,
    max_rounds: int = 20,
) -> np.ndarray:
    """Drain overweight parts by evicting their least-attached vertices.

    FM-style refinement only takes positive-gain moves and so cannot repair
    imbalance inherited from coarser levels; this pass moves boundary
    vertices of over-cap parts to their best under-cap alternative
    (accepting cut loss), exactly what METIS's balance phase does.
    """
    n = adj.shape[0]
    coo = adj.tocoo()
    src, dst, w = coo.row.astype(np.int64), coo.col.astype(np.int64), coo.data
    load = np.bincount(parts, weights=vweights, minlength=num_parts)
    for _ in range(max_rounds):
        over = load > max_load
        if not np.any(over):
            break
        pw = _part_weight_sums(src, parts[dst], w, n, num_parts)
        rows = np.arange(n)
        in_over = over[parts]
        ext = pw.copy()
        ext[rows, parts] = -np.inf
        ext[:, over] = -np.inf  # never feed another overweight part
        tgt = np.argmax(ext, axis=1)
        gain = ext[rows, tgt] - pw[rows, parts]
        cand = np.flatnonzero(in_over & np.isfinite(ext[rows, tgt]))
        if cand.size == 0:
            # no boundary escape routes: teleport lightest vertices
            cand = np.flatnonzero(in_over)
            tgt[cand] = np.argmin(load)
            gain[cand] = 0.0
            if cand.size == 0:
                break
        # evict cheapest-cut-loss first, only as much mass as needed
        cand = cand[np.argsort(gain[cand])[::-1]]
        moved_any = False
        excess = load - max_load
        for v in cand:
            x = parts[v]
            if excess[x] <= 0:
                continue
            t = int(tgt[v])
            if load[t] + vweights[v] > max_load:
                continue
            parts[v] = t
            load[x] -= vweights[v]
            load[t] += vweights[v]
            excess[x] -= vweights[v]
            moved_any = True
        if not moved_any:
            break
    return parts


def _refine_level(
    adj: sparse.csr_matrix,
    vweights: np.ndarray,
    parts: np.ndarray,
    num_parts: int,
    max_load: float,
    passes: int,
) -> np.ndarray:
    """Positive-gain boundary moves under a balance cap, Jacobi-style."""
    n = adj.shape[0]
    coo = adj.tocoo()
    src, dst, w = coo.row.astype(np.int64), coo.col.astype(np.int64), coo.data
    load = np.bincount(parts, weights=vweights, minlength=num_parts)
    for _ in range(passes):
        pw = _part_weight_sums(src, parts[dst], w, n, num_parts)
        rows = np.arange(n)
        internal = pw[rows, parts]
        ext = pw.copy()
        ext[rows, parts] = -np.inf
        tgt = np.argmax(ext, axis=1)
        gain = ext[rows, tgt] - internal
        cand = np.flatnonzero((gain > 0) & np.isfinite(ext[rows, tgt]))
        if cand.size == 0:
            break
        # best gains first; admit while the target part stays under cap
        cand = cand[np.argsort(gain[cand])[::-1]]
        t = tgt[cand]
        vw = vweights[cand]
        # running load check per target part
        order = np.argsort(t, kind="stable")
        tt, vv = t[order], vw[order]
        csum = np.cumsum(vv)
        starts = np.searchsorted(tt, np.arange(num_parts))
        base = np.where(starts > 0, csum[starts - 1], 0.0)
        within = csum - base[tt]
        ok_sorted = load[tt] + within <= max_load
        ok = np.zeros(cand.size, dtype=bool)
        ok[order] = ok_sorted
        movers = cand[ok]
        if movers.size == 0:
            break
        old = parts[movers]
        new = tgt[movers]
        np.subtract.at(load, old, vweights[movers])
        np.add.at(load, new, vweights[movers])
        parts[movers] = new
    return parts


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def multilevel_partition(
    graph: Graph,
    num_parts: int,
    *,
    quality: str = "default",
    balance: float = 0.03,
    seed: int = 0,
    coarsest_factor: int = 30,
    memory_budget_factor: float = 8.0,
    max_levels: int = 40,
) -> MultilevelResult:
    """Partition with the multilevel scheme.

    Parameters
    ----------
    quality:
        ``"default"`` — matching coarsening + 3 refinement passes/level
        (ParMETIS-like); ``"high"`` — label-propagation coarsening + 8
        passes (KaHIP-like: better cut, slower).
    balance:
        Allowed vertex imbalance (ParMETIS default 3%).
    memory_budget_factor:
        The hierarchy (sum of nnz over all levels) may not exceed this
        multiple of the input nnz; violating it raises
        :class:`MultilevelResourceError` — the OOM analog for skewed graphs
        that refuse to coarsen.
    """
    if quality not in ("default", "high"):
        raise ValueError(f"unknown quality mode {quality!r}")
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if num_parts > graph.n:
        raise ValueError(f"cannot cut {graph.n} vertices into {num_parts} parts")
    t0 = time.perf_counter()
    rng = np.random.default_rng(seed)
    work = 0.0

    adj = to_scipy(graph)
    adj.setdiag(0)
    adj.eliminate_zeros()
    vweights = np.ones(graph.n, dtype=np.float64)
    levels: List[_Level] = [_Level(adj, vweights, None)]
    budget = memory_budget_factor * max(adj.nnz, 1)
    stored = adj.nnz
    history = [(graph.n, adj.nnz)]

    coarsest_target = max(coarsest_factor * num_parts, 256)
    while levels[-1].adj.shape[0] > coarsest_target and len(levels) < max_levels:
        cur = levels[-1]
        n_cur = cur.adj.shape[0]
        if quality == "high":
            max_cluster = max(
                cur.vweights.sum() / (2.0 * num_parts), cur.vweights.max()
            )
            labels = _lp_clustering(cur.adj, cur.vweights, max_cluster, rng)
            work += 3 * 3.0 * cur.adj.nnz  # lp iters x sort-heavy sweeps
        else:
            labels = _heavy_edge_matching(cur.adj, rng)
            work += 4 * 2.0 * cur.adj.nnz  # matching rounds
        coarse, cvw, mapping = _contract(cur.adj, cur.vweights, labels)
        work += 2.0 * cur.adj.nnz  # contraction
        shrink = 1.0 - coarse.shape[0] / n_cur
        stored += coarse.nnz
        if stored > budget:
            raise MultilevelResourceError(
                f"level {len(levels)}: allocating {coarse.nnz} coarse edges "
                f"brings the hierarchy to {stored} stored edges > budget "
                f"{budget:.0f} (input refuses to coarsen)",
                level=len(levels),
                requested=int(coarse.nnz),
            )
        if shrink < 0.02:  # stagnation (hub-dominated graphs resist matching)
            if coarse.shape[0] > 8 * coarsest_target:
                raise MultilevelResourceError(
                    f"level {len(levels)}: coarsening stagnated at "
                    f"{coarse.shape[0]} vertices (target {coarsest_target}); "
                    f"storing the requested {coarse.nnz} coarse edges per "
                    f"further level would not fit the hierarchy budget",
                    level=len(levels),
                    requested=int(coarse.nnz),
                )
            break
        levels.append(_Level(coarse, cvw, mapping))
        history.append((coarse.shape[0], coarse.nnz))

    coarsest = levels[-1]
    parts = _graph_growing(coarsest.adj, coarsest.vweights, num_parts, rng)
    work += 4 * 2.0 * coarsest.adj.nnz  # growing restarts

    total_vw = float(vweights.sum())
    max_load = (1.0 + balance) * total_vw / num_parts
    passes = 8 if quality == "high" else 3
    parts = _rebalance_level(
        coarsest.adj, coarsest.vweights, parts, num_parts, max_load
    )
    parts = _refine_level(
        coarsest.adj, coarsest.vweights, parts, num_parts, max_load, passes
    )
    work += (passes + 1) * 2.0 * coarsest.adj.nnz
    for i in range(len(levels) - 1, 0, -1):
        mapping = levels[i].mapping
        assert mapping is not None
        parts = parts[mapping]  # project onto the next finer level
        fine = levels[i - 1]
        parts = _rebalance_level(
            fine.adj, fine.vweights, parts, num_parts, max_load
        )
        parts = _refine_level(
            fine.adj, fine.vweights, parts, num_parts, max_load, passes
        )
        work += (passes + 1) * 2.0 * fine.adj.nnz
    return MultilevelResult(
        parts=parts.astype(np.int64),
        num_parts=num_parts,
        seconds=time.perf_counter() - t0,
        levels=len(levels),
        coarsest_n=coarsest.adj.shape[0],
        quality_mode=quality,
        history=history,
        work_units=work,
    )
