"""Baseline partitioners the paper compares against.

* :mod:`~repro.baselines.simple` — random, vertex-block, and edge-block
  partitioning: "At the scale for which XTRAPULP is designed, the only
  competing methods are random and block partitioning" (§V.B), and the
  strategies of the Fig. 8 analytics comparison.
* :mod:`~repro.baselines.pulp_shared` — PuLP: the shared-memory predecessor
  (Slota et al. 2014), i.e. the same multi-constraint multi-objective label
  propagation run as threads of one address space, without the
  distributed-update throttle.
* :mod:`~repro.baselines.multilevel` — a from-scratch multilevel partitioner
  standing in for ParMETIS (matching-based coarsening, default quality) and
  for KaHIP/Meyerhenke et al. 2015 (label-propagation coarsening + extra
  refinement, ``quality="high"``).
"""

from repro.baselines.simple import (
    edge_block_partition,
    random_partition,
    vertex_block_partition,
)
from repro.baselines.pulp_shared import pulp
from repro.baselines.multilevel import (
    MultilevelResourceError,
    multilevel_partition,
)

__all__ = [
    "random_partition",
    "vertex_block_partition",
    "edge_block_partition",
    "pulp",
    "multilevel_partition",
    "MultilevelResourceError",
]
