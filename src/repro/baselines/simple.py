"""Trivial partitioning strategies (§V.B, §V.E).

These are the only methods that work at the paper's extreme scale besides
XtraPuLP, and the four-way comparison of Fig. 8 (EdgeBlock / VertexBlock /
Random / XtraPuLP) is built on them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import Graph


def random_partition(
    graph: Graph, num_parts: int, *, seed: Optional[int] = 0
) -> np.ndarray:
    """Uniform random part per vertex.

    Expected cut ratio ≈ (p-1)/p — the paper's reference point for
    "nearly every edge is cut".
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    rng = np.random.default_rng(seed)
    return rng.integers(0, num_parts, size=graph.n, dtype=np.int64)


def vertex_block_partition(graph: Graph, num_parts: int) -> np.ndarray:
    """Contiguous vertex-id blocks of (near-)equal vertex count.

    "VertexBlock partitioning stores roughly the same number of vertices
    and all their adjacencies in each node."  Quality depends entirely on
    how much locality the vertex ordering carries (crawl order: a lot;
    social snapshots: none).
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    base, extra = divmod(graph.n, num_parts)
    sizes = np.full(num_parts, base, dtype=np.int64)
    sizes[:extra] += 1
    return np.repeat(np.arange(num_parts, dtype=np.int64), sizes)


def edge_block_partition(graph: Graph, num_parts: int) -> np.ndarray:
    """Contiguous vertex-id blocks of (near-)equal *edge* count.

    "EdgeBlock partitioning stores a contiguous set of vertices and all
    their adjacencies in each node such that each node has approximately
    the same number of edges" — equalizes the degree sum per part by
    cutting the degree prefix-sum at p-quantiles.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    deg = graph.degrees.astype(np.float64)
    csum = np.cumsum(deg)
    total = csum[-1] if graph.n else 0.0
    if total == 0:
        return vertex_block_partition(graph, num_parts)
    # vertex v belongs to the part whose edge-quantile bucket its prefix
    # midpoint falls into
    targets = total * (np.arange(1, num_parts + 1)) / num_parts
    parts = np.searchsorted(targets, csum - deg / 2.0, side="right")
    return np.minimum(parts, num_parts - 1).astype(np.int64)
