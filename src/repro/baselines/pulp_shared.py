"""PuLP: the shared-memory predecessor (Slota, Madduri, Rajamanickam 2014).

The paper describes XtraPuLP as "a significant extension to our prior
shared-memory-only partitioner, PULP": the phases (init, vertex balance,
vertex refine, edge balance, edge refine with the PULP-MM objectives) are
the same; what distribution adds is ghost bookkeeping, ExchangeUpdates, and
the ``mult`` throttle.  PuLP is therefore run here as the same engine in
shared-memory mode:

* ``threads`` ranks model OpenMP threads of one address space;
* size updates are exact (``mult == 1``, no throttle — threads share the
  counters through atomics);
* the machine model has no network: thread synchronization latency only,
  memory-bus bandwidth, so modeled time ≈ parallel compute time.

This mirrors the real relationship between the two codes and gives Table II
its "PuLP (1 node)" column.
"""

from __future__ import annotations

from typing import Optional

from repro.core.driver import PartitionResult, xtrapulp
from repro.core.params import PulpParams
from repro.graph.csr import Graph
from repro.simmpi.timing import MachineModel

#: One cache-coherent node: ~100 ns sync cost, ~40 GB/s effective memory
#: bandwidth for shared-structure traffic, no network.  A PuLP rank models
#: one *core* (gamma = one-core rate), whereas a BLUE_WATERS_LIKE rank
#: models a full 16-core node — so "PuLP with 16 threads on one node" vs
#: "XtraPuLP on 16 nodes" compares 16 cores against 256, exactly the
#: paper's Table II configuration.
SHARED_MEMORY_NODE = MachineModel(
    alpha=1.0e-7, beta=1.0 / 40.0e9, compute_scale=1.0,
    gamma=4.0e-9, name="shared-memory-node",
)


def pulp(
    graph: Graph,
    num_parts: int,
    *,
    threads: int = 16,
    params: Optional[PulpParams] = None,
    single_objective: bool = False,
    seed: int = 42,
) -> PartitionResult:
    """Partition with shared-memory PuLP-MM semantics.

    ``threads`` plays the role of the paper's 16-way OpenMP threading on a
    Cluster-1 node.
    """
    base = params or PulpParams(seed=seed)
    p = base.with_(
        shared_memory=True,
        single_objective=single_objective or base.single_objective,
    )
    return xtrapulp(
        graph,
        num_parts,
        nprocs=threads,
        params=p,
        # random vertex-to-thread assignment models OpenMP guided
        # scheduling's work balancing (block carving would pin whole hub
        # regions to one thread, which real PuLP's scheduler avoids)
        distribution="random",
        machine=SHARED_MEMORY_NODE,
    )
