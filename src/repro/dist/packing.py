"""Buffer packing for Alltoallv exchanges.

Algorithm 3 in the paper assembles a send buffer ordered by destination
rank (counts → prefix sums → fill); these helpers are the vectorized
equivalent.  Records with ``k`` fields are interleaved
``f0, f1, ..., f(k-1)`` per record in the flat buffer, exactly like the
paper's ``(vertex, part)`` pairs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def pack_by_rank(
    nprocs: int, dest: np.ndarray, fields: Sequence[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Pack records into a destination-ordered flat buffer.

    Parameters
    ----------
    nprocs:
        Number of ranks.
    dest:
        Destination rank of each record.
    fields:
        One or more equal-length arrays; record ``i`` is
        ``(fields[0][i], fields[1][i], ...)``.

    Returns
    -------
    (sendbuf, sendcounts):
        ``sendbuf`` is int64, records interleaved, grouped by destination in
        rank order; ``sendcounts[r]`` counts *buffer items* (records × k)
        going to rank ``r`` — the unit :meth:`SimComm.Alltoallv` expects.
    """
    dest = np.asarray(dest, dtype=np.int64)
    k = len(fields)
    if k == 0:
        raise ValueError("need at least one field")
    nrec = dest.shape[0]
    for f in fields:
        if np.asarray(f).shape[0] != nrec:
            raise ValueError("all fields must match dest length")
    if nrec and (dest.min() < 0 or dest.max() >= nprocs):
        raise ValueError("destination rank out of range")
    order = np.argsort(dest, kind="stable")
    sendbuf = np.empty(nrec * k, dtype=np.int64)
    for j, f in enumerate(fields):
        sendbuf[j::k] = np.asarray(f, dtype=np.int64)[order]
    counts = np.bincount(dest, minlength=nprocs).astype(np.int64) * k
    return sendbuf, counts


def unpack_fields(recvbuf: np.ndarray, k: int) -> List[np.ndarray]:
    """Inverse of the interleaving in :func:`pack_by_rank`."""
    if recvbuf.size % k:
        raise ValueError(f"buffer size {recvbuf.size} not divisible by {k}")
    return [recvbuf[j::k].copy() for j in range(k)]


def counts_to_record_ranges(
    recvcounts: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-source-rank record ranges ``(starts, stops)`` in record units."""
    rc = np.asarray(recvcounts, dtype=np.int64)
    if np.any(rc % k):
        raise ValueError("received counts not divisible by record width")
    rec = rc // k
    stops = np.cumsum(rec)
    starts = stops - rec
    return starts, stops
