"""Buffer packing for Alltoallv exchanges.

Algorithm 3 in the paper assembles a send buffer ordered by destination
rank (counts → prefix sums → fill).  These helpers are the vectorized
equivalent, in two flavors:

* :func:`pack_fields_by_rank` — struct-of-arrays: each record field stays
  a contiguous array in its own (narrowest sufficient) dtype, the layout
  :meth:`SimComm.Alltoallv_fields` ships as independently-typed planes.
  This is the compact wire format's packer.
* :func:`pack_by_rank` / :func:`unpack_fields` — the legacy ``gid64``
  format: records with ``k`` fields interleaved ``f0, f1, ..., f(k-1)``
  per record in one flat int64 buffer, exactly like the paper's
  ``(vertex, part)`` pairs.  Kept as the bit-identity verification mode.

Both are built on :func:`bucket_by_rank`, an O(n) stable counting-sort
bucketing (the argsort it replaces was O(n log n) comparison sorting).

Zero-copy contract: packers *produce* fresh buffers (fancy indexing
copies), so senders may hand them to a collective and forget them; the
matching *received* buffers may be read-only shared-memory views under the
procs backend's shm data plane (:mod:`repro.simmpi.dataplane`), so
consumers — :func:`unpack_fields` included — must never write into them
(slice/index/cast, or :func:`repro.simmpi.dataplane.materialize` first).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def bucket_by_rank(
    nprocs: int, dest: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Stable O(n) bucketing of records by destination rank.

    Returns ``(order, record_counts)``: ``order`` permutes record indices
    into destination-rank-major order with the original order preserved
    within each rank (stable), and ``record_counts[r]`` is the number of
    records destined for rank ``r``.

    Complexity: destination keys are bounded by ``nprocs``, so the
    permutation is produced by counting sort — keys are narrowed to 8/16
    bits and handed to NumPy's stable integer sort, which dispatches to
    LSD radix sort (one or two O(n) counting passes) rather than an
    O(n log n) comparison sort.
    """
    dest = np.asarray(dest)
    if dest.size and (dest.min() < 0 or dest.max() >= nprocs):
        raise ValueError("destination rank out of range")
    counts = np.bincount(dest, minlength=nprocs).astype(np.int64)
    if nprocs <= np.iinfo(np.uint8).max:
        key = dest.astype(np.uint8)
    elif nprocs <= np.iinfo(np.uint16).max:
        key = dest.astype(np.uint16)
    else:  # pragma: no cover - simulated rank counts never get here
        key = dest
    order = np.argsort(key, kind="stable").astype(np.int64)
    return order, counts


def pack_fields_by_rank(
    nprocs: int, dest: np.ndarray, fields: Sequence[np.ndarray]
) -> Tuple[List[np.ndarray], np.ndarray]:
    """Pack records into destination-ordered per-field planes (SoA).

    Parameters
    ----------
    nprocs:
        Number of ranks.
    dest:
        Destination rank of each record.
    fields:
        One or more equal-length arrays; record ``i`` is
        ``(fields[0][i], fields[1][i], ...)``.  Each field keeps its own
        dtype — nothing is widened to int64.

    Returns
    -------
    (planes, record_counts):
        ``planes[j]`` is ``fields[j]`` permuted into destination-rank-major
        order (stable within a rank); ``record_counts[r]`` counts *records*
        going to rank ``r`` — the unit
        :meth:`SimComm.Alltoallv_fields` expects.
    """
    if len(fields) == 0:
        raise ValueError("need at least one field")
    nrec = np.asarray(dest).shape[0]
    for f in fields:
        if np.asarray(f).shape[0] != nrec:
            raise ValueError("all fields must match dest length")
    order, counts = bucket_by_rank(nprocs, dest)
    planes = [np.ascontiguousarray(np.asarray(f)[order]) for f in fields]
    return planes, counts


def pack_by_rank(
    nprocs: int, dest: np.ndarray, fields: Sequence[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Pack records into a destination-ordered flat int64 buffer (legacy
    ``gid64`` interleave).

    Returns
    -------
    (sendbuf, sendcounts):
        ``sendbuf`` is int64, records interleaved, grouped by destination in
        rank order; ``sendcounts[r]`` counts *buffer items* (records × k)
        going to rank ``r`` — the unit :meth:`SimComm.Alltoallv` expects.
    """
    k = len(fields)
    planes, counts = pack_fields_by_rank(nprocs, dest, fields)
    nrec = planes[0].shape[0]
    # contiguous (nrec, k) view: one write pass per field column, then one
    # flat ravel — replaces the k strided sendbuf[j::k] passes
    records = np.empty((nrec, k), dtype=np.int64)
    for j, plane in enumerate(planes):
        records[:, j] = plane
    return records.reshape(-1), counts * k


def unpack_fields(recvbuf: np.ndarray, k: int) -> List[np.ndarray]:
    """Inverse of the interleaving in :func:`pack_by_rank`."""
    if recvbuf.size % k:
        raise ValueError(f"buffer size {recvbuf.size} not divisible by {k}")
    records = recvbuf.reshape(-1, k)
    return [np.ascontiguousarray(records[:, j]) for j in range(k)]


def counts_to_record_ranges(
    recvcounts: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-source-rank record ranges ``(starts, stops)`` in record units."""
    rc = np.asarray(recvcounts, dtype=np.int64)
    if np.any(rc % k):
        raise ValueError("received counts not divisible by record width")
    rec = rc // k
    stops = np.cumsum(rec)
    starts = stops - rec
    return starts, stops
