"""Distributed graph substrate (the paper's §III.A graph representation).

A :class:`~repro.dist.distgraph.DistGraph` is one rank's view of the global
graph under a 1-D vertex distribution: the owned vertices' adjacency in
local CSR form, a ghost layer (one-hop neighbors owned elsewhere), and the
global↔local id maps.  :mod:`repro.dist.build` constructs it inside a
simmpi SPMD program; :mod:`repro.dist.ops` provides halo exchange plans and
distributed BFS on top.
"""

from repro.dist.distribution import (
    BlockDistribution,
    Distribution,
    PartitionDistribution,
    RandomDistribution,
    make_distribution,
)
from repro.dist.distgraph import DistGraph
from repro.dist.build import build_dist_graph
from repro.dist.ops import ExchangePlan, distributed_bfs_levels
from repro.dist.wire import WIRE_FORMATS, WireSpec, make_wire_spec

__all__ = [
    "Distribution",
    "BlockDistribution",
    "RandomDistribution",
    "PartitionDistribution",
    "make_distribution",
    "DistGraph",
    "build_dist_graph",
    "ExchangePlan",
    "distributed_bfs_levels",
    "WIRE_FORMATS",
    "WireSpec",
    "make_wire_spec",
]
