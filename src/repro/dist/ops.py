"""Distributed operations over a :class:`~repro.dist.distgraph.DistGraph`.

:class:`ExchangePlan` is the static halo-exchange pattern (build once, reuse
every superstep) used by the analytics engine and SpMV: after one gid
round-trip at construction, each exchange moves *values only* — the
optimization real codes (Zoltan, Trilinos) apply when the communication
pattern is fixed.  The partitioner itself uses the paper's dynamic
``ExchangeUpdates`` instead (:mod:`repro.core.exchange`), which ships
(vertex, part) pairs for updated vertices only.

All plan traffic funnels through ``SimComm.Alltoallv``/``Alltoall``, so
exchange plans are communicator-strategy-agnostic: under a topology-aware
strategy (:mod:`repro.simmpi.topology`) the very same exchanges are
metered as two-level (intra-node gather, aggregated inter-node message,
intra-node scatter) without any change here — values, counts, and the
communication record stay bit-identical.

Zero-copy contract: both :meth:`ExchangePlan.pull` and
:meth:`ExchangePlan.push` consume their received buffer read-only (indexed
assignment / ``ufunc.at`` reads *from* it into the caller's ``values``),
so under the procs backend's shm data plane
(:mod:`repro.simmpi.dataplane`) the receive side is a zero-copy shared
view and every plan exchange moves descriptors, not payload bytes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.dist.distgraph import DistGraph
from repro.dist.packing import bucket_by_rank
from repro.graph.gather import neighbor_gather
from repro.simmpi.comm import SimComm

_COMBINE = {
    "replace": None,
    "min": np.minimum,
    "max": np.maximum,
    "sum": np.add,
}


class ExchangePlan:
    """Static owner↔ghost exchange plan for one DistGraph.

    * :meth:`pull` — owners push authoritative values to ghost copies
      (ghost entries of ``values`` are overwritten).
    * :meth:`push` — ghost contributions flow back to owners and are
      combined (min/max/sum) into the owned entries.
    """

    def __init__(self, comm: SimComm, dg: DistGraph) -> None:
        self.dg = dg
        nprocs = comm.size
        with comm.phase("plan"):
            # ghosts grouped by owner (owner-major, gid-minor: ghost gids
            # are pre-sorted, so the stable O(n) bucketing reproduces the
            # old lexsort order exactly)
            order, self.recv_counts = bucket_by_rank(nprocs, dg.ghost_owners)
            self.recv_lids = order + dg.n_local
            gids_sorted = dg.ghost_gids[order]
            # one-time gid round-trip tells each owner what to send where
            requested, req_counts = comm.Alltoallv(gids_sorted, self.recv_counts)
            self.send_lids = dg.owned_lids(requested)
            self.send_counts = req_counts

    def pull(self, comm: SimComm, values: np.ndarray) -> np.ndarray:
        """Overwrite ghost entries of ``values`` with the owners' entries.

        ``values`` has one entry per local vertex (owned then ghosts);
        modified in place and returned.
        """
        sendbuf = np.ascontiguousarray(values[self.send_lids])
        recvbuf, _ = comm.Alltoallv(sendbuf, self.send_counts)
        values[self.recv_lids] = recvbuf
        return values

    def push(self, comm: SimComm, values: np.ndarray, op: str = "sum") -> np.ndarray:
        """Combine ghost entries back into the owners' entries.

        With ``op="sum"`` owned entries accumulate all ghost contributions;
        with min/max they fold element-wise.  Ghost entries are untouched
        (typically re-synchronized with a following :meth:`pull`).
        """
        combine = _COMBINE[op]
        if combine is None:
            raise ValueError("push requires a combining op (min/max/sum)")
        sendbuf = np.ascontiguousarray(values[self.recv_lids])
        recvbuf, _ = comm.Alltoallv(sendbuf, self.recv_counts)
        if recvbuf.size:
            combine.at(values, self.send_lids, recvbuf)
        return values


def distributed_bfs_levels(
    comm: SimComm, dg: DistGraph, plan: ExchangePlan, source_gid: int
) -> np.ndarray:
    """Level-synchronous distributed BFS; returns levels of *owned*
    vertices (-1 if unreachable)."""
    INF = np.int64(np.iinfo(np.int64).max // 2)
    levels = np.full(dg.n_total, INF, dtype=np.int64)
    frontier = np.empty(0, dtype=np.int64)
    if dg.n_local and source_gid in set(dg.owned_gids.tolist()):
        lid = int(dg.owned_lids(np.array([source_gid]))[0])
        levels[lid] = 0
        frontier = np.array([lid], dtype=np.int64)
    plan.pull(comm, levels)
    depth = 0
    while True:
        depth += 1
        if frontier.size:
            neigh, _ = neighbor_gather(dg.offsets, dg.adj, frontier)
            comm.charge(neigh.size)
            fresh = np.unique(neigh[levels[neigh] > depth])
            levels[fresh] = depth
        # fold ghost discoveries to owners, then re-broadcast to ghosts
        plan.push(comm, levels, op="min")
        plan.pull(comm, levels)
        # Only owned vertices expand: a rank owns every edge incident to its
        # owned vertices, so cross-rank steps surface as ghost updates at the
        # neighbor's owner, which expands them on its own side.
        owned = levels[: dg.n_local]
        frontier = np.flatnonzero(owned == depth).astype(np.int64)
        total = comm.allreduce(int(frontier.size), op="sum")
        if total == 0:
            break
    owned = levels[: dg.n_local].copy()
    owned[owned >= INF] = -1
    return owned
