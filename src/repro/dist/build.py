"""Construct a :class:`~repro.dist.distgraph.DistGraph` inside an SPMD run.

Each rank slices its owned vertices' adjacency from the input graph,
discovers the ghost layer, converts global ids to local ids, and
precomputes the per-vertex neighbor-rank lists used by the paper's
``ExchangeUpdates`` (Algorithm 3 recomputes ``toSend`` from the edges each
exchange; precomputing at build time sends the identical messages).

The input :class:`~repro.graph.csr.Graph` is shared read-only across rank
threads — this models the load phase (in the paper each rank reads its
slice from parallel I/O) and is excluded from partitioning-time metering
via the ``"build"`` phase tag.
"""

from __future__ import annotations

import numpy as np

from repro.dist.distgraph import DistGraph
from repro.dist.distribution import Distribution
from repro.dist.packing import bucket_by_rank
from repro.graph.csr import Graph
from repro.graph.gather import neighbor_gather
from repro.simmpi.comm import SimComm


def _localize(
    dist: Distribution,
    rank: int,
    owned_gids: np.ndarray,
    neighbor_gids: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Map neighbor gids → local ids; returns (local_adj, ghost_gids, owners)."""
    owner_of = dist.owner(neighbor_gids) if neighbor_gids.size else np.empty(
        0, dtype=np.int32
    )
    mine = owner_of == rank
    local_adj = np.empty(neighbor_gids.size, dtype=np.int64)
    if np.any(mine):
        local_adj[mine] = dist.lid(rank, neighbor_gids[mine])
    other = ~mine
    ghost_gids = np.unique(neighbor_gids[other]) if np.any(other) else np.empty(
        0, dtype=np.int64
    )
    if np.any(other):
        local_adj[other] = (
            np.searchsorted(ghost_gids, neighbor_gids[other]) + owned_gids.size
        )
    ghost_owners = (
        dist.owner(ghost_gids).astype(np.int32)
        if ghost_gids.size
        else np.empty(0, dtype=np.int32)
    )
    return local_adj, ghost_gids, ghost_owners


def _send_rank_lists(
    nprocs: int,
    rank: int,
    offsets: np.ndarray,
    local_adj: np.ndarray,
    n_local: int,
    ghost_owners: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per owned vertex, the sorted unique off-rank owners of its neighbors."""
    degrees = np.diff(offsets)
    src = np.repeat(np.arange(n_local, dtype=np.int64), degrees)
    is_ghost = local_adj >= n_local
    src_g = src[is_ghost]
    owners_g = ghost_owners[local_adj[is_ghost] - n_local].astype(np.int64)
    if src_g.size == 0:
        return np.zeros(n_local + 1, dtype=np.int64), np.empty(0, dtype=np.int64)
    key = np.unique(src_g * np.int64(nprocs) + owners_g)
    verts = key // nprocs
    ranks = key % nprocs
    sr_offsets = np.zeros(n_local + 1, dtype=np.int64)
    np.cumsum(np.bincount(verts, minlength=n_local), out=sr_offsets[1:])
    return sr_offsets, ranks


def _ghost_routing(
    comm: SimComm,
    ghost_gids: np.ndarray,
    ghost_owners: np.ndarray,
    sr_adj: np.ndarray,
) -> np.ndarray:
    """One-time collective: learn each send pair's destination ghost slot.

    Every rank tells each ghost's owner *where in its own ghost array* that
    ghost lives (ghosts grouped owner-major, gid-minor).  The owner's
    incoming chunk from rank ``r`` is therefore ordered by its owned gids
    that are ghosts on ``r`` — exactly its ``(vertex, r)`` send pairs in
    vertex order — so one stable bucketing of ``sr_adj`` aligns the slots
    with ``send_rank_adj``.  Compact-wire sends then address ghost copies
    by these precomputed slots instead of 64-bit gids.
    """
    order, gcounts = bucket_by_rank(comm.size, ghost_owners)
    # order[i] is the ghost-array position of the i-th outgoing entry
    slots_in, _ = comm.Alltoallv(order, gcounts)
    if slots_in.size != sr_adj.size:
        raise AssertionError(
            f"rank {comm.rank}: ghost routing received {slots_in.size} "
            f"slots for {sr_adj.size} send pairs"
        )
    send_ghost_slot = np.empty(sr_adj.size, dtype=np.uint32)
    perm, _ = bucket_by_rank(comm.size, sr_adj)
    send_ghost_slot[perm] = slots_in
    return send_ghost_slot


def _ghost_incidence(
    offsets: np.ndarray,
    local_adj: np.ndarray,
    n_local: int,
    n_ghost: int,
) -> tuple[np.ndarray, np.ndarray]:
    """CSR transpose of the ghost columns: for each ghost lid, the owned
    vertices adjacent to it (sorted ascending within each ghost's slice).

    The frontier engine uses this to turn an incoming ghost part update
    into the set of owned vertices that must re-evaluate their scores —
    ghosts own no forward CSR row, so the reverse structure is required.
    """
    degrees = np.diff(offsets)
    src = np.repeat(np.arange(n_local, dtype=np.int64), degrees)
    is_ghost = local_adj >= n_local
    targets = local_adj[is_ghost] - n_local
    sources = src[is_ghost]
    order = np.lexsort((sources, targets))
    gin_offsets = np.zeros(n_ghost + 1, dtype=np.int64)
    np.cumsum(np.bincount(targets, minlength=n_ghost), out=gin_offsets[1:])
    return gin_offsets, sources[order]


def build_dist_graph(
    comm: SimComm, graph: Graph, dist: Distribution
) -> DistGraph:
    """SPMD: build this rank's local view of ``graph`` under ``dist``.

    Must be called collectively (all ranks).  ``graph`` must be undirected
    (symmetric CSR) so that owning a vertex implies owning all its incident
    edges, the invariant the partitioner's bookkeeping relies on.
    """
    if dist.n != graph.n:
        raise ValueError(
            f"distribution covers {dist.n} vertices, graph has {graph.n}"
        )
    if dist.nprocs != comm.size:
        raise ValueError(
            f"distribution built for {dist.nprocs} ranks, comm has {comm.size}"
        )
    with comm.phase("build"):
        rank = comm.rank
        owned_gids = dist.owned(rank)
        neighbor_gids, counts = neighbor_gather(
            graph.offsets, graph.adj, owned_gids
        )
        offsets = np.zeros(owned_gids.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        local_adj, ghost_gids, ghost_owners = _localize(
            dist, rank, owned_gids, neighbor_gids
        )
        l2g = np.concatenate([owned_gids, ghost_gids])
        # ghost degrees read from the shared input (static data; a real MPI
        # build exchanges them once — volume negligible and one-time)
        degrees_full = graph.degrees[l2g].astype(np.int64)
        sr_offsets, sr_adj = _send_rank_lists(
            comm.size, rank, offsets, local_adj, owned_gids.size, ghost_owners
        )
        send_ghost_slot = _ghost_routing(comm, ghost_gids, ghost_owners, sr_adj)
        max_ghost_global = comm.allreduce(int(ghost_gids.size), op="max")
        gin_offsets, gin_adj = _ghost_incidence(
            offsets, local_adj, owned_gids.size, ghost_gids.size
        )
        # sanity rendezvous: global edge count must be conserved
        total_local = comm.allreduce(int(local_adj.size), op="sum")
        if total_local != graph.num_directed_edges:
            raise AssertionError(
                f"edge conservation violated: {total_local} != "
                f"{graph.num_directed_edges}"
            )
        return DistGraph(
            dist=dist,
            rank=rank,
            offsets=offsets,
            adj=local_adj,
            l2g=l2g,
            ghost_owners=ghost_owners,
            degrees_full=degrees_full,
            send_rank_offsets=sr_offsets,
            send_rank_adj=sr_adj,
            send_ghost_slot=send_ghost_slot,
            max_ghost_global=max_ghost_global,
            ghost_in_offsets=gin_offsets,
            ghost_in_adj=gin_adj,
            global_n=graph.n,
            global_m=graph.num_edges,
        )
