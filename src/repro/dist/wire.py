"""Wire formats for the ghost-update exchanges (``ExchangeUpdates``).

Two formats ship a ``(vertex, new part)`` update record:

``gid64`` (legacy)
    The paper's literal Algorithm 3 record: interleaved 64-bit
    ``(global id, part)`` pairs in one int64 buffer — 16 bytes per record
    on the wire, resolved on receive with a ``searchsorted`` over the
    ghost gids.  Kept as the bit-identity verification mode.

``compact`` (default)
    Owner-relative addressing over static per-neighbor-rank routing
    tables precomputed at :class:`~repro.dist.distgraph.DistGraph` build
    time: the sender ships the *destination rank's ghost slot index*
    (``DistGraph.send_ghost_slot``) in the narrowest dtype that covers
    every rank's ghost count, plus the part label in the narrowest dtype
    that covers ``num_parts`` — 4 to 8 bytes per record, applied on
    receive by direct indexed assignment (no gid lookup at all).

Both formats send identical record *sets* in identical order (the packer
is a stable bucketing either way), so partitions, frontier seeds, and
iteration counts are bit-identical across formats — enforced by the wire
equivalence tests.

The wire format is orthogonal to the *communicator strategy*
(:mod:`repro.simmpi.topology`): both formats route through
``SimComm.Alltoallv_fields``/``Alltoallv``, so under the ``hierarchical``
strategy the same records are additionally metered as a two-level exchange
(aggregated per node pair, count headers narrowed to ``uint32`` on the
inter-node wire) — compounding with the compact format's 2-4x record
shrink rather than replacing it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Valid ``PulpParams.wire`` values.
WIRE_FORMATS = ("compact", "gid64")


@dataclass(frozen=True)
class WireSpec:
    """Resolved wire format for one partitioning run.

    ``slot_dtype``/``part_dtype`` are chosen once from *global* quantities
    (max per-rank ghost count, ``num_parts``) so every rank selects the
    same dtypes — a per-rank choice would trip the cross-rank dtype guard.
    """

    mode: str                 # "compact" | "gid64"
    slot_dtype: np.dtype      # ghost slot index dtype (compact sends)
    part_dtype: np.dtype      # part label dtype (compact sends)

    @property
    def compact(self) -> bool:
        return self.mode == "compact"

    @property
    def bytes_per_record(self) -> int:
        """Payload bytes per update record on the wire."""
        if self.compact:
            return self.slot_dtype.itemsize + self.part_dtype.itemsize
        return 16  # two interleaved int64 items


def _narrowest_uint(max_value: int) -> np.dtype:
    for dt in (np.uint16, np.uint32):
        if max_value <= np.iinfo(dt).max:
            return np.dtype(dt)
    return np.dtype(np.uint64)  # pragma: no cover - >4B ghosts per rank


def _narrowest_int(max_value: int) -> np.dtype:
    for dt in (np.int16, np.int32):
        if max_value <= np.iinfo(dt).max:
            return np.dtype(dt)
    return np.dtype(np.int64)  # pragma: no cover - >2B parts


def make_wire_spec(
    mode: str, max_ghost_global: int, num_parts: int
) -> WireSpec:
    """Resolve a wire format name into concrete record dtypes.

    ``max_ghost_global`` is the maximum ghost count over *all* ranks
    (``DistGraph.max_ghost_global``, Allreduced once at build time);
    slot indices are ``< max_ghost_global`` and part labels are
    ``< num_parts`` (signed, so the UNASSIGNED sentinel -1 also fits).
    """
    if mode not in WIRE_FORMATS:
        raise ValueError(
            f"wire must be one of {WIRE_FORMATS}, got {mode!r}"
        )
    return WireSpec(
        mode=mode,
        slot_dtype=_narrowest_uint(max(max_ghost_global - 1, 0)),
        part_dtype=_narrowest_int(max(num_parts - 1, 1)),
    )
