"""Per-rank view of a distributed graph (paper §III.A).

Each rank owns a subset of vertices and their incident edges in a local
CSR; vertices in the one-hop neighborhood owned elsewhere are **ghosts**.
Local ids are ``0 .. n_local-1`` for owned vertices (in global-id order)
followed by ``n_local .. n_local+n_ghost-1`` for ghosts (also in global-id
order).  Part labels and other per-vertex arrays are sized
``n_local + n_ghost`` so algorithms index them directly with local
adjacency entries.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.dist.distribution import Distribution
from repro.graph.gather import expand_ranges, neighbor_gather


class DistGraph:
    """One rank's local graph.  Built by :func:`repro.dist.build.build_dist_graph`."""

    __slots__ = (
        "dist",
        "rank",
        "n_local",
        "n_ghost",
        "offsets",
        "adj",
        "l2g",
        "ghost_owners",
        "degrees_full",
        "send_rank_offsets",
        "send_rank_adj",
        "send_ghost_slot",
        "max_ghost_global",
        "ghost_in_offsets",
        "ghost_in_adj",
        "global_n",
        "global_m",
        "dir_out_offsets",
        "dir_out_adj",
        "dir_in_offsets",
        "dir_in_adj",
    )

    def __init__(
        self,
        dist: Distribution,
        rank: int,
        offsets: np.ndarray,
        adj: np.ndarray,
        l2g: np.ndarray,
        ghost_owners: np.ndarray,
        degrees_full: np.ndarray,
        send_rank_offsets: np.ndarray,
        send_rank_adj: np.ndarray,
        send_ghost_slot: np.ndarray,
        max_ghost_global: int,
        ghost_in_offsets: np.ndarray,
        ghost_in_adj: np.ndarray,
        global_n: int,
        global_m: int,
    ) -> None:
        self.dist = dist
        self.rank = int(rank)
        self.n_local = int(dist.count(rank))
        self.n_ghost = int(l2g.size - self.n_local)
        self.offsets = offsets
        self.adj = adj
        self.l2g = l2g
        self.ghost_owners = ghost_owners
        self.degrees_full = degrees_full
        self.send_rank_offsets = send_rank_offsets
        self.send_rank_adj = send_rank_adj
        #: Compact-wire routing table, aligned with ``send_rank_adj``:
        #: entry ``i`` is the *destination rank's* ghost slot index of this
        #: vertex (position in that rank's gid-sorted ghost array), learned
        #: by a one-time build exchange.  A receiver applies an update with
        #: ``parts[n_local + slot] = part`` — no gid lookup per exchange.
        self.send_ghost_slot = send_ghost_slot
        #: Max ghost count over all ranks (Allreduced once at build);
        #: bounds every slot index, so it fixes the compact slot dtype.
        self.max_ghost_global = int(max_ghost_global)
        self.ghost_in_offsets = ghost_in_offsets
        self.ghost_in_adj = ghost_in_adj
        self.global_n = int(global_n)
        self.global_m = int(global_m)
        # directed views (filled by repro.analytics.engine.attach_directed)
        self.dir_out_offsets: Optional[np.ndarray] = None
        self.dir_out_adj: Optional[np.ndarray] = None
        self.dir_in_offsets: Optional[np.ndarray] = None
        self.dir_in_adj: Optional[np.ndarray] = None
        for arr in (offsets, adj, l2g, ghost_owners, degrees_full,
                    send_rank_offsets, send_rank_adj, send_ghost_slot,
                    ghost_in_offsets, ghost_in_adj):
            arr.setflags(write=False)

    # -- id mapping ---------------------------------------------------------

    @property
    def n_total(self) -> int:
        """Owned + ghost vertex count (size of per-vertex work arrays)."""
        return self.n_local + self.n_ghost

    @property
    def owned_gids(self) -> np.ndarray:
        return self.l2g[: self.n_local]

    @property
    def ghost_gids(self) -> np.ndarray:
        return self.l2g[self.n_local:]

    def ghost_lids(self, gids: np.ndarray) -> np.ndarray:
        """Local ids of ghost gids (must all be ghosts of this rank)."""
        gids = np.asarray(gids, dtype=np.int64)
        ghosts = self.ghost_gids
        pos = np.searchsorted(ghosts, gids)
        if gids.size and (
            pos.max(initial=0) >= ghosts.size or np.any(ghosts[pos] != gids)
        ):
            raise ValueError(f"rank {self.rank}: gids include non-ghosts")
        return pos + self.n_local

    def owned_lids(self, gids: np.ndarray) -> np.ndarray:
        return self.dist.lid(self.rank, gids)

    # -- adjacency ------------------------------------------------------------

    def neighbors(self, lid: int) -> np.ndarray:
        """Local-id adjacency slice of an owned vertex."""
        return self.adj[self.offsets[lid]:self.offsets[lid + 1]]

    def neighbor_block(self, lids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return neighbor_gather(self.offsets, self.adj, lids)

    @property
    def local_degrees(self) -> np.ndarray:
        """Degrees of owned vertices (== global degrees: every incident
        edge of an owned vertex is stored locally)."""
        return np.diff(self.offsets)

    @property
    def num_local_edges(self) -> int:
        return int(self.adj.size)

    def neighbor_ranks(self, lid: int) -> np.ndarray:
        """Unique off-rank owners among an owned vertex's neighbors (the
        paper's per-vertex ``toSend`` set, precomputed at build time)."""
        return self.send_rank_adj[
            self.send_rank_offsets[lid]:self.send_rank_offsets[lid + 1]
        ]

    @property
    def boundary_mask(self) -> np.ndarray:
        """Owned vertices with at least one off-rank neighbor."""
        return np.diff(self.send_rank_offsets) > 0

    def ghost_touch_sources(self, ghost_lids: np.ndarray) -> np.ndarray:
        """Owned vertices adjacent to the given ghost local ids.

        The local CSR has rows only for owned vertices, so reacting to a
        ghost part update ("which owned vertices must re-evaluate?") needs
        this reverse ghost→owned incidence, built once at construction
        time.  Returns the concatenated owned lids (ascending within each
        ghost's slice; may repeat across ghosts — callers dedupe via masks).
        """
        idx = np.asarray(ghost_lids, dtype=np.int64) - self.n_local
        starts = self.ghost_in_offsets[idx]
        counts = self.ghost_in_offsets[idx + 1] - starts
        return self.ghost_in_adj[expand_ranges(starts, counts)]

    def __repr__(self) -> str:
        return (
            f"DistGraph(rank={self.rank}/{self.dist.nprocs}, "
            f"n_local={self.n_local}, n_ghost={self.n_ghost}, "
            f"local_edges={self.num_local_edges})"
        )
