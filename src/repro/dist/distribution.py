"""1-D vertex distributions: who owns which global vertex.

The paper distributes vertices either in contiguous **blocks** or
**randomly** ("we observe random distributions are more scalable in
practice for irregular networks"), and the analytics/SpMV experiments
additionally place vertices by a computed **partition**.  All three are
instances of :class:`Distribution`.

Local-id convention (uniform across distributions): rank ``r``'s owned
vertices are its globally-sorted owned gid list; ``lid(g)`` is the position
of ``g`` in that list.  The simulator materializes the full owner array
(int32, one entry per global vertex); a production implementation computes
ownership arithmetically (block) or by hash (random) — the behaviour is
identical, only the memory footprint differs, which is irrelevant at
simulation scale.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np


class Distribution:
    """Base: ownership map from an explicit owner array."""

    def __init__(self, owner_array: np.ndarray, nprocs: int) -> None:
        owner = np.ascontiguousarray(owner_array, dtype=np.int32)
        if owner.ndim != 1:
            raise ValueError("owner array must be 1-D")
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if owner.size and (owner.min() < 0 or owner.max() >= nprocs):
            raise ValueError("owner ranks out of range")
        self._owner = owner
        self._owner.setflags(write=False)
        self.n = int(owner.size)
        self.nprocs = int(nprocs)
        self._owned: List[np.ndarray] = [
            np.flatnonzero(owner == r).astype(np.int64) for r in range(nprocs)
        ]
        for arr in self._owned:
            arr.setflags(write=False)

    # -- queries ---------------------------------------------------------------

    def owner(self, gids: Union[int, np.ndarray]) -> Union[int, np.ndarray]:
        """Owning rank of one or many global vertex ids."""
        if np.isscalar(gids):
            return int(self._owner[gids])
        return self._owner[np.asarray(gids, dtype=np.int64)]

    def owned(self, rank: int) -> np.ndarray:
        """Sorted global ids owned by ``rank`` (read-only)."""
        return self._owned[rank]

    def count(self, rank: int) -> int:
        return int(self._owned[rank].size)

    def counts(self) -> np.ndarray:
        return np.array([a.size for a in self._owned], dtype=np.int64)

    def lid(self, rank: int, gids: np.ndarray) -> np.ndarray:
        """Local ids (positions in ``owned(rank)``) of gids owned by ``rank``.

        Caller must guarantee ownership; violations raise.
        """
        gids = np.asarray(gids, dtype=np.int64)
        pos = np.searchsorted(self._owned[rank], gids)
        if gids.size and (
            pos.max(initial=0) >= self._owned[rank].size
            or np.any(self._owned[rank][pos] != gids)
        ):
            raise ValueError(f"some gids are not owned by rank {rank}")
        return pos

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n}, nprocs={self.nprocs})"


class BlockDistribution(Distribution):
    """Contiguous ranges: rank r owns ``[r*n/p, (r+1)*n/p)`` (remainder
    spread over the first ranks)."""

    def __init__(self, n: int, nprocs: int) -> None:
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        base, extra = divmod(n, nprocs)
        sizes = np.full(nprocs, base, dtype=np.int64)
        sizes[:extra] += 1
        owner = np.repeat(np.arange(nprocs, dtype=np.int32), sizes)
        super().__init__(owner, nprocs)


class RandomDistribution(Distribution):
    """Seeded random assignment, balanced to within one vertex per rank."""

    def __init__(self, n: int, nprocs: int, *, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        base, extra = divmod(n, nprocs)
        sizes = np.full(nprocs, base, dtype=np.int64)
        sizes[:extra] += 1
        owner = np.repeat(np.arange(nprocs, dtype=np.int32), sizes)
        rng.shuffle(owner)
        super().__init__(owner, nprocs)
        self.seed = seed


class PartitionDistribution(Distribution):
    """Ownership given directly by a computed partition (part k → rank k).

    Used by the analytics and SpMV experiments to place data according to a
    partitioner's output.  Requires ``number of parts == nprocs``.
    """

    def __init__(self, parts: np.ndarray, nprocs: int) -> None:
        parts = np.asarray(parts)
        if parts.size and parts.max() >= nprocs:
            raise ValueError(
                f"partition references part {parts.max()} but nprocs={nprocs}"
            )
        super().__init__(parts.astype(np.int32), nprocs)


def make_distribution(
    kind: str,
    n: int,
    nprocs: int,
    *,
    seed: int = 0,
    parts: Optional[Sequence[int]] = None,
) -> Distribution:
    """Factory: ``"block"``, ``"random"``, or ``"partition"``."""
    if kind == "block":
        return BlockDistribution(n, nprocs)
    if kind == "random":
        return RandomDistribution(n, nprocs, seed=seed)
    if kind == "partition":
        if parts is None:
            raise ValueError("partition distribution requires parts")
        return PartitionDistribution(np.asarray(parts), nprocs)
    raise ValueError(f"unknown distribution kind {kind!r}")
