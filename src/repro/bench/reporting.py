"""Emit the rows/series each bench regenerates, paper-figure style.

Every benchmark builds an :class:`ExperimentTable`, prints it (captured in
``bench_output.txt``), and appends it to ``results/`` as CSV so
EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", "results")


@dataclass
class ExperimentTable:
    """A figure/table reproduction: id, column names, and data rows."""

    experiment: str              # e.g. "fig1_strong_scaling"
    columns: Sequence[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: str = ""

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> List[Any]:
        idx = list(self.columns).index(name)
        return [r[idx] for r in self.rows]

    def formatted(self) -> str:
        return format_table(self)

    def emit(self, results_dir: Optional[str] = None) -> str:
        """Print the table and persist it as CSV; returns the CSV path."""
        text = self.formatted()
        print("\n" + text)
        return save_table(self, results_dir)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.001:
            return f"{v:.3e}"
        return f"{v:.4f}".rstrip("0").rstrip(".")
    return str(v)


def format_table(table: ExperimentTable) -> str:
    cols = list(table.columns)
    str_rows = [[_fmt(v) for v in row] for row in table.rows]
    widths = [
        max(len(c), *(len(r[i]) for r in str_rows)) if str_rows else len(c)
        for i, c in enumerate(cols)
    ]
    lines = [f"== {table.experiment} =="]
    if table.notes:
        lines.append(f"   {table.notes}")
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def save_table(table: ExperimentTable, results_dir: Optional[str] = None) -> str:
    directory = os.path.abspath(results_dir or _RESULTS_DIR)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{table.experiment}.csv")
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(table.columns)
        writer.writerows(table.rows)
    return path
