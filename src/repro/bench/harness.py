"""Shared experiment-running helpers for the benchmark suite."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core import PulpParams, xtrapulp
from repro.core.driver import PartitionResult
from repro.core.quality import PartitionQuality
from repro.graph.csr import Graph
from repro.simmpi.timing import BLUE_WATERS_LIKE, MachineModel
from repro.suite import SUITE


@dataclass
class PartitionRun:
    """One partitioner invocation with everything the benches report."""

    graph_name: str
    partitioner: str
    num_parts: int
    nprocs: int
    modeled_seconds: float
    wall_seconds: float
    quality: PartitionQuality
    comm_bytes: int


def run_xtrapulp(
    graph: Graph,
    graph_name: str,
    num_parts: int,
    nprocs: int,
    *,
    params: Optional[PulpParams] = None,
    machine: MachineModel = BLUE_WATERS_LIKE,
    single_objective: bool = False,
    seed: int = 42,
) -> PartitionRun:
    """Run XtraPuLP with the suite-recommended init for the graph family."""
    if params is None:
        init = (
            SUITE[graph_name].recommended_init if graph_name in SUITE else "hybrid"
        )
        params = PulpParams(init_strategy=init, seed=seed)
    if single_objective:
        params = params.with_(single_objective=True)
    res: PartitionResult = xtrapulp(
        graph, num_parts, nprocs=nprocs, params=params, machine=machine
    )
    return PartitionRun(
        graph_name=graph_name,
        partitioner="XtraPuLP",
        num_parts=num_parts,
        nprocs=nprocs,
        modeled_seconds=res.modeled_seconds,
        wall_seconds=res.wall_seconds,
        quality=res.quality(graph),
        comm_bytes=res.stats.total_bytes,
    )


def speedup_series(times: Dict[int, float]) -> Dict[int, float]:
    """Relative speedup vs. the smallest configuration."""
    if not times:
        return {}
    base_key = min(times)
    base = times[base_key]
    return {k: base / v if v > 0 else float("inf") for k, v in times.items()}


def geometric_mean(values: np.ndarray) -> float:
    values = np.asarray(values, dtype=np.float64)
    values = values[values > 0]
    if values.size == 0:
        return 0.0
    return float(np.exp(np.log(values).mean()))
