"""Benchmark harness: experiment runners and table/series reporting."""

from repro.bench.reporting import ExperimentTable, format_table, save_table

__all__ = ["ExperimentTable", "format_table", "save_table"]
