"""Whole-graph metrics: BFS, approximate diameter, Table I statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.graph.csr import Graph
from repro.graph.gather import neighbor_gather


def bfs_levels(graph: Graph, source: int) -> np.ndarray:
    """Breadth-first levels from ``source`` (-1 for unreachable vertices).

    Frontier-at-a-time with vectorized neighbor gathers — the standard
    level-synchronous formulation the paper's init stage is built on.
    """
    if not 0 <= source < graph.n:
        raise ValueError(f"source {source} out of range for n={graph.n}")
    levels = np.full(graph.n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        neigh, _ = neighbor_gather(graph.offsets, graph.adj, frontier)
        if neigh.size == 0:
            break
        fresh = neigh[levels[neigh] < 0]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        levels[frontier] = depth
    return levels


def approximate_diameter(
    graph: Graph, *, sweeps: int = 10, seed: Optional[int] = None
) -> int:
    """The paper's diameter estimate: iterated BFS sweeps, each starting
    from a random vertex of the previous sweep's farthest level."""
    if graph.n == 0:
        return 0
    rng = np.random.default_rng(seed)
    source = int(rng.integers(graph.n))
    best = 0
    for _ in range(max(1, sweeps)):
        levels = bfs_levels(graph, source)
        ecc = int(levels.max())
        best = max(best, ecc)
        farthest = np.flatnonzero(levels == ecc)
        if farthest.size == 0:
            break
        source = int(rng.choice(farthest))
    return best


def connected_component_sizes(graph: Graph) -> np.ndarray:
    """Sizes of connected components, descending (undirected reachability)."""
    seen = np.zeros(graph.n, dtype=bool)
    sizes: List[int] = []
    for v in range(graph.n):
        if seen[v]:
            continue
        levels = bfs_levels(graph, v)
        comp = levels >= 0
        comp &= ~seen
        seen |= comp
        sizes.append(int(comp.sum()))
    return np.array(sorted(sizes, reverse=True), dtype=np.int64)


def largest_component(graph: Graph) -> "tuple[Graph, np.ndarray]":
    """Induced subgraph on the largest connected component.

    The standard preprocessing applied to the paper's real-world inputs
    (isolated vertices and crumbs removed).  Returns ``(subgraph,
    old_ids)`` with ``old_ids[new] = old``.
    """
    if graph.n == 0:
        return graph, np.empty(0, dtype=np.int64)
    seen = np.zeros(graph.n, dtype=bool)
    best_mask = None
    best_size = -1
    for v in range(graph.n):
        if seen[v]:
            continue
        levels = bfs_levels(graph, v)
        comp = (levels >= 0) & ~seen
        seen |= comp
        size = int(comp.sum())
        if size > best_size:
            best_size = size
            best_mask = comp
    assert best_mask is not None
    return graph.subgraph_mask(best_mask)


def degree_stats(graph: Graph) -> Dict[str, float]:
    d = graph.degrees
    if graph.n == 0:
        return {"avg": 0.0, "max": 0, "min": 0, "median": 0.0}
    return {
        "avg": float(d.mean()),
        "max": int(d.max()),
        "min": int(d.min()),
        "median": float(np.median(d)),
    }


@dataclass(frozen=True)
class GraphStatsRow:
    """One row of the Table I analog."""

    name: str
    n: int
    m: int
    davg: float
    dmax: int
    diameter: int

    def formatted(self) -> str:
        return (
            f"{self.name:<16s} n={self.n:>9d}  m={self.m:>10d}  "
            f"davg={self.davg:6.1f}  dmax={self.dmax:>7d}  D~={self.diameter:>4d}"
        )


def graph_stats_row(
    name: str, graph: Graph, *, diameter_sweeps: int = 10, seed: int = 1
) -> GraphStatsRow:
    """Compute the Table I statistics (n, m, davg, dmax, approximate
    diameter) for one graph."""
    return GraphStatsRow(
        name=name,
        n=graph.n,
        m=graph.num_edges,
        davg=graph.avg_degree,
        dmax=graph.max_degree,
        diameter=approximate_diameter(graph, sweeps=diameter_sweeps, seed=seed),
    )
