"""Graph I/O: edge-list text, METIS format, and NumPy binary round-trips."""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.graph.builders import from_edges
from repro.graph.csr import Graph

PathLike = Union[str, os.PathLike]


def write_edge_list(graph: Graph, path: PathLike, *, header: bool = True) -> None:
    """Write one ``u v`` line per undirected edge (or arc, if directed)."""
    src, dst = graph.unique_edges()
    with open(path, "w") as f:
        if header:
            kind = "directed" if graph.directed else "undirected"
            f.write(f"# repro edge list: n={graph.n} m={len(src)} {kind}\n")
        np.savetxt(f, np.column_stack([src, dst]), fmt="%d")


def read_edge_list(
    path: PathLike, *, n: int | None = None, directed: bool = False
) -> Graph:
    """Read a whitespace edge list (``#`` comments ignored).

    ``n`` defaults to the count recorded in a ``write_edge_list`` header if
    present, else ``max endpoint + 1`` (which silently drops trailing
    isolated vertices — pass ``n`` for graphs that may have them).
    """
    if n is None:
        with open(path) as f:
            first = f.readline()
        if first.startswith("#"):
            for token in first.split():
                if token.startswith("n="):
                    n = int(token[2:])
                    break
    data = np.loadtxt(path, comments="#", dtype=np.int64, ndmin=2)
    if data.size == 0:
        src = dst = np.empty(0, dtype=np.int64)
    else:
        src, dst = data[:, 0], data[:, 1]
    if n is None:
        n = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
    return from_edges(n, src, dst, directed=directed)


def write_metis(graph: Graph, path: PathLike) -> None:
    """Write the METIS/Chaco ascii format (1-indexed adjacency lists).

    Only defined for undirected graphs without self-loops — the format the
    paper's ParMETIS baseline consumes.
    """
    if graph.directed:
        raise ValueError("METIS format requires an undirected graph")
    if graph.has_self_loops():
        raise ValueError("METIS format forbids self-loops")
    with open(path, "w") as f:
        f.write(f"{graph.n} {graph.num_edges}\n")
        for v in range(graph.n):
            neigh = graph.neighbors(v) + 1
            f.write(" ".join(map(str, neigh.tolist())) + "\n")


def read_metis(path: PathLike) -> Graph:
    """Read a METIS/Chaco ascii graph (plain, unweighted flavor)."""
    with open(path) as f:
        lines = [ln for ln in (raw.rstrip("\n") for raw in f)
                 if not ln.lstrip().startswith("%")]
    if not lines or not lines[0].strip():
        raise ValueError("empty METIS file")
    head = lines[0].split()
    n, m = int(head[0]), int(head[1])
    # isolated vertices appear as empty adjacency lines; trailing blanks
    # beyond the declared n (or a missing final newline) are tolerated
    while len(lines) - 1 > n and not lines[-1].strip():
        lines.pop()
    while len(lines) - 1 < n:
        lines.append("")
    if len(lines) - 1 != n:
        raise ValueError(
            f"METIS header says {n} vertices, file has {len(lines) - 1}"
        )
    srcs, dsts = [], []
    for v, line in enumerate(lines[1:]):
        if line.strip():
            neigh = np.fromstring(line, dtype=np.int64, sep=" ") - 1
            srcs.append(np.full(neigh.size, v, dtype=np.int64))
            dsts.append(neigh)
    if srcs:
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
    else:
        src = dst = np.empty(0, dtype=np.int64)
    g = from_edges(n, src, dst)
    if g.num_edges != m:
        raise ValueError(
            f"METIS header says {m} edges, adjacency lists give {g.num_edges}"
        )
    return g


def save_npz(graph: Graph, path: PathLike) -> None:
    """Binary save (compressed npz of the CSR arrays)."""
    np.savez_compressed(
        path,
        offsets=graph.offsets,
        adj=graph.adj,
        directed=np.array(graph.directed),
    )


def load_npz(path: PathLike) -> Graph:
    with np.load(path) as data:
        return Graph(
            data["offsets"].copy(),
            data["adj"].copy(),
            directed=bool(data["directed"]),
        )
