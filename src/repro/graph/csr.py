"""Frozen compressed-sparse-row graph.

The paper stores the distributed graph in "a distributed one-dimensional
compressed sparse row-like representation"; this class is the single-address
-space building block: a validated, immutable CSR with NumPy storage.

Conventions
-----------
* Vertices are ``0 .. n-1`` (int64 ids).
* The adjacency is *directed storage*: ``adj[offsets[v]:offsets[v+1]]`` are
  the out-neighbors of ``v``.  An **undirected** graph stores each edge in
  both directions (symmetric CSR), which is how every partitioning algorithm
  here consumes it; ``num_undirected_edges`` is then ``adj.size // 2``.
* Self-loops and parallel edges are removed by the builders by default.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.graph.gather import neighbor_gather


class Graph:
    """Immutable CSR graph.

    Use :func:`repro.graph.builders.from_edges` (or a generator) rather than
    calling this constructor with hand-built arrays.
    """

    __slots__ = ("offsets", "adj", "n", "directed", "_degrees")

    def __init__(
        self,
        offsets: np.ndarray,
        adj: np.ndarray,
        *,
        directed: bool = False,
        validate: bool = True,
    ) -> None:
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        adj = np.ascontiguousarray(adj, dtype=np.int64)
        if validate:
            if offsets.ndim != 1 or adj.ndim != 1:
                raise ValueError("offsets and adj must be 1-D")
            if offsets.size == 0:
                raise ValueError("offsets must have at least one entry")
            if offsets[0] != 0 or offsets[-1] != adj.size:
                raise ValueError(
                    f"offsets must start at 0 and end at adj size "
                    f"({offsets[0]}..{offsets[-1]} vs {adj.size})"
                )
            if np.any(np.diff(offsets) < 0):
                raise ValueError("offsets must be non-decreasing")
            n = offsets.size - 1
            if adj.size and (adj.min() < 0 or adj.max() >= n):
                raise ValueError("adjacency targets out of range")
        self.offsets = offsets
        self.adj = adj
        self.n = int(offsets.size - 1)
        self.directed = bool(directed)
        self._degrees: Optional[np.ndarray] = None
        self.offsets.setflags(write=False)
        self.adj.setflags(write=False)

    # -- basic properties ----------------------------------------------------

    @property
    def num_directed_edges(self) -> int:
        """Number of stored (directed) adjacency entries."""
        return int(self.adj.size)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (``adj.size // 2`` for symmetric CSR);
        for directed graphs, the number of arcs."""
        return self.adj.size if self.directed else self.adj.size // 2

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex (== undirected degree for symmetric CSR)."""
        if self._degrees is None:
            d = np.diff(self.offsets)
            d.setflags(write=False)
            self._degrees = d
        return self._degrees

    @property
    def avg_degree(self) -> float:
        return self.adj.size / self.n if self.n else 0.0

    @property
    def max_degree(self) -> int:
        return int(self.degrees.max()) if self.n else 0

    def neighbors(self, v: int) -> np.ndarray:
        """Read-only view of ``v``'s adjacency slice."""
        return self.adj[self.offsets[v]:self.offsets[v + 1]]

    def neighbor_block(self, verts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated neighbor lists + per-vertex counts for a vertex set."""
        return neighbor_gather(self.offsets, self.adj, verts)

    def edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """All stored arcs as ``(src, dst)`` arrays (both directions for
        undirected graphs)."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees)
        return src, self.adj.copy()

    def unique_edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """Each undirected edge once, as ``(u, v)`` with ``u < v``.

        For directed graphs, returns all arcs unchanged.
        """
        src, dst = self.edges()
        if self.directed:
            return src, dst
        keep = src < dst
        return src[keep], dst[keep]

    # -- structure checks ------------------------------------------------------

    def is_symmetric(self) -> bool:
        """True iff every stored arc has its reverse stored too."""
        src, dst = self.edges()
        fwd = np.sort(src * np.int64(self.n) + dst)
        rev = np.sort(dst * np.int64(self.n) + src)
        return bool(np.array_equal(fwd, rev))

    def has_self_loops(self) -> bool:
        src, dst = self.edges()
        return bool(np.any(src == dst))

    def reversed(self) -> "Graph":
        """Graph with every arc flipped (in-adjacency CSR)."""
        src, dst = self.edges()
        order = np.argsort(dst, kind="stable")
        new_src = dst[order]
        new_dst = src[order]
        offsets = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(np.bincount(new_src, minlength=self.n), out=offsets[1:])
        return Graph(offsets, new_dst, directed=self.directed, validate=False)

    def subgraph_mask(self, keep: np.ndarray) -> Tuple["Graph", np.ndarray]:
        """Induced subgraph on vertices where ``keep`` is True.

        Returns ``(subgraph, old_ids)`` where ``old_ids[new] = old``.
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self.n,):
            raise ValueError("mask must have one entry per vertex")
        old_ids = np.flatnonzero(keep)
        remap = np.full(self.n, -1, dtype=np.int64)
        remap[old_ids] = np.arange(old_ids.size, dtype=np.int64)
        src, dst = self.edges()
        ok = keep[src] & keep[dst]
        new_src = remap[src[ok]]
        new_dst = remap[dst[ok]]
        order = np.argsort(new_src, kind="stable")
        new_src = new_src[order]
        new_dst = new_dst[order]
        offsets = np.zeros(old_ids.size + 1, dtype=np.int64)
        np.cumsum(np.bincount(new_src, minlength=old_ids.size), out=offsets[1:])
        return (
            Graph(offsets, new_dst, directed=self.directed, validate=False),
            old_ids,
        )

    # -- dunder conveniences -----------------------------------------------------

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"Graph(n={self.n}, m={self.num_edges}, {kind}, "
            f"davg={self.avg_degree:.1f}, dmax={self.max_degree})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.directed == other.directed
            and np.array_equal(self.offsets, other.offsets)
            and np.array_equal(self.adj, other.adj)
        )

    def __hash__(self) -> int:  # identity hash; arrays are frozen but big
        return id(self)

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n))
