"""Graph generators covering the paper's four graph classes.

* :func:`rmat` — the R-MAT recursive-matrix model [Chakrabarti et al. 2004]
  used for the paper's ``rmat_22``..``rmat_28`` inputs and the Blue Waters
  weak/strong scaling runs.
* :func:`erdos_renyi` — the paper's ``RandER`` uniform random graphs.
* :func:`rand_hd` — the paper's high-diameter random graph: vertex ``k``
  draws ``davg`` neighbors uniformly from ``(k - davg, k + davg)``.
* :func:`mesh3d` / :func:`grid2d` — regular stencil meshes standing in for
  ``nlpkkt*`` and the ``InternalMesh*`` inputs.
* :func:`social` — a heavy-skew R-MAT whose vertex ids are randomly
  permuted, mimicking social-network snapshots (lj/orkut/twitter class).
* :func:`webcrawl` — a community-blocked graph with crawl-ordered ids,
  mimicking web crawls (uk-2002/WDC12 class): block partitions get a low
  cut but terrible edge balance, exactly the WDC12 behaviour in §V.B.

All generators are deterministic in ``seed`` and return simple undirected
graphs (self-loops and duplicates removed).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.builders import from_edges
from repro.graph.csr import Graph


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# R-MAT
# ---------------------------------------------------------------------------

def rmat_edges(
    scale: int,
    avg_degree: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Raw R-MAT endpoint arrays for ``2**scale`` vertices.

    ``avg_degree`` counts *directed* adjacency entries per vertex after
    symmetrization, matching the paper's ``davg`` column (m in Table I is
    ``n * davg / 2`` undirected edges).  Probabilities follow the Graph500
    convention (a=0.57, b=c=0.19, d=0.05).
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    d = 1.0 - a - b - c
    if d < -1e-9 or min(a, b, c) < 0:
        raise ValueError("invalid R-MAT probabilities")
    n = 1 << scale
    nedges = (n * avg_degree) // 2
    rng = _rng(seed)
    src = np.zeros(nedges, dtype=np.int64)
    dst = np.zeros(nedges, dtype=np.int64)
    # One vectorized pass per bit level: pick the quadrant for all edges.
    p_right_given_any = b + d  # P(column bit = 1)
    for bit in range(scale):
        r1 = rng.random(nedges)
        r2 = rng.random(nedges)
        # row bit: 1 with prob c + d; column bit conditional on row bit
        row_bit = r1 < (c + d)
        p_col = np.where(row_bit, d / max(c + d, 1e-12), b / max(a + b, 1e-12))
        col_bit = r2 < p_col
        src = (src << 1) | row_bit
        dst = (dst << 1) | col_bit
    _ = p_right_given_any
    return src, dst


def rmat(
    scale: int,
    avg_degree: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: Optional[int] = None,
) -> Graph:
    """Undirected R-MAT graph with ``2**scale`` vertices (see
    :func:`rmat_edges`)."""
    src, dst = rmat_edges(scale, avg_degree, a=a, b=b, c=c, seed=seed)
    return from_edges(1 << scale, src, dst)


# ---------------------------------------------------------------------------
# Random graphs
# ---------------------------------------------------------------------------

def erdos_renyi(n: int, avg_degree: int = 16, *, seed: Optional[int] = None) -> Graph:
    """G(n, m) Erdős–Rényi graph with ``m = n * avg_degree / 2`` sampled
    pairs (the paper's RandER)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = _rng(seed)
    nedges = (n * avg_degree) // 2
    src = rng.integers(0, n, size=nedges, dtype=np.int64)
    dst = rng.integers(0, n, size=nedges, dtype=np.int64)
    return from_edges(n, src, dst)


def rand_hd(n: int, avg_degree: int = 16, *, seed: Optional[int] = None) -> Graph:
    """The paper's high-diameter random graph (RandHD).

    "for a vertex with identifier k, we add davg edges connecting it to
    vertices chosen uniform randomly from the interval (k − davg, k + davg)"
    — giving near-1D locality, large diameter, and tiny cut under block
    distributions.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if avg_degree < 1:
        raise ValueError("avg_degree must be >= 1")
    rng = _rng(seed)
    src = np.repeat(np.arange(n, dtype=np.int64), avg_degree)
    offset = rng.integers(-avg_degree + 1, avg_degree, size=src.size, dtype=np.int64)
    dst = np.clip(src + offset, 0, n - 1)
    return from_edges(n, src, dst)


# ---------------------------------------------------------------------------
# Meshes
# ---------------------------------------------------------------------------

def grid2d(nx: int, ny: int, *, diagonals: bool = False) -> Graph:
    """2-D grid mesh (5-point stencil; 9-point with ``diagonals``)."""
    if nx < 1 or ny < 1:
        raise ValueError("grid dimensions must be >= 1")
    ids = np.arange(nx * ny, dtype=np.int64).reshape(nx, ny)
    pieces = []
    pieces.append((ids[:-1, :].ravel(), ids[1:, :].ravel()))    # down
    pieces.append((ids[:, :-1].ravel(), ids[:, 1:].ravel()))    # right
    if diagonals:
        pieces.append((ids[:-1, :-1].ravel(), ids[1:, 1:].ravel()))
        pieces.append((ids[:-1, 1:].ravel(), ids[1:, :-1].ravel()))
    src = np.concatenate([p[0] for p in pieces])
    dst = np.concatenate([p[1] for p in pieces])
    return from_edges(nx * ny, src, dst)


def mesh3d(
    nx: int, ny: int, nz: int, *, stencil: int = 13
) -> Graph:
    """3-D mesh with a 7-, 13-, or 27-point stencil.

    ``stencil=13`` (faces + xy/xz plane diagonals) gives interior degree
    ≈ 13 like the paper's nlpkkt / InternalMesh inputs (davg 13 in Table I).
    """
    if min(nx, ny, nz) < 1:
        raise ValueError("mesh dimensions must be >= 1")
    if stencil not in (7, 13, 27):
        raise ValueError("stencil must be one of 7, 13, 27")
    ids = np.arange(nx * ny * nz, dtype=np.int64).reshape(nx, ny, nz)
    pieces = []

    def link(sl_a, sl_b):
        pieces.append((ids[sl_a].ravel(), ids[sl_b].ravel()))

    s = slice(None)
    # 6 face neighbors (7-point stencil minus center)
    link((slice(None, -1), s, s), (slice(1, None), s, s))
    link((s, slice(None, -1), s), (s, slice(1, None), s))
    link((s, s, slice(None, -1)), (s, s, slice(1, None)))
    if stencil >= 13:
        # plane diagonals: xy and xz (adds ~6 to interior degree)
        link((slice(None, -1), slice(None, -1), s), (slice(1, None), slice(1, None), s))
        link((slice(None, -1), slice(1, None), s), (slice(1, None), slice(None, -1), s))
        link((slice(None, -1), s, slice(None, -1)), (slice(1, None), s, slice(1, None)))
    if stencil == 27:
        link((slice(None, -1), s, slice(1, None)), (slice(1, None), s, slice(None, -1)))
        link((s, slice(None, -1), slice(None, -1)), (s, slice(1, None), slice(1, None)))
        link((s, slice(None, -1), slice(1, None)), (s, slice(1, None), slice(None, -1)))
        # corner diagonals
        link(
            (slice(None, -1), slice(None, -1), slice(None, -1)),
            (slice(1, None), slice(1, None), slice(1, None)),
        )
        link(
            (slice(None, -1), slice(None, -1), slice(1, None)),
            (slice(1, None), slice(1, None), slice(None, -1)),
        )
        link(
            (slice(None, -1), slice(1, None), slice(None, -1)),
            (slice(1, None), slice(None, -1), slice(1, None)),
        )
        link(
            (slice(None, -1), slice(1, None), slice(1, None)),
            (slice(1, None), slice(None, -1), slice(None, -1)),
        )
    src = np.concatenate([p[0] for p in pieces])
    dst = np.concatenate([p[1] for p in pieces])
    return from_edges(nx * ny * nz, src, dst)


# ---------------------------------------------------------------------------
# Class representatives for the real-world suites
# ---------------------------------------------------------------------------

def social(
    n: int, avg_degree: int = 24, *, seed: Optional[int] = None,
    directed: bool = False,
) -> Graph:
    """Social-network stand-in (lj/orkut/twitter class).

    A heavy-skew R-MAT with the vertex ids randomly permuted: skewed degree
    distribution, low diameter, and *no* locality in the id space — so block
    distributions are no better than random, as for real social snapshots.
    """
    scale = max(1, int(np.ceil(np.log2(max(n, 2)))))
    rng = _rng(seed)
    src, dst = rmat_edges(
        scale, avg_degree, a=0.50, b=0.22, c=0.22,
        seed=None if seed is None else seed + 1,
    )
    # fold the padded id space back onto 0..n-1, then scramble ids
    src %= n
    dst %= n
    perm = rng.permutation(n).astype(np.int64)
    return from_edges(n, perm[src], perm[dst], directed=directed)


def webcrawl(
    n: int,
    avg_degree: int = 24,
    *,
    intra_fraction: float = 0.88,
    seed: Optional[int] = None,
    pareto_shape: float = 1.5,
    site_scale: float = 20.0,
    crawl_bias: float = 1.6,
    directed: bool = False,
) -> Graph:
    """Web-crawl stand-in (uk-2002/WDC12 class).

    Vertices are grouped into Pareto-sized contiguous "sites" (crawl order
    visits a site's pages together); ``intra_fraction`` of edges stay
    within the site, the rest pick a target site preferentially by size.
    ``crawl_bias`` skews link sources toward early crawl positions (early
    pages are landing pages with many discovered links).  Reproduces the
    WDC12 signature from §V.B: vertex-block partitions get a low edge cut
    (crawl locality) but high edge imbalance (~2x: the paper reports 1.85),
    while random partitions cut nearly everything.
    """
    if not 0.0 <= intra_fraction <= 1.0:
        raise ValueError("intra_fraction must be in [0, 1]")
    rng = _rng(seed)
    # Pareto site sizes, at least 6 pages each, capped to keep many sites
    sizes = []
    total = 0
    while total < n:
        s = int(min(6 + rng.pareto(pareto_shape) * site_scale, n / 16 + 8))
        sizes.append(min(s, n - total))
        total += sizes[-1]
    sizes_arr = np.array(sizes, dtype=np.int64)
    starts = np.zeros(len(sizes_arr), dtype=np.int64)
    np.cumsum(sizes_arr[:-1], out=starts[1:])
    site_of = np.repeat(np.arange(len(sizes_arr), dtype=np.int64), sizes_arr)

    nedges = (n * avg_degree) // 2
    src = (n * rng.random(nedges) ** crawl_bias).astype(np.int64)
    intra = rng.random(nedges) < intra_fraction
    # intra-site edges: uniform page within the source's site
    s_site = site_of[src]
    dst = starts[s_site] + (
        rng.random(nedges) * sizes_arr[s_site]
    ).astype(np.int64)
    # inter-site edges: preferential by site size (big hubs get linked),
    # skewed toward low page index within the site (landing pages)
    inter_idx = np.flatnonzero(~intra)
    if inter_idx.size:
        probs = sizes_arr / sizes_arr.sum()
        tgt_site = rng.choice(len(sizes_arr), size=inter_idx.size, p=probs)
        within = (rng.random(inter_idx.size) ** 2.0 * sizes_arr[tgt_site]).astype(
            np.int64
        )
        dst[inter_idx] = starts[tgt_site] + within
    return from_edges(n, src, dst, directed=directed)


# ---------------------------------------------------------------------------
# Classic random-graph models the paper's introduction cites
# ---------------------------------------------------------------------------

def watts_strogatz(
    n: int, k: int = 8, rewire: float = 0.1, *, seed: Optional[int] = None
) -> Graph:
    """Watts–Strogatz small-world graph [34]: a ring lattice where each
    vertex connects to its ``k`` nearest neighbors, with each edge rewired
    to a uniform random endpoint with probability ``rewire``.

    Interpolates between the high-diameter lattice (rewire=0, RandHD-like)
    and a random graph (rewire=1): useful for studying how XtraPuLP's
    behaviour shifts between the paper's graph classes.
    """
    if n < 4:
        raise ValueError("watts_strogatz needs n >= 4")
    if k < 2 or k % 2:
        raise ValueError("k must be even and >= 2")
    if not 0.0 <= rewire <= 1.0:
        raise ValueError("rewire must be in [0, 1]")
    rng = _rng(seed)
    base = np.arange(n, dtype=np.int64)
    src = np.repeat(base, k // 2)
    offsets = np.tile(np.arange(1, k // 2 + 1, dtype=np.int64), n)
    dst = (src + offsets) % n
    flip = rng.random(dst.size) < rewire
    dst = dst.copy()
    dst[flip] = rng.integers(0, n, size=int(flip.sum()), dtype=np.int64)
    return from_edges(n, src, dst)


def barabasi_albert(
    n: int, m_attach: int = 8, *, seed: Optional[int] = None
) -> Graph:
    """Barabási–Albert preferential-attachment graph [2]: each new vertex
    attaches ``m_attach`` edges to existing vertices with probability
    proportional to their degree — the classic power-law degree model.

    Implemented with the repeated-endpoints trick (attach to uniform
    samples of the *edge endpoint list*, which is degree-proportional).
    """
    if n < 2:
        raise ValueError("barabasi_albert needs n >= 2")
    if m_attach < 1:
        raise ValueError("m_attach must be >= 1")
    m_attach = min(m_attach, n - 1)
    rng = _rng(seed)
    # seed clique-ish core of m_attach+1 vertices (a star keeps it simple)
    src_list = [np.zeros(m_attach, dtype=np.int64)]
    dst_list = [np.arange(1, m_attach + 1, dtype=np.int64)]
    endpoints = np.concatenate([src_list[0], dst_list[0]])
    pool = [endpoints]
    pool_size = endpoints.size
    for v in range(m_attach + 1, n):
        flat = np.concatenate(pool) if len(pool) > 1 else pool[0]
        pool = [flat]
        targets = flat[rng.integers(0, pool_size, size=m_attach)]
        targets = np.unique(targets)
        src_v = np.full(targets.size, v, dtype=np.int64)
        src_list.append(src_v)
        dst_list.append(targets)
        new_eps = np.concatenate([src_v, targets])
        pool.append(new_eps)
        pool_size += new_eps.size
    return from_edges(
        n, np.concatenate(src_list), np.concatenate(dst_list)
    )


# ---------------------------------------------------------------------------
# Tiny deterministic shapes for tests
# ---------------------------------------------------------------------------

def ring(n: int) -> Graph:
    """Cycle graph 0-1-2-...-(n-1)-0."""
    if n < 3:
        raise ValueError("ring needs n >= 3")
    src = np.arange(n, dtype=np.int64)
    dst = (src + 1) % n
    return from_edges(n, src, dst)


def path_graph(n: int) -> Graph:
    """Path 0-1-...-(n-1)."""
    if n < 2:
        raise ValueError("path needs n >= 2")
    src = np.arange(n - 1, dtype=np.int64)
    return from_edges(n, src, src + 1)


def star(n: int) -> Graph:
    """Star with center 0 and n-1 leaves."""
    if n < 2:
        raise ValueError("star needs n >= 2")
    dst = np.arange(1, n, dtype=np.int64)
    src = np.zeros(n - 1, dtype=np.int64)
    return from_edges(n, src, dst)
