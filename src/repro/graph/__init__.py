"""Graph substrate: CSR storage, builders, generators, I/O, and metrics.

Everything downstream (the distributed graph, the partitioner, the
baselines, the analytics) consumes the frozen NumPy-backed
:class:`~repro.graph.csr.Graph`.  Generators cover the paper's graph
classes: R-MAT, Erdős–Rényi, the paper's high-diameter random graph
(``rand_hd``), meshes (nlpkkt-like stencils), and synthetic stand-ins for
the social-network and web-crawl suites (Table I).
"""

from repro.graph.csr import Graph
from repro.graph.builders import (
    from_edges,
    from_networkx,
    from_scipy,
    to_networkx,
    to_scipy,
)
from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    grid2d,
    mesh3d,
    path_graph,
    ring,
    rmat,
    rand_hd,
    social,
    star,
    watts_strogatz,
    webcrawl,
)
from repro.graph.metrics import (
    approximate_diameter,
    bfs_levels,
    connected_component_sizes,
    degree_stats,
    graph_stats_row,
    largest_component,
)
from repro.graph import io

__all__ = [
    "Graph",
    "from_edges",
    "from_scipy",
    "from_networkx",
    "to_scipy",
    "to_networkx",
    "rmat",
    "erdos_renyi",
    "watts_strogatz",
    "barabasi_albert",
    "rand_hd",
    "mesh3d",
    "grid2d",
    "social",
    "webcrawl",
    "ring",
    "path_graph",
    "star",
    "bfs_levels",
    "approximate_diameter",
    "degree_stats",
    "connected_component_sizes",
    "largest_component",
    "graph_stats_row",
    "io",
]
