"""Builders: edge lists / scipy / networkx  →  :class:`~repro.graph.csr.Graph`."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import Graph


def _clean_edges(
    n: int,
    src: np.ndarray,
    dst: np.ndarray,
    *,
    symmetrize: bool,
    dedup: bool,
    drop_self_loops: bool,
) -> Tuple[np.ndarray, np.ndarray]:
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if src.shape != dst.shape:
        raise ValueError("src and dst must have equal length")
    if src.size and (
        src.min() < 0 or dst.min() < 0 or src.max() >= n or dst.max() >= n
    ):
        raise ValueError(f"edge endpoints out of range for n={n}")
    if drop_self_loops:
        ok = src != dst
        src, dst = src[ok], dst[ok]
    if symmetrize:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    if dedup and src.size:
        # sort by (src, dst) once; uniqueness on the combined key
        key = src * np.int64(n) + dst
        key = np.unique(key)
        src = key // n
        dst = key % n
    elif src.size:
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
    return src, dst


def from_edges(
    n: int,
    src: np.ndarray,
    dst: np.ndarray,
    *,
    directed: bool = False,
    dedup: bool = True,
    drop_self_loops: bool = True,
) -> Graph:
    """Build a graph from parallel endpoint arrays.

    Undirected graphs (default) are symmetrized: each input pair produces
    both arcs.  Duplicate edges and self-loops are removed unless disabled.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    src, dst = _clean_edges(
        n, src, dst,
        symmetrize=not directed, dedup=dedup, drop_self_loops=drop_self_loops,
    )
    offsets = np.zeros(n + 1, dtype=np.int64)
    if src.size:
        np.cumsum(np.bincount(src, minlength=n), out=offsets[1:])
    return Graph(offsets, dst, directed=directed, validate=False)


def from_scipy(matrix, *, directed: bool = False) -> Graph:
    """Build from a scipy sparse matrix (nonzero pattern = adjacency)."""
    from scipy import sparse

    m = sparse.coo_matrix(matrix)
    if m.shape[0] != m.shape[1]:
        raise ValueError("adjacency matrix must be square")
    return from_edges(m.shape[0], m.row, m.col, directed=directed)


def to_scipy(graph: Graph):
    """CSR graph → ``scipy.sparse.csr_matrix`` of the 0/1 adjacency."""
    from scipy import sparse

    data = np.ones(graph.adj.size, dtype=np.float64)
    return sparse.csr_matrix(
        (data, graph.adj.copy(), graph.offsets.copy()), shape=(graph.n, graph.n)
    )


def from_networkx(g, *, directed: Optional[bool] = None) -> Graph:
    """Build from a networkx graph; node labels must be 0..n-1 integers or
    they are relabeled in sorted order."""
    import networkx as nx

    if directed is None:
        directed = g.is_directed()
    nodes = sorted(g.nodes())
    relabel = {u: i for i, u in enumerate(nodes)}
    edges = np.array(
        [(relabel[u], relabel[v]) for u, v in g.edges()], dtype=np.int64
    ).reshape(-1, 2)
    return from_edges(len(nodes), edges[:, 0], edges[:, 1], directed=directed)


def to_networkx(graph: Graph):
    import networkx as nx

    g = nx.DiGraph() if graph.directed else nx.Graph()
    g.add_nodes_from(range(graph.n))
    src, dst = graph.unique_edges()
    g.add_edges_from(zip(src.tolist(), dst.tolist()))
    return g


def symmetrize(graph: Graph) -> Graph:
    """Undirected closure of a directed graph (each arc becomes an edge).

    The paper treats "all graph edges as undirected edges" for
    partitioning, while SCC and PageRank-style analytics may consume the
    directed original; this is the bridge between the two views.
    """
    if not graph.directed:
        return graph
    src, dst = graph.edges()
    return from_edges(graph.n, src, dst, directed=False)


def relabel(graph: Graph, permutation: np.ndarray) -> Graph:
    """Renumber vertices: new id of old vertex ``v`` is ``permutation[v]``.

    Vertex order strongly affects block distributions (the paper notes
    running times "depend on the initial vertex ordering"); this is the tool
    benches use to scramble or localize orderings.
    """
    perm = np.asarray(permutation, dtype=np.int64)
    if perm.shape != (graph.n,) or not np.array_equal(
        np.sort(perm), np.arange(graph.n)
    ):
        raise ValueError("permutation must be a bijection on 0..n-1")
    src, dst = graph.edges()
    return from_edges(
        graph.n, perm[src], perm[dst], directed=graph.directed, dedup=True
    )
