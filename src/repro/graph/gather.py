"""Vectorized multi-range gathers over CSR adjacency.

The inner loops of label propagation, BFS, and boundary detection all need
"for every vertex in this set, visit all its neighbors".  A Python loop over
vertices is orders of magnitude too slow; these helpers express the access
as a single fancy-index gather, which is the idiom the scientific-Python
optimization guidance calls for (vectorize the loop, mind contiguity).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, s + c) for s, c in zip(starts, counts)]``
    without a Python loop.

    Returns an index array of length ``counts.sum()``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # For each output slot, the base is starts[i] minus the running prefix of
    # counts; adding a global arange then walks each range.
    prefix = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=prefix[1:])
    return np.repeat(starts - prefix, counts) + np.arange(total, dtype=np.int64)


def neighbor_gather(
    offsets: np.ndarray, adj: np.ndarray, verts: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Gather the concatenated neighbor lists of ``verts``.

    Returns ``(neighbors, counts)`` where ``neighbors`` is the concatenation
    of each vertex's adjacency slice and ``counts[i]`` is ``degree(verts[i])``.
    """
    verts = np.asarray(verts, dtype=np.int64)
    starts = offsets[verts]
    counts = offsets[verts + 1] - starts
    idx = expand_ranges(starts, counts)
    return adj[idx], counts


def neighbor_gather_with_sources(
    offsets: np.ndarray, adj: np.ndarray, verts: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Like :func:`neighbor_gather` but also returns, for every gathered
    neighbor, the *position in verts* of its source vertex.

    ``(neighbors, sources, counts)`` with ``len(neighbors) == len(sources)``;
    ``sources`` indexes into ``verts`` (0..len(verts)-1), which is exactly
    the row index needed for per-vertex ``bincount`` aggregation.
    """
    neighbors, counts = neighbor_gather(offsets, adj, verts)
    sources = np.repeat(np.arange(len(verts), dtype=np.int64), counts)
    return neighbors, sources, counts
