"""Result metadata of a multilevel run (leaf module: no repro imports).

Lives outside :mod:`repro.multilevel.driver` so
:class:`repro.core.driver.PartitionResult` can reference the type without
creating an import cycle (``core.driver`` loads the multilevel SPMD body
lazily, inside the rank function).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class MultilevelInfo:
    """Per-run multilevel metadata threaded onto ``PartitionResult``.

    Attributes
    ----------
    levels:
        Number of hierarchy levels including the input graph (``1`` means
        the input was already below the coarsening threshold and the run
        degenerated to the flat pipeline plus one refine pass).
    coarsen_mode:
        ``"lp"`` or ``"hem"`` — the clustering used by the coarsener.
    level_sizes:
        ``(n_vertices, n_undirected_edges)`` per level, finest first.
    cut_trajectory:
        Edge-weighted global cut after the partitioning/refinement work at
        each level, coarsest first.  Weights are conserved by contraction,
        so every entry is directly comparable to the final fine cut.
    coarsest_n:
        Vertex count of the level handed to the flat pipeline.
    """

    levels: int
    coarsen_mode: str
    level_sizes: List[Tuple[int, int]] = field(default_factory=list)
    cut_trajectory: List[float] = field(default_factory=list)
    coarsest_n: int = 0
