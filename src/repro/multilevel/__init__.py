"""Distributed multilevel partitioning (coarsen → partition → uncoarsen).

The flat label-propagation pipeline is fast but leaves cut quality on the
table; dKaMinPar (arXiv:2303.01417) and tera-scale multilevel partitioning
(arXiv:2410.19119) show that a distributed V-cycle — cluster, contract,
partition the coarse graph, then project up and refine per level — beats
flat partitioners on quality at comparable time.  This package is that
V-cycle on the simmpi SPMD runtime:

* :mod:`~repro.multilevel.kernels` — the shared-memory coarsening kernels
  (heavy-edge matching, size-constrained LP clustering, contraction),
  factored out of :mod:`repro.baselines.multilevel` and reused by both the
  baseline and the distributed coarsener;
* :mod:`~repro.multilevel.coarsen` — distributed clustering + contraction
  producing a smaller :class:`~repro.dist.distgraph.DistGraph` per level;
* :mod:`~repro.multilevel.refine` — the edge-weighted per-level refinement
  sweeps (frontier-seeded from cluster boundaries);
* :mod:`~repro.multilevel.driver` — the SPMD body wired into
  :func:`repro.core.driver.xtrapulp` via ``PulpParams.multilevel``.
"""

from repro.multilevel.info import MultilevelInfo
from repro.multilevel.kernels import (
    contract,
    heavy_edge_matching,
    lp_clustering,
    segment_best_label,
)

__all__ = [
    "MultilevelInfo",
    "contract",
    "heavy_edge_matching",
    "lp_clustering",
    "segment_best_label",
]
