"""Edge-weighted refinement for the uncoarsening half of the V-cycle.

The flat pipeline's :func:`repro.core.refinement.vertex_refine_phase`
scores a move by the plain neighbor-count plurality — correct on the
unit-weight input graph, wrong on coarse levels where a single coarse arc
stands in for many fine edges.  This phase is the same ratcheted,
capacity-constrained plurality sweep with the tally weighted by the
coarse edge weights, so minimizing the weighted cut at any level
minimizes the *fine* cut it represents (contraction conserves cut
weight: a coarse cut arc's weight is exactly the fine cut weight of the
edges it aggregated).

Frontier seeding: after projection every vertex inherits its cluster's
part, so the only vertices whose move can change the cut are those with
an arc leaving their cluster — the projection hands exactly those lids
to the sweeper as the initial active set, and the late cleanup pass
catches stragglers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.capacity import enforce_weight_capacity
from repro.core.frontier import FrontierSweeper
from repro.core.state import RankState
from repro.graph.gather import expand_ranges
from repro.simmpi.comm import SimComm


def weighted_cut(
    comm: SimComm, state: RankState, ew_local: np.ndarray
) -> float:
    """Global edge-weighted cut (each undirected edge counted once).

    Every arc of an owned vertex is stored locally and each undirected
    edge has exactly two owned endpoints across all ranks, so summing the
    cut arcs rank-wise double-counts every cut edge exactly once.
    """
    dg = state.dg
    srcs = np.repeat(
        np.arange(dg.n_local, dtype=np.int64), dg.local_degrees
    )
    cut_arcs = state.parts[srcs] != state.parts[dg.adj]
    comm.charge(2.0 * ew_local.size)
    local = float(ew_local[cut_arcs].sum())
    return comm.allreduce(local, op="sum") / 2.0


def ml_refine_phase(
    comm: SimComm,
    state: RankState,
    ew_local: np.ndarray,
    iters: int,
    seed_lids: Optional[np.ndarray] = None,
) -> None:
    """Run ``iters`` weighted refinement iterations at one level.

    Mirrors ``vertex_refine_phase`` — ratcheted ``Maxv`` vertex-weight
    cap, multiplier-scaled per-part admission, frontier sweeps — with the
    plurality tally weighted by ``ew_local`` (this rank's per-arc coarse
    edge weights, aligned with ``state.dg.adj``).
    """
    p = state.num_parts
    dg = state.dg
    imb_v = state.target_max_vertices
    with comm.phase("ml_refine"):
        Sv = state.compute_vertex_sizes(comm).astype(np.float64)
        maxv = max(float(Sv.max()), imb_v)
        sweeper = FrontierSweeper(
            state,
            phase="ml_refine",
            cleanup_iter=max(0, iters - 2),
            seed_lids=seed_lids,
        )
        for _ in range(iters):
            maxv = max(min(maxv, float(Sv.max())), imb_v)  # ratchet down only
            mult = state.mult(comm)
            Cv = np.zeros(p, dtype=np.float64)
            for lids in sweeper.blocks():
                est = Sv + mult * Cv
                vw = state.vweights[lids]
                starts = dg.offsets[lids]
                counts = dg.offsets[lids + 1] - starts
                arcs = expand_ranges(starts, counts)
                neigh = dg.adj[arcs]
                nparts = state.parts[neigh]
                rows = np.repeat(
                    np.arange(lids.size, dtype=np.int64), counts
                )
                ok = nparts >= 0
                # weighted tally via the same sparse-key bincount trick as
                # block_part_counts, with arc weights instead of counts
                key = rows[ok] * np.int64(p) + nparts[ok]
                scores = np.bincount(
                    key, weights=ew_local[arcs][ok],
                    minlength=lids.size * p,
                ).reshape(lids.size, p)
                state.work_pending += 2.0 * neigh.size + float(lids.size + p)
                state.edges_touched += float(neigh.size)
                scores[(est[None, :] + vw[:, None]) > maxv] = 0.0
                x = state.parts[lids]
                w = np.argmax(scores, axis=1)
                rr = np.arange(lids.size)
                move = (w != x) & (scores[rr, w] > scores[rr, x])
                cand = np.flatnonzero(move)
                if cand.size:
                    cap = (maxv - est) / max(mult, 1e-12)
                    keep = enforce_weight_capacity(w[cand], vw[cand], cap)
                    cand = cand[keep]
                if cand.size:
                    moved = lids[cand]
                    old = x[cand]
                    new = w[cand]
                    state.parts[moved] = new
                    mw = state.vweights[moved]
                    Cv += np.bincount(new, weights=mw, minlength=p)
                    Cv -= np.bincount(old, weights=mw, minlength=p)
                    sweeper.note_moves(moved)
            sweeper.exchange(comm)
            Cv_global = comm.Allreduce(Cv, op="sum")
            Sv += Cv_global
            state.iter_tot += 1
        state.Sv = Sv
