"""Shared-memory coarsening kernels (matching, clustering, contraction).

These are the per-address-space building blocks of the multilevel family,
factored out of :mod:`repro.baselines.multilevel` so the distributed
coarsener (:mod:`repro.multilevel.coarsen`) reuses the exact same kernels:
the baseline applies them to the whole graph, a simulated rank applies
them to its owned subgraph.  The bodies are unchanged — the baseline's
partitions stay bit-identical (enforced by its tests).

All kernels operate on a SciPy CSR adjacency with positive edge weights
and no diagonal.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import sparse


# ---------------------------------------------------------------------------
# segment utilities (per-vertex aggregation over sorted edge arrays)
# ---------------------------------------------------------------------------

def segment_best_label(
    src: np.ndarray, lab: np.ndarray, w: np.ndarray, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """For every vertex, the neighbor label with maximum total edge weight.

    Returns ``(best_label, best_weight)``; vertices with no edges get
    label -1 / weight 0.
    """
    best_label = np.full(n, -1, dtype=np.int64)
    best_weight = np.zeros(n, dtype=np.float64)
    if src.size == 0:
        return best_label, best_weight
    order = np.lexsort((lab, src))
    s, l, ww = src[order], lab[order], w[order]
    group = np.empty(s.size, dtype=bool)
    group[0] = True
    group[1:] = (s[1:] != s[:-1]) | (l[1:] != l[:-1])
    starts = np.flatnonzero(group)
    sums = np.add.reduceat(ww, starts)
    g_src = s[starts]
    g_lab = l[starts]
    # pick the max-sum group per source (stable: first max wins)
    order2 = np.lexsort((-sums, g_src))
    g_src2 = g_src[order2]
    first = np.empty(g_src2.size, dtype=bool)
    first[0] = True
    first[1:] = g_src2[1:] != g_src2[:-1]
    sel = order2[first]
    best_label[g_src[sel]] = g_lab[sel]
    best_weight[g_src[sel]] = sums[sel]
    return best_label, best_weight


# ---------------------------------------------------------------------------
# coarsening
# ---------------------------------------------------------------------------

def heavy_edge_matching(
    adj: sparse.csr_matrix, rng: np.random.Generator, rounds: int = 4
) -> np.ndarray:
    """Parallel-style heavy-edge matching: propose → accept mutual."""
    n = adj.shape[0]
    coo = adj.tocoo()
    src, dst, w = coo.row.astype(np.int64), coo.col.astype(np.int64), coo.data
    match = np.full(n, -1, dtype=np.int64)
    for _ in range(rounds):
        free = match < 0
        keep = free[src] & free[dst]
        if not np.any(keep):
            break
        # jitter weights so hub ties break randomly instead of by id
        noise = 1.0 + 1e-6 * rng.random(int(keep.sum()))
        best, _ = segment_best_label(src[keep], dst[keep], w[keep] * noise, n)
        cand = np.flatnonzero(best >= 0)
        mutual = cand[best[best[cand]] == cand]
        a = mutual[mutual < best[mutual]]  # each pair once
        match[a] = best[a]
        match[best[a]] = a

    # claim round: unmatched vertices grab any still-free heavy neighbor
    # (one winner per target, lowest proposer wins — METIS-style greedy)
    free = match < 0
    keep = free[src] & free[dst]
    if np.any(keep):
        best, _ = segment_best_label(src[keep], dst[keep], w[keep], n)
        cand = np.flatnonzero(best >= 0)
        order = np.argsort(best[cand], kind="stable")
        tgt_sorted = best[cand][order]
        first = np.empty(tgt_sorted.size, dtype=bool)
        if first.size:
            first[0] = True
            first[1:] = tgt_sorted[1:] != tgt_sorted[:-1]
        winners = cand[order][first]
        tgts = tgt_sorted[first]
        ok = winners != tgts
        winners, tgts = winners[ok], tgts[ok]
        # a vertex may appear as both winner and target; targets win
        taken = np.zeros(n, dtype=bool)
        taken[tgts] = True
        ok = ~taken[winners]
        winners, tgts = winners[ok], tgts[ok]
        match[winners] = tgts
        match[tgts] = winners

    # two-hop round: leaves hanging off a common (matched) hub pair up —
    # the modern-METIS remedy for star subgraphs that stall matching
    free = match < 0
    if np.any(free[src]):
        sel = free[src]
        best, _ = segment_best_label(src[sel], dst[sel], w[sel], n)
        leaves = np.flatnonzero((best >= 0) & free)
        hubs = best[leaves]
        order = np.lexsort((leaves, hubs))
        lv = leaves[order]
        hb = hubs[order]
        same_hub = np.zeros(lv.size, dtype=bool)
        same_hub[1:] = hb[1:] == hb[:-1]
        # pair consecutive leaves under one hub: positions (0,1), (2,3), ...
        pos = np.arange(lv.size)
        hub_start = np.zeros(lv.size, dtype=np.int64)
        new_hub = np.flatnonzero(~same_hub)
        hub_start[new_hub] = pos[new_hub]
        hub_start = np.maximum.accumulate(hub_start)
        within = pos - hub_start
        is_second = (within % 2 == 1) & same_hub
        b = lv[is_second]
        a = lv[np.flatnonzero(is_second) - 1]
        match[a] = b
        match[b] = a

    solo = match < 0
    match[solo] = np.flatnonzero(solo)
    # group label = smaller endpoint, so both partners land in one group
    return np.minimum(np.arange(match.size, dtype=np.int64), match)


def lp_clustering(
    adj: sparse.csr_matrix,
    vweights: np.ndarray,
    max_cluster: float,
    rng: np.random.Generator,
    iters: int = 3,
) -> np.ndarray:
    """Size-constrained label propagation clustering (KaHIP coarsening)."""
    n = adj.shape[0]
    coo = adj.tocoo()
    src, dst, w = coo.row.astype(np.int64), coo.col.astype(np.int64), coo.data
    labels = np.arange(n, dtype=np.int64)
    weight_of = vweights.astype(np.float64).copy()  # per-label mass
    for _ in range(iters):
        lab = labels[dst]
        best, best_w = segment_best_label(src, lab, w, n)
        movable = (best >= 0) & (best != labels)
        cand = np.flatnonzero(movable)
        if cand.size == 0:
            break
        # admit in random order while the target cluster has headroom
        cand = cand[rng.permutation(cand.size)]
        tgt = best[cand]
        room = weight_of[tgt] + vweights[cand] <= max_cluster
        cand, tgt = cand[room], tgt[room]
        _ = best_w
        np.subtract.at(weight_of, labels[cand], vweights[cand])
        np.add.at(weight_of, tgt, vweights[cand])
        labels[cand] = tgt
    return labels


def contract(
    adj: sparse.csr_matrix, vweights: np.ndarray, labels: np.ndarray
) -> Tuple[sparse.csr_matrix, np.ndarray, np.ndarray]:
    """Contract label groups into coarse vertices; returns
    (coarse adj, coarse vweights, fine→coarse mapping)."""
    uniq, mapping = np.unique(labels, return_inverse=True)
    nc = uniq.size
    coo = adj.tocoo()
    cs = mapping[coo.row]
    cd = mapping[coo.col]
    off_diag = cs != cd
    coarse = sparse.coo_matrix(
        (coo.data[off_diag], (cs[off_diag], cd[off_diag])), shape=(nc, nc)
    ).tocsr()
    coarse.sum_duplicates()
    cvw = np.bincount(mapping, weights=vweights.astype(np.float64), minlength=nc)
    return coarse, cvw, mapping.astype(np.int64)
