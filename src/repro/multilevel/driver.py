"""The multilevel SPMD body: coarsen → partition coarsest → uncoarsen.

``multilevel_rank_main`` is what :func:`repro.core.driver._rank_main`
dispatches to when ``params.multilevel`` is set.  Shape of a run:

1. **Hierarchy construction** — cluster + contract level by level until
   the vertex count drops below ``max(ml_coarsest_factor * num_parts,
   2 * nprocs)``, ``ml_levels`` is reached, or coarsening stagnates.
   The hierarchy depends only on ``(graph, dist, params)`` — never on
   partition state — so a resumed run re-executes it deterministically
   and the existing event-splice machinery works unchanged
   (``n_build`` = collectives consumed through hierarchy construction).
2. **Coarsest partition** — the flat pipeline's init + vertex stage on
   the coarsest level, with the refine half swapped for the
   edge-weighted sweep (coarse arcs carry aggregated fine-edge weight;
   unweighted plurality would optimize the wrong cut).
3. **Uncoarsening** — per level: project parts through the cluster map
   (one Allgatherv of owned coarse parts), then bounded weighted refine
   sweeps seeded from cluster-boundary vertices.
4. **Edge stage** — the flat edge balance/refine rounds run last, on the
   *fine* graph, where structural degrees (the edge-balance objective)
   are meaningful.  Skipped under ``single_objective`` as usual.

Checkpointing follows the same step-plan protocol as the flat driver;
a snapshot wraps the inner :class:`~repro.core.state.RankState` snapshot
with the current level index and the cut trajectory so a resume rebuilds
the state on the right level's ``DistGraph``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.edge_balance import edge_balance_phase, edge_refine_phase
from repro.core.initialization import initialize
from repro.core.state import RankState
from repro.core.vertex_balance import vertex_balance_phase
from repro.dist.distribution import Distribution
from repro.ft.checkpoint import CkptContext, checkpoint_after, write_checkpoint
from repro.graph.csr import Graph
from repro.multilevel.coarsen import (
    MLLevel,
    contract_level,
    hem_cluster_labels,
    lp_cluster_labels,
    make_level0,
)
from repro.multilevel.info import MultilevelInfo
from repro.multilevel.refine import ml_refine_phase, weighted_cut
from repro.simmpi.comm import SimComm


def ml_step_plan(params, n_levels: int) -> List[Tuple[str, int, str]]:
    """The multilevel driver's step sequence, same grammar as
    :func:`repro.ft.checkpoint.step_plan`: ``(stage, index, phase)``.

    The vertex stage runs on the coarsest level (its refine half is the
    weighted ``ml_refine``); each ``("uncoarsen", lvl, "ml_refine")``
    step projects onto level ``lvl`` and refines there; the edge stage
    closes the run on the fine graph.
    """
    plan: List[Tuple[str, int, str]] = [("init", -1, "init")]
    for o in range(params.outer_iters):
        plan.append(("vertex", o, "vertex_balance"))
        plan.append(("vertex", o, "ml_refine"))
    for lvl in range(n_levels - 2, -1, -1):
        plan.append(("uncoarsen", lvl, "ml_refine"))
    # fine-level polish: one balance + refine round at level 0 — the
    # V-cycle's per-level sweeps are bounded, so the finest level gets one
    # full-strength round before the dual-constraint stage
    plan.append(("fine", 0, "vertex_balance"))
    plan.append(("fine", 0, "ml_refine"))
    if not params.single_objective:
        # one dual-constraint round, not ``outer_iters``: the V-cycle has
        # already converged the cut, so the edge stage is a constraint-
        # satisfaction pass.  Round 1 reaches the edge-balance target;
        # further rounds only exercise the cut-size shuffle, whose moves
        # the multilevel partition — with its evenly spread per-part cut
        # sizes — cannot profitably undo (the ``maxc`` ratchet blocks the
        # recovery moves that make extra rounds cut-neutral for the flat
        # pipeline).
        plan.append(("edge", 0, "edge_balance"))
        plan.append(("edge", 0, "edge_refine"))
    return plan


def build_hierarchy(
    comm: SimComm,
    graph: Graph,
    dist: Distribution,
    num_parts: int,
    params,
    vertex_weights: Optional[np.ndarray],
) -> List[MLLevel]:
    """Coarsen until the target size, the level cap, or stagnation.

    Purely a function of the inputs — no partition state — which is what
    makes checkpoint resume re-execute it bit-identically.
    """
    levels = [make_level0(comm, graph, dist, vertex_weights)]
    target = max(params.ml_coarsest_factor * num_parts, 2 * comm.size)
    floor = max(num_parts, comm.size)
    while (
        len(levels) < params.ml_levels
        and levels[-1].graph.n > target
    ):
        cur = levels[-1]
        level_index = len(levels) - 1
        if params.ml_coarsen == "lp":
            labels = lp_cluster_labels(
                comm, cur, num_parts, params, level_index
            )
        else:
            labels = hem_cluster_labels(comm, cur, params, level_index)
        nxt = contract_level(
            comm, cur, labels, params, level_index, min_vertices=floor
        )
        if nxt is None:
            break
        levels.append(nxt)
    return levels


def _level_params(params, lvl: int, n_levels: int):
    """Per-level tunables: the adaptive imbalance schedule.

    At the coarsest level a few heavy clusters leave almost no headroom
    under the strict constraint, blocking nearly every cut-improving
    move; relaxing the target there and tightening it level by level
    (each uncoarsen step runs a balance pass at its level's target) is
    the standard multilevel remedy.  Level 0 gets ``params`` verbatim,
    so the finest refine and the edge stage enforce the user's bounds.
    """
    if lvl == 0 or params.ml_imbalance_relax == 0:
        return params
    eps = params.vert_imbalance * (
        1.0 + params.ml_imbalance_relax * lvl / max(n_levels - 1, 1)
    )
    return params.with_(vert_imbalance=eps)


def _fresh_state(
    level: MLLevel, num_parts: int, params, lvl: int, n_levels: int
) -> RankState:
    state = RankState(
        dg=level.dg, num_parts=num_parts,
        params=_level_params(params, lvl, n_levels),
    )
    state.set_vertex_weights(
        level.vweights[level.dg.owned_gids], float(level.vweights.sum())
    )
    return state


def _project(
    comm: SimComm,
    coarse_state: RankState,
    coarse_level: MLLevel,
    fine_level: MLLevel,
    num_parts: int,
    params,
    lvl: int,
    n_levels: int,
) -> Tuple[RankState, np.ndarray]:
    """Project the coarse partition onto the finer level.

    One Allgatherv of owned coarse parts reconstructs the global coarse
    assignment on every rank; each fine vertex (owned and ghost alike)
    inherits its cluster's part, so no ghost exchange is needed — the
    projection is consistent by construction.  Returns the finer level's
    state plus the refine seeds: owned lids with an arc leaving their
    cluster (the only vertices whose immediate move can change the cut).
    """
    cdg = coarse_level.dg
    fdg = fine_level.dg
    f2c = coarse_level.fine2coarse
    with comm.phase("project"):
        owned = coarse_state.parts[: cdg.n_local].astype(np.int64)
        all_parts, _counts = comm.Allgatherv(owned)
        gparts = np.empty(coarse_level.graph.n, dtype=np.int64)
        off = 0
        for r in range(comm.size):
            gids = coarse_level.dist.owned(r)
            gparts[gids] = all_parts[off:off + gids.size]
            off += gids.size
        # scatter + two gather passes over this rank's fine view
        comm.charge(float(cdg.n_local) + 2.0 * fdg.l2g.size + fdg.adj.size)
        cluster_of = f2c[fdg.l2g]
        state = _fresh_state(fine_level, num_parts, params, lvl, n_levels)
        state.parts[:] = gparts[cluster_of]
        # carry the cross-level accounting (the multiplier schedule keeps
        # advancing through the V-cycle; work/sweep logs are cumulative)
        state.iter_tot = coarse_state.iter_tot
        state.work_pending = coarse_state.work_pending
        state.edges_touched = coarse_state.edges_touched
        state.sweep_log = coarse_state.sweep_log
        srcs = np.repeat(
            np.arange(fdg.n_local, dtype=np.int64), fdg.local_degrees
        )
        boundary = cluster_of[srcs] != cluster_of[fdg.adj]
        seeds = np.unique(srcs[boundary])
    return state, seeds


class _MLCheckpointProxy:
    """Snapshot adapter handed to :func:`write_checkpoint`: wraps the
    inner rank snapshot with the level position and cut trajectory."""

    def __init__(self, level: int, inner: RankState, cuts: List[float]):
        self.level = level
        self.inner = inner
        self.cuts = cuts

    def snapshot(self) -> dict:
        return {
            "ml_format": 1,
            "level": int(self.level),
            "cuts": [float(c) for c in self.cuts],
            "inner": self.inner.snapshot(),
        }


def multilevel_rank_main(
    comm: SimComm,
    graph: Graph,
    dist: Distribution,
    num_parts: int,
    params,
    initial_parts: Optional[np.ndarray] = None,
    vertex_weights: Optional[np.ndarray] = None,
    ckpt: Optional[CkptContext] = None,
    resume: Optional[Dict[str, Any]] = None,
) -> Tuple[np.ndarray, np.ndarray, MultilevelInfo]:
    """The multilevel SPMD body: returns
    ``(owned gids, owned parts, MultilevelInfo)`` per rank."""
    if initial_parts is not None:
        raise ValueError(
            "multilevel does not accept initial_parts (projecting an "
            "existing assignment down the hierarchy is not supported)"
        )
    levels = build_hierarchy(
        comm, graph, dist, num_parts, params, vertex_weights
    )
    n_build = comm.event_count  # deterministic prefix, incl. hierarchy
    n_levels = len(levels)
    plan = ml_step_plan(params, n_levels)
    cuts: List[float] = []
    level_idx = n_levels - 1
    state = _fresh_state(levels[level_idx], num_parts, params,
                         level_idx, n_levels)
    start = 0
    if resume is not None:
        snap = resume["snapshots"][comm.rank]
        level_idx = int(snap["level"])
        state = _fresh_state(levels[level_idx], num_parts, params,
                             level_idx, n_levels)
        state.restore(snap["inner"])
        cuts = [float(c) for c in snap["cuts"]]
        start = int(resume["next_step"])
    for idx in range(start, len(plan)):
        stage, index, phase_name = plan[idx]
        if phase_name == "init":
            initialize(comm, state, None)
            state.iter_tot = 0
        else:
            if plan[idx - 1][0] != stage:
                state.iter_tot = 0
            if stage == "uncoarsen":
                lvl = index
                if lvl == n_levels - 2:
                    # coarsest partition settled: open the trajectory
                    with comm.phase("project"):
                        cuts.append(weighted_cut(
                            comm, state, levels[lvl + 1].ew_local
                        ))
                state, seeds = _project(
                    comm, state, levels[lvl + 1], levels[lvl],
                    num_parts, params, lvl, n_levels,
                )
                level_idx = lvl
                # tighten toward this level's balance target before
                # refining — the projected partition carries the coarser
                # level's (looser) imbalance
                vertex_balance_phase(comm, state, params.balance_iters)
                ml_refine_phase(
                    comm, state, levels[lvl].ew_local,
                    params.ml_refine_iters, seeds,
                )
                with comm.phase("project"):
                    cuts.append(weighted_cut(
                        comm, state, levels[lvl].ew_local
                    ))
            elif phase_name == "ml_refine":
                # vertex-stage refine on the coarsest level (weighted)
                ml_refine_phase(
                    comm, state, levels[level_idx].ew_local,
                    params.refine_iters, None,
                )
            elif phase_name == "vertex_balance":
                vertex_balance_phase(comm, state, params.balance_iters)
            elif phase_name == "edge_balance":
                edge_balance_phase(comm, state, params.balance_iters)
            else:
                edge_refine_phase(comm, state, params.refine_iters)
        if ckpt is not None and checkpoint_after(plan, idx, ckpt.policy.every):
            write_checkpoint(
                comm,
                _MLCheckpointProxy(level_idx, state, cuts),
                ckpt, epoch=idx, step=plan[idx], n_build=n_build,
            )
    # the trajectory closes with the final fine cut (after the edge stage
    # when it runs; for a single-level run this is the only entry)
    with comm.phase("project"):
        cuts.append(weighted_cut(comm, state, levels[level_idx].ew_local))
    info = MultilevelInfo(
        levels=n_levels,
        coarsen_mode=params.ml_coarsen,
        level_sizes=[
            (lv.graph.n, lv.graph.num_edges) for lv in levels
        ],
        cut_trajectory=cuts,
        coarsest_n=levels[-1].graph.n,
    )
    dg0 = levels[0].dg
    return dg0.owned_gids, state.parts[: dg0.n_local].copy(), info
