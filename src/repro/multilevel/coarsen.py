"""Distributed coarsening: clustering + contraction, one level at a time.

Clustering (the "matcher") runs in one of two modes:

* ``"lp"`` — size-constrained label-propagation clustering, distributed:
  every owned vertex adopts the cluster holding the heaviest share of its
  incident edge weight, subject to a cluster-mass cap.  Cluster ids are
  *global vertex ids* of the current level, so cross-rank membership needs
  no negotiation; ghost labels are resolved through the existing
  ghost-exchange machinery (:class:`repro.dist.ops.ExchangePlan`) and
  cluster masses through a sparse delta Allgatherv.  This is the
  coarsening of KaHIP/dKaMinPar adapted to the BSP skeleton.
* ``"hem"`` — heavy-edge matching on each rank's owned-induced subgraph,
  reusing the shared-memory matcher
  (:func:`repro.multilevel.kernels.heavy_edge_matching`) verbatim.
  Clusters never cross ranks (the ParMETIS-style local-matching
  compromise), so no label exchange is needed.

Contraction then Allgathers the owned labels — every rank deterministically
assembles the same coarse weighted graph (the same replicated-input
convention the flat pipeline uses for the level-0 graph, with each rank
charged for its own share of the aggregation work) — and rebuilds ghost
routing tables for the coarse level via :func:`repro.dist.build.build_dist_graph`.

Both cluster-mass conservation and edge-weight conservation are collective
invariants checked at every contraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import sparse

from repro.dist.build import build_dist_graph
from repro.dist.distgraph import DistGraph
from repro.dist.distribution import Distribution, RandomDistribution
from repro.dist.ops import ExchangePlan
from repro.graph.csr import Graph
from repro.graph.gather import expand_ranges
from repro.multilevel.kernels import heavy_edge_matching, segment_best_label
from repro.simmpi.comm import SimComm

#: Label-propagation clustering rounds per level (the KaHIP default, same
#: as the shared-memory kernel's ``iters``).
LP_CLUSTER_ITERS = 3

#: A level whose clustering shrinks the vertex count by less than this
#: fraction has stagnated; coarsening stops there (hub-dominated graphs).
MIN_SHRINK = 0.02


@dataclass
class MLLevel:
    """One hierarchy level, as seen by one rank.

    The global ``graph``/``eweights``/``vweights`` arrays are replicated
    (the simulator's shared-read-only-input convention); ``dg`` and
    ``ew_local`` are this rank's distributed view.  ``fine2coarse`` maps
    the *finer* level's global ids onto this level's (None at level 0).
    """

    graph: Graph
    dist: Distribution
    dg: DistGraph
    eweights: np.ndarray      # global, aligned with graph.adj
    ew_local: np.ndarray      # this rank's arcs, aligned with dg.adj
    vweights: np.ndarray      # global per-vertex mass
    fine2coarse: Optional[np.ndarray]


def local_eweights(graph: Graph, eweights: np.ndarray, dg: DistGraph) -> np.ndarray:
    """Slice the global per-arc weights down to this rank's arcs.

    The local CSR is the concatenation of the owned gids' global adjacency
    slices (in owned-gid order), so the same ``expand_ranges`` index that
    built ``dg.adj`` selects the matching weights.
    """
    owned = dg.owned_gids
    starts = graph.offsets[owned]
    counts = graph.offsets[owned + 1] - starts
    return eweights[expand_ranges(starts, counts)]


def make_level0(
    comm: SimComm,
    graph: Graph,
    dist: Distribution,
    vertex_weights: Optional[np.ndarray],
) -> MLLevel:
    """The finest level: unit edge weights, given (or unit) vertex weights."""
    dg = build_dist_graph(comm, graph, dist)
    eweights = np.ones(graph.adj.size, dtype=np.float64)
    vweights = (
        np.asarray(vertex_weights, dtype=np.float64)
        if vertex_weights is not None
        else np.ones(graph.n, dtype=np.float64)
    )
    return MLLevel(
        graph=graph, dist=dist, dg=dg, eweights=eweights,
        ew_local=local_eweights(graph, eweights, dg),
        vweights=vweights, fine2coarse=None,
    )


# ---------------------------------------------------------------------------
# clustering
# ---------------------------------------------------------------------------

def _cluster_rng(params, rank: int, level: int) -> np.random.Generator:
    return np.random.default_rng(params.seed + 7919 * rank + 131 * (level + 1))


def lp_cluster_labels(
    comm: SimComm,
    level: MLLevel,
    num_parts: int,
    params,
    level_index: int,
) -> np.ndarray:
    """Distributed size-constrained LP clustering; returns owned labels.

    Labels are global vertex ids of the current level (initially every
    vertex is its own singleton cluster).  Each round every owned vertex
    computes its heaviest-incident-weight neighboring cluster, moves are
    admitted in per-rank random order while the target cluster's mass stays
    under the cap, mass deltas are reconciled by a sparse Allgatherv, and
    ghost labels are re-pulled through the exchange plan.  The cap —
    ``max(W(V)/(2p), max vertex mass)``, the KaHIP rule shared with the
    baseline — guarantees at least ``2p`` clusters survive, so the coarse
    graph always admits a ``p``-way partition.
    """
    dg = level.dg
    n = dg.n_local
    vw_all = level.vweights
    total_vw = float(vw_all.sum())
    max_cluster = max(total_vw / (2.0 * num_parts), float(vw_all.max()))
    rng = _cluster_rng(params, dg.rank, level_index)
    labels = dg.l2g.copy()
    vw = vw_all[dg.owned_gids]
    # cluster mass, dense over this level's global ids (cluster id == gid)
    mass = vw_all.astype(np.float64).copy()
    srcs = np.repeat(np.arange(n, dtype=np.int64), dg.local_degrees)
    with comm.phase("coarsen"):
        plan = ExchangePlan(comm, dg)
        for _ in range(LP_CLUSTER_ITERS):
            best, _bw = segment_best_label(
                srcs, labels[dg.adj], level.ew_local, n
            )
            # scoring: lexsort + reduceat over local arcs, plus the
            # per-vertex selection passes
            comm.charge(3.0 * level.ew_local.size + float(n))
            cand = np.flatnonzero((best >= 0) & (best != labels[:n]))
            if cand.size:
                cand = cand[rng.permutation(cand.size)]
                tgt = best[cand]
                room = mass[tgt] + vw[cand] <= max_cluster
                cand, tgt = cand[room], tgt[room]
            else:
                tgt = np.empty(0, dtype=np.int64)
            old = labels[cand]
            labels[cand] = tgt
            # reconcile cluster masses: aggregate this rank's deltas
            # sparsely, Allgatherv, apply everywhere (deterministic order:
            # rank-major concatenation)
            delta_ids = np.concatenate([tgt, old])
            delta_w = np.concatenate([vw[cand], -vw[cand]])
            uid, uinv = np.unique(delta_ids, return_inverse=True)
            usum = (
                np.bincount(uinv, weights=delta_w, minlength=uid.size)
                if uid.size else np.empty(0, dtype=np.float64)
            )
            comm.charge(2.0 * delta_ids.size)
            all_ids, _ = comm.Allgatherv(uid.astype(np.int64))
            all_w, _ = comm.Allgatherv(usum)
            np.add.at(mass, all_ids, all_w)
            plan.pull(comm, labels)
            moved_total = comm.allreduce(int(cand.size), op="sum")
            if moved_total == 0:
                break
    return labels[:n].copy()


def hem_cluster_labels(
    comm: SimComm,
    level: MLLevel,
    params,
    level_index: int,
) -> np.ndarray:
    """Heavy-edge matching on the owned-induced subgraph; returns owned
    labels (global ids; matched pairs share the lower partner's gid).

    Cross-rank edges are never matched — the standard local-matching
    compromise of distributed multilevel partitioners — so the result
    needs no ghost resolution.  Runs the exact shared-memory matcher the
    baseline uses, once per rank on its own subgraph.
    """
    dg = level.dg
    n = dg.n_local
    with comm.phase("coarsen"):
        srcs = np.repeat(np.arange(n, dtype=np.int64), dg.local_degrees)
        owned_arc = dg.adj < n
        sub = sparse.csr_matrix(
            (level.ew_local[owned_arc],
             (srcs[owned_arc], dg.adj[owned_arc])),
            shape=(n, n),
        )
        rng = _cluster_rng(params, dg.rank, level_index)
        match = heavy_edge_matching(sub, rng)
        # 4 proposal rounds + claim/two-hop passes over the local subgraph
        comm.charge(4 * 2.0 * sub.nnz + float(n))
        labels = dg.owned_gids[match] if n else np.empty(0, dtype=np.int64)
        # rendezvous so every rank advances in lockstep (and the charge
        # above lands on a coarsen-tagged collective)
        comm.allreduce(int(n), op="max")
    return labels


# ---------------------------------------------------------------------------
# contraction
# ---------------------------------------------------------------------------

def contract_level(
    comm: SimComm,
    level: MLLevel,
    owned_labels: np.ndarray,
    params,
    level_index: int,
    min_vertices: int,
) -> Optional[MLLevel]:
    """Contract the clustering into the next coarser level.

    Allgathers owned labels, relabels clusters densely ``0..nc-1``, builds
    the weighted coarse graph identically on every rank (duplicate arcs
    dedup-summed, self-arcs dropped), and rebuilds the distributed view
    through :func:`build_dist_graph`.  Returns None — collectively, all
    ranks agree — when the clustering stagnated or the coarse graph would
    drop below ``min_vertices``; the caller then stops coarsening and uses
    the current level as the coarsest.
    """
    g = level.graph
    dg = level.dg
    with comm.phase("coarsen"):
        # each rank contributes the labels of its owned vertices; the
        # replicated aggregation below is charged per-rank at its share
        comm.charge(2.0 * dg.adj.size + float(dg.n_local))
        all_labels, counts = comm.Allgatherv(owned_labels.astype(np.int64))
        full = np.empty(g.n, dtype=np.int64)
        off = 0
        for r in range(comm.size):
            gids = level.dist.owned(r)
            full[gids] = all_labels[off:off + gids.size]
            off += gids.size
        uniq, fine2coarse = np.unique(full, return_inverse=True)
        fine2coarse = fine2coarse.astype(np.int64)
        nc = int(uniq.size)
        shrink = 1.0 - nc / max(g.n, 1)
        stop = nc < min_vertices or shrink < MIN_SHRINK
        # collective agreement on the stop decision (inputs are identical,
        # so this is a cheap cross-rank sanity rendezvous, not a vote)
        agreed = comm.allreduce(int(nc), op="max")
        if agreed != nc:  # pragma: no cover - determinism violation
            raise AssertionError(
                f"ranks disagree on coarse size: {agreed} != {nc}"
            )
        if stop:
            return None
        # weighted coarse arcs: aggregate fine arcs by (coarse src, coarse
        # dst) key; keys sort ascending == CSR order
        src = np.repeat(np.arange(g.n, dtype=np.int64), g.degrees)
        cs = fine2coarse[src]
        cd = fine2coarse[g.adj]
        off_diag = cs != cd
        key = cs[off_diag] * np.int64(nc) + cd[off_diag]
        uk, kinv = np.unique(key, return_inverse=True)
        cw = np.bincount(kinv, weights=level.eweights[off_diag],
                         minlength=uk.size)
        csrc = uk // nc
        cdst = uk % nc
        coffsets = np.zeros(nc + 1, dtype=np.int64)
        np.cumsum(np.bincount(csrc, minlength=nc), out=coffsets[1:])
        coarse = Graph(coffsets, cdst, directed=False, validate=False)
        cvw = np.bincount(fine2coarse, weights=level.vweights, minlength=nc)
        # conservation invariants: vertex mass exactly, edge weight up to
        # the intra-cluster weight folded away by the contraction
        if not np.isclose(cvw.sum(), level.vweights.sum()):
            raise AssertionError("contraction lost vertex weight")
        intra = float(level.eweights[~off_diag].sum())
        if not np.isclose(cw.sum() + intra, level.eweights.sum()):
            raise AssertionError("contraction lost edge weight")
    cdist = RandomDistribution(
        nc, comm.size, seed=params.seed + 211 * (level_index + 1)
    )
    cdg = build_dist_graph(comm, coarse, cdist)
    return MLLevel(
        graph=coarse, dist=cdist, dg=cdg, eweights=cw,
        ew_local=local_eweights(coarse, cw, cdg),
        vweights=cvw, fine2coarse=fine2coarse,
    )
