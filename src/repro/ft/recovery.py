"""Supervised re-execution: relaunch a failed run from its last epoch.

:func:`run_with_retries` wraps :func:`repro.core.driver.xtrapulp` the way a
batch scheduler wraps an MPI job: run, and on a rank failure relaunch —
resuming from the newest *committed* checkpoint epoch if one exists, from
scratch otherwise — with capped exponential backoff between attempts.
Every absorbed failure is recorded as a
:class:`~repro.simmpi.metrics.RecoveryEvent` on the final result's stats,
so the communication record of a recovered run also documents its history.

Determinism contract: because a resumed run is bit-identical to the
uninterrupted one (see :mod:`repro.ft.checkpoint`), a supervised execution
that survives any number of injected faults returns the same partition and
event record as a fault-free run — the property ``tests/ft`` asserts on
every backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.ft.checkpoint import find_latest_committed, load_manifest
from repro.simmpi.errors import (
    HungRankError,
    PayloadCorruptionError,
    RankFailure,
    RemoteRankError,
)
from repro.simmpi.metrics import RecoveryEvent


@dataclass(frozen=True)
class RetryPolicy:
    """Relaunch budget and backoff shape.

    Backoff for attempt ``a`` (0-based count of prior failures) is
    ``min(base * 2**a, cap)`` seconds; with a ``jitter_seed`` it becomes
    full jitter over the top half of that envelope,
    ``min(base * 2**a, cap) * U[0.5, 1)`` — the AWS-style decorrelation
    that keeps simultaneously-failed supervisors from relaunching in
    lockstep, drawn from ``default_rng((jitter_seed, a))`` so the whole
    schedule is reproducible from the seed.  ``sleep`` is injectable so
    tests can assert the schedule without waiting it out.
    """

    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter_seed: Optional[int] = None
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def backoff(self, attempt: int) -> float:
        envelope = min(self.backoff_base * (2.0 ** attempt), self.backoff_cap)
        if self.jitter_seed is None:
            return envelope
        import numpy as np

        rng = np.random.default_rng((self.jitter_seed, attempt))
        return envelope * float(rng.uniform(0.5, 1.0))


def classify_failure(exc: BaseException) -> str:
    """Name the failure class of a rank failure's cause chain.

    Walks ``__cause__``/``__context__`` looking for the most specific
    typed failure: ``"hang"`` (watchdog kill / deadline-exceeded wait),
    ``"corruption"`` (checksum mismatch), ``"crash"`` (a rank process
    died or a peer observed the failure remotely), else ``"exception"``
    (an ordinary error raised by rank code).
    """
    seen = set()
    queue = [exc]
    fallback = "exception"
    while queue:
        e = queue.pop(0)
        if e is None or id(e) in seen:
            continue
        seen.add(id(e))
        if isinstance(e, HungRankError):
            return "hang"
        if isinstance(e, PayloadCorruptionError):
            return "corruption"
        if isinstance(e, RemoteRankError):
            fallback = "crash"
        queue.extend((e.__cause__, e.__context__))
    return fallback


def _detection_seconds(exc: BaseException) -> float:
    """Detection latency carried by the cause chain (0.0 if none)."""
    seen = set()
    queue = [exc]
    while queue:
        e = queue.pop(0)
        if e is None or id(e) in seen:
            continue
        seen.add(id(e))
        detected = getattr(e, "detection_seconds", 0.0)
        if detected:
            return float(detected)
        queue.extend((e.__cause__, e.__context__))
    return 0.0


def run_with_retries(
    graph,
    num_parts: int,
    *,
    checkpoint,
    fault_plan: Any = None,
    retry: Optional[RetryPolicy] = None,
    resume: Optional[str] = None,
    **xtrapulp_kwargs,
):
    """Partition with supervision: relaunch on rank failure.

    Parameters mirror :func:`~repro.core.driver.xtrapulp`; ``checkpoint``
    (a :class:`~repro.ft.checkpoint.CkptPolicy` or directory path) is
    required — supervision without checkpoints would re-run from scratch
    every time, which the caller can do with a plain loop.  If a
    ``fault_plan`` is given, its :attr:`current_attempt` is advanced before
    each launch so a spec armed for attempt 0 does not re-fire on the
    retry that recovers from it.

    Returns the successful :class:`~repro.core.driver.PartitionResult`
    with any absorbed failures appended to ``result.stats.recoveries``;
    re-raises the last :class:`RankFailure` once ``retry.max_retries``
    relaunches are exhausted.
    """
    from repro.core.driver import xtrapulp  # deferred: driver imports ft

    policy = retry or RetryPolicy()
    recoveries = []
    for attempt in range(policy.max_retries + 1):
        if fault_plan is not None:
            fault_plan.current_attempt = attempt
        try:
            result = xtrapulp(
                graph, num_parts, checkpoint=checkpoint,
                resume=resume, fault_plan=fault_plan, **xtrapulp_kwargs,
            )
        except RankFailure as exc:
            if attempt >= policy.max_retries:
                raise
            epoch: Optional[int] = None
            resume = None
            if exc.run_dir is not None:
                latest = find_latest_committed(exc.run_dir)
                if latest is not None:
                    epoch = int(load_manifest(latest)["epoch"])
                    resume = latest
            backoff = policy.backoff(attempt)
            recoveries.append(RecoveryEvent(
                attempt=attempt + 1,
                epoch=epoch,
                error=repr(exc.__cause__ if exc.__cause__ is not None else exc),
                backoff_seconds=backoff,
                failure_class=classify_failure(exc),
                detection_seconds=_detection_seconds(exc),
            ))
            policy.sleep(backoff)
            continue
        for rec in recoveries:
            result.stats.record_recovery(rec)
        return result
    raise AssertionError("unreachable")  # pragma: no cover
