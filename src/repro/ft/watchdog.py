"""Active liveness detection: heartbeats, collective deadlines, escalation.

The ft subsystem (:mod:`repro.ft.recovery`) can *recover* from any failure
it is told about, but a rank that silently hangs tells nobody: the procs
supervisor would block unbounded on its children, and the in-process
backends would sleep a stalled rendezvous forever.  This module closes
that gap with the standard HPC watchdog pattern:

* **Heartbeats** (:class:`HeartbeatBoard`) — on the ``procs`` backend each
  rank publishes ``(superstep, phase, monotonic clock)`` into a small
  fork-shared health segment right before every rendezvous.  Writes are
  wait-free single-writer stores; the supervisor polls the board.
* **Watchdog** (:class:`Watchdog`) — a supervisor-side daemon thread that
  enforces the configured per-collective deadline with escalation: a soft
  warning at ``warn_fraction`` of the deadline, a bounded number of probe
  re-checks with exponentially growing spacing, then a declaration of
  death — the laggard ranks (lowest heartbeat superstep) get ``SIGTERM``,
  a grace period, then ``SIGKILL``.  The parent surfaces the kill as
  :class:`~repro.simmpi.errors.HungRankError`, which
  :func:`repro.ft.recovery.run_with_retries` treats exactly like a ``die``
  fault: relaunch from the last committed checkpoint epoch.
* **In-process deadlines** — the serial/threads backends have no separate
  processes to kill; instead every rendezvous wait is sliced
  (:meth:`WatchdogConfig.slice_seconds`) and a rank whose wait exceeds the
  deadline raises :class:`~repro.simmpi.errors.HungRankError` itself,
  releasing its peers.  A ``delay`` fault longer than the deadline
  therefore *raises* after ``deadline`` seconds instead of sleeping the
  whole run (see :meth:`repro.ft.faults.FaultPlan.check`).

Deadline semantics: the timeout bounds the *stall*, i.e. the time since
any rank last made progress, not a collective's total duration — a slow
but advancing job never trips it.  On the serial backend (one rank runs
at a time) a parked rank's wait spans the full scheduling round, so size
the timeout to a round, not a single deposit.  With no watchdog
configured (the default) every wait stays unbounded and behavior is
byte-for-byte unchanged.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from dataclasses import dataclass
from multiprocessing import sharedctypes
from typing import Any, List, Optional, Sequence, Union

#: Environment variable consulted when no watchdog is requested explicitly:
#: a float timeout in seconds; unset, empty, or "0" disables the watchdog.
WATCHDOG_ENV_VAR = "REPRO_WATCHDOG_TIMEOUT"

#: Fixed width of a phase name in the heartbeat board (bytes, NUL-padded).
_PHASE_CAP = 32


@dataclass(frozen=True)
class WatchdogConfig:
    """Liveness policy: the per-collective deadline and escalation shape.

    Attributes
    ----------
    timeout:
        Seconds of global stall (no rank advancing its heartbeat) after
        which the laggard ranks are declared hung.
    warn_fraction:
        Fraction of ``timeout`` at which a soft warning is emitted.
    probes:
        Number of probe re-checks between the warning and the deadline,
        spaced with exponential backoff; each probe that still sees no
        progress counts as a deadline extension in the health counters.
    grace:
        Seconds between ``SIGTERM`` and ``SIGKILL`` when killing a hung
        rank process.
    poll_interval:
        Supervisor-side heartbeat polling period.
    startup_grace:
        Extra allowance before the *first* heartbeat of a run (fork +
        import + graph build happen before any rank beats); the effective
        deadline until then is ``max(timeout, startup_grace)``.
    """

    timeout: float
    warn_fraction: float = 0.5
    probes: int = 3
    grace: float = 1.0
    poll_interval: float = 0.01
    startup_grace: float = 5.0

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"watchdog timeout must be > 0, got {self.timeout}")
        if not (0.0 < self.warn_fraction < 1.0):
            raise ValueError("warn_fraction must be in (0, 1)")

    def slice_seconds(self) -> float:
        """Wait-slice for deadline-bounded in-process rendezvous: short
        enough to notice a stall promptly, long enough that a generous
        timeout costs almost no extra wakeups."""
        return max(min(self.timeout / 4.0, 0.25), 0.002)

    def rank_barrier_timeout(self) -> float:
        """Deadline for *child-side* barrier waits on the procs backend.

        Deliberately much longer than the supervisor's deadline: the
        watchdog kills hung peers first (which breaks the barrier and
        wakes the waiters); this bound is only the last-ditch escape if
        the supervisor itself is gone.
        """
        return (self.timeout + self.grace) * 4.0 + 10.0


def as_watchdog_config(
    value: Union[None, int, float, WatchdogConfig],
) -> Optional[WatchdogConfig]:
    """Coerce a user-facing watchdog argument: None, seconds, or a config."""
    if value is None or isinstance(value, WatchdogConfig):
        return value
    timeout = float(value)
    if timeout == 0:
        return None
    return WatchdogConfig(timeout=timeout)


def default_watchdog() -> Optional[WatchdogConfig]:
    """The watchdog used when none is requested explicitly (env or off)."""
    raw = os.environ.get(WATCHDOG_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        timeout = float(raw)
    except ValueError:
        raise ValueError(
            f"${WATCHDOG_ENV_VAR}={raw!r} is not a number of seconds"
        ) from None
    return as_watchdog_config(timeout)


class HeartbeatBoard:
    """Fork-shared per-rank health segment: (superstep, phase, clock).

    Built on ``multiprocessing.sharedctypes.RawArray`` like the session's
    release cursors: allocated in the parent before forking, so every rank
    process and the supervisor share the same pages.  One writer per rank
    slot and word-sized stores make the board wait-free; the supervisor
    only needs monotonicity of the step counter, so torn phase strings
    during a beat are harmless.
    """

    def __init__(self, nprocs: int) -> None:
        self.nprocs = nprocs
        self._steps = sharedctypes.RawArray("q", [-1] * nprocs)
        self._times = sharedctypes.RawArray("d", [0.0] * nprocs)
        self._phases = sharedctypes.RawArray("c", nprocs * _PHASE_CAP)

    def beat(self, rank: int, step: int, phase: str) -> None:
        """Publish rank progress (called rank-side before each rendezvous)."""
        raw = phase.encode("utf-8", "replace")[:_PHASE_CAP - 1]
        base = rank * _PHASE_CAP
        self._phases[base:base + len(raw)] = raw
        self._phases[base + len(raw)] = b"\0"
        self._times[rank] = time.monotonic()
        # the step store is the publication point: supervisor-side progress
        # detection reads only this word
        self._steps[rank] = step

    def steps(self) -> List[int]:
        return list(self._steps)

    def phase_of(self, rank: int) -> str:
        base = rank * _PHASE_CAP
        raw = bytes(self._phases[base:base + _PHASE_CAP])
        return raw.split(b"\0", 1)[0].decode("utf-8", "replace")

    def age_of(self, rank: int) -> float:
        """Seconds since ``rank`` last beat (0 if it never beat)."""
        t = self._times[rank]
        return time.monotonic() - t if t else 0.0


class Watchdog(threading.Thread):
    """Supervisor-side liveness enforcement for the procs backend.

    Polls the heartbeat board; whenever *global* progress stalls past the
    deadline, the laggard rank processes (lowest heartbeat superstep) are
    terminated with escalation.  Runs as a daemon thread next to the
    supervisor's stats-draining loop and keeps watching after a kill — if
    further ranks stay wedged (e.g. two independent hangs), subsequent
    stalls are escalated the same way until every child is gone.

    Health counters (read by the backend after the run):

    ``heartbeats_seen``
        Total heartbeat step increments observed across all ranks.
    ``deadline_extensions``
        Probe re-checks that still saw no progress (warn → deadline span).
    ``killed``
        Ranks declared hung and killed, in kill order.
    ``detection_seconds``
        Stall duration at the first declaration of death (0.0 if none).
    """

    def __init__(self, config: WatchdogConfig, board: HeartbeatBoard,
                 procs: Sequence[Any], label: str = "procs") -> None:
        super().__init__(name="simmpi-watchdog", daemon=True)
        self.config = config
        self.board = board
        self.procs = procs
        self.label = label
        self.heartbeats_seen = 0
        self.deadline_extensions = 0
        self.killed: List[int] = []
        self.killed_phase = ""
        self.detection_seconds = 0.0
        self.warnings: List[str] = []
        self._stop_evt = threading.Event()

    def stop(self) -> None:
        self._stop_evt.set()
        self.join(timeout=self.config.grace + 5.0)

    # -- escalation timeline -----------------------------------------------

    def _probe_offsets(self, deadline: float) -> List[float]:
        """Stall offsets of the probe re-checks: exponential backoff from
        the warning point toward the deadline."""
        cfg = self.config
        warn_at = deadline * cfg.warn_fraction
        span = deadline - warn_at
        total = float(2 ** cfg.probes - 1) or 1.0
        return [warn_at + span * (2 ** (i + 1) - 1) / total
                for i in range(cfg.probes)]

    def run(self) -> None:  # pragma: no cover - exercised via procs runs
        cfg = self.config
        last_steps = self.board.steps()
        last_progress = time.monotonic()
        warned = False
        probes_done = 0
        while not self._stop_evt.wait(cfg.poll_interval):
            steps = self.board.steps()
            alive = [p.is_alive() for p in self.procs]
            advanced = sum(
                max(0, s - t) for s, t in zip(steps, last_steps)
            )
            self.heartbeats_seen += advanced
            if advanced or not any(alive):
                last_steps = steps
                last_progress = time.monotonic()
                warned = False
                probes_done = 0
                continue
            # startup allowance: before any rank ever beat, forking and
            # prologue build time must not count as a stall
            deadline = cfg.timeout
            if max(steps) < 0:
                deadline = max(cfg.timeout, cfg.startup_grace)
            stalled = time.monotonic() - last_progress
            if not warned and stalled >= deadline * cfg.warn_fraction:
                warned = True
                self._warn(
                    f"no rank progress for {stalled:.2f}s "
                    f"(deadline {deadline:.2f}s); supersteps={steps}"
                )
            offsets = self._probe_offsets(deadline)
            while probes_done < cfg.probes and stalled >= offsets[probes_done]:
                probes_done += 1
                self.deadline_extensions += 1
            if stalled < deadline:
                continue
            self._declare_dead(steps, alive, stalled)
            last_steps = self.board.steps()
            last_progress = time.monotonic()
            warned = False
            probes_done = 0

    def _declare_dead(self, steps: List[int], alive: List[bool],
                      stalled: float) -> None:
        """Kill the laggard ranks: SIGTERM, grace, SIGKILL."""
        cfg = self.config
        live = [r for r in range(len(self.procs)) if alive[r]]
        if not live:
            return
        floor = min(steps[r] for r in live)
        victims = [r for r in live if steps[r] == floor]
        if not self.killed:
            self.detection_seconds = stalled
            self.killed_phase = self.board.phase_of(victims[0])
        phase = self.board.phase_of(victims[0])
        # record the declaration *before* signalling: SIGTERM breaks the
        # rendezvous barrier, peers exit, and the supervisor may collect
        # results before the grace wait below finishes
        self.killed.extend(victims)
        self._warn(
            f"declaring {victims} hung at superstep {floor} "
            f"(phase {phase!r}) after {stalled:.2f}s without progress; "
            f"sending SIGTERM"
        )
        for r in victims:
            try:
                self.procs[r].terminate()
            except Exception:
                pass
        deadline = time.monotonic() + cfg.grace
        while time.monotonic() < deadline:
            if not any(self.procs[r].is_alive() for r in victims):
                break
            time.sleep(min(cfg.poll_interval, 0.05))
        for r in victims:
            if self.procs[r].is_alive():  # pragma: no cover - SIGTERM masked
                self._warn(f"rank {r} survived SIGTERM; sending SIGKILL")
                try:
                    self.procs[r].kill()
                except Exception:
                    pass

    def _warn(self, message: str) -> None:
        line = f"[watchdog:{self.label}] {message}"
        self.warnings.append(line)
        print(line, file=sys.stderr, flush=True)
