"""Fault tolerance for the simulated-MPI partitioner.

Three pieces, mirroring what a production XtraPuLP deployment layers on top
of MPI:

- :mod:`repro.ft.checkpoint` — phase-boundary checkpointing of per-rank
  partitioner state with an atomic epoch-commit protocol;
- :mod:`repro.ft.faults` — deterministic, seeded fault injection planted at
  exact supersteps on every execution backend (raise / hard process death /
  injected latency);
- :mod:`repro.ft.recovery` — a supervisor that relaunches a failed run from
  its last committed epoch with capped exponential backoff.

Headline guarantee (enforced by ``tests/ft/``): a run killed at any
injected fault point and resumed from its checkpoint produces a
**bit-identical partition and communication record** to the uninterrupted
run, on all three backends.
"""

from repro.ft.checkpoint import (
    CheckpointError,
    CkptPolicy,
    find_latest_committed,
    load_manifest,
)
from repro.ft.faults import FaultPlan, FaultSpec, parse_fault_spec
from repro.ft.recovery import RetryPolicy, run_with_retries

__all__ = [
    "CheckpointError",
    "CkptPolicy",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "find_latest_committed",
    "load_manifest",
    "parse_fault_spec",
    "run_with_retries",
]
