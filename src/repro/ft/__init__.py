"""Fault tolerance for the simulated-MPI partitioner.

Three pieces, mirroring what a production XtraPuLP deployment layers on top
of MPI:

- :mod:`repro.ft.checkpoint` — phase-boundary checkpointing of per-rank
  partitioner state with an atomic epoch-commit protocol;
- :mod:`repro.ft.faults` — deterministic, seeded fault injection planted at
  exact supersteps on every execution backend (raise / hard process death /
  injected latency / payload corruption);
- :mod:`repro.ft.recovery` — a supervisor that relaunches a failed run from
  its last committed epoch with capped (optionally jittered) exponential
  backoff, classifying each absorbed failure (hang / corruption / crash /
  exception);
- :mod:`repro.ft.watchdog` — active liveness detection: rank heartbeats,
  per-collective deadlines with escalation, and supervisor-side kills of
  hung rank processes;
- :mod:`repro.ft.integrity` — end-to-end crc32 payload checksums, verified
  at every receive when ``--integrity crc`` is selected, plus the
  deterministic corruption primitives the ``corrupt`` fault uses.

Headline guarantee (enforced by ``tests/ft/``): a run killed at any
injected fault point and resumed from its checkpoint produces a
**bit-identical partition and communication record** to the uninterrupted
run, on all three backends.
"""

from repro.ft.checkpoint import (
    CheckpointError,
    CkptPolicy,
    find_latest_committed,
    load_manifest,
)
from repro.ft.faults import FaultPlan, FaultSpec, parse_fault_spec
from repro.ft.integrity import (
    INTEGRITY_ENV_VAR,
    INTEGRITY_MODES,
    checksum_obj,
    default_integrity,
    validate_integrity,
)
from repro.ft.recovery import RetryPolicy, classify_failure, run_with_retries
from repro.ft.watchdog import (
    WATCHDOG_ENV_VAR,
    WatchdogConfig,
    as_watchdog_config,
    default_watchdog,
)

__all__ = [
    "CheckpointError",
    "CkptPolicy",
    "FaultPlan",
    "FaultSpec",
    "INTEGRITY_ENV_VAR",
    "INTEGRITY_MODES",
    "RetryPolicy",
    "WATCHDOG_ENV_VAR",
    "WatchdogConfig",
    "as_watchdog_config",
    "checksum_obj",
    "classify_failure",
    "default_integrity",
    "default_watchdog",
    "find_latest_committed",
    "load_manifest",
    "parse_fault_spec",
    "run_with_retries",
    "validate_integrity",
]
