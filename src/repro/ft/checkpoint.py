"""Phase-boundary checkpointing with an atomic epoch-commit protocol.

The partitioner's outer loop is a fixed **step plan** derived from
:class:`~repro.core.params.PulpParams`::

    step 0: init
    step 1: vertex_balance (outer 0)    step 2: vertex_refine (outer 0)
    step 3: vertex_balance (outer 1)    ...
    then the edge-objective steps (unless single-objective)

A checkpoint at step ``k`` captures the cross-phase state every rank
carries *between* steps — the part assignment over owned + ghost vertices,
``iter_tot``, the RNG bit-generator state, the work/sweep accounting, and
the last Allreduced ``Sv``/``Se``/``Sc`` totals.  Everything else is
phase-local: each phase re-Allreduces its size vector at entry and builds a
fresh :class:`~repro.core.frontier.FrontierSweeper` whose iteration 0 is a
full sweep, which is exactly why phase boundaries are sufficient cut
points for bit-identical resumption.

Epoch-commit protocol (who writes what, in happens-before order):

1. every rank deposits its pickled snapshot into a ``checkpoint``
   collective (:meth:`repro.simmpi.comm.SimComm.Checkpoint`);
2. the collective's writer (running on the computing rank) persists each
   payload to ``epoch_NNNN/rankRR.ckpt`` (write + rename) and writes
   ``MANIFEST.tmp`` — the epoch now exists but is **not committed**;
3. the collective's event reaches :meth:`Backend._record` in the process
   that owns the run's :class:`~repro.simmpi.metrics.CommStats` (the
   driver for in-process backends, the parent for ``procs``), which fires
   :meth:`CkptCommitter.commit`: the event-stream prefix is pickled to
   ``stats.pkl`` and ``MANIFEST.tmp`` is atomically renamed to
   ``MANIFEST.json`` — the commit point.

A crash anywhere before the rename leaves at most a torn epoch that
:func:`find_latest_committed` ignores; a crash after it leaves a fully
validated restart point.  The manifest carries the graph/distribution/
params/input signatures and per-rank content checksums, so resuming
against the wrong inputs — or from a truncated rank file — fails loudly
instead of silently diverging.

The ``stats.pkl`` sidecar is what makes the *communication record* (not
just the partition) bit-identical across a crash: a resumed run re-executes
only the deterministic graph build, then splices ``sidecar events +
live events[n_build:]`` (``n_build`` = collectives consumed by the build,
recorded in the manifest).
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

FORMAT_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"
MANIFEST_TMP = "MANIFEST.tmp"
STATS_NAME = "stats.pkl"

_EVERY = ("outer", "phase", "off")


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, validated, or loaded."""


@dataclass(frozen=True)
class CkptPolicy:
    """When and where to checkpoint.

    ``every="outer"`` snapshots after initialization and after each outer
    iteration's refine step (the paper's natural unit of progress);
    ``"phase"`` snapshots after every phase; ``"off"`` disables writing
    (resume still works against an existing run directory).
    """

    dir: str
    every: str = "outer"

    def __post_init__(self) -> None:
        if self.every not in _EVERY:
            raise ValueError(
                f"CkptPolicy.every must be one of {_EVERY}, got {self.every!r}"
            )


# -- step plan ---------------------------------------------------------------


def step_plan(params) -> List[Tuple[str, int, str]]:
    """The driver's step sequence: ``(stage, outer_index, phase_name)``."""
    plan: List[Tuple[str, int, str]] = [("init", -1, "init")]
    for o in range(params.outer_iters):
        plan.append(("vertex", o, "vertex_balance"))
        plan.append(("vertex", o, "vertex_refine"))
    if not params.single_objective:
        for o in range(params.outer_iters):
            plan.append(("edge", o, "edge_balance"))
            plan.append(("edge", o, "edge_refine"))
    return plan


def checkpoint_after(plan: Sequence[Tuple[str, int, str]], idx: int,
                     every: str) -> bool:
    """Does ``every`` place a checkpoint after completing step ``idx``?"""
    if every == "off":
        return False
    if every == "phase":
        return True
    return plan[idx][2] in ("init", "vertex_refine", "edge_refine",
                            "ml_refine")


# -- signatures --------------------------------------------------------------


def _sha(*chunks: bytes) -> str:
    h = hashlib.sha256()
    for c in chunks:
        h.update(c)
    return h.hexdigest()


def graph_signature(graph) -> str:
    """Content hash of the CSR structure a checkpoint belongs to."""
    return _sha(
        np.int64(graph.n).tobytes(),
        np.ascontiguousarray(graph.offsets).tobytes(),
        np.ascontiguousarray(graph.adj).tobytes(),
    )


def dist_signature(dist) -> str:
    """Content hash of the vertex-ownership map."""
    return _sha(
        np.int64(dist.nprocs).tobytes(),
        np.ascontiguousarray(dist.owner(np.arange(dist.n))).tobytes(),
    )


def inputs_signature(initial_parts: Optional[np.ndarray],
                     vertex_weights: Optional[np.ndarray]) -> str:
    """Content hash of the optional per-vertex inputs."""
    chunks: List[bytes] = []
    for arr in (initial_parts, vertex_weights):
        if arr is None:
            chunks.append(b"none")
        else:
            chunks.append(np.ascontiguousarray(arr).tobytes())
    return _sha(*chunks)


# -- rank-side: depositing a snapshot ----------------------------------------


class CkptContext:
    """Everything a rank needs to write checkpoints for one run.

    Built once in the driver (:func:`make_context`) and shipped to every
    rank; holds the policy plus the manifest template (signatures, shapes)
    that identifies which run a checkpoint belongs to.
    """

    def __init__(self, policy: CkptPolicy, manifest_base: Dict[str, Any]) -> None:
        self.policy = policy
        self.manifest_base = manifest_base

    def epoch_dir(self, epoch: int) -> str:
        return os.path.join(self.policy.dir, f"epoch_{epoch:04d}")

    def epoch_writer(self, epoch: int, step: Tuple[str, int, str]):
        """The ``checkpoint`` collective's writer: persist every rank's
        payload plus ``MANIFEST.tmp``.  Runs exactly once, on the computing
        rank; the atomic commit happens later, driver-side (see
        :class:`CkptCommitter`)."""

        def writer(contribs: List[Tuple[bytes, dict]]) -> int:
            edir = self.epoch_dir(epoch)
            os.makedirs(edir, exist_ok=True)
            n_build = {int(m["n_build"]) for _, m in contribs}
            if len(n_build) != 1:  # pragma: no cover - BSP invariant
                raise CheckpointError(
                    f"ranks disagree on build length: {sorted(n_build)}"
                )
            rank_files: Dict[str, Any] = {}
            for r, (payload, _meta) in enumerate(contribs):
                fname = f"rank{r:02d}.ckpt"
                tmp = os.path.join(edir, fname + ".tmp")
                with open(tmp, "wb") as f:
                    f.write(payload)
                os.replace(tmp, os.path.join(edir, fname))
                rank_files[str(r)] = {
                    "file": fname,
                    "sha256": _sha(payload),
                    "bytes": len(payload),
                }
            manifest = dict(self.manifest_base)
            manifest.update(
                epoch=int(epoch),
                next_step=int(epoch) + 1,
                step=list(step),
                n_build=n_build.pop(),
                rank_files=rank_files,
                stats_file=STATS_NAME,
            )
            tmp = os.path.join(edir, MANIFEST_TMP)
            with open(tmp, "w") as f:
                json.dump(manifest, f, indent=1, sort_keys=True)
            return int(epoch)

        return writer


def make_context(
    policy: CkptPolicy,
    *,
    graph,
    dist,
    params,
    nprocs: int,
    num_parts: int,
    initial_parts: Optional[np.ndarray],
    vertex_weights: Optional[np.ndarray],
) -> CkptContext:
    base = {
        "format_version": FORMAT_VERSION,
        "nprocs": int(nprocs),
        "num_parts": int(num_parts),
        "params_repr": repr(params),
        "params_sha": _sha(repr(params).encode()),
        "graph_signature": graph_signature(graph),
        "dist_signature": dist_signature(dist),
        "inputs_signature": inputs_signature(initial_parts, vertex_weights),
    }
    return CkptContext(policy, base)


def write_checkpoint(comm, state, ctx: CkptContext, *, epoch: int,
                     step: Tuple[str, int, str], n_build: int) -> None:
    """Collective: snapshot this rank's state into epoch ``epoch``.

    Tagged ``checkpoint`` so the event is excluded from the modeled
    partitioning time (``PARTITION_PHASES``) and visible as its own line in
    per-tag breakdowns; the payload is a deterministic pickle, so the event
    is bit-reproducible run-to-run.
    """
    payload = pickle.dumps(state.snapshot(), protocol=pickle.HIGHEST_PROTOCOL)
    meta = {"n_build": int(n_build), "epoch": int(epoch)}
    with comm.phase("checkpoint"):
        comm.Checkpoint(payload, meta, ctx.epoch_writer(epoch, step))


# -- driver-side: committing an epoch ----------------------------------------


def _atomic_write(path: str, data: bytes) -> None:
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        f.write(data)
    os.replace(tmp, path)


class CkptCommitter:
    """Turns written epochs into *committed* epochs (driver/parent-side).

    Wired onto :attr:`Backend.ckpt_committer`; fires from
    :meth:`Backend._record` for each ``checkpoint`` event, in the process
    that owns the run's ``CommStats`` — on the ``procs`` backend that is
    the parent, which drains metering events in superstep order, so the
    commit of epoch ``k`` happens strictly after its rank files and
    ``MANIFEST.tmp`` were persisted by the collective's writer.

    ``base_events``/``n_skip`` splice resumed runs: the sidecar written at
    each commit is ``base_events + live_events[n_skip:]`` — the full
    bit-identical record prefix of an uninterrupted execution.
    """

    def __init__(self, run_dir: str, base_events: Optional[List[Any]] = None,
                 n_skip: int = 0) -> None:
        self.run_dir = run_dir
        self.base_events = list(base_events or [])
        self.n_skip = int(n_skip)
        self.committed: List[int] = []

    def commit(self, stats) -> None:
        edir = self._oldest_uncommitted()
        if edir is None:  # pragma: no cover - defensive
            return
        events = self.base_events + stats.events[self.n_skip:]
        if not events or events[-1].op != "checkpoint":  # pragma: no cover
            raise CheckpointError(
                "commit fired but the record does not end in a checkpoint"
            )
        _atomic_write(
            os.path.join(edir, STATS_NAME),
            pickle.dumps(events, protocol=pickle.HIGHEST_PROTOCOL),
        )
        tmp = os.path.join(edir, MANIFEST_TMP)
        with open(tmp) as f:
            manifest = json.load(f)
        manifest["base_events"] = len(events)
        final = json.dumps(manifest, indent=1, sort_keys=True).encode()
        _atomic_write(tmp, final)
        os.replace(tmp, os.path.join(edir, MANIFEST_NAME))
        self.committed.append(int(manifest["epoch"]))

    def _oldest_uncommitted(self) -> Optional[str]:
        for edir in sorted(glob.glob(os.path.join(self.run_dir, "epoch_*"))):
            if (os.path.exists(os.path.join(edir, MANIFEST_TMP))
                    and not os.path.exists(os.path.join(edir, MANIFEST_NAME))):
                return edir
        return None


# -- loading and validation --------------------------------------------------


@dataclass
class CheckpointData:
    """A loaded, checksum-verified epoch ready for resumption."""

    epoch_dir: str
    manifest: Dict[str, Any]
    snapshots: List[Dict[str, Any]]
    base_events: List[Any]

    @property
    def epoch(self) -> int:
        return int(self.manifest["epoch"])

    @property
    def next_step(self) -> int:
        return int(self.manifest["next_step"])


def find_latest_committed(run_dir: str) -> Optional[str]:
    """Path of the newest epoch directory holding a committed manifest."""
    committed = [
        edir for edir in sorted(glob.glob(os.path.join(run_dir, "epoch_*")))
        if os.path.exists(os.path.join(edir, MANIFEST_NAME))
    ]
    return committed[-1] if committed else None


def load_manifest(epoch_dir: str) -> Dict[str, Any]:
    path = os.path.join(epoch_dir, MANIFEST_NAME)
    if not os.path.exists(path):
        raise CheckpointError(
            f"no committed manifest in {epoch_dir!r} (a bare MANIFEST.tmp "
            "is a torn checkpoint and is never loadable)"
        )
    with open(path) as f:
        return json.load(f)


def _resolve_epoch_dir(path: str) -> str:
    """Accept either a run directory (pick its latest committed epoch) or
    an explicit ``epoch_NNNN`` directory."""
    if os.path.exists(os.path.join(path, MANIFEST_NAME)):
        return path
    latest = find_latest_committed(path)
    if latest is None:
        raise CheckpointError(
            f"no committed checkpoint epoch found under {path!r}"
        )
    return latest


def load_checkpoint(path: str) -> CheckpointData:
    """Load an epoch and verify every rank file against the manifest."""
    edir = _resolve_epoch_dir(path)
    manifest = load_manifest(edir)
    if manifest.get("format_version") != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint format {manifest.get('format_version')!r} is not "
            f"supported (expected {FORMAT_VERSION})"
        )
    nprocs = int(manifest["nprocs"])
    snapshots: List[Dict[str, Any]] = []
    for r in range(nprocs):
        entry = manifest["rank_files"].get(str(r))
        if entry is None:
            raise CheckpointError(f"manifest lists no file for rank {r}")
        fpath = os.path.join(edir, entry["file"])
        try:
            with open(fpath, "rb") as f:
                payload = f.read()
        except FileNotFoundError:
            raise CheckpointError(
                f"rank file {entry['file']!r} is missing from {edir!r}"
            ) from None
        if len(payload) != int(entry["bytes"]) or _sha(payload) != entry["sha256"]:
            raise CheckpointError(
                f"rank file {entry['file']!r} is truncated or corrupt: "
                f"{len(payload)} bytes (sha {_sha(payload)[:12]}...) vs "
                f"manifest {entry['bytes']} bytes "
                f"(sha {entry['sha256'][:12]}...)"
            )
        snapshots.append(pickle.loads(payload))
    spath = os.path.join(edir, manifest.get("stats_file", STATS_NAME))
    try:
        with open(spath, "rb") as f:
            base_events = pickle.loads(f.read())
    except FileNotFoundError:
        raise CheckpointError(
            f"stats sidecar missing from committed epoch {edir!r}"
        ) from None
    if len(base_events) != int(manifest["base_events"]):
        raise CheckpointError(
            f"stats sidecar holds {len(base_events)} events, manifest "
            f"promises {manifest['base_events']}"
        )
    return CheckpointData(edir, manifest, snapshots, base_events)


def validate_manifest(
    manifest: Dict[str, Any],
    *,
    nprocs: int,
    num_parts: int,
    graph_sig: str,
    dist_sig: str,
    params_repr: str,
    inputs_sig: str,
) -> None:
    """Reject resumption against a different run configuration, naming the
    mismatched field — resuming silently with changed inputs would produce
    a partition belonging to neither run."""
    checks = [
        ("nprocs", int(manifest["nprocs"]), int(nprocs)),
        ("num_parts", int(manifest["num_parts"]), int(num_parts)),
        ("graph_signature", manifest["graph_signature"], graph_sig),
        ("dist_signature", manifest["dist_signature"], dist_sig),
        ("params", manifest["params_repr"], params_repr),
        ("inputs_signature", manifest["inputs_signature"], inputs_sig),
    ]
    for field_name, have, want in checks:
        if have != want:
            raise CheckpointError(
                f"checkpoint was written for a different {field_name}: "
                f"checkpoint has {have!r}, this run has {want!r}"
            )
