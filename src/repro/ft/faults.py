"""Deterministic fault injection for the simulated MPI runtime.

A :class:`FaultPlan` plants failures at exact supersteps: "rank 2's third
collective inside phase ``vertex_refine`` raises", or dies hard, or stalls
for 50 ms, or ships a payload with one flipped byte (``corrupt`` — the
integrity subsystem's detection oracle).  The runtime consults the plan right before every collective
deposit — via :meth:`repro.simmpi.backends.base.Backend._fault_check` on the
in-process backends, and inside ``_RankEndpoint.collective`` on the
``procs`` backend, where a ``die`` fault is a real ``os._exit`` of the rank
process mid-superstep (the case the shared-memory hygiene and supervision
code must survive).

Determinism is the point: the same plan against the same program fails at
the same superstep every time, so crash/recover tests can assert exact
outcomes, and :meth:`FaultPlan.random` draws reproducible plans from a seed
for property tests.

Supersteps are counted **per (attempt, rank, phase-tag)**.  Counting within
the tag makes specs line up with checkpoint boundaries (phases), and the
attempt axis means a spec fires on the attempt it names and never again —
so a supervised retry of the same program does not re-trip the same bomb.
:func:`repro.ft.recovery.run_with_retries` advances
:attr:`FaultPlan.current_attempt` before each relaunch.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.simmpi.errors import HungRankError, InjectedFault

#: Exit code used for hard process death, distinctive in supervisor output.
DIE_EXIT_CODE = 86

_ACTIONS = ("raise", "die", "delay", "corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """One planted fault.

    Attributes
    ----------
    rank:
        The rank that fails.
    phase:
        Phase tag (:meth:`repro.simmpi.comm.SimComm.phase`) the fault lives
        in, e.g. ``"vertex_refine"``; ``"*"`` matches any phase.
    step:
        0-based collective index *within that rank's view of the phase* at
        which the fault fires (counted per attempt).
    action:
        ``"raise"`` raises :class:`InjectedFault` inside the rank function;
        ``"die"`` kills the rank process outright where ranks are processes
        (``procs`` backend) and downgrades to ``"raise"`` where they are
        not; ``"delay"`` sleeps ``delay`` seconds and lets the collective
        proceed — latency injection that must not change the metered
        record (under a watchdog deadline, a delay *past* the deadline
        models an indefinite hang: on process backends the rank really
        sleeps and the watchdog kills it, in-process the rank raises
        :class:`~repro.simmpi.errors.HungRankError` once the deadline
        passes instead of sleeping the run); ``"corrupt"`` deterministically
        flips one byte of the rank's outgoing payload at that superstep —
        detected (and only detected) when integrity checking is on.
    delay:
        Sleep duration for ``action="delay"``.
    attempt:
        Which supervised attempt (0-based) the fault arms on.  Specs for
        attempt 0 fire during the first execution and stay quiet on
        retries.
    """

    rank: int
    phase: str
    step: int
    action: str = "raise"
    delay: float = 0.0
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of "
                f"{_ACTIONS}"
            )
        if self.step < 0 or self.rank < 0 or self.attempt < 0:
            raise ValueError(f"negative field in {self!r}")


class FaultPlan:
    """A set of :class:`FaultSpec` consulted before every collective.

    The plan is fork-shipped to rank processes on the ``procs`` backend and
    shared across rank threads elsewhere; superstep counters are keyed by
    ``(attempt, rank, phase)`` so concurrent ranks never touch the same
    counter.
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs: List[FaultSpec] = list(specs)
        #: Set by the recovery supervisor before each (re)launch.
        self.current_attempt = 0
        self._counts: Dict[Tuple[int, int, str], int] = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan({self.specs!r}, attempt={self.current_attempt})"

    # -- construction helpers ----------------------------------------------

    @classmethod
    def single(cls, rank: int, phase: str, step: int,
               action: str = "raise") -> "FaultPlan":
        return cls([FaultSpec(rank, phase, step, action)])

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        nprocs: int,
        phases: Sequence[str],
        max_step: int,
        action: str = "raise",
        attempt: int = 0,
    ) -> "FaultPlan":
        """Draw one reproducible fault point from ``seed``."""
        import numpy as np

        rng = np.random.default_rng(seed)
        spec = FaultSpec(
            rank=int(rng.integers(nprocs)),
            phase=str(phases[int(rng.integers(len(phases)))]),
            step=int(rng.integers(max_step)),
            action=action,
            attempt=attempt,
        )
        return cls([spec])

    # -- runtime hook ------------------------------------------------------

    def check(self, rank: int, op: str, tag: str, *,
              can_die: bool = False,
              deadline: Optional[float] = None) -> Optional[FaultSpec]:
        """Fire any armed fault for this rank's next collective in ``tag``.

        Called by the backend with the deposit about to happen; ``op`` is
        unused for matching (specs address phases, not collective kinds)
        but kept in the signature for debuggability of raised faults.
        ``deadline`` is the backend's watchdog timeout (None when no
        watchdog is configured): it caps how long an injected ``delay``
        may stall an in-process rank before the stall is surfaced as a
        hang.  Returns the matched ``corrupt`` spec, if any, so the
        backend can flip a byte of the outgoing payload *after* it is
        checksummed; all other actions fire in place.
        """
        attempt = self.current_attempt
        key = (attempt, rank, tag)
        step = self._counts.get(key, 0)
        self._counts[key] = step + 1
        corrupt: Optional[FaultSpec] = None
        for spec in self.specs:
            if spec.attempt != attempt or spec.rank != rank:
                continue
            if spec.phase != "*" and spec.phase != tag:
                continue
            if spec.step != step:
                continue
            fired = self._fire(spec, rank, op, tag, step, can_die, deadline)
            if fired is not None and corrupt is None:
                corrupt = fired
        return corrupt

    def _fire(self, spec: FaultSpec, rank: int, op: str, tag: str,
              step: int, can_die: bool,
              deadline: Optional[float] = None) -> Optional[FaultSpec]:
        where = (f"rank {rank}, phase {tag!r}, superstep {step} "
                 f"(op {op!r}, attempt {spec.attempt})")
        if spec.action == "corrupt":
            return spec
        if spec.action == "delay":
            if deadline is not None and spec.delay > deadline and not can_die:
                # In-process backends cannot be killed from outside; model
                # the watchdog by sleeping out the deadline, then raising
                # instead of stalling the whole run for the full delay.
                time.sleep(deadline)
                raise HungRankError(
                    f"injected {spec.delay:.3g}s delay at {where} exceeded "
                    f"the {deadline:.3g}s watchdog deadline",
                    ranks=(rank,), phase=tag, detection_seconds=deadline,
                )
            # On process backends (can_die) the rank really sleeps — a
            # delay past the deadline is then an actual hang for the
            # supervisor-side watchdog to detect and kill.
            time.sleep(spec.delay)
            return None
        if spec.action == "die" and can_die:
            # Hard death of a real rank process: no unwinding, no error
            # announcement — the supervisor must notice the corpse.
            os._exit(DIE_EXIT_CODE)
        raise InjectedFault(f"injected fault at {where}")


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse the CLI form ``RANK:PHASE:STEP[:ACTION[:SECONDS]]``.

    Examples: ``2:vertex_refine:5``, ``0:edge_balance:3:die``,
    ``1:vertex_balance:4:corrupt``, ``1:vertex_refine:4:delay:30`` (a 30 s
    stall — under ``--watchdog-timeout`` this models an indefinite hang).
    Only ``delay`` takes the SECONDS argument.
    """
    parts = text.split(":")
    if len(parts) not in (3, 4, 5):
        raise ValueError(
            f"--inject-fault expects RANK:PHASE:STEP[:ACTION[:SECONDS]], "
            f"got {text!r}"
        )
    try:
        rank = int(parts[0])
        step = int(parts[2])
    except ValueError:
        raise ValueError(
            f"--inject-fault RANK and STEP must be integers, got {text!r}"
        ) from None
    action = parts[3] if len(parts) > 3 else "raise"
    delay = 0.0
    if len(parts) == 5:
        if action != "delay":
            raise ValueError(
                f"--inject-fault: only the delay action takes a SECONDS "
                f"argument, got {text!r}"
            )
        try:
            delay = float(parts[4])
        except ValueError:
            raise ValueError(
                f"--inject-fault delay SECONDS must be a number, got {text!r}"
            ) from None
    return FaultSpec(rank=rank, phase=parts[1], step=step, action=action,
                     delay=delay)
