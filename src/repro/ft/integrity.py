"""End-to-end payload integrity for the simulated MPI runtime.

At the paper's scale (8192+ nodes, trillions of edges moved through
collectives) silent data corruption is a matter of *when*, not *if*: a
flipped bit in a DRAM page or a shared-memory segment propagates into the
partition undetected unless every payload is verified at receive.  This
module supplies the checksum primitives the runtime wires in when
``--integrity crc`` is selected:

* **transport checksums** (procs backend) — every rendezvous slot write
  appends a crc32 over its serialized bytes, and every shared-memory
  dataplane descriptor (:class:`~repro.simmpi.dataplane.ShmSpec`) carries
  the crc32 of the arena window it names; both are verified on *every*
  read, so a flip anywhere between serialize and deserialize raises
  :class:`~repro.simmpi.errors.PayloadCorruptionError` instead of leaking
  into results.
* **contribution checksums** (serial/threads backends) — there is no wire
  to protect in-process, so the deposit path checksums each rank's pickled
  contribution at deposit and re-verifies all of them just before the
  collective executes, modeling in-flight corruption of the rendezvous
  buffer.
* **deterministic corruption** (:func:`corrupt_object` /
  :meth:`FaultPlan's <repro.ft.faults.FaultPlan>` ``corrupt`` action) —
  the fault injector flips one byte of a target message/segment at an
  exact superstep, so tests can assert detection is 100%, on every
  backend and data plane.

Checksums are crc32 (:func:`zlib.crc32` — the same polynomial family real
interconnects and filesystems use for lightweight end-to-end checks);
they detect flips, they do not correct them — recovery is the ft
subsystem's restart-from-checkpoint path.  With ``--integrity off`` (the
default) no checksum is ever computed and no byte layout changes, so the
mode is a pure opt-in: partitions and communication records are
bit-identical either way (asserted by ``tests/ft/test_integrity.py``).
"""

from __future__ import annotations

import os
import pickle
import zlib
from typing import Any, Optional

import numpy as np

#: Environment variable consulted when no integrity mode is requested
#: explicitly (CLI ``--integrity`` sets it for child processes).
INTEGRITY_ENV_VAR = "REPRO_INTEGRITY"

#: Accepted integrity modes: ``crc`` verifies crc32 checksums on every
#: payload at receive, ``off`` (default) skips all checksum work.
INTEGRITY_MODES = ("crc", "off")

DEFAULT_INTEGRITY = "off"


def default_integrity() -> str:
    """The integrity mode used when none is requested explicitly."""
    mode = os.environ.get(INTEGRITY_ENV_VAR) or DEFAULT_INTEGRITY
    return validate_integrity(mode)


def validate_integrity(mode: str) -> str:
    if mode not in INTEGRITY_MODES:
        raise ValueError(
            f"unknown integrity mode {mode!r}; choices: {INTEGRITY_MODES}"
        )
    return mode


def checksum_bytes(*chunks: Any) -> int:
    """crc32 over a sequence of bytes-like chunks (order-sensitive)."""
    crc = 0
    for chunk in chunks:
        crc = zlib.crc32(chunk, crc)
    return crc


def checksum_obj(obj: Any) -> int:
    """crc32 of an object's full serialized form (pickle-5, zero-copy).

    Out-of-band NumPy buffers are folded into the checksum directly from
    their existing memory (no serialization copy), so checksumming a
    contribution costs one pickle of the small structural part plus one
    linear crc scan of the payload bytes.
    """
    oob: list = []
    payload = pickle.dumps(obj, protocol=5, buffer_callback=oob.append)
    crc = zlib.crc32(payload)
    for buf in oob:
        crc = zlib.crc32(buf.raw(), crc)
    return crc


def corruption_seed(rank: int, step: int, attempt: int = 0) -> int:
    """Deterministic byte-picking seed for a planted ``corrupt`` fault."""
    return (int(rank) * 1000003 + int(step) * 101 + int(attempt)) & 0x7FFFFFFF


def corrupt_object(obj: Any, seed: int) -> Optional[str]:
    """Flip one byte of the first writable NumPy buffer inside ``obj``.

    Deterministic: the same ``(obj structure, seed)`` flips the same byte
    of the same array every time, so corruption tests are exactly
    repeatable.  Returns a description of what was corrupted, or None if
    the object carries no non-empty writable array (e.g. a barrier's None
    contribution) — the fault is then a no-op, mirroring how a real bit
    flip in an empty message cannot corrupt anything.
    """
    stack = [obj]
    seen = set()
    while stack:
        x = stack.pop()
        if id(x) in seen:
            continue
        seen.add(id(x))
        if isinstance(x, np.ndarray):
            if x.nbytes > 0 and x.flags.writeable:
                flat = x.reshape(-1).view(np.uint8)
                idx = seed % flat.size
                flat[idx] ^= 0xFF
                return f"array[{idx}] of {x.dtype}[{x.shape}]"
        elif isinstance(x, (list, tuple, set, frozenset)):
            stack.extend(x)
        elif isinstance(x, dict):
            stack.extend(x.keys())
            stack.extend(x.values())
    return None


def corrupt_buffer(buf: Any, seed: int, start: int = 0,
                   length: Optional[int] = None) -> bool:
    """Flip one byte in ``buf[start:start+length]`` (bytes-like, writable).

    Used by the procs backend to corrupt a serialized message *after* its
    checksum was computed — transport-level corruption, the case the slot
    and descriptor crcs exist to catch.  Returns False when the region is
    empty (nothing to corrupt).
    """
    view = memoryview(buf)
    if length is None:
        length = len(view) - start
    if length <= 0:
        return False
    idx = start + (seed % length)
    view[idx] ^= 0xFF
    return True
