"""Metered distributed SpMV (the Table III experiment).

``run_spmv`` executes ``iters`` repetitions of ``y = A x`` under a 1-D or
2-D layout inside the simulated-MPI runtime.  Communication plans (who
needs which x entries, who folds which partials) are built once — the
static-pattern optimization Epetra applies — and each iteration moves
values only.  The result carries the metered stats and the modeled
per-iteration time; correctness is checked against a scipy reference in
the tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.dist.packing import bucket_by_rank
from repro.graph.csr import Graph
from repro.simmpi.comm import SimComm
from repro.simmpi.metrics import CommStats
from repro.simmpi.backends import Backend, create_runtime
from repro.simmpi.timing import CLUSTER_LIKE, MachineModel, TimeModel
from repro.spmv.layout import Layout1D, Layout2D


def reference_x(n: int) -> np.ndarray:
    """Deterministic dense test vector (same on every rank, no comm)."""
    gid = np.arange(n, dtype=np.int64)
    return ((gid * 2654435761 % 1000) / 1000.0 + 0.1).astype(np.float64)


@dataclass
class SpmvResult:
    y: np.ndarray
    stats: CommStats
    wall_seconds: float
    iters: int
    layout: str
    machine: MachineModel = CLUSTER_LIKE

    @property
    def modeled_seconds(self) -> float:
        """Modeled time of the SpMV iterations (setup excluded)."""
        model = TimeModel(self.machine)
        return model.total_time(self.stats.filtered(["spmv"]))

    @property
    def modeled_per_iteration(self) -> float:
        return self.modeled_seconds / max(self.iters, 1)


def _value_plan(
    comm: SimComm, need_gids: np.ndarray, need_owner: np.ndarray,
    my_index_of: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Build a static fetch plan: I will receive values for ``need_gids``
    (owned by ``need_owner``) in a deterministic order; owners learn which
    of their entries (positions in their owned array ``my_index_of``
    domain) to send.

    Returns (recv_order, recv_counts, send_idx, send_counts) where
    ``recv_order`` permutes ``need_gids`` into arrival order.
    """
    # owner-major grouping via the O(n) stable bucketing; ``need_gids`` is
    # ascending (np.unique-derived), so this matches the old lexsort order
    order, counts = bucket_by_rank(comm.size, need_owner)
    requested, req_counts = comm.Alltoallv(need_gids[order], counts)
    send_idx = np.searchsorted(my_index_of, requested)
    if requested.size and (
        send_idx.max(initial=0) >= my_index_of.size
        or np.any(my_index_of[send_idx] != requested)
    ):
        raise AssertionError("value plan requested entries I do not own")
    return order, counts, send_idx, req_counts


def _rank_spmv_1d(
    comm: SimComm, graph: Graph, owner: np.ndarray, iters: int
) -> Tuple[np.ndarray, np.ndarray]:
    with comm.phase("build"):
        layout = Layout1D.build(graph, owner, comm.rank, comm.size)
        x_owned = reference_x(graph.n)[layout.rows]
    with comm.phase("plan"):
        ghost = np.flatnonzero(layout.col_owner != comm.rank)
        recv_order, recv_counts, send_idx, send_counts = _value_plan(
            comm, layout.col_gids[ghost], layout.col_owner[ghost], layout.rows
        )
        local_cols = np.flatnonzero(layout.col_owner == comm.rank)
        local_src = np.searchsorted(layout.rows, layout.col_gids[local_cols])
    x_compact = np.zeros(layout.col_gids.size, dtype=np.float64)
    y = np.zeros(layout.rows.size, dtype=np.float64)
    for _ in range(iters):
        with comm.phase("spmv"):
            comm.charge(layout.matrix.nnz)
            x_compact[local_cols] = x_owned[local_src]
            values, _ = comm.Alltoallv(x_owned[send_idx], send_counts)
            x_compact[ghost[recv_order]] = values
            y = layout.matrix @ x_compact
    return layout.rows, y


def _rank_spmv_2d(
    comm: SimComm, graph: Graph, parts: np.ndarray, iters: int
) -> Tuple[np.ndarray, np.ndarray]:
    with comm.phase("build"):
        layout = Layout2D.build(graph, parts, comm.rank, comm.size)
        x_owned = reference_x(graph.n)[layout.owned_x]
    with comm.phase("plan"):
        # expand plan: fetch x for my block's columns from their 1-D owners
        ghost = np.flatnonzero(layout.x_owner != comm.rank)
        x_order, x_counts, x_send_idx, x_send_counts = _value_plan(
            comm, layout.col_gids[ghost], layout.x_owner[ghost], layout.owned_x
        )
        local_cols = np.flatnonzero(layout.x_owner == comm.rank)
        local_src = np.searchsorted(layout.owned_x, layout.col_gids[local_cols])
        # fold plan: my partial rows go to their y owners.  One gid
        # round-trip at setup tells each owner where to accumulate.
        away = np.flatnonzero(layout.y_owner != comm.rank)
        fold_order, fold_counts = bucket_by_rank(
            comm.size, layout.y_owner[away]
        )
        incoming_gids, in_counts = comm.Alltoallv(
            layout.row_gids[away][fold_order], fold_counts
        )
        acc_idx = np.searchsorted(layout.owned_x, incoming_gids)
        home = np.flatnonzero(layout.y_owner == comm.rank)
        home_dst = np.searchsorted(layout.owned_x, layout.row_gids[home])
    x_compact = np.zeros(layout.col_gids.size, dtype=np.float64)
    y = np.zeros(layout.owned_x.size, dtype=np.float64)
    for _ in range(iters):
        with comm.phase("spmv"):
            comm.charge(layout.matrix.nnz)
            # expand
            x_compact[local_cols] = x_owned[local_src]
            values, _ = comm.Alltoallv(x_owned[x_send_idx], x_send_counts)
            x_compact[ghost[x_order]] = values
            # local block multiply
            partial = layout.matrix @ x_compact
            # fold
            folded, _ = comm.Alltoallv(partial[away][fold_order], fold_counts)
            y[:] = 0.0
            if home.size:
                np.add.at(y, home_dst, partial[home])
            if folded.size:
                np.add.at(y, acc_idx, folded)
            _ = in_counts
    return layout.owned_x, y


def run_spmv(
    graph: Graph,
    distribution: np.ndarray,
    *,
    layout: str = "1d",
    nprocs: int = 16,
    iters: int = 100,
    machine: MachineModel = CLUSTER_LIKE,
    backend: Union[str, None, Backend] = None,
) -> SpmvResult:
    """Run ``iters`` SpMVs of the graph's adjacency under a layout.

    ``distribution`` is a per-vertex owner/part array with values in
    ``[0, nprocs)`` — produced by block, random, multilevel, or XtraPuLP
    partitioning (parts == ranks, as in Table III).
    """
    distribution = np.asarray(distribution, dtype=np.int64)
    if distribution.shape != (graph.n,):
        raise ValueError("distribution must assign every vertex")
    if distribution.size and distribution.max() >= nprocs:
        raise ValueError("distribution references more parts than nprocs")
    if layout not in ("1d", "2d"):
        raise ValueError("layout must be '1d' or '2d'")

    runtime = create_runtime(backend, nprocs=nprocs, meter_compute=False)
    try:
        t0 = time.perf_counter()
        if layout == "1d":
            per_rank = runtime.run(_rank_spmv_1d, graph, distribution, iters)
        else:
            per_rank = runtime.run(_rank_spmv_2d, graph, distribution, iters)
        wall = time.perf_counter() - t0
    finally:
        runtime.close()

    y = np.zeros(graph.n, dtype=np.float64)
    for rows, vals in per_rank:
        y[rows] = vals
    return SpmvResult(
        y=y,
        stats=runtime.stats,
        wall_seconds=wall,
        iters=iters,
        layout=layout,
        machine=machine,
    )
