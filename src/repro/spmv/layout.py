"""Matrix/vector layouts for distributed SpMV.

``Layout1D`` — row distribution: rank r owns the rows (and the matching x/y
entries) that a :class:`~repro.dist.distribution.Distribution` assigns it;
each SpMV pulls the ghost x entries its rows' columns touch.

``Layout2D`` — the Boman–Devine–Rajamanickam SC'13 mapping [6] the paper
uses to turn a 1-D vertex partition into a 2-D nonzero distribution:
with a ``pr × pc`` process grid (``p = pr * pc``), part ``k`` lives at grid
position ``(k mod pr, k div pr)``, and nonzero ``A(i, j)`` is stored at
grid cell ``(part(i) mod pr, part(j) div pr)``.  x entries then fan out
only along a grid column (expand) and partial sums only along a grid row
(fold) — ≈ ``2·sqrt(p)`` fan-out instead of ``p``, the whole point of
Table III's 2-D columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy import sparse

from repro.graph.csr import Graph


def grid_shape(p: int) -> Tuple[int, int]:
    """Nearly-square factorization pr × pc = p (pr <= pc)."""
    if p < 1:
        raise ValueError("p must be >= 1")
    pr = int(np.sqrt(p))
    while p % pr:
        pr -= 1
    return pr, p // pr


@dataclass
class Layout1D:
    """Per-rank row block + the x entries it must fetch each SpMV."""

    rank: int
    nprocs: int
    rows: np.ndarray          # global row ids owned (sorted)
    matrix: sparse.csr_matrix  # local rows × compacted columns
    col_gids: np.ndarray      # global id of each compacted column
    col_owner: np.ndarray     # owning rank of each compacted column

    @classmethod
    def build(
        cls, graph: Graph, owner: np.ndarray, rank: int, nprocs: int
    ) -> "Layout1D":
        rows = np.flatnonzero(owner == rank).astype(np.int64)
        src, dst = graph.edges()
        mine = owner[src] == rank
        s, d = src[mine], dst[mine]
        row_l = np.searchsorted(rows, s)
        col_gids = np.unique(d)
        col_l = np.searchsorted(col_gids, d)
        mat = sparse.coo_matrix(
            (np.ones(s.size), (row_l, col_l)),
            shape=(rows.size, col_gids.size),
        ).tocsr()
        return cls(
            rank=rank,
            nprocs=nprocs,
            rows=rows,
            matrix=mat,
            col_gids=col_gids,
            col_owner=owner[col_gids].astype(np.int64)
            if col_gids.size
            else np.empty(0, dtype=np.int64),
        )


@dataclass
class Layout2D:
    """Per-rank 2-D block under the [6] mapping."""

    rank: int
    nprocs: int
    pr: int
    pc: int
    grid_row: int
    grid_col: int
    owned_x: np.ndarray        # global ids whose x/y this rank owns (1-D part)
    matrix: sparse.csr_matrix  # compacted local block
    row_gids: np.ndarray       # global row id per compacted local row
    col_gids: np.ndarray       # global col id per compacted local column
    x_owner: np.ndarray        # owner rank of each compacted column's x
    y_owner: np.ndarray        # owner rank of each compacted row's y

    @classmethod
    def build(
        cls, graph: Graph, parts: np.ndarray, rank: int, nprocs: int
    ) -> "Layout2D":
        pr, pc = grid_shape(nprocs)
        a, b = rank % pr, rank // pr
        parts = np.asarray(parts, dtype=np.int64)
        src, dst = graph.edges()
        mine = ((parts[src] % pr) == a) & ((parts[dst] // pr) == b)
        s, d = src[mine], dst[mine]
        row_gids = np.unique(s)
        col_gids = np.unique(d)
        mat = sparse.coo_matrix(
            (
                np.ones(s.size),
                (np.searchsorted(row_gids, s), np.searchsorted(col_gids, d)),
            ),
            shape=(row_gids.size, col_gids.size),
        ).tocsr()
        return cls(
            rank=rank,
            nprocs=nprocs,
            pr=pr,
            pc=pc,
            grid_row=a,
            grid_col=b,
            owned_x=np.flatnonzero(parts == rank).astype(np.int64),
            matrix=mat,
            row_gids=row_gids,
            col_gids=col_gids,
            x_owner=parts[col_gids] if col_gids.size else np.empty(0, np.int64),
            y_owner=parts[row_gids] if row_gids.size else np.empty(0, np.int64),
        )
