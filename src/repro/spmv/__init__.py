"""Distributed sparse matrix-vector multiplication (Table III).

The paper runs 100 SpMVs with Trilinos/Epetra under eight data layouts:
1-D row distributions {Block, Random, ParMETIS, XtraPuLP} and 2-D
distributions {Block, Random, and the Boman-Devine-Rajamanickam mapping of
the 1-D ParMETIS/XtraPuLP partitions}.  This package reproduces the
experiment: per-rank blocks are real ``scipy.sparse`` matrices, every
expand/fold message goes through the metered simulated-MPI collectives, and
the modeled time shows exactly the communication-volume effect the paper's
table demonstrates.
"""

from repro.spmv.layout import Layout1D, Layout2D, grid_shape
from repro.spmv.dist_spmv import SpmvResult, run_spmv

__all__ = ["Layout1D", "Layout2D", "grid_shape", "run_spmv", "SpmvResult"]
