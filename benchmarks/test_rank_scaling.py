"""Thousands-of-ranks scaling gate: the shared-result engine vs the
historical copying engine.

At hundreds-to-thousands of simulated ranks the partitioner's wall clock is
dominated by the simulator itself: per-rank result copies (O(P^2) bytes per
collective), park/wake scheduling cycles, and per-deposit metering.  This
bench runs the full pipeline at 512 ranks on the serial backend in both
result-delivery modes and gates on the speedup of the shared-result engine
over the copying engine (``copy`` preserves the pre-optimization delivery
path bit-for-bit, so the ratio isolates exactly the engine work this
subsystem removed).  Timings compare best-of-N minima — engine overhead is
deterministic work, so the minimum is the right estimator against
scheduler noise.

Also recorded: shared-vs-copy bit-identity on every backend (partitions
and `CommStats.signature()`), a rack-tier (``hierarchical:16x4``) run with
three-way byte conservation asserted and priced by the tiered machine
model, and measurement-only shared-mode rows at 1024 and 2048 ranks.
"""

import time

import numpy as np

from repro.bench import ExperimentTable
from repro.core import PulpParams, xtrapulp
from repro.simmpi import BLUE_WATERS_TIERED, TimeModel
from repro.simmpi.backends import create_runtime

GATE_RANKS = 512
PARTS = 16
ROUNDS = 3           # best-of-N: the gate compares minima across rounds
MIN_SPEEDUP = 3.0    # shared engine must be >= 3x the copying engine
#: 512 ranks = 32 nodes x 16 ranks/node = 8 racks x 4 nodes/rack.
RACK_COMM = "hierarchical:16x4"
#: One outer iteration keeps a 512-rank full-pipeline run in seconds while
#: still exercising every phase (init, balance, refine, edge stage).
PARAMS = dict(seed=42, outer_iters=1, balance_iters=2, refine_iters=3)


def _run(graph, nprocs, mode, backend="serial", comm=None):
    rt = create_runtime(backend, nprocs=nprocs, meter_compute=False,
                        result_sharing=mode)
    # the driver resolves the communicator from params.comm, so the spec
    # must ride there (a comm set on the runtime instance would be replaced)
    params = PulpParams(comm=comm, **PARAMS) if comm else PulpParams(**PARAMS)
    t0 = time.perf_counter()
    result = xtrapulp(graph, PARTS, nprocs=nprocs, params=params, backend=rt)
    return time.perf_counter() - t0, result


def _row(table, ranks, backend, mode, comm, graph_name, wall, result):
    st = result.stats
    table.add(
        ranks,
        backend,
        mode,
        comm or "flat",
        graph_name,
        round(wall, 3),
        round(TimeModel(machine=BLUE_WATERS_TIERED).total_time(st), 4),
        int(result.quality().cut),
        round(st.total_bytes / 2**20, 2),
        round(st.modeled_xrack_bytes() / 2**20, 2),
        st.saved_switches,
    )


def test_rank_scaling(benchmark, suite_graph):
    table = ExperimentTable(
        "rank_scaling",
        ["ranks", "backend", "mode", "comm", "graph", "wall_s", "model_s",
         "cutsize", "MiB_sent", "xrack_MiB", "saved_switches"],
        notes=f"full pipeline, {PARTS} parts, outer_iters=1; wall_s is "
              f"best-of-{ROUNDS} perf_counter minima for the 512-rank gate "
              f"rows, single-shot elsewhere; gate: copy/shared >= "
              f"{MIN_SPEEDUP}x on serial at {GATE_RANKS} ranks",
    )
    tiny = suite_graph("rmat", "tiny")
    small = suite_graph("rmat", "small")

    def experiment():
        runs = {"shared": [], "copy": []}
        for _ in range(ROUNDS):
            for mode in ("shared", "copy"):
                runs[mode].append(_run(tiny, GATE_RANKS, mode))
        return runs

    runs = benchmark.pedantic(experiment, rounds=1, iterations=1)

    best = {m: min(rs, key=lambda wr: wr[0]) for m, rs in runs.items()}
    for mode in ("shared", "copy"):
        wall, result = best[mode]
        _row(table, GATE_RANKS, "serial", mode, None, "rmat/tiny",
             wall, result)

    # -- bit-identity: shared vs copy, every backend ------------------------
    shared_512, copy_512 = best["shared"][1], best["copy"][1]
    np.testing.assert_array_equal(shared_512.parts, copy_512.parts)
    assert shared_512.stats.signature() == copy_512.stats.signature()
    assert shared_512.stats.saved_switches > 0  # serial executor-continue
    for backend in ("threads", "procs"):
        _, r_s = _run(tiny, 8, "shared", backend=backend)
        _, r_c = _run(tiny, 8, "copy", backend=backend)
        np.testing.assert_array_equal(r_s.parts, r_c.parts)
        assert r_s.stats.signature() == r_c.stats.signature()
        np.testing.assert_array_equal(r_s.parts, _run(tiny, 8, "shared")[1].parts)

    # -- rack tier: conservation + pricing ----------------------------------
    wall_rack, rack = _run(tiny, GATE_RANKS, "shared", comm=RACK_COMM)
    np.testing.assert_array_equal(rack.parts, shared_512.parts)
    racked = [e for e in rack.stats.events
              if e.tiers is not None and e.tiers.xrack_bytes is not None]
    assert racked
    for e in racked:
        np.testing.assert_array_equal(
            e.tiers.intra_bytes + e.tiers.inter_bytes + e.tiers.xrack_bytes,
            e.bytes_sent)
    by_op = rack.stats.bytes_by_op()
    for op, (intra, inter, xrack) in rack.stats.rack_tier_bytes_by_op().items():
        assert intra + inter + xrack == by_op[op]
    assert rack.stats.modeled_xrack_bytes() > 0
    assert TimeModel(machine=BLUE_WATERS_TIERED).total_time(rack.stats) > 0
    _row(table, GATE_RANKS, "serial", "shared", RACK_COMM, "rmat/tiny",
         wall_rack, rack)

    # -- measurement-only rows past the gate scale --------------------------
    for ranks in (1024, 2048):
        wall, result = _run(small, ranks, "shared")
        _row(table, ranks, "serial", "shared", None, "rmat/small",
             wall, result)

    table.emit()

    # -- the gate -----------------------------------------------------------
    speedup = best["copy"][0] / best["shared"][0]
    print(f"\nshared-result engine speedup at {GATE_RANKS} ranks: "
          f"{speedup:.2f}x (copy {best['copy'][0]:.2f} s / "
          f"shared {best['shared'][0]:.2f} s)")
    assert speedup >= MIN_SPEEDUP, (
        f"shared-result engine only {speedup:.2f}x faster than the copying "
        f"engine at {GATE_RANKS} ranks (gate: {MIN_SPEEDUP}x)"
    )
