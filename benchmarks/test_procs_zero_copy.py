"""Zero-copy data-plane gate for the procs backend.

The procs backend ships collective payloads between rank processes
through a selectable data plane (:mod:`repro.simmpi.dataplane`): the
default ``shm`` plane parks large buffers in long-lived arena segments
and exchanges ``(segment, offset, nbytes)`` descriptors, the ``pickle``
plane is the original copy-through transport kept as a verification
mode.  This bench is the perf gate: a collectives-heavy storm (the
workload the zero-copy plane exists for — payload movement, not rank
compute) must run at least ``SPEEDUP_GATE``x faster on the shm plane,
with identical checksums, and leak nothing in /dev/shm.

A second test locks the correctness half at partitioning scale: parts
and ``CommStats.signature()`` must be bit-identical across data planes,
wire formats, and communicator strategies, against a serial-backend
reference.
"""

import glob
import os
import time

import numpy as np
import pytest

from repro.bench import ExperimentTable
from repro.core import PulpParams, xtrapulp
from repro.graph import generators
from repro.simmpi.backends import create_runtime
from repro.simmpi.dataplane import DATAPLANES

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no /dev/shm on this platform"
)

NPROCS = 4
ITERS = 12
WORDS = 1_500_000  # int64 words per payload ≈ 11.4 MiB
SPEEDUP_GATE = 1.5  # shm plane must beat pickle plane by this factor


def _storm(comm):
    """Collectives-heavy per-rank program: big Alltoallv + Allgatherv +
    Bcast every iteration, trivial compute.  Returns a checksum that
    folds every received buffer, so both planes must deliver identical
    bytes to pass."""
    rng = np.random.default_rng(1000 + comm.rank)
    payload = rng.integers(0, 1 << 40, size=WORDS, dtype=np.int64)
    counts = np.full(comm.size, WORDS // comm.size, dtype=np.int64)
    counts[-1] += WORDS - int(counts.sum())
    acc = np.int64(0)
    for _ in range(ITERS):
        recv, _ = comm.Alltoallv(payload, counts)
        merged, _ = comm.Allgatherv(payload[: WORDS // comm.size])
        root = comm.Bcast(payload if comm.rank == 0 else
                          np.empty(WORDS, dtype=np.int64))
        acc = (acc
               ^ np.bitwise_xor.reduce(recv)
               ^ np.bitwise_xor.reduce(merged)
               ^ root[comm.rank])
    return int(acc)


def _run_storm(plane):
    rt = create_runtime("procs", nprocs=NPROCS, meter_compute=False,
                        dataplane=plane)
    t0 = time.perf_counter()
    checksums = rt.run(_storm)
    wall = time.perf_counter() - t0
    leaked = glob.glob(
        os.path.join("/dev/shm", glob.escape(rt.last_shm_prefix) + "*"))
    return {"wall": wall, "checksums": checksums, "leaked": leaked,
            "reclaimed": rt.last_shm_reclaimed}


def test_procs_zero_copy_speedup(benchmark):
    table = ExperimentTable(
        "procs_zero_copy",
        ["dataplane", "wall_s", "speedup_vs_pickle", "payload_MiB",
         "checksums_match", "shm_leaked"],
        notes=f"{ITERS} iters of Alltoallv+Allgatherv+Bcast on {NPROCS} "
              f"procs ranks, {WORDS * 8 / 2**20:.1f} MiB payloads; gate: "
              f"shm >= {SPEEDUP_GATE}x over pickle",
    )

    def experiment():
        return {plane: _run_storm(plane) for plane in DATAPLANES}

    runs = benchmark.pedantic(experiment, rounds=1, iterations=1)

    ref = runs["pickle"]
    for plane in DATAPLANES:
        r = runs[plane]
        table.add(
            plane,
            round(r["wall"], 3),
            round(ref["wall"] / r["wall"], 2),
            round(ITERS * WORDS * 8 / 2**20, 1),
            r["checksums"] == ref["checksums"],
            len(r["leaked"]),
        )
    table.emit()

    for plane in DATAPLANES:
        assert runs[plane]["checksums"] == ref["checksums"]
        assert runs[plane]["leaked"] == []
        assert runs[plane]["reclaimed"] == []
    speedup = ref["wall"] / runs["shm"]["wall"]
    assert speedup >= SPEEDUP_GATE, (
        f"shm data plane only {speedup:.2f}x over pickle "
        f"(gate {SPEEDUP_GATE}x)"
    )


def test_partitions_identical_across_planes_wires_comms(monkeypatch):
    """Data plane x wire format x communicator strategy: parts and the
    communication record must be bit-identical, serial vs procs."""
    g = generators.rmat(9, avg_degree=8, seed=21)
    parts = 6
    for wire in ("compact", "gid64"):
        for comm in ("flat", "hierarchical:2"):
            params = PulpParams(seed=11, outer_iters=2, wire=wire, comm=comm)
            ref = xtrapulp(g, parts, nprocs=NPROCS, params=params,
                           backend="serial")
            for plane in DATAPLANES:
                monkeypatch.setenv("REPRO_DATAPLANE", plane)
                rt = create_runtime("procs", nprocs=NPROCS,
                                    meter_compute=False)
                r = xtrapulp(g, parts, nprocs=NPROCS, params=params,
                             backend=rt)
                np.testing.assert_array_equal(r.parts, ref.parts)
                assert r.stats.signature() == ref.stats.signature()
                assert glob.glob(os.path.join(
                    "/dev/shm",
                    glob.escape(rt.last_shm_prefix) + "*")) == []
