"""§V.A.2 "Trillion Edge Runs": the largest-configuration analog.

Paper: 2^34-vertex / 2^40-edge RandER and RandHD partitioned in 380 s and
357 s on 8192 nodes (131 072 cores); the largest feasible RMAT had half
the edges (2^39) and took 608 s — RMAT is the hardest class at the limit.

Here: the largest graphs in the reproduction budget (2^17 vertices,
davg 16) on 16 ranks, 16 parts.  Shapes: all three complete; RandHD ≤
RandER < RMAT in modeled time; per-edge cost stays within a small factor
of the smaller runs (no scale-induced blowup — the paper's "no
performance-crippling bottlenecks at scale").
"""

import numpy as np

from repro.bench import ExperimentTable
from repro.core import PulpParams, xtrapulp
from repro.graph import erdos_renyi, rand_hd, rmat

N = 1 << 17
RANKS = 16


def test_trillion_edge_analog(benchmark):
    table = ExperimentTable(
        "trillion_edge_analog",
        ["graph", "n", "m", "nprocs", "modeled_s", "us_per_edge"],
        notes="largest-budget runs; paper: 2^34 vertices / 2^40 edges on 8192 nodes",
    )

    def experiment():
        out = {}
        graphs = {
            "rander": (erdos_renyi(N, 16, seed=3), "hybrid"),
            "randhd": (rand_hd(N, 16, seed=3), "block"),
            "rmat": (rmat(17, 16, seed=3), "hybrid"),
        }
        for name, (g, init) in graphs.items():
            res = xtrapulp(
                g, RANKS, nprocs=RANKS, params=PulpParams(init_strategy=init)
            )
            out[name] = (g.n, g.num_edges, res.modeled_seconds)
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for name, (n, m, secs) in sorted(results.items()):
        table.add(name, n, m, RANKS, secs, 1e6 * secs / m)
    table.emit()

    # RMAT is the hardest class per edge (the paper could only fit half
    # the edges for RMAT at 8192 nodes); absolute ordering of totals is
    # size-confounded because R-MAT dedup removes more edges
    per_edge = {k: v[2] / v[1] for k, v in results.items()}
    assert per_edge["rmat"] > per_edge["randhd"]
    # (rmat vs rander per-edge costs are within noise at this scale — the
    # paper's RMAT-hardest gap needs 2^30+ vertices of hub skew; see
    # EXPERIMENTS.md)
    assert per_edge["rander"] > per_edge["randhd"]
    # all classes complete at the largest budget — the headline claim
    assert all(np.isfinite(v[2]) and v[2] > 0 for v in results.values())
