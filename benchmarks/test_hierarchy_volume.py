"""Inter-node traffic: two-level (hierarchical) exchange vs flat.

Runs the full XtraPuLP pipeline at 64 simulated ranks under the default
``flat`` communicator and under ``hierarchical:8`` (8 nodes x 8
ranks/node) on every execution backend, and compares the *modeled
inter-node wire bytes* — what each strategy would put on the network.
Under ``flat`` every rank is its own node, so all metered bytes cross the
network; the two-level protocol keeps node-local payload in shared
memory, injects one aggregated message per node pair, runs reductions
leaders-only, and narrows count headers to ``uint32``.

Acceptance: >= 2x reduction in modeled inter-node bytes overall, with the
hierarchical run bit-identical to flat in partition and communication
record on serial, threads, and procs (the strategy is metering-only).
"""

import numpy as np

from repro.bench import ExperimentTable
from repro.core import PulpParams, xtrapulp

PARTS = 16
NPROCS = 64
RANKS_PER_NODE = 8
BACKENDS = ("serial", "threads", "procs")
GRAPH = "rmat"
REDUCTION_FLOOR = 2.0  # acceptance: >= 2x less modeled inter-node traffic


def _run(graph, comm, backend):
    return xtrapulp(
        graph, PARTS, nprocs=NPROCS,
        params=PulpParams(seed=42, comm=comm), backend=backend,
    )


def _inter_by_op(stats):
    """Modeled inter-node wire bytes per op (untiered events ship their
    full payload: one rank per node under flat)."""
    out = {}
    for e in stats.events:
        inter = (e.tiers.total_wire_inter if e.tiers is not None
                 else e.total_bytes)
        out[e.op] = out.get(e.op, 0) + inter
    return out


def test_hierarchy_volume(benchmark, suite_graph):
    table = ExperimentTable(
        "hierarchy_volume",
        ["backend", "op", "inter_flat", "inter_hier", "reduction"],
        notes=f"{GRAPH}/small, {PARTS} parts on {NPROCS} ranks as "
              f"{NPROCS // RANKS_PER_NODE} nodes x {RANKS_PER_NODE}; "
              "modeled inter-node wire bytes per collective op; TOTAL "
              f"rows gate the acceptance (>= {REDUCTION_FLOOR}x)",
    )

    def experiment():
        g = suite_graph(GRAPH, "small")
        return {
            b: (_run(g, "flat", b),
                _run(g, f"hierarchical:{RANKS_PER_NODE}", b))
            for b in BACKENDS
        }

    runs = benchmark.pedantic(experiment, rounds=1, iterations=1)

    ref_parts = runs["serial"][0].parts
    for b in BACKENDS:
        flat, hier = runs[b]
        # metering-only: same partition, same communication record, both
        # across strategies and across backends
        np.testing.assert_array_equal(flat.parts, hier.parts)
        np.testing.assert_array_equal(flat.parts, ref_parts)
        assert flat.stats.signature() == hier.stats.signature()
        assert not flat.stats.tiered and hier.stats.tiered
        assert flat.comm == "flat" and hier.comm == "hierarchical"

        per_f, per_h = _inter_by_op(flat.stats), _inter_by_op(hier.stats)
        assert per_f.keys() == per_h.keys()
        for op in sorted(per_f):
            ratio = per_f[op] / max(per_h[op], 1)
            table.add(b, op, per_f[op], per_h[op], round(ratio, 2))
        tot_f = flat.stats.modeled_inter_bytes()
        tot_h = hier.stats.modeled_inter_bytes()
        assert tot_f == sum(per_f.values())
        assert tot_h == sum(per_h.values())
        total_ratio = tot_f / max(tot_h, 1)
        table.add(b, "TOTAL", tot_f, tot_h, round(total_ratio, 2))
        assert total_ratio >= REDUCTION_FLOOR, (
            f"{b}: only {total_ratio:.2f}x modeled inter-node reduction"
        )
    table.emit()
