"""Ablation: initialization strategy per graph class (§III.B).

The paper: the hybrid BFS-growing initialization "substantially improves
final partition quality for certain graphs, while not negatively impacting
partition quality for other graphs"; for high-diameter classes it needs
diameter-many rounds, so "alternative strategies such as random or block
assignments can be used".

Shapes: hybrid ≥ random everywhere it converges quickly; block is the
right choice for randhd (locality in ids), and hurts on social (ids carry
no locality).
"""

from repro.bench import ExperimentTable
from repro.core import PulpParams, xtrapulp

INITS = ["hybrid", "random", "block"]
GRAPHS = ["social", "webcrawl", "randhd", "mesh"]
PARTS = 16


def test_ablation_init(benchmark, suite_graph):
    table = ExperimentTable(
        "ablation_init",
        ["graph", "init", "cut_ratio", "vertex_bal", "modeled_s"],
        notes="16 parts, 4 ranks",
    )

    def experiment():
        out = {}
        for name in GRAPHS:
            g = suite_graph(name, "small")
            for init in INITS:
                res = xtrapulp(
                    g, PARTS, nprocs=4,
                    params=PulpParams(init_strategy=init),
                )
                q = res.quality()
                out[(name, init)] = (
                    q.cut_ratio, q.vertex_balance, res.modeled_seconds
                )
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for (name, init), row in sorted(results.items()):
        table.add(name, init, *row)
    table.emit()

    # hybrid beats random init on cut where BFS growing finds structure
    # (meshes); on other classes it must at least not hurt much — the
    # paper's "not negatively impacting partition quality for other graphs"
    assert results[("mesh", "hybrid")][0] < results[("mesh", "random")][0]
    for name in ("social", "webcrawl"):
        assert (
            results[(name, "hybrid")][0]
            < 1.3 * results[(name, "random")][0]
        )
    # block init exploits randhd's id locality
    assert results[("randhd", "block")][0] < results[("randhd", "random")][0]
    # high-diameter class: block init also achieves balance where hybrid's
    # diameter-bounded growth struggles (paper's stated caveat)
    assert results[("randhd", "block")][1] <= results[("randhd", "hybrid")][1] + 0.05
