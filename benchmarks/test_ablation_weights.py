"""Ablation: vertex-weighted balancing (the PuLP family's extension).

Not a paper figure — XtraPuLP's successor work adds multi-weight support;
this bench quantifies what the weighted constraint buys on heavy-tailed
vertex costs: the unweighted partitioner balances counts and lets the
weighted load drift, the weighted one holds the weighted target at a small
cut premium.
"""

import numpy as np

from repro.bench import ExperimentTable
from repro.core import xtrapulp
from repro.core.quality import vertex_balance

GRAPHS = ["mesh", "webcrawl"]
PARTS = 8


def test_ablation_weights(benchmark, suite_graph):
    table = ExperimentTable(
        "ablation_weights",
        ["graph", "mode", "cut_ratio", "count_balance", "weight_balance"],
        notes="heavy-tailed (Pareto) vertex weights, 8 parts, 4 ranks",
    )

    def experiment():
        out = {}
        for name in GRAPHS:
            g = suite_graph(name, "small")
            rng = np.random.default_rng(7)
            w = 1.0 + rng.pareto(2.0, g.n) * 3.0
            for mode, kwargs in (
                ("unweighted", {}),
                ("weighted", {"vertex_weights": w}),
            ):
                res = xtrapulp(g, PARTS, nprocs=4, **kwargs)
                q = res.quality()
                out[(name, mode)] = (
                    q.cut_ratio,
                    q.vertex_balance,
                    vertex_balance(g, res.parts, PARTS, weights=w),
                )
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for (name, mode), row in sorted(results.items()):
        table.add(name, mode, *row)
    table.emit()

    for name in GRAPHS:
        cut_u, _, wb_u = results[(name, "unweighted")]
        cut_w, _, wb_w = results[(name, "weighted")]
        # the weighted run achieves the weighted constraint
        assert wb_w < 1.10 * 1.15, f"{name}: weighted balance {wb_w:.2f}"
        # at a bounded cut premium
        assert cut_w < cut_u * 1.5 + 0.05
