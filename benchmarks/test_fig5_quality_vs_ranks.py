"""Fig. 5: quality vs. rank count at fixed part count (WDC12 analog).

Paper: 256 parts of WDC12 on 256→2048 Blue Waters nodes.  Edge cut ratio
stays 0.04–0.07 — far below vertex-block (0.16) and random (~1.0); the
partitions stay edge-balanced while block partitioning's "low cut" comes
with a 1.85 edge imbalance; the scaled max cut drifts up with rank count
(the mult throttle grants each rank fewer updates).

Here: webcrawl analog, 32 parts, ranks 2→16, plus the block/random
reference lines.
"""

from repro.baselines import random_partition, vertex_block_partition
from repro.bench import ExperimentTable
from repro.bench.harness import run_xtrapulp
from repro.core.quality import edge_balance, edge_cut_ratio

RANKS = [2, 4, 8, 16]
PARTS = 32


def test_fig5_quality_vs_ranks(benchmark, suite_graph):
    table = ExperimentTable(
        "fig5_quality_vs_ranks",
        ["config", "nprocs", "cut_ratio", "max_cut_ratio", "edge_balance"],
        notes="webcrawl analog of WDC12, 32 parts (paper: 256 parts, 256-2048 nodes)",
    )

    def experiment():
        g = suite_graph("webcrawl", "medium")
        runs = {
            nprocs: run_xtrapulp(g, "webcrawl", PARTS, nprocs).quality
            for nprocs in RANKS
        }
        block = vertex_block_partition(g, PARTS)
        rand = random_partition(g, PARTS, seed=0)
        refs = {
            "VertexBlock": (
                edge_cut_ratio(g, block, PARTS), edge_balance(g, block, PARTS)
            ),
            "Random": (
                edge_cut_ratio(g, rand, PARTS), edge_balance(g, rand, PARTS)
            ),
        }
        return runs, refs

    runs, refs = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for nprocs, q in runs.items():
        table.add("XtraPuLP", nprocs, q.cut_ratio, q.max_cut_ratio,
                  q.edge_balance)
    for name, (cut, ebal) in refs.items():
        table.add(name, "-", cut, "-", ebal)
    table.emit()

    block_cut, block_ebal = refs["VertexBlock"]
    rand_cut, _ = refs["Random"]
    for nprocs, q in runs.items():
        # far below random cut at every rank count
        assert q.cut_ratio < 0.5 * rand_cut
        # and edge-balanced, unlike block partitioning
        assert q.edge_balance < block_ebal
    assert rand_cut > 0.9  # random cuts nearly everything
    assert block_ebal > 1.3  # crawl-block is imbalanced (paper: 1.85)
