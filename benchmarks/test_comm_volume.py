"""Communication volume: compact wire protocol vs the gid64 baseline.

Runs the full XtraPuLP pipeline on the standard bench graphs twice —
``wire="compact"`` (the default: build-time-routed ghost-slot records in
the narrowest dtypes) and ``wire="gid64"`` (the paper's 16-byte
``(gid, part)`` int64 pairs) — and records the metered Alltoallv payload
bytes per exchange phase.  Acceptance: >=3x reduction in every
balance/refine phase on every graph, with bit-identical partitions.
"""

import numpy as np

from repro.bench import ExperimentTable
from repro.core import PulpParams, xtrapulp

PARTS = 8
NPROCS = 4
GRAPHS = ("rmat", "webcrawl")
PHASES = ("vertex_balance", "vertex_refine", "edge_balance", "edge_refine")
REDUCTION_FLOOR = 3.0  # acceptance: >=3x smaller exchange payloads


def _run(graph, wire, seed=42):
    return xtrapulp(
        graph, PARTS, nprocs=NPROCS,
        params=PulpParams(seed=seed, wire=wire),
    )


def _payload(stats):
    """Per-phase Alltoallv payload bytes (the ExchangeUpdates wire data;
    the fixed-size counts Alltoall is identical in both formats)."""
    per_tag = stats.bytes_by_tag_op()
    return {ph: per_tag.get(ph, {}).get("alltoallv", 0) for ph in PHASES}


def test_comm_volume(benchmark, suite_graph):
    table = ExperimentTable(
        "comm_volume",
        ["graph", "phase", "bytes_gid64", "bytes_compact", "reduction",
         "exchange_gid64", "exchange_compact"],
        notes=f"{'/'.join(GRAPHS)}/small, {PARTS} parts on {NPROCS} ranks, "
              "Alltoallv payload bytes per phase; exchange_* columns add "
              "the counts Alltoall; TOTAL rows gate the acceptance "
              f"(>= {REDUCTION_FLOOR}x per phase and overall)",
    )

    def experiment():
        out = {}
        for name in GRAPHS:
            g = suite_graph(name, "small")
            out[name] = (_run(g, "compact"), _run(g, "gid64"))
        return out

    runs = benchmark.pedantic(experiment, rounds=1, iterations=1)

    for name in GRAPHS:
        compact, legacy = runs[name]
        # the compact format is an encoding change only: same partition,
        # same BSP rounds, record for record
        np.testing.assert_array_equal(compact.parts, legacy.parts)
        assert compact.stats.rounds == legacy.stats.rounds

        pay_c, pay_l = _payload(compact.stats), _payload(legacy.stats)
        exch_c = compact.stats.exchange_bytes_by_tag()
        exch_l = legacy.stats.exchange_bytes_by_tag()
        for ph in PHASES:
            ratio = pay_l[ph] / max(pay_c[ph], 1)
            table.add(name, ph, pay_l[ph], pay_c[ph], round(ratio, 2),
                      exch_l.get(ph, 0), exch_c.get(ph, 0))
            assert ratio >= REDUCTION_FLOOR, (
                f"{name}/{ph}: only {ratio:.2f}x payload reduction"
            )
        tot_l, tot_c = sum(pay_l.values()), sum(pay_c.values())
        total_ratio = tot_l / max(tot_c, 1)
        table.add(name, "TOTAL", tot_l, tot_c, round(total_ratio, 2),
                  sum(exch_l.get(ph, 0) for ph in PHASES),
                  sum(exch_c.get(ph, 0) for ph in PHASES))
        assert total_ratio >= REDUCTION_FLOOR, (
            f"{name}: only {total_ratio:.2f}x overall payload reduction"
        )
    table.emit()
