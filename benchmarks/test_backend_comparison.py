"""Execution-backend comparison: same partitioning job on every backend.

The backends trade scheduling strategy for speed — ``serial`` interleaves
all ranks on one thread, ``threads`` overlaps ranks wherever NumPy drops
the GIL, ``procs`` forks real processes and pays shared-memory transport
per collective to escape the GIL entirely.  Because the algorithm is bulk
synchronous, all three must produce bit-identical partitions and byte
counts; this bench records what each one costs in wall time, and the
determinism columns double as an end-to-end cross-backend check on a
bigger graph than the unit tests use.
"""

import numpy as np

from repro.bench import ExperimentTable
from repro.core import PulpParams, xtrapulp
from repro.simmpi import available_backends

PARTS = 8
NPROCS = 4
GRAPH = "rmat"


def test_backend_comparison(benchmark, suite_graph):
    table = ExperimentTable(
        "backend_comparison",
        ["backend", "wall_s", "model_s", "cutsize", "MiB_sent",
         "same_parts_as_serial"],
        notes=f"{GRAPH}/small, {PARTS} parts on {NPROCS} ranks; identical "
              "partitions and traffic required on every backend",
    )
    g = suite_graph(GRAPH, "small")
    backends = sorted(available_backends())

    def experiment():
        return {
            b: xtrapulp(g, PARTS, nprocs=NPROCS,
                        params=PulpParams(seed=42), backend=b)
            for b in backends
        }

    runs = benchmark.pedantic(experiment, rounds=1, iterations=1)

    ref = runs["serial"]
    for b in backends:
        r = runs[b]
        assert r.stats.bytes_by_tag() == ref.stats.bytes_by_tag()
        table.add(
            b,
            round(r.wall_seconds, 3),
            round(r.modeled_seconds, 4),
            int(r.quality().cut),
            round(r.stats.total_bytes / 2**20, 2),
            bool(np.array_equal(r.parts, ref.parts)),
        )
    table.emit()
    for b in backends:
        np.testing.assert_array_equal(runs[b].parts, ref.parts)
