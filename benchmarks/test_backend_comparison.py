"""Execution-backend comparison: same partitioning job on every backend.

The backends trade scheduling strategy for speed — ``serial`` interleaves
all ranks on one thread, ``threads`` overlaps ranks wherever NumPy drops
the GIL, ``procs`` forks real processes and escapes the GIL entirely,
moving payloads through a selectable data plane
(:mod:`repro.simmpi.dataplane`): zero-copy shm descriptors by default,
copy-through pickle as the verification mode.  Because the algorithm is
bulk synchronous, every backend x data-plane combination must produce
bit-identical partitions and byte counts; this bench records what each
one costs in wall time (measured with ``time.perf_counter`` around the
whole run) next to the machine-model time, and the determinism columns
double as an end-to-end cross-backend check on a bigger graph than the
unit tests use.
"""

import time

import numpy as np

from repro.bench import ExperimentTable
from repro.core import PulpParams, xtrapulp
from repro.simmpi import available_backends
from repro.simmpi.backends import ProcsBackend, _REGISTRY, create_runtime
from repro.simmpi.dataplane import DATAPLANES

PARTS = 8
NPROCS = 4
GRAPH = "rmat"


def _configs():
    """(backend, dataplane) rows: every backend, procs once per plane."""
    configs = []
    for b in sorted(available_backends()):
        if issubclass(_REGISTRY[b], ProcsBackend):
            configs.extend((b, plane) for plane in DATAPLANES)
        else:
            configs.append((b, "-"))
    return configs


def test_backend_comparison(benchmark, suite_graph, scale_ranks):
    table = ExperimentTable(
        "backend_comparison",
        ["backend", "dataplane", "ranks", "wall_s", "model_s", "cutsize",
         "MiB_sent", "same_parts_as_serial"],
        notes=f"{GRAPH}/small, {PARTS} parts on {NPROCS} ranks (plus one "
              f"large-P serial row at {scale_ranks} ranks, settable with "
              "--ranks); identical partitions and traffic required on "
              "every backend and data plane; wall_s is perf_counter "
              "around the whole run",
    )
    g = suite_graph(GRAPH, "small")
    configs = _configs()

    def experiment():
        runs = {}
        for b, plane in configs:
            rt = create_runtime(
                b, nprocs=NPROCS, meter_compute=False,
                **({"dataplane": plane} if plane != "-" else {}))
            t0 = time.perf_counter()
            result = xtrapulp(g, PARTS, nprocs=NPROCS,
                              params=PulpParams(seed=42), backend=rt)
            runs[(b, plane)] = (time.perf_counter() - t0, result)
        # large-P row: only the serial backend schedules hundreds of
        # ranks in reasonable wall time (see DESIGN.md on backend choice)
        rt = create_runtime("serial", nprocs=scale_ranks,
                            meter_compute=False)
        t0 = time.perf_counter()
        result = xtrapulp(g, PARTS, nprocs=scale_ranks,
                          params=PulpParams(seed=42), backend=rt)
        runs[("serial", "-", scale_ranks)] = (
            time.perf_counter() - t0, result)
        return runs

    runs = benchmark.pedantic(experiment, rounds=1, iterations=1)

    ref = runs[("serial", "-")][1]
    for b, plane in configs:
        wall, r = runs[(b, plane)]
        assert r.stats.bytes_by_tag() == ref.stats.bytes_by_tag()
        table.add(
            b,
            plane,
            NPROCS,
            round(wall, 3),
            round(r.modeled_seconds, 4),
            int(r.quality().cut),
            round(r.stats.total_bytes / 2**20, 2),
            bool(np.array_equal(r.parts, ref.parts)),
        )
    wall, r = runs[("serial", "-", scale_ranks)]
    table.add(
        "serial", "-", scale_ranks, round(wall, 3),
        round(r.modeled_seconds, 4), int(r.quality().cut),
        round(r.stats.total_bytes / 2**20, 2),
        "-",  # a different rank count legitimately partitions differently
    )
    table.emit()
    for key, (_, r) in runs.items():
        if len(key) == 2:  # the large-P row runs at a different rank count
            np.testing.assert_array_equal(r.parts, ref.parts)
