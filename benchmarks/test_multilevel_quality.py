"""Multilevel vs. flat partition quality (ISSUE 10 acceptance gate).

The V-cycle's value proposition: coarsening exposes global structure the
flat single-level pipeline cannot see, so at matched settings the
multilevel cut must be >=10% lower on both the mesh and the webcrawl
class, at <=2x the modeled flat time, while still satisfying the balance
constraints — and, like every subsystem here, bit-identically on every
execution backend.

Configuration notes: heavy-edge matching coarsening with a deeper refine
budget (``ml_refine_iters=12``) is the quality configuration; part count
is chosen per graph family (the multilevel advantage grows with part
count on scale-free graphs, while the mesh comparison is sharpest at
moderate counts).  Each ML row is compared against the flat pipeline
under identical (graph, parts, ranks, machine) conditions.
"""

import numpy as np

from repro.bench import ExperimentTable
from repro.core import PulpParams, xtrapulp
from repro.core.quality import partition_quality

NPROCS = 4
# (graph, parts): mesh at a moderate count, webcrawl where skew bites
CASES = [("mesh", 8), ("webcrawl", 16)]

ML = PulpParams(multilevel=True, ml_coarsen="hem", ml_refine_iters=12,
                seed=42)
FLAT = PulpParams(seed=42)


def test_multilevel_quality(benchmark, suite_graph):
    table = ExperimentTable(
        "multilevel_quality",
        ["graph", "parts", "pipeline", "cut", "cut_ratio",
         "vertex_balance", "edge_balance", "modeled_s", "levels",
         "coarsest_n"],
        notes="hem coarsening, ml_refine_iters=12; flat at same seed",
    )

    def experiment():
        out = {}
        for name, p in CASES:
            g = suite_graph(name, "small")
            flat = xtrapulp(g, p, nprocs=NPROCS, params=FLAT)
            ml = xtrapulp(g, p, nprocs=NPROCS, params=ML)
            out[(name, p)] = (g, flat, ml)
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    for (name, p), (g, flat, ml) in results.items():
        for label, res in (("flat", flat), ("multilevel", ml)):
            q = partition_quality(g, res.parts, p)
            info = res.multilevel
            table.add(name, p, label, q.cut, round(q.cut_ratio, 4),
                      round(q.vertex_balance, 4), round(q.edge_balance, 4),
                      round(res.modeled_seconds, 4),
                      info.levels if info else 1,
                      info.coarsest_n if info else g.n)
    table.emit()

    for (name, p), (g, flat, ml) in results.items():
        qf = partition_quality(g, flat.parts, p)
        qm = partition_quality(g, ml.parts, p)
        # >=10% lower cut than the flat pipeline...
        assert qm.cut <= 0.9 * qf.cut, (name, qm.cut, qf.cut)
        # ...at <=2x the modeled time...
        assert ml.modeled_seconds <= 2.0 * flat.modeled_seconds, name
        # ...without giving up the balance constraints
        assert qm.vertex_balance <= 1.10 + 0.01, (name, qm.vertex_balance)
        assert qm.edge_balance <= 1.10 + 0.01, (name, qm.edge_balance)
        # the hierarchy actually engaged
        assert ml.multilevel.levels >= 2
        assert ml.multilevel.coarsest_n < g.n

    # backend bit-identity at benchmark scale (mesh case, all backends)
    g, _, ml = results[CASES[0]]
    for backend in ("threads", "procs"):
        other = xtrapulp(g, CASES[0][1], nprocs=NPROCS, params=ML,
                         backend=backend)
        np.testing.assert_array_equal(other.parts, ml.parts)
        assert other.stats.signature() == ml.stats.signature()
