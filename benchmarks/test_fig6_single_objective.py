"""Fig. 6: single-objective single-constraint comparison (vs KaHIP et al.).

Paper: with edge-balancing disabled, XtraPuLP's cut is within a small
factor of Meyerhenke et al. (KaHIP) and ParMETIS on lj / rmat_22 /
uk-2002 while running far faster than both; execution-time performance
ratios 1.27 (PuLP), 1.73 (XtraPuLP), 11.81 (ParMETIS), 26.5 (KaHIP).

Here: social / rmat / webcrawl analogs, parts 2→64; XtraPuLP and PuLP in
single-objective mode vs the multilevel baseline in both quality modes.
"""

from repro.baselines import (
    MultilevelResourceError,
    multilevel_partition,
    pulp,
)
from repro.bench import ExperimentTable
from repro.bench.harness import run_xtrapulp
from repro.core.quality import edge_cut_ratio, performance_ratios
from repro.simmpi.timing import SINGLE_NODE_MPI

GRAPHS = ["social", "rmat", "webcrawl"]  # lj / rmat_22 / uk-2002 analogs
PART_COUNTS = [2, 8, 32]
#: "All codes are run using 16-way parallelism": PuLP = 16 threads,
#: XtraPuLP = 16 single-core MPI ranks sharing a node.
WAYS = 16


def test_fig6_single_objective(benchmark, suite_graph):
    table = ExperimentTable(
        "fig6_single_objective",
        ["graph", "partitioner", "parts", "cut_ratio", "time_s"],
        notes="single-objective mode; multilevel 'high' = KaHIP-like",
    )

    def experiment():
        out = {}
        for name in GRAPHS:
            g = suite_graph(name, "small")
            for p in PART_COUNTS:
                run = run_xtrapulp(
                    g, name, p, WAYS, single_objective=True,
                    machine=SINGLE_NODE_MPI,
                )
                out[(name, "XtraPuLP", p)] = (
                    run.quality.cut_ratio, run.modeled_seconds
                )
                pr = pulp(g, p, threads=WAYS, single_objective=True)
                out[(name, "PuLP", p)] = (
                    pr.quality(g).cut_ratio, pr.modeled_seconds
                )
                for mode, label in (("default", "ParMETIS-like"),
                                    ("high", "KaHIP-like")):
                    try:
                        ml = multilevel_partition(g, p, quality=mode, seed=0)
                        out[(name, label, p)] = (
                            edge_cut_ratio(g, ml.parts, p), ml.seconds
                        )
                    except MultilevelResourceError:
                        out[(name, label, p)] = None
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for (name, partitioner, p), row in sorted(results.items()):
        if row is not None:
            table.add(name, partitioner, p, row[0], row[1])
    table.emit()

    # time performance ratios: label propagation far cheaper than multilevel
    methods = ["XtraPuLP", "PuLP", "ParMETIS-like", "KaHIP-like"]
    keys = [
        (g_, p) for g_ in GRAPHS for p in PART_COUNTS
        if all(results.get((g_, m, p)) for m in methods)
    ]
    times = {
        m: [results[(g_, m, p)][1] for (g_, p) in keys] for m in methods
    }
    ratios = performance_ratios(times)
    # the paper's time ordering: PuLP <= XtraPuLP << multilevel codes
    assert ratios["PuLP"] <= ratios["XtraPuLP"] * 1.05
    assert ratios["PuLP"] < ratios["ParMETIS-like"]
    assert ratios["XtraPuLP"] < ratios["ParMETIS-like"]
    assert ratios["XtraPuLP"] < ratios["KaHIP-like"]
    print(f"   time performance ratios: { {k: round(v,2) for k,v in ratios.items()} }")
