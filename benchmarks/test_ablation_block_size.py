"""Ablation: propagation block size (the asynchrony-granularity knob).

The paper's implementation refreshes part-size estimates after *every*
vertex move (thread atomics); this implementation refreshes them between
vectorized blocks.  ``block_size`` therefore interpolates between
fine-grained asynchrony (small blocks, more overhead) and one-shot
Jacobi-style sweeps (block = everything, no within-iteration feedback).
The quality/constraint behaviour should be stable across reasonable block
sizes — evidence that the capacity-admission rule, not the block
granularity, is what enforces the constraints.
"""

from repro.bench import ExperimentTable
from repro.core import PulpParams, xtrapulp

BLOCK_SIZES = [256, 1024, 4096, 1 << 20]
PARTS = 16


def test_ablation_block_size(benchmark, suite_graph):
    table = ExperimentTable(
        "ablation_block_size",
        ["block_size", "cut_ratio", "vertex_bal", "edge_bal", "wall_s"],
        notes="rmat analog, 16 parts, 4 ranks",
    )

    def experiment():
        g = suite_graph("rmat", "small")
        out = {}
        for bs in BLOCK_SIZES:
            res = xtrapulp(
                g, PARTS, nprocs=4, params=PulpParams(block_size=bs)
            )
            q = res.quality()
            out[bs] = (q.cut_ratio, q.vertex_balance, q.edge_balance,
                       res.wall_seconds)
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for bs, row in sorted(results.items()):
        table.add(bs, *row)
    table.emit()

    # constraints hold across the whole granularity range
    for bs, (cut, vbal, ebal, _) in results.items():
        assert vbal < 1.35, f"block_size={bs} broke vertex balance ({vbal:.2f})"
        assert cut < 1.0
    cuts = [row[0] for row in results.values()]
    assert max(cuts) - min(cuts) < 0.15  # quality stable in granularity
