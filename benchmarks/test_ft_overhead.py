"""Checkpointing overhead: modeled cost of the checkpoint collectives.

Runs the full pipeline with checkpointing off / every outer iteration /
every phase and measures (a) the modeled time of the ``checkpoint``-tagged
events against the modeled partitioning time, and (b) the bytes the
checkpoint collectives move against the partitioning traffic.  Acceptance:
at the default ``outer`` granularity the modeled overhead stays under
``OVERHEAD_CEILING`` of the modeled partition time — checkpointing must be
cheap enough to leave on.
"""

import tempfile

import numpy as np

from repro.bench import ExperimentTable
from repro.core import PulpParams, xtrapulp
from repro.core.driver import PARTITION_PHASES
from repro.ft import CkptPolicy
from repro.simmpi.timing import TimeModel

PARTS = 8
NPROCS = 4
GRAPHS = ("rmat", "webcrawl")
OVERHEAD_CEILING = 0.10  # modeled checkpoint time / partition time, "outer"


def _run(graph, every, ckpt_dir):
    params = PulpParams(seed=42)
    checkpoint = (
        None if every is None else CkptPolicy(dir=ckpt_dir, every=every)
    )
    return xtrapulp(graph, PARTS, nprocs=NPROCS, params=params,
                    backend="serial", checkpoint=checkpoint)


def test_ft_overhead(benchmark, suite_graph):
    table = ExperimentTable(
        "ft_overhead",
        ["graph", "every", "epochs", "ckpt_bytes", "part_bytes",
         "ckpt_seconds", "part_seconds", "overhead"],
        notes=f"{'/'.join(GRAPHS)}/small, {PARTS} parts on {NPROCS} ranks; "
              "overhead = modeled checkpoint time / modeled partition time "
              f"(acceptance at every=outer: < {OVERHEAD_CEILING:.0%})",
    )

    def experiment():
        out = {}
        for name in GRAPHS:
            g = suite_graph(name, "small")
            runs = {}
            for every in (None, "outer", "phase"):
                with tempfile.TemporaryDirectory() as d:
                    runs[every] = _run(g, every, d)
            out[name] = runs
        return out

    runs = benchmark.pedantic(experiment, rounds=1, iterations=1)

    overheads = {}
    for name in GRAPHS:
        baseline = runs[name][None]
        for every in (None, "outer", "phase"):
            res = runs[name][every]
            model = TimeModel(res.machine)
            ckpt = res.stats.filtered(["checkpoint"])
            part = res.stats.filtered(PARTITION_PHASES)
            ckpt_s = model.total_time(ckpt)
            part_s = model.total_time(part)
            overhead = ckpt_s / part_s
            table.add(name, every or "off", len(ckpt.events),
                      int(ckpt.total_bytes), int(part.total_bytes),
                      round(ckpt_s, 6), round(part_s, 6),
                      round(overhead, 4))
            if every == "outer":
                overheads[name] = overhead
            # checkpointing must not perturb the partition itself
            assert np.array_equal(res.parts, baseline.parts)
            # ...or the partition-phase record it is measured against
            assert part.signature() == \
                baseline.stats.filtered(PARTITION_PHASES).signature()
    table.emit()

    for name, o in overheads.items():
        assert o < OVERHEAD_CEILING, (
            f"{name}: checkpoint overhead {o:.1%} exceeds "
            f"{OVERHEAD_CEILING:.0%} of modeled partition time"
        )
