"""Fig. 1: strong scaling on the Blue Waters analog.

Paper: partitioning WDC12 / RMAT / RandER / RandHD (3.56 B vertices each)
into 256 parts on 256→2048 nodes; speedups 2.9× (WDC12), 8.4× (RMAT),
6.8× (RandER), 5.7× (RandHD) over the 8× node range.

Here: the same four graph classes at 2^15 vertices, 32 parts, 2→16 ranks
(the same 8× span), modeled Blue-Waters-like time.

Shapes to reproduce: all four curves fall with rank count; the synthetic
graphs scale better than the crawl (load balance); RandHD is the cheapest
per rank count, RMAT the most expensive.
"""

from repro.bench import ExperimentTable
from repro.bench.harness import run_xtrapulp, speedup_series

GRAPHS = ["webcrawl", "rmat", "rander", "randhd"]  # webcrawl == WDC12 analog
RANKS = [2, 4, 8, 16]
PARTS = 32


def test_fig1_strong_scaling(benchmark, suite_graph):
    table = ExperimentTable(
        "fig1_strong_scaling",
        ["graph", "nprocs", "modeled_s", "speedup_vs_2"],
        notes=f"{PARTS} parts, scale=medium; paper: 256 parts on 256-2048 nodes",
    )

    def experiment():
        out = {}
        for name in GRAPHS:
            g = suite_graph(name, "medium")
            times = {}
            for nprocs in RANKS:
                run = run_xtrapulp(g, name, PARTS, nprocs)
                times[nprocs] = run.modeled_seconds
            out[name] = times
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for name, times in results.items():
        speedups = speedup_series(times)
        for nprocs in RANKS:
            table.add(name, nprocs, times[nprocs], round(speedups[nprocs], 2))
    table.emit()

    for name, times in results.items():
        speedup = times[RANKS[0]] / times[RANKS[-1]]
        assert speedup > 1.5, f"{name} shows no strong scaling ({speedup:.2f}x)"
    # RandHD cheapest, RMAT most expensive at the largest rank count (paper)
    last = {name: times[RANKS[-1]] for name, times in results.items()}
    assert last["randhd"] < last["rmat"]
