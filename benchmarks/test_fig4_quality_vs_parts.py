"""Fig. 4: partition quality vs. part count, three partitioners.

Paper: edge cut ratio and scaled max cut for XtraPuLP / PuLP / ParMETIS on
six graphs, parts 2→256.  Key shapes: cut ratio rises with part count and
approaches 1.0 for rmat; the mesh (nlpkkt240) stays nearly flat and low;
XtraPuLP tracks PuLP closely; ParMETIS fails on some irregular inputs but
is clearly best on the mesh class.
"""

from repro.baselines import MultilevelResourceError, multilevel_partition, pulp
from repro.bench import ExperimentTable
from repro.bench.harness import run_xtrapulp
from repro.core.quality import partition_quality
from repro.suite import REPRESENTATIVE_SIX

PART_COUNTS = [2, 8, 32, 128]


def test_fig4_quality_vs_parts(benchmark, suite_graph):
    table = ExperimentTable(
        "fig4_quality_vs_parts",
        ["graph", "partitioner", "parts", "cut_ratio", "max_cut_ratio"],
        notes="paper sweeps 2-256 parts; '(fail)' rows omitted",
    )

    def experiment():
        out = {}
        for name in REPRESENTATIVE_SIX:
            g = suite_graph(name, "small")
            for p in PART_COUNTS:
                run = run_xtrapulp(g, name, p, 4)
                out[(name, "XtraPuLP", p)] = run.quality
                q = pulp(g, p, threads=4).quality(g)
                out[(name, "PuLP", p)] = q
                try:
                    ml = multilevel_partition(g, p, seed=0)
                    out[(name, "Multilevel", p)] = partition_quality(
                        g, ml.parts, p
                    )
                except MultilevelResourceError:
                    out[(name, "Multilevel", p)] = None
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for (name, partitioner, p), q in sorted(results.items()):
        if q is not None:
            table.add(name, partitioner, p, q.cut_ratio, q.max_cut_ratio)
    table.emit()

    def cut(name, partitioner, p):
        q = results[(name, partitioner, p)]
        return None if q is None else q.cut_ratio

    # cut rises with part count for the skewed classes, approaching 1
    for name in ("rmat", "social"):
        assert cut(name, "XtraPuLP", 128) > cut(name, "XtraPuLP", 2)
        assert cut(name, "XtraPuLP", 128) > 0.7
    # mesh stays low even at high part counts (paper's nlpkkt240 shape)
    assert cut("mesh", "XtraPuLP", 128) < 0.5
    # XtraPuLP tracks PuLP within a modest factor everywhere
    for name in REPRESENTATIVE_SIX:
        for p in PART_COUNTS:
            a, b = cut(name, "XtraPuLP", p), cut(name, "PuLP", p)
            if a and b:
                assert a < 1.8 * b + 0.05
