"""Fig. 3: XtraPuLP relative speedup on Cluster-1, 1→16 nodes, 16 parts.

Paper: speedups vary with graph structure, reaching 14× (dbpedia) and
12.8× (uk-2002); no intrinsic scaling bottleneck at 16 nodes.

Here: the six suite classes, ranks 1→16, modeled time speedup vs 1 rank.
Shape: every class speeds up monotonically-ish, with structure-dependent
slopes.
"""

from repro.bench import ExperimentTable
from repro.bench.harness import run_xtrapulp, speedup_series
from repro.suite import REPRESENTATIVE_SIX

RANKS = [1, 2, 4, 8, 16]
PARTS = 16


def test_fig3_relative_speedup(benchmark, suite_graph):
    table = ExperimentTable(
        "fig3_relative_speedup",
        ["graph", "nprocs", "modeled_s", "speedup"],
        notes="16 parts; speedup vs 1 rank (paper: vs 1 node of Cluster-1)",
    )

    def experiment():
        out = {}
        for name in REPRESENTATIVE_SIX:
            g = suite_graph(name, "medium")
            times = {}
            for nprocs in RANKS:
                times[nprocs] = run_xtrapulp(g, name, PARTS, nprocs).modeled_seconds
            out[name] = times
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for name, times in results.items():
        sp = speedup_series(times)
        for nprocs in RANKS:
            table.add(name, nprocs, times[nprocs], round(sp[nprocs], 2))
    table.emit()

    for name, times in results.items():
        assert times[16] < times[1], f"{name}: no speedup at 16 ranks"
        best = min(times.values())
        assert times[1] / best > 2.0, f"{name}: peak speedup too low"
    # speedups are structure-dependent (paper observes a wide range); at
    # laptop scale the spread is narrower but still present
    speedups16 = sorted(times[1] / times[16] for times in results.values())
    assert speedups16[-1] > 1.2 * speedups16[0]
