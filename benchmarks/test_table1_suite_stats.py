"""Table I: test-graph statistics (n, m, davg, dmax, approximate diameter).

Regenerates the paper's Table I for the class-representative suite, using
the paper's diameter estimator (10 iterated BFS sweeps).

Shape to reproduce: social/rmat classes show high dmax and small D~;
the web-crawl class sits between; randhd and mesh show bounded degree and
large D~ (the paper's nlpkkt / InternalMesh / RandHD rows).
"""

from repro.bench import ExperimentTable
from repro.graph.metrics import graph_stats_row
from repro.suite import suite_names


def test_table1_suite_stats(benchmark, suite_graph):
    table = ExperimentTable(
        "table1_suite_stats",
        ["graph", "n", "m", "davg", "dmax", "diameter"],
        notes="Table I analog: suite statistics incl. 10-sweep diameter",
    )

    def experiment():
        rows = {}
        for name in suite_names():
            g = suite_graph(name, "small")
            rows[name] = graph_stats_row(name, g, diameter_sweeps=10, seed=1)
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for name, row in sorted(rows.items()):
        table.add(name, row.n, row.m, round(row.davg, 2), row.dmax, row.diameter)
    table.emit()

    stats = {name: row for name, row in rows.items()}
    # skewed classes: heavy max degree, small diameter
    assert stats["social"].dmax > 20 * stats["social"].davg
    assert stats["rmat"].dmax > 20 * stats["rmat"].davg
    # regular classes: bounded degree, larger diameter
    assert stats["mesh"].dmax <= 30
    assert stats["randhd"].diameter > 5 * stats["social"].diameter
    assert stats["mesh"].diameter > 2 * stats["social"].diameter
