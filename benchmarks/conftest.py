"""Shared fixtures for the experiment benchmarks.

Each benchmark regenerates one paper table/figure at laptop scale and
emits its rows via :class:`repro.bench.ExperimentTable` (printed and saved
to ``results/*.csv``).  Graphs are cached per session so benches share
generation cost.
"""

import pytest

from repro.suite import get_graph

_CACHE = {}


def pytest_addoption(parser):
    parser.addoption(
        "--ranks", type=int, default=512, dest="scale_ranks",
        help="simulated rank count for the large-P scaling rows "
             "(serial backend; default 512)")


@pytest.fixture(scope="session")
def scale_ranks(request):
    """Rank count of the large-P rows, settable with --ranks."""
    return request.config.getoption("scale_ranks")


@pytest.fixture(scope="session")
def suite_graph():
    """Cached accessor: suite_graph(name, scale) -> Graph."""

    def get(name, scale="small", seed=None):
        key = (name, scale, seed)
        if key not in _CACHE:
            _CACHE[key] = get_graph(name, scale, seed=seed)
        return _CACHE[key]

    return get
