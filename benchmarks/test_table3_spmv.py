"""Table III: repeated SpMVs under 1-D / 2-D layouts × partitionings.

Paper (Cluster-1, Epetra, 16→256 MPI tasks, 100 SpMVs): XtraPuLP-based
layouts accelerate SpMV; mapping the 1-D partitions to 2-D distributions
[6] helps further — 2D-XtraPuLP beats 1D-Random by 2.77× (geometric mean)
at 256 tasks on the five irregular graphs; regular meshes gain nothing
from 2-D, and 1D-Random "fares poorly" on them (22.6 s vs 1.6 s at 256
ranks on nlpkkt240).

Here: large-scale (2^17-vertex) suite graphs, 16 ranks, 20 iterations,
modeled cluster-like time.  The 2-D benefit is a bandwidth effect, so the
graphs must be big enough that per-rank volume beats the latency term —
hence the large scale.  The multilevel baseline is omitted at this scale
(ParMETIS also fails on the paper's largest irregular inputs); the
volume column carries the scale-invariant signal.
"""

import numpy as np

from repro.baselines import random_partition, vertex_block_partition
from repro.bench import ExperimentTable
from repro.bench.harness import geometric_mean
from repro.core import PulpParams, xtrapulp
from repro.spmv import run_spmv
from repro.suite import SUITE

GRAPHS = ["social", "webcrawl", "rmat", "mesh"]
NPROCS = 16
ITERS = 20


def test_table3_spmv(benchmark, suite_graph):
    table = ExperimentTable(
        "table3_spmv",
        ["graph", "layout", "strategy", "time_per_iter_ms", "max_rank_kb"],
        notes=f"{NPROCS} ranks, 2^17-vertex graphs, modeled cluster-like time",
    )

    def experiment():
        out = {}
        for name in GRAPHS:
            g = suite_graph(name, "large")
            init = SUITE[name].recommended_init
            strategies = {
                "Block": vertex_block_partition(g, NPROCS),
                "Random": random_partition(g, NPROCS, seed=0),
                "XtraPuLP": xtrapulp(
                    g, NPROCS, nprocs=8,
                    params=PulpParams(init_strategy=init),
                ).parts,
            }
            for layout in ("1d", "2d"):
                for strat, parts in strategies.items():
                    r = run_spmv(
                        g, parts, layout=layout, nprocs=NPROCS, iters=ITERS
                    )
                    spmv = r.stats.filtered(["spmv"])
                    max_rank = spmv.per_rank_bytes().max() / ITERS / 1024
                    total = spmv.total_bytes / ITERS / 1024
                    out[(name, layout, strat)] = (
                        1e3 * r.modeled_per_iteration, max_rank, total
                    )
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for (name, layout, strat), (ms, kb, _total) in sorted(results.items()):
        table.add(name, layout, strat, ms, kb)
    table.emit()

    # headline: 2D-XtraPuLP over 1D-Random on the irregular graphs whose
    # cut a partitioner can actually reduce at p=16 (rmat's ~0.9 cut ratio
    # needs the paper's 256-rank sqrt(p) fan-out for its 2-D win — scale
    # artifact recorded in EXPERIMENTS.md; its *volume* reduction below
    # still holds)
    irregular = [g_ for g_ in GRAPHS if g_ != "mesh"]
    partitionable = ["webcrawl", "social"]
    gains = [
        results[(g_, "1d", "Random")][0] / results[(g_, "2d", "XtraPuLP")][0]
        for g_ in partitionable
    ]
    gmean = geometric_mean(np.array(gains))
    print(f"   2D-XtraPuLP speedup over 1D-Random (geo mean): {gmean:.2f}x")
    assert gmean > 1.0
    assert (
        results[("webcrawl", "1d", "Random")][0]
        > 1.3 * results[("webcrawl", "2d", "XtraPuLP")][0]
    )
    # 2-D caps the busiest rank's traffic on the skewed graphs
    for g_ in irregular:
        assert (
            results[(g_, "2d", "Random")][1]
            < results[(g_, "1d", "Random")][1]
        )
    # mesh: 1D-Random is the bad choice (locality destroyed); block/
    # partitioned 1-D layouts are already near-optimal and 2-D adds nothing
    assert (
        results[("mesh", "1d", "Random")][0]
        > 1.5 * results[("mesh", "1d", "Block")][0]
    )
    assert (
        results[("mesh", "2d", "XtraPuLP")][0]
        > 0.9 * results[("mesh", "1d", "XtraPuLP")][0]
    )
    # partitioned layouts move fewer bytes than random in 1-D (total
    # volume; per-rank maxima can exceed random's, which balances traffic
    # perfectly by construction)
    for g_ in GRAPHS:
        assert (
            results[(g_, "1d", "XtraPuLP")][2]
            <= results[(g_, "1d", "Random")][2] * 1.05
        )
