"""Failure-detection overhead: what liveness + integrity guards cost.

Runs the full pipeline unguarded and guarded (watchdog armed with a
generous deadline + crc integrity) and measures the cost in the currency
that matters at paper scale: **modeled parallel time**.  The guards are
pure engine-side work — no extra collectives, no extra bytes — so the
modeled overhead must stay under ``OVERHEAD_CEILING`` (it is exactly 0 by
construction; the gate catches any future guard that leaks into the
metered record).  Wall-clock cost of the checksum scans is reported
informationally (min-of-rounds, noisy on shared CI iron).

The second half gates the *detection bound*: a run with an injected
indefinite hang under a ~1s deadline must finish — detected, killed,
resumed, bit-identical — in a small fraction of the injected stall.
"""

import tempfile
import time

import numpy as np

from repro.bench import ExperimentTable
from repro.core import PulpParams, xtrapulp
from repro.ft import CkptPolicy, FaultPlan, FaultSpec
from repro.ft.recovery import RetryPolicy, run_with_retries

PARTS = 8
NPROCS = 4
GRAPHS = ("rmat", "webcrawl")
ROUNDS = 3
OVERHEAD_CEILING = 0.05   # guarded modeled time / unguarded, minus one
GUARD_DEADLINE = 30.0     # generous: must never fire on a healthy run
STALL = 25.0              # injected hang, far past the detection deadline
HANG_DEADLINE = 1.0
#: The recovered hung run must complete well inside the injected stall —
#: detection + kill + resume, not wait-it-out.
HANG_WALL_BOUND = STALL * 0.5


def _run(graph, guarded):
    params = PulpParams(seed=42)
    kwargs = dict(watchdog=GUARD_DEADLINE, integrity="crc") if guarded else {}
    t0 = time.perf_counter()
    res = xtrapulp(graph, PARTS, nprocs=NPROCS, params=params,
                   backend="serial", **kwargs)
    return time.perf_counter() - t0, res


def test_watchdog_overhead(benchmark, suite_graph):
    table = ExperimentTable(
        "watchdog_overhead",
        ["graph", "config", "wall_s", "modeled_s", "modeled_overhead",
         "wall_overhead", "checksums", "signature_equal"],
        notes=f"{'/'.join(GRAPHS)}/small, {PARTS} parts on {NPROCS} ranks; "
              "guarded = watchdog armed + crc integrity; acceptance: "
              f"modeled overhead < {OVERHEAD_CEILING:.0%} and the hang row "
              f"recovers in < {HANG_WALL_BOUND:.0f}s against a "
              f"{STALL:.0f}s injected stall",
    )

    def experiment():
        out = {}
        for name in GRAPHS:
            g = suite_graph(name, "small")
            runs = {}
            for guarded in (False, True):
                best = None
                for _ in range(ROUNDS):
                    wall, res = _run(g, guarded)
                    if best is None or wall < best[0]:
                        best = (wall, res)
                runs[guarded] = best
            out[name] = runs
        return out

    runs = benchmark.pedantic(experiment, rounds=1, iterations=1)

    for name in GRAPHS:
        base_wall, base = runs[name][False]
        for guarded in (False, True):
            wall, res = runs[name][guarded]
            modeled_over = res.modeled_seconds / base.modeled_seconds - 1.0
            wall_over = wall / base_wall - 1.0
            sig_equal = res.stats.signature() == base.stats.signature()
            table.add(name, "guarded" if guarded else "off",
                      round(wall, 4), round(res.modeled_seconds, 6),
                      round(modeled_over, 6), round(wall_over, 4),
                      res.stats.checksum_verifications, sig_equal)
            # the guards must not perturb the partition or the record...
            assert np.array_equal(res.parts, base.parts)
            assert sig_equal
            # ...or the modeled time the paper's figures are built from
            assert modeled_over < OVERHEAD_CEILING, (
                f"{name}: guarded modeled time {modeled_over:.1%} over "
                f"unguarded (ceiling {OVERHEAD_CEILING:.0%})"
            )
            if guarded:
                assert res.stats.checksum_verifications > 0

    # -- detection bound: a hung run ends in seconds, not in STALL ---------
    g = suite_graph(GRAPHS[0], "small")
    params = PulpParams(seed=42)
    base = xtrapulp(g, PARTS, nprocs=NPROCS, params=params, backend="serial")
    plan = FaultPlan([FaultSpec(1, "vertex_refine", 4, action="delay",
                                delay=STALL)])
    with tempfile.TemporaryDirectory() as d:
        t0 = time.perf_counter()
        res = run_with_retries(
            g, PARTS, checkpoint=CkptPolicy(dir=d), fault_plan=plan,
            retry=RetryPolicy(max_retries=2, sleep=lambda s: None),
            nprocs=NPROCS, params=params, backend="procs",
            watchdog=HANG_DEADLINE,
        )
        hang_wall = time.perf_counter() - t0
    assert np.array_equal(res.parts, base.parts)
    res_sig = [s for s in res.stats.signature() if s[1] != "checkpoint"]
    assert res_sig == base.stats.signature()
    (ev,) = res.stats.recoveries
    # wall_overhead column here = fraction of the injected stall actually
    # paid by the recovered run (1.0 would mean "waited it out")
    table.add(GRAPHS[0], f"hang+{HANG_DEADLINE:.0f}s-deadline",
              round(hang_wall, 4), round(res.modeled_seconds, 6),
              0.0, round(hang_wall / STALL, 4),
              res.stats.checksum_verifications, True)
    table.emit()

    assert ev.failure_class == "hang"
    assert hang_wall < HANG_WALL_BOUND, (
        f"hung run took {hang_wall:.1f}s against a {STALL:.0f}s stall — "
        f"detection bound {HANG_WALL_BOUND:.0f}s exceeded"
    )
