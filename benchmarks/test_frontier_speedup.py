"""Frontier (active-set) sweeps vs legacy exhaustive sweeps.

Runs the full XtraPuLP pipeline at default iteration counts on the
standard bench graphs twice — ``frontier=True`` (the default) and
``frontier=False`` (legacy) — and records, for every sweep, the fraction
of owned vertices that were active and the edges gathered/tallied by the
scoring kernel, summed across ranks.  The acceptance bar for the active
set is a >=2x reduction in total edges touched; the per-sweep rows show
where the win comes from (late refine iterations collapse to a few
percent of the graph).
"""

import numpy as np

from repro.bench import ExperimentTable
from repro.core import PulpParams
from repro.core.edge_balance import edge_balance_phase, edge_refine_phase
from repro.core.initialization import initialize
from repro.core.quality import edge_cut
from repro.core.refinement import vertex_refine_phase
from repro.core.state import RankState
from repro.core.vertex_balance import vertex_balance_phase
from repro.dist import build_dist_graph, make_distribution
from repro.simmpi import Runtime

PARTS = 8
NPROCS = 4
GRAPHS = ("rmat", "webcrawl")
SPEEDUP_FLOOR = 2.0  # acceptance: >=2x fewer edges touched overall


def _run_logged(graph, frontier, seed=42):
    """Full default pipeline; returns (global parts, merged sweep log).

    The merged log has one entry per sweep: (phase, active, owned, edges)
    summed across ranks.
    """
    params = PulpParams(seed=seed, frontier=frontier)
    dist = make_distribution("random", graph.n, NPROCS, seed=seed)

    def main(comm):
        dg = build_dist_graph(comm, graph, dist)
        state = RankState(dg=dg, num_parts=PARTS, params=params)
        initialize(comm, state)
        state.sweep_log.clear()
        state.iter_tot = 0
        for _ in range(params.outer_iters):
            vertex_balance_phase(comm, state, params.balance_iters)
            vertex_refine_phase(comm, state, params.refine_iters)
        state.iter_tot = 0
        for _ in range(params.outer_iters):
            edge_balance_phase(comm, state, params.balance_iters)
            edge_refine_phase(comm, state, params.refine_iters)
        return dg.owned_gids.copy(), state.parts[: dg.n_local].copy(), \
            state.sweep_log

    results = Runtime(NPROCS).run(main)
    parts = np.empty(graph.n, dtype=np.int64)
    for gids, owned, _ in results:
        parts[gids] = owned
    logs = [r[2] for r in results]
    assert len({len(log) for log in logs}) == 1  # sweeps are collective
    merged = []
    for entries in zip(*logs):
        phase = entries[0][0]
        merged.append((
            phase,
            sum(e[2] for e in entries),
            sum(e[3] for e in entries),
            sum(e[4] for e in entries),
        ))
    return parts, merged


def test_frontier_speedup(benchmark, suite_graph):
    table = ExperimentTable(
        "frontier_speedup",
        ["graph", "sweep", "phase", "active_frac", "edges_frontier",
         "edges_legacy", "cut_frontier", "cut_legacy"],
        notes=f"{'/'.join(GRAPHS)}/small, {PARTS} parts on {NPROCS} ranks, "
              "default iteration counts; TOTAL rows carry the edges-touched "
              f"reduction (acceptance: >= {SPEEDUP_FLOOR}x)",
    )

    def experiment():
        out = {}
        for name in GRAPHS:
            g = suite_graph(name, "small")
            out[name] = (g, _run_logged(g, True), _run_logged(g, False))
        return out

    runs = benchmark.pedantic(experiment, rounds=1, iterations=1)

    reductions = {}
    for name in GRAPHS:
        g, (parts_f, log_f), (parts_l, log_l) = runs[name]
        assert len(log_f) == len(log_l)
        cut_f = edge_cut(g, parts_f, PARTS)
        cut_l = edge_cut(g, parts_l, PARTS)
        for i, ((ph, act, owned, e_f), (_, _, _, e_l)) in enumerate(
            zip(log_f, log_l)
        ):
            table.add(name, i, ph, round(act / max(owned, 1), 4),
                      int(e_f), int(e_l), "", "")
        tot_f = sum(e for *_, e in log_f)
        tot_l = sum(e for *_, e in log_l)
        reductions[name] = tot_l / max(tot_f, 1.0)
        table.add(name, "TOTAL", f"x{reductions[name]:.2f}",
                  round(np.mean([a / max(o, 1) for _, a, o, _ in log_f]), 4),
                  int(tot_f), int(tot_l), cut_f, cut_l)
        # coarse quality guard: the active set must not blow up the cut
        # (the tight 5% statistical bound lives in tests/core/test_frontier)
        assert cut_f <= cut_l * 1.10 + 8
    table.emit()

    for name, r in reductions.items():
        assert r >= SPEEDUP_FLOOR, (
            f"{name}: only {r:.2f}x edges-touched reduction"
        )
