"""Fig. 2: weak scaling, RMAT / RandER / RandHD, davg ∈ {16, 32, 64}.

Paper: 8→2048 Blue Waters nodes with 2^22 vertices per node, parts = node
count; near-flat curves for RandHD, rising for RMAT beyond 256 nodes, and
a sub-linear response to the 4× degree increase (time ratios 1.63× RMAT,
1.35× RandER, 1.18× RandHD at the largest scale).

Here: 2^11 vertices per rank, ranks 2→8, parts = ranks.

Shapes: RandHD flattest and cheapest; RMAT steepest (hub-induced
imbalance under the 1-D distribution); RMAT most sensitive to davg.
"""

import numpy as np

from repro.bench import ExperimentTable
from repro.core import PulpParams, xtrapulp
from repro.graph import erdos_renyi, rand_hd, rmat

VERTS_PER_RANK = 1 << 11
RANKS = [2, 4, 8]
DEGREES = [16, 32, 64]

MAKERS = {
    "rmat": lambda n, d, s: rmat(int(np.log2(n)), d, seed=s),
    "rander": lambda n, d, s: erdos_renyi(n, d, seed=s),
    "randhd": lambda n, d, s: rand_hd(n, d, seed=s),
}


def test_fig2_weak_scaling(benchmark):
    table = ExperimentTable(
        "fig2_weak_scaling",
        ["graph", "davg", "nprocs", "n", "modeled_s"],
        notes="2^11 vertices/rank, parts == ranks; paper: 2^22/node, 8-2048 nodes",
    )

    def experiment():
        out = {}
        for name, make in MAKERS.items():
            for davg in DEGREES:
                for nprocs in RANKS:
                    n = VERTS_PER_RANK * nprocs
                    g = make(n, davg, 7)
                    init = "block" if name == "randhd" else "hybrid"
                    res = xtrapulp(
                        g, nprocs, nprocs=nprocs,
                        params=PulpParams(init_strategy=init),
                    )
                    out[(name, davg, nprocs)] = (n, res.modeled_seconds)
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for (name, davg, nprocs), (n, secs) in sorted(results.items()):
        table.add(name, davg, nprocs, n, secs)
    table.emit()

    # degree sensitivity at the largest rank count: 4x edges costs well
    # under 4x time for every class (paper: 1.18-1.63x).  NOTE: the paper's
    # ordering (RMAT most sensitive) needs its scale to manifest — at 2^11
    # vertices/rank RandHD's ±davg neighbor window is a large fraction of a
    # rank's block, inflating its ghost layer with davg; recorded as a
    # scale artifact in EXPERIMENTS.md.
    def degree_ratio(name):
        lo = results[(name, 16, RANKS[-1])][1]
        hi = results[(name, 64, RANKS[-1])][1]
        return hi / lo

    for name in MAKERS:
        assert 1.0 < degree_ratio(name) < 4.0, (
            f"{name}: degree ratio {degree_ratio(name):.2f}"
        )
    # weak scaling: going 2→8 ranks at fixed davg should cost well under
    # the 4x of a non-scalable method
    for name in MAKERS:
        growth = results[(name, 16, 8)][1] / results[(name, 16, 2)][1]
        assert growth < 4.0, f"{name} weak scaling growth {growth:.2f}x"
