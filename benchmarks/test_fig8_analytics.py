"""Fig. 8: end-to-end analytics time under four partitioning strategies.

Paper: six analytics (HC, KC, LP, PR, SCC, WCC) on WDC12 across 256 Blue
Waters nodes with EdgeBlock / VertexBlock / Random / XtraPuLP placements;
XtraPuLP cuts end-to-end time ~30% (1229 s → 867 s) even including its
own partitioning time, with the largest wins on the cut-proportional
kernels (PR, LP).

Here: the webcrawl analog (directed, for SCC) on 8 ranks; partition time
included in the XtraPuLP column exactly as in the paper.
"""

from repro.analytics import (
    harmonic_centrality,
    kcore_decomposition,
    label_propagation_communities,
    largest_scc,
    pagerank,
    run_analytic,
    weakly_connected_components,
)
from repro.baselines import (
    edge_block_partition,
    random_partition,
    vertex_block_partition,
)
from repro.bench import ExperimentTable
from repro.core import PulpParams, xtrapulp
from repro.graph import webcrawl
from repro.graph.builders import symmetrize

NPROCS = 8
#: 2^16 vertices: big enough that per-superstep ghost volume (the quantity
#: a good partition shrinks) dominates the fixed latency term.
SCALE = 1 << 16
KERNELS = [
    ("HC", harmonic_centrality, {"num_sources": 25, "seed": 7}),
    ("KC", kcore_decomposition, {}),
    ("LP", label_propagation_communities, {"iters": 10}),
    ("PR", pagerank, {"iters": 30}),
    ("SCC", largest_scc, {}),
    ("WCC", weakly_connected_components, {}),
]


def test_fig8_analytics(benchmark):
    table = ExperimentTable(
        "fig8_analytics",
        ["strategy", "kernel", "modeled_s"],
        notes=(
            "webcrawl analog (directed) on 8 ranks; XtraPuLP row 'partition' "
            "is its own cost, included in the end-to-end totals as in Fig. 8"
        ),
    )

    def experiment():
        gd = webcrawl(SCALE, 24, seed=6, directed=True)
        gs = symmetrize(gd)
        # paper §V.E: "we exploit prior knowledge and run the balancing
        # stage of XTRAPULP after first initializing with vertex block
        # partitioning" — i.e. a deliberately light configuration: block
        # init + one balance/refine round instead of the full pipeline
        part_res = xtrapulp(
            gs, NPROCS, nprocs=NPROCS,
            params=PulpParams(
                init_strategy="block", outer_iters=1,
                balance_iters=5, refine_iters=5,
            ),
        )
        strategies = {
            "EdgeBlock": edge_block_partition(gs, NPROCS),
            "VertexBlock": vertex_block_partition(gs, NPROCS),
            "Random": random_partition(gs, NPROCS, seed=0),
            "XtraPuLP": part_res.parts,
        }
        out = {}
        for strat, parts in strategies.items():
            for label, kernel, kwargs in KERNELS:
                r = run_analytic(
                    gs, kernel, nprocs=NPROCS, distribution=parts,
                    directed=gd if label == "SCC" else None,
                    name=label, **kwargs,
                )
                out[(strat, label)] = r.modeled_seconds
        out[("XtraPuLP", "partition")] = part_res.modeled_seconds
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for (strat, kernel), secs in sorted(results.items()):
        table.add(strat, kernel, secs)
    table.emit()

    def total(strat):
        extra = results.get((strat, "partition"), 0.0)
        return extra + sum(
            results[(strat, label)] for label, _, _ in KERNELS
        )

    totals = {s: total(s) for s in ("EdgeBlock", "VertexBlock", "Random",
                                    "XtraPuLP")}
    print(f"   end-to-end totals: { {k: round(v, 3) for k, v in totals.items()} }")
    # the paper's headline: XtraPuLP wins end-to-end INCLUDING its own cost.
    # NOTE: the paper's worst case is EdgeBlock, whose pathology (vertex
    # imbalance from dmax ~ 9.5e7 hubs) cannot exist at 2^16 vertices; at
    # this scale EdgeBlock is a competitive layout, so the reproduced
    # ordering is asserted against Random and VertexBlock (EXPERIMENTS.md).
    assert totals["XtraPuLP"] < totals["Random"]
    assert totals["XtraPuLP"] < totals["VertexBlock"]
    assert totals["XtraPuLP"] < 1.25 * totals["EdgeBlock"]
    # cut-proportional kernels benefit most vs random placement
    assert results[("XtraPuLP", "PR")] < results[("Random", "PR")]
    assert results[("XtraPuLP", "HC")] < results[("Random", "HC")]
