"""Table II: XtraPuLP (16 ranks) vs PuLP (1 node) vs ParMETIS-like times.

Paper (Cluster-1, computing 16 parts): single-node PuLP beats ParMETIS on
every small-world class (up to 100×); ParMETIS wins only on the regular
meshes; 16-node XtraPuLP beats single-node PuLP on all small-world graphs
(1.3–7.2×); ParMETIS fails (OOM) on several large irregular inputs.

Here the time comparison between the label-propagation family and the
multilevel family is **wall clock of the two real NumPy implementations**
(same interpreter, same machine — per-edge constants comparable), while
the XtraPuLP-vs-PuLP comparison uses the deterministic modeled times
(same engine, different machine models).  Known deviation recorded in
EXPERIMENTS.md: the paper's ParMETIS *wins* on meshes thanks to decades of
bucket-FM engineering our vectorized refinement does not replicate; the
reproduced invariant is the *relative* ordering across classes (multilevel
is closest to label propagation on meshes, furthest on small-world).
"""

from repro.baselines import MultilevelResourceError, multilevel_partition, pulp
from repro.bench import ExperimentTable
from repro.bench.harness import run_xtrapulp
from repro.suite import REPRESENTATIVE_SIX

PARTS = 16


def test_table2_partitioner_times(benchmark, suite_graph):
    table = ExperimentTable(
        "table2_partitioner_times",
        ["graph", "xtrapulp16_model_s", "pulp_model_s", "xtra_vs_pulp",
         "pulp_wall_s", "ml_wall_s", "ml_vs_pulp_wall"],
        notes="16 parts; ml '(fail)' = resource failure (ParMETIS-OOM analog)",
    )

    def experiment():
        out = {}
        for name in REPRESENTATIVE_SIX:
            g = suite_graph(name, "small")
            xtra = run_xtrapulp(g, name, PARTS, 16).modeled_seconds
            p = pulp(g, PARTS, threads=16)
            # wall-to-wall comparison runs both engines sequentially (one
            # python thread each) so neither pays simulation rendezvous
            # overhead the other does not
            p_seq = pulp(g, PARTS, threads=1)
            try:
                ml = multilevel_partition(g, PARTS, seed=0).seconds
            except MultilevelResourceError:
                ml = None
            out[name] = (xtra, p.modeled_seconds, p_seq.wall_seconds, ml)
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for name, (xtra, pulp_m, pulp_w, ml) in results.items():
        table.add(
            name,
            xtra,
            pulp_m,
            round(pulp_m / xtra, 2),
            pulp_w,
            "(fail)" if ml is None else round(ml, 3),
            "(fail)" if ml is None else round(ml / pulp_w, 2),
        )
    table.emit()

    small_world = ["social", "webcrawl", "rmat", "rander"]
    # multilevel costs more wall time than the label-prop engine on every
    # small-world class, and the gap is largest there (mesh is its best case)
    ml_ratio = {
        name: results[name][3] / results[name][2]
        for name in REPRESENTATIVE_SIX
        if results[name][3] is not None
    }
    for name in small_world:
        if name in ml_ratio:
            assert ml_ratio[name] > 1.0, f"multilevel unexpectedly fast on {name}"
    if "mesh" in ml_ratio:
        assert ml_ratio["mesh"] <= min(
            ml_ratio[n] for n in small_world if n in ml_ratio
        ) * 1.5
    # distributed XtraPuLP stays within a small factor of one shared-memory
    # node (paper: it *beats* PuLP on 16 nodes; the network costs modeled
    # here keep it close at laptop scale)
    for name in small_world:
        xtra, pulp_m = results[name][0], results[name][1]
        assert xtra < 5 * pulp_m
