"""Fig. 7: the (X, Y) multiplier-parameter heatmaps.

Paper: sweeping X, Y over [0, 4]² shows (i) low X and Y give the best
cut but "wild imbalance swings"; (ii) values above ~1.5 hurt cut; (iii)
balance is achieved in the complementary region, so the operating point
sits on the quality/balance threshold (they pick X=1.0, Y=0.25 for their
per-move update granularity; this implementation's block granularity
selects X=1.0, Y=1.0 — see PulpParams docs).

Here: a 4×4 (X, Y) grid on the social and rmat analogs, 16 parts, 4 ranks,
averaging edge cut / max cut / vertex balance / edge balance.
"""

import numpy as np

from repro.bench import ExperimentTable
from repro.core import PulpParams, xtrapulp

XS = [0.25, 1.0, 2.0, 4.0]
YS = [0.25, 1.0, 2.0, 4.0]
PARTS = 16


def test_fig7_xy_heatmaps(benchmark, suite_graph):
    table = ExperimentTable(
        "fig7_xy_heatmaps",
        ["x", "y", "cut_ratio", "max_cut_ratio", "vertex_bal", "edge_bal"],
        notes="mean over {social, rmat} at 16 parts, 4 ranks; paper sweeps [0,4]^2",
    )

    def experiment():
        graphs = [suite_graph("social", "tiny"), suite_graph("rmat", "tiny")]
        grid = {}
        for x in XS:
            for y in YS:
                qs = [
                    xtrapulp(
                        g, PARTS, nprocs=4, params=PulpParams(x=x, y=y)
                    ).quality(g)
                    for g in graphs
                ]
                grid[(x, y)] = (
                    float(np.mean([q.cut_ratio for q in qs])),
                    float(np.mean([q.max_cut_ratio for q in qs])),
                    float(np.mean([q.vertex_balance for q in qs])),
                    float(np.mean([q.edge_balance for q in qs])),
                )
        return grid

    grid = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for (x, y), vals in sorted(grid.items()):
        table.add(x, y, *vals)
    table.emit()

    # (i) the smallest X=Y gives the loosest balance of the diagonal
    diag_balance = {v: grid[(v, v)][2] for v in XS}
    assert diag_balance[0.25] > diag_balance[1.0]
    # (ii) balance achieved at the moderate operating point
    assert grid[(1.0, 1.0)][2] < 1.25
    # (iii) cut degrades at large X, Y relative to the best observed cut
    best_cut = min(v[0] for v in grid.values())
    assert grid[(4.0, 4.0)][0] >= best_cut
