#!/usr/bin/env python3
"""End-to-end analytics pipeline (the paper's Fig. 8 scenario, §V.E).

The motivating workload: you have a web-scale crawl and want to run a
battery of graph analytics (PageRank, connected components, the giant SCC,
k-cores, communities) in distributed memory.  How you place vertices on
ranks decides how much time the analytics spend in communication — and a
partitioner that is fast enough pays for itself.

This script partitions a directed web-crawl analog, runs the six analytics
under Random placement and under the XtraPuLP partition, and prints the
modeled end-to-end comparison *including* the partitioning cost, exactly
the accounting of Fig. 8.

Run:  python examples/analytics_pipeline.py
"""

import numpy as np

from repro.analytics import (
    harmonic_centrality,
    kcore_decomposition,
    label_propagation_communities,
    largest_scc,
    pagerank,
    run_analytic,
    weakly_connected_components,
)
from repro.baselines import random_partition
from repro.core import PulpParams, xtrapulp
from repro.graph import webcrawl
from repro.graph.builders import symmetrize

NPROCS = 8
KERNELS = [
    ("HC  (harmonic centrality, 25 sources)", harmonic_centrality,
     {"num_sources": 25, "seed": 7}),
    ("KC  (k-core decomposition)", kcore_decomposition, {}),
    ("LP  (community detection)", label_propagation_communities,
     {"iters": 10}),
    ("PR  (PageRank, 30 iters)", pagerank, {"iters": 30}),
    ("SCC (largest strongly connected component)", largest_scc, {}),
    ("WCC (weakly connected components)", weakly_connected_components, {}),
]


def main() -> None:
    directed = webcrawl(30_000, avg_degree=24, seed=6, directed=True)
    graph = symmetrize(directed)
    print(f"workload: {directed} (partitioning its symmetric closure)")

    # the paper's Fig. 8 configuration: vertex-block init + balance stages
    part = xtrapulp(
        graph, NPROCS, nprocs=NPROCS,
        params=PulpParams(init_strategy="block", outer_iters=1,
                          balance_iters=5, refine_iters=5),
    )
    print(f"partitioning: modeled {part.modeled_seconds * 1e3:.1f} ms, "
          f"cut ratio {part.quality().cut_ratio:.3f}")

    strategies = {
        "Random": random_partition(graph, NPROCS, seed=0),
        "XtraPuLP": part.parts,
    }
    totals = {}
    print(f"\n{'kernel':<44} {'Random':>10} {'XtraPuLP':>10}")
    rows = {}
    for strat, parts in strategies.items():
        for label, kernel, kwargs in KERNELS:
            res = run_analytic(
                graph, kernel, nprocs=NPROCS, distribution=parts,
                directed=directed if label.startswith("SCC") else None,
                name=label, **kwargs,
            )
            rows.setdefault(label, {})[strat] = res.modeled_seconds
            if label.startswith("SCC"):
                scc_size = int(np.asarray(res.values).sum())
        totals[strat] = sum(rows[lbl][strat] for lbl in rows)
    for label, by_strat in rows.items():
        print(f"{label:<44} {by_strat['Random'] * 1e3:>8.1f}ms "
              f"{by_strat['XtraPuLP'] * 1e3:>8.1f}ms")

    end_to_end_random = totals["Random"]
    end_to_end_xtra = totals["XtraPuLP"] + part.modeled_seconds
    print(f"\nend-to-end (analytics + partitioning where applicable):")
    print(f"  Random placement : {end_to_end_random * 1e3:8.1f} ms")
    print(f"  XtraPuLP         : {end_to_end_xtra * 1e3:8.1f} ms "
          f"(includes its own {part.modeled_seconds * 1e3:.1f} ms)")
    gain = 100.0 * (1 - end_to_end_xtra / end_to_end_random)
    print(f"  saving           : {gain:5.1f}%   (paper reports ~30% on WDC12)")
    print(f"\nsanity: giant SCC covers {scc_size} vertices")


if __name__ == "__main__":
    main()
