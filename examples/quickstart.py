#!/usr/bin/env python3
"""Quickstart: partition a graph with XtraPuLP and inspect the result.

Generates a web-crawl-like graph, partitions it into 8 parts on 4
simulated MPI ranks, and compares the quality against the random and
vertex-block baselines — the comparison that motivates the whole paper.

Run:  python examples/quickstart.py
"""

from repro.baselines import random_partition, vertex_block_partition
from repro.core import PulpParams, xtrapulp
from repro.core.quality import partition_quality
from repro.graph import webcrawl


def main() -> None:
    # 1. build a graph (any symmetric CSR Graph works: generators,
    #    repro.graph.io readers, from_scipy, from_networkx, ...)
    graph = webcrawl(20_000, avg_degree=24, seed=7)
    print(f"input: {graph}")

    # 2. partition: 8 parts on 4 simulated MPI ranks, paper defaults
    result = xtrapulp(graph, 8, nprocs=4, params=PulpParams(seed=1))
    print(f"\nXtraPuLP finished: modeled parallel time "
          f"{result.modeled_seconds * 1e3:.1f} ms on {result.nprocs} ranks, "
          f"{result.stats.rounds} communication rounds, "
          f"{result.stats.total_bytes / 2**20:.2f} MiB moved")

    # 3. quality vs. the only methods that work at extreme scale (§V.B)
    print(f"\n{'strategy':<14} {'cut ratio':>9} {'max cut':>8} "
          f"{'vbal':>6} {'ebal':>6}")
    rows = {
        "XtraPuLP": result.parts,
        "VertexBlock": vertex_block_partition(graph, 8),
        "Random": random_partition(graph, 8, seed=0),
    }
    for name, parts in rows.items():
        q = partition_quality(graph, parts, 8)
        print(f"{name:<14} {q.cut_ratio:>9.3f} {q.max_cut_ratio:>8.2f} "
              f"{q.vertex_balance:>6.2f} {q.edge_balance:>6.2f}")

    print("\nXtraPuLP should show a far lower cut than Random at equal "
          "balance, and a balanced edge load where VertexBlock's is skewed.")

    # 4. per-phase breakdown of the modeled partitioning time
    print("\nmodeled time by phase (ms):")
    for phase, secs in result.modeled_seconds_by_phase().items():
        print(f"  {phase:<16} {secs * 1e3:8.2f}")


if __name__ == "__main__":
    main()
