#!/usr/bin/env python3
"""SpMV acceleration via partitioning + 2-D layouts (Table III, §V.E).

Parallel sparse matrix-vector multiplication is the inner loop of
eigensolvers and iterative linear solvers.  This script reproduces the
Table III comparison on one graph: 1-D row layouts under Block / Random /
XtraPuLP placements, plus 2-D layouts derived from the same placements via
the Boman–Devine–Rajamanickam mapping, with metered communication volume
and modeled times for a batch of SpMVs.

Run:  python examples/spmv_layouts.py
"""

from repro.baselines import random_partition, vertex_block_partition
from repro.core import PulpParams, xtrapulp
from repro.graph import webcrawl
from repro.spmv import run_spmv

NPROCS = 16
ITERS = 20


def main() -> None:
    # volume effects need a graph large enough that bandwidth beats the
    # fixed per-round latency — 2^17 vertices does it at 16 ranks
    graph = webcrawl(1 << 17, avg_degree=24, seed=5)
    print(f"matrix: adjacency of {graph} on {NPROCS} ranks, "
          f"{ITERS} SpMVs per configuration\n")

    placements = {
        "Block": vertex_block_partition(graph, NPROCS),
        "Random": random_partition(graph, NPROCS, seed=0),
        "XtraPuLP": xtrapulp(graph, NPROCS, nprocs=8,
                             params=PulpParams(seed=2)).parts,
    }

    print(f"{'layout':<5} {'placement':<10} {'time/iter':>10} "
          f"{'max-rank traffic':>17}")
    results = {}
    for layout in ("1d", "2d"):
        for name, parts in placements.items():
            r = run_spmv(graph, parts, layout=layout, nprocs=NPROCS,
                         iters=ITERS)
            spmv = r.stats.filtered(["spmv"])
            max_kb = spmv.per_rank_bytes().max() / ITERS / 1024
            results[(layout, name)] = r.modeled_per_iteration
            print(f"{layout:<5} {name:<10} "
                  f"{r.modeled_per_iteration * 1e6:>8.1f}us "
                  f"{max_kb:>14.1f}KiB")

    speedup_2d = results[("1d", "Random")] / results[("2d", "XtraPuLP")]
    speedup_1d = results[("1d", "Random")] / results[("1d", "XtraPuLP")]
    print(f"\n1D-XtraPuLP vs 1D-Random: {speedup_1d:.2f}x")
    print(f"2D-XtraPuLP vs 1D-Random: {speedup_2d:.2f}x "
          f"(Table III reports 2.77x geometric mean at 256 ranks)")


if __name__ == "__main__":
    main()
