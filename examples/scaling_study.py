#!/usr/bin/env python3
"""Strong-scaling study across graph classes (Fig. 1 / Fig. 3 style).

Partitions one graph from each structural class at increasing simulated
rank counts and prints the modeled-time scaling curves, plus the
communication/computation breakdown that explains where the time goes as
parallelism grows.

Run:  python examples/scaling_study.py
"""

from repro.core import PulpParams, xtrapulp
from repro.simmpi.timing import TimeModel
from repro.suite import SUITE, get_graph

RANKS = [1, 2, 4, 8, 16]
PARTS = 16
GRAPHS = ["webcrawl", "rmat", "randhd", "mesh"]


def main() -> None:
    print(f"computing {PARTS} parts; modeled Blue-Waters-like times\n")
    for name in GRAPHS:
        graph = get_graph(name, "medium")
        init = SUITE[name].recommended_init
        print(f"{name} ({graph.n} vertices, {graph.num_edges} edges, "
              f"init={init})")
        base = None
        for nprocs in RANKS:
            res = xtrapulp(
                graph, PARTS, nprocs=nprocs,
                params=PulpParams(init_strategy=init),
            )
            secs = res.modeled_seconds
            base = base or secs
            parts_stats = res.stats.filtered(
                ["init", "vertex_balance", "vertex_refine",
                 "edge_balance", "edge_refine"]
            )
            b = TimeModel(res.machine).breakdown(parts_stats)
            comm_share = (b["latency"] + b["bandwidth"]) / max(b["total"], 1e-12)
            print(f"  {nprocs:>3} ranks: {secs * 1e3:8.2f} ms  "
                  f"speedup {base / secs:5.2f}x  "
                  f"comm share {100 * comm_share:4.1f}%  "
                  f"cut {res.quality().cut_ratio:.3f}")
        print()
    print("expected shapes: speedup grows then saturates as the fixed\n"
          "latency term takes over (the paper's curves flatten the same\n"
          "way); the communication share rises with rank count.")


if __name__ == "__main__":
    main()
