#!/usr/bin/env python3
"""Vertex-weighted partitioning (the PuLP family's weighted extension).

Real workloads rarely cost the same per vertex: mesh cells carry different
element counts, web pages different index sizes, users different activity.
This example partitions a mesh whose vertices carry heavy-tailed weights
and shows that the unweighted partitioner silently violates the *weighted*
balance the application actually needs, while `vertex_weights=` restores
it at nearly the same cut.

Run:  python examples/weighted_partitioning.py
"""

import numpy as np

from repro.core import xtrapulp
from repro.core.quality import vertex_balance
from repro.graph import mesh3d

P = 8


def main() -> None:
    graph = mesh3d(16, 16, 16)
    rng = np.random.default_rng(7)
    weights = 1.0 + rng.pareto(2.0, graph.n) * 3.0  # heavy-tailed cost
    print(f"graph: {graph}")
    print(f"vertex weights: total={weights.sum():.0f}, "
          f"max={weights.max():.1f} (heavy-tailed)\n")

    unweighted = xtrapulp(graph, P, nprocs=4)
    weighted = xtrapulp(graph, P, nprocs=4, vertex_weights=weights)

    rows = [
        ("unweighted run", unweighted),
        ("weighted run", weighted),
    ]
    print(f"{'configuration':<16} {'cut ratio':>9} {'count bal':>10} "
          f"{'WEIGHT bal':>11}")
    for name, res in rows:
        q = res.quality()
        wb = vertex_balance(graph, res.parts, P, weights=weights)
        print(f"{name:<16} {q.cut_ratio:>9.3f} {q.vertex_balance:>10.3f} "
              f"{wb:>11.3f}")

    print("\nThe weighted run holds the weighted balance near the 1.10 "
          "target;\nthe unweighted run balances *counts* and lets part "
          "weights drift.")


if __name__ == "__main__":
    main()
