"""Property tests: distributed SpMV equals the scipy reference for
arbitrary graphs, layouts, and partitions."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph import from_edges
from repro.graph.builders import to_scipy
from repro.spmv import run_spmv
from repro.spmv.dist_spmv import reference_x


@st.composite
def cases(draw):
    n = draw(st.integers(min_value=4, max_value=30))
    m = draw(st.integers(min_value=2, max_value=80))
    nprocs = draw(st.integers(min_value=1, max_value=5))
    layout = draw(st.sampled_from(["1d", "2d"]))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return n, m, nprocs, layout, seed


@settings(max_examples=30, deadline=None)
@given(cases())
def test_spmv_matches_scipy_everywhere(case):
    n, m, nprocs, layout, seed = case
    rng = np.random.default_rng(seed)
    g = from_edges(n, rng.integers(0, n, size=m), rng.integers(0, n, size=m))
    parts = rng.integers(0, nprocs, size=n)
    r = run_spmv(g, parts, layout=layout, nprocs=nprocs, iters=1)
    ref = to_scipy(g) @ reference_x(n)
    np.testing.assert_allclose(r.y, ref, atol=1e-10)


@settings(max_examples=20, deadline=None)
@given(cases())
def test_spmv_iterations_idempotent(case):
    """Repeating the same multiply must not accumulate state."""
    n, m, nprocs, layout, seed = case
    rng = np.random.default_rng(seed)
    g = from_edges(n, rng.integers(0, n, size=m), rng.integers(0, n, size=m))
    parts = rng.integers(0, nprocs, size=n)
    once = run_spmv(g, parts, layout=layout, nprocs=nprocs, iters=1)
    thrice = run_spmv(g, parts, layout=layout, nprocs=nprocs, iters=3)
    np.testing.assert_allclose(once.y, thrice.y, atol=1e-12)
