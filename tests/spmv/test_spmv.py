"""Distributed SpMV: correctness vs scipy, layout semantics, metering."""

import numpy as np
import pytest

from repro.baselines import random_partition, vertex_block_partition
from repro.graph import mesh3d, rmat, webcrawl
from repro.graph.builders import to_scipy
from repro.spmv import Layout1D, Layout2D, grid_shape, run_spmv
from repro.spmv.dist_spmv import reference_x


@pytest.fixture(scope="module")
def g():
    return rmat(10, 14, seed=3)


@pytest.fixture(scope="module")
def ref(g):
    return to_scipy(g) @ reference_x(g.n)


def test_grid_shape():
    assert grid_shape(16) == (4, 4)
    assert grid_shape(8) == (2, 4)
    assert grid_shape(7) == (1, 7)
    assert grid_shape(1) == (1, 1)
    with pytest.raises(ValueError):
        grid_shape(0)


@pytest.mark.parametrize("layout", ["1d", "2d"])
@pytest.mark.parametrize("nprocs", [1, 4, 6])
@pytest.mark.parametrize("strategy", ["block", "random"])
def test_spmv_matches_scipy(g, ref, layout, nprocs, strategy):
    parts = (
        vertex_block_partition(g, nprocs)
        if strategy == "block"
        else random_partition(g, nprocs, seed=0)
    )
    r = run_spmv(g, parts, layout=layout, nprocs=nprocs, iters=2)
    np.testing.assert_allclose(r.y, ref, atol=1e-10)


def test_spmv_partition_layout(g, ref):
    from repro.core import xtrapulp

    parts = xtrapulp(g, 4, nprocs=2).parts
    for layout in ("1d", "2d"):
        r = run_spmv(g, parts, layout=layout, nprocs=4, iters=2)
        np.testing.assert_allclose(r.y, ref, atol=1e-10)


def test_spmv_validation(g):
    with pytest.raises(ValueError):
        run_spmv(g, np.zeros(3, dtype=int), nprocs=2)
    with pytest.raises(ValueError):
        run_spmv(g, np.full(g.n, 5), nprocs=2)
    with pytest.raises(ValueError):
        run_spmv(g, np.zeros(g.n, dtype=int), layout="3d", nprocs=2)


def test_good_partition_lowers_1d_volume():
    g2 = webcrawl(4096, 16, seed=1)
    from repro.core import xtrapulp

    parts = xtrapulp(g2, 8, nprocs=4).parts
    rand = random_partition(g2, 8, seed=0)
    r_good = run_spmv(g2, parts, layout="1d", nprocs=8, iters=2)
    r_rand = run_spmv(g2, rand, layout="1d", nprocs=8, iters=2)
    vol = lambda r: r.stats.filtered(["spmv"]).total_bytes
    assert vol(r_good) < 0.6 * vol(r_rand)


def test_2d_caps_fanout_on_random_partition():
    """2-D layouts bound each x entry's fan-out by the grid dimensions —
    for a random partition at larger p, total expand+fold volume drops
    versus 1-D (Table III's 2D-Rand vs 1D-Rand effect)."""
    g2 = rmat(12, 16, seed=5)
    rand = random_partition(g2, 16, seed=0)
    r1 = run_spmv(g2, rand, layout="1d", nprocs=16, iters=2)
    r2 = run_spmv(g2, rand, layout="2d", nprocs=16, iters=2)
    vol = lambda r: r.stats.filtered(["spmv"]).total_bytes
    assert vol(r2) < vol(r1)


def test_mesh_block_1d_already_cheap():
    g2 = mesh3d(12, 12, 12)
    block = vertex_block_partition(g2, 8)
    rand = random_partition(g2, 8, seed=0)
    rb = run_spmv(g2, block, layout="1d", nprocs=8, iters=2)
    rr = run_spmv(g2, rand, layout="1d", nprocs=8, iters=2)
    vol = lambda r: r.stats.filtered(["spmv"]).total_bytes
    # "Regular meshes such as nlpkkt240 … 1D-Rand partitioning fares poorly"
    assert vol(rb) < 0.3 * vol(rr)


def test_layout1d_block_structure(g):
    owner = vertex_block_partition(g, 4)
    lay = Layout1D.build(g, owner, rank=1, nprocs=4)
    np.testing.assert_array_equal(lay.rows, np.flatnonzero(owner == 1))
    assert lay.matrix.shape[0] == lay.rows.size
    assert lay.matrix.shape[1] == lay.col_gids.size
    # every column this rank touches appears in col_gids
    assert lay.matrix.nnz == int(g.degrees[lay.rows].sum())


def test_layout2d_covers_all_nonzeros(g):
    parts = random_partition(g, 4, seed=1)
    total = 0
    for r in range(4):
        lay = Layout2D.build(g, parts, rank=r, nprocs=4)
        total += lay.matrix.nnz
    assert total == g.num_directed_edges


def test_modeled_per_iteration(g):
    parts = vertex_block_partition(g, 4)
    r = run_spmv(g, parts, nprocs=4, iters=10)
    assert r.modeled_per_iteration == pytest.approx(r.modeled_seconds / 10)
    assert r.iters == 10
