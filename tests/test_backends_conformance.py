"""Cross-backend conformance: every backend implements the same SPMD
semantics — identical collective results, identical metering, identical
error behaviour — so rank code and benchmarks are backend-agnostic."""

import glob
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.simmpi.dataplane import materialize
from repro.simmpi import (
    Backend,
    CollectiveMismatchError,
    DeadlockError,
    RemoteRankError,
    Runtime,
    SerialBackend,
    ThreadsBackend,
    ProcsBackend,
    available_backends,
    create_runtime,
    default_backend,
    run_spmd,
)

BACKENDS = ("serial", "threads", "procs")

backends = pytest.mark.parametrize("backend", BACKENDS)


def run_on(backend, nprocs, fn, **kwargs):
    return run_spmd(nprocs, fn, backend=backend, meter_compute=False,
                    **kwargs)


# -- registry / factory ------------------------------------------------------

def test_registry_lists_all_three():
    assert set(BACKENDS) <= set(available_backends())


@backends
def test_create_runtime_by_name(backend):
    rt = create_runtime(backend, nprocs=2)
    assert isinstance(rt, Backend)
    assert rt.name == backend
    rt.close()


def test_unknown_backend_raises_with_choices():
    with pytest.raises(ValueError, match="serial") as exc:
        create_runtime("smoke-signals", nprocs=2)
    assert "smoke-signals" in str(exc.value)
    assert "threads" in str(exc.value) and "procs" in str(exc.value)


def test_env_override_honored(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "serial")
    assert default_backend() == "serial"
    rt = create_runtime(None, nprocs=2)
    assert isinstance(rt, SerialBackend)
    monkeypatch.delenv("REPRO_BACKEND")
    assert default_backend() == "threads"


def test_backend_instance_passthrough():
    rt = SerialBackend(3)
    assert create_runtime(rt, nprocs=3) is rt
    with pytest.raises(ValueError, match="nprocs"):
        create_runtime(rt, nprocs=4)


def test_runtime_alias_is_threads_backend():
    assert issubclass(Runtime, ThreadsBackend)
    assert Runtime(2).name == "threads"


def test_backend_classes_exported():
    assert ProcsBackend.name == "procs"
    assert {SerialBackend.name, ThreadsBackend.name} == {"serial", "threads"}


# -- collectives -------------------------------------------------------------

@backends
def test_bcast_object(backend):
    def fn(comm):
        return comm.bcast({"payload": [1, 2, 3]} if comm.rank == 0 else None)

    out, stats = run_on(backend, 3, fn)
    assert out == [{"payload": [1, 2, 3]}] * 3
    assert stats.events[0].op == "bcast"


@backends
def test_Bcast_array(backend):
    def fn(comm):
        arr = np.arange(5) * 7 if comm.rank == 1 else np.empty(0)
        got = materialize(comm.Bcast(arr, root=1))
        got_sum = int(got.sum())
        got[:] = comm.rank  # materialized buffers must be rank-private
        return got_sum

    out, _ = run_on(backend, 3, fn)
    assert out == [70, 70, 70]


@backends
def test_allreduce_scalar_ops(backend):
    def fn(comm):
        return (comm.allreduce(comm.rank + 1, op="sum"),
                comm.allreduce(comm.rank, op="max"),
                comm.allreduce(comm.rank + 2, op="prod"))

    out, _ = run_on(backend, 3, fn)
    assert out == [(6, 2, 24)] * 3


@backends
def test_Allreduce_array(backend):
    def fn(comm):
        total = materialize(comm.Allreduce(np.full(4, comm.rank + 1.0)))
        total += comm.rank  # materialized buffers are rank-private
        return total.tolist()

    out, _ = run_on(backend, 3, fn)
    assert out == [[6.0 + r] * 4 for r in range(3)]


@backends
def test_allgather(backend):
    def fn(comm):
        return comm.allgather(("rank", comm.rank))

    out, _ = run_on(backend, 4, fn)
    assert out == [[("rank", r) for r in range(4)]] * 4


@backends
def test_Allgatherv(backend):
    def fn(comm):
        merged, counts = comm.Allgatherv(
            np.full(comm.rank + 1, comm.rank, dtype=np.int64))
        return merged.tolist(), counts.tolist()

    out, _ = run_on(backend, 3, fn)
    assert out == [([0, 1, 1, 2, 2, 2], [1, 2, 3])] * 3


@backends
def test_Alltoallv(backend):
    def fn(comm):
        sendbuf = np.arange(comm.size * 2, dtype=np.int64) + 100 * comm.rank
        counts = np.full(comm.size, 2, dtype=np.int64)
        recv, rcounts = comm.Alltoallv(sendbuf, counts)
        return recv.tolist(), rcounts.tolist()

    out, _ = run_on(backend, 3, fn)
    expect = [(
        [2 * r, 2 * r + 1, 100 + 2 * r, 101 + 2 * r,
         200 + 2 * r, 201 + 2 * r],
        [2, 2, 2],
    ) for r in range(3)]
    assert out == expect


@backends
def test_barrier_and_phase_tags(backend):
    def fn(comm):
        with comm.phase("alpha"):
            comm.barrier()
        comm.barrier()
        return True

    out, stats = run_on(backend, 2, fn)
    assert out == [True, True]
    assert [e.tag for e in stats.events] == ["alpha", ""]


@backends
def test_identical_stats_across_backends(backend):
    """The metering oracle: (op, tag, bytes) streams match ``serial``."""
    def fn(comm):
        with comm.phase("mix"):
            comm.charge(10 * (comm.rank + 1))
            comm.Allreduce(np.ones(8) * comm.rank)
            merged, _ = comm.Allgatherv(np.arange(comm.rank + 2.0))
            comm.Alltoallv(np.arange(comm.size, dtype=np.int64),
                           np.ones(comm.size, dtype=np.int64))
        return float(merged.sum())

    def signature(stats):
        return [(e.op, e.tag, e.bytes_sent.tolist(), e.work_units.tolist())
                for e in stats.events]

    ref_out, ref_stats = run_on("serial", 3, fn)
    out, stats = run_on(backend, 3, fn)
    assert out == ref_out
    assert signature(stats) == signature(ref_stats)


@backends
def test_rank_args_and_shared_kwargs(backend):
    def fn(comm, bonus, base=0):
        return comm.allreduce(base + bonus)

    out, _ = run_on(backend, 3, fn, rank_args=[(1,), (2,), (3,)], base=10)
    assert out == [36] * 3


@backends
def test_single_rank_inline(backend):
    def fn(comm):
        comm.barrier()
        return comm.allreduce(5)

    out, stats = run_on(backend, 1, fn)
    assert out == [5]
    assert stats.rounds == 2


# -- error paths -------------------------------------------------------------

@backends
def test_collective_mismatch(backend):
    def fn(comm):
        if comm.rank == 0:
            comm.barrier()
        else:
            comm.allreduce(1)

    with pytest.raises(CollectiveMismatchError):
        run_on(backend, 2, fn)


@backends
def test_deadlock_when_one_rank_returns_early(backend):
    def fn(comm):
        if comm.rank == 0:
            return "done early"
        comm.barrier()

    with pytest.raises(DeadlockError):
        run_on(backend, 2, fn)


@backends
def test_deadlock_when_rank_enters_extra_collective(backend):
    def fn(comm):
        comm.barrier()
        if comm.rank == 0:
            comm.barrier()  # others never join

    with pytest.raises(DeadlockError):
        run_on(backend, 3, fn)


@backends
def test_remote_rank_error_propagates_original(backend):
    def fn(comm):
        if comm.rank == 1:
            raise ValueError("boom on rank 1")
        comm.barrier()

    with pytest.raises(ValueError, match="boom on rank 1"):
        run_on(backend, 3, fn)


@backends
def test_error_before_any_collective(backend):
    def fn(comm):
        raise KeyError("instant")

    with pytest.raises(KeyError):
        run_on(backend, 2, fn)


@backends
def test_error_inside_execute_propagates(backend):
    def fn(comm):
        # shape mismatch is detected inside the collective's execute step
        comm.Allreduce(np.ones(comm.rank + 1))

    with pytest.raises((ValueError, RemoteRankError)):
        run_on(backend, 2, fn)


@backends
def test_reusable_after_run_and_stats_accumulate(backend):
    rt = create_runtime(backend, nprocs=2, meter_compute=False)
    try:
        assert rt.run(lambda comm: comm.allreduce(1)) == [2, 2]
        assert rt.run(lambda comm: comm.allreduce(2)) == [4, 4]
        assert rt.stats.rounds == 2
    finally:
        rt.close()


# -- procs backend specifics -------------------------------------------------

def _live_shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


def test_procs_releases_shared_memory_on_success():
    before = _live_shm_segments()
    # payload larger than a slot's initial capacity forces segment growth
    def fn(comm):
        total = comm.Allreduce(np.ones(200_000) * (comm.rank + 1))
        return float(total[0])

    out, _ = run_on("procs", 2, fn)
    assert out == [3.0, 3.0]
    assert _live_shm_segments() <= before


def test_procs_releases_shared_memory_on_rank_failure():
    before = _live_shm_segments()

    def fn(comm):
        comm.barrier()
        if comm.rank == 1:
            raise RuntimeError("mid-superstep failure")
        comm.Allreduce(np.ones(100_000))

    with pytest.raises((RuntimeError, RemoteRankError)):
        run_on("procs", 3, fn)
    assert _live_shm_segments() <= before


def test_procs_no_resource_tracker_warnings_at_shutdown():
    """End-to-end leak check: a fresh interpreter runs the procs backend
    through success *and* rank failure, then exits; the resource tracker
    must have nothing to complain about."""
    script = textwrap.dedent("""
        import numpy as np
        from repro.simmpi import run_spmd

        def ok(comm):
            return float(comm.Allreduce(np.ones(120_000))[0])

        def dies(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            comm.barrier()

        out, _ = run_spmd(2, ok, backend="procs")
        assert out == [2.0, 2.0]
        try:
            run_spmd(2, dies, backend="procs")
        except RuntimeError:
            pass
        print("SCRIPT-OK")
    """)
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "SCRIPT-OK" in proc.stdout
    assert "leaked" not in proc.stderr.lower()
    assert "resource_tracker" not in proc.stderr.lower()


def test_procs_runs_rank_code_in_separate_processes():
    def fn(comm):
        return os.getpid()

    out, _ = run_on("procs", 3, fn)
    assert len(set(out)) == 3
    assert os.getpid() not in out


def test_serial_schedules_round_robin_deterministically():
    order = []

    def fn(comm):
        order.append(("a", comm.rank))
        comm.barrier()
        order.append(("b", comm.rank))
        comm.barrier()
        return comm.rank

    run_on("serial", 3, fn)
    first = list(order)
    order.clear()
    run_on("serial", 3, fn)
    assert order == first
    # strict round-robin: every rank reaches superstep k before any rank
    # reaches superstep k+1, in rank order
    assert first[:3] == [("a", 0), ("a", 1), ("a", 2)]
    assert set(first[3:]) == {("b", 0), ("b", 1), ("b", 2)}
