"""The backend-subsystem correctness oracle: a fixed-seed ``xtrapulp`` run
must produce bit-identical partitions and communication records on every
execution backend (ISSUE: serial | threads | procs)."""

import numpy as np
import pytest

from repro.core import PulpParams, xtrapulp
from repro.graph import generators

BACKENDS = ("serial", "threads", "procs")


@pytest.fixture(scope="module")
def small_rmat():
    return generators.rmat(8, avg_degree=8, seed=7)


@pytest.fixture(scope="module")
def reference_runs(small_rmat):
    params = PulpParams(seed=123)
    return {
        b: xtrapulp(small_rmat, 4, nprocs=3, params=params, backend=b)
        for b in BACKENDS
    }


def test_backend_recorded_on_result(reference_runs):
    for b in BACKENDS:
        assert reference_runs[b].backend == b


def test_identical_partitions_across_backends(reference_runs):
    ref = reference_runs["serial"].parts
    for b in BACKENDS[1:]:
        np.testing.assert_array_equal(reference_runs[b].parts, ref)


def test_identical_bytes_per_phase_across_backends(reference_runs):
    ref = reference_runs["serial"].stats.bytes_by_tag()
    for b in BACKENDS[1:]:
        assert reference_runs[b].stats.bytes_by_tag() == ref


def test_identical_event_streams_across_backends(reference_runs):
    def signature(stats):
        return [(e.op, e.tag, e.bytes_sent.tolist()) for e in stats.events]

    ref = signature(reference_runs["serial"].stats)
    for b in BACKENDS[1:]:
        assert signature(reference_runs[b].stats) == ref


def test_identical_modeled_time_across_backends(reference_runs):
    ref = reference_runs["serial"].modeled_seconds
    for b in BACKENDS[1:]:
        assert reference_runs[b].modeled_seconds == ref


def test_rerun_is_bit_identical(small_rmat, reference_runs):
    again = xtrapulp(small_rmat, 4, nprocs=3, params=PulpParams(seed=123),
                     backend="procs")
    np.testing.assert_array_equal(again.parts, reference_runs["procs"].parts)
