"""End-to-end xtrapulp(): constraints, determinism, modes, metering."""

import numpy as np
import pytest

from repro.core import PulpParams, xtrapulp
from repro.core.driver import PARTITION_PHASES
from repro.dist.distribution import make_distribution
from repro.graph import erdos_renyi, mesh3d, rand_hd, rmat, social, webcrawl


@pytest.fixture(scope="module")
def small_rmat():
    return rmat(11, 16, seed=1)


def test_every_vertex_assigned(small_rmat):
    res = xtrapulp(small_rmat, 8, nprocs=4)
    assert res.parts.shape == (small_rmat.n,)
    assert res.parts.min() >= 0 and res.parts.max() < 8


def test_balance_constraints_near_target(small_rmat):
    res = xtrapulp(small_rmat, 8, nprocs=4)
    q = res.quality()
    assert q.vertex_balance <= 1.10 * 1.15  # small BSP slack over the 10%
    assert q.edge_balance <= 1.10 * 1.25


def test_single_objective_skips_edge_phase(small_rmat):
    res = xtrapulp(
        small_rmat, 8, nprocs=2,
        params=PulpParams(single_objective=True),
    )
    tags = {e.tag for e in res.stats.events}
    assert "edge_balance" not in tags and "edge_refine" not in tags
    assert "vertex_balance" in tags


def test_deterministic(small_rmat):
    a = xtrapulp(small_rmat, 4, nprocs=3, params=PulpParams(seed=9))
    b = xtrapulp(small_rmat, 4, nprocs=3, params=PulpParams(seed=9))
    np.testing.assert_array_equal(a.parts, b.parts)


def test_seed_changes_result(small_rmat):
    a = xtrapulp(small_rmat, 4, nprocs=2, params=PulpParams(seed=1))
    b = xtrapulp(small_rmat, 4, nprocs=2, params=PulpParams(seed=2))
    assert not np.array_equal(a.parts, b.parts)


def test_better_than_random_cut_on_structured_graphs():
    from repro.baselines import random_partition
    from repro.core.quality import edge_cut_ratio

    for g in (webcrawl(2048, 16, seed=3), mesh3d(10, 10, 10)):
        res = xtrapulp(g, 8, nprocs=2)
        rand = edge_cut_ratio(g, random_partition(g, 8, seed=0), 8)
        assert res.quality().cut_ratio < 0.7 * rand


def test_mesh_cut_is_low():
    g = mesh3d(12, 12, 12)
    res = xtrapulp(g, 8, nprocs=4)
    assert res.quality().cut_ratio < 0.30


def test_rand_hd_with_block_init():
    g = rand_hd(2048, 16, seed=4)
    res = xtrapulp(g, 8, nprocs=4, params=PulpParams(init_strategy="block"))
    q = res.quality()
    assert q.cut_ratio < 0.05
    assert q.vertex_balance <= 1.15


def test_explicit_distribution(small_rmat):
    dist = make_distribution("block", small_rmat.n, 2)
    res = xtrapulp(small_rmat, 4, nprocs=2, distribution=dist)
    assert res.parts.min() >= 0


def test_distribution_mismatch_rejected(small_rmat):
    dist = make_distribution("block", small_rmat.n, 3)
    with pytest.raises(ValueError):
        xtrapulp(small_rmat, 4, nprocs=2, distribution=dist)


def test_input_validation(small_rmat):
    with pytest.raises(ValueError):
        xtrapulp(small_rmat, 0, nprocs=2)
    with pytest.raises(ValueError):
        xtrapulp(small_rmat, small_rmat.n + 1, nprocs=2)
    directed = social(256, 8, seed=1, directed=True)
    with pytest.raises(ValueError):
        xtrapulp(directed, 4, nprocs=2)


def test_modeled_time_positive_and_phased(small_rmat):
    res = xtrapulp(small_rmat, 8, nprocs=4)
    assert res.modeled_seconds > 0
    by_phase = res.modeled_seconds_by_phase()
    assert set(by_phase) == set(PARTITION_PHASES)
    assert sum(by_phase.values()) == pytest.approx(res.modeled_seconds, rel=1e-6)
    # build is metered but excluded from the partitioning-time total
    from repro.simmpi.timing import TimeModel

    full = TimeModel(res.machine).total_time(res.stats)
    assert res.modeled_seconds < full


def test_comm_volume_scales_with_ranks(small_rmat):
    r2 = xtrapulp(small_rmat, 8, nprocs=2)
    r8 = xtrapulp(small_rmat, 8, nprocs=8)
    # more ranks → more boundary → more off-rank traffic
    assert r8.stats.total_bytes > r2.stats.total_bytes


def test_num_parts_independent_of_nprocs(small_rmat):
    res = xtrapulp(small_rmat, 13, nprocs=4)  # p != nprocs, p not power of 2
    assert set(np.unique(res.parts)) <= set(range(13))
    assert res.quality().vertex_balance <= 1.5


def test_quality_requires_graph_when_not_kept(small_rmat):
    res = xtrapulp(small_rmat, 4, nprocs=2, keep_graph=False)
    with pytest.raises(ValueError):
        res.quality()
    q = res.quality(small_rmat)
    assert q.cut >= 0


def test_er_graph_end_to_end():
    g = erdos_renyi(2048, 16, seed=6)
    res = xtrapulp(g, 8, nprocs=4)
    q = res.quality()
    assert q.vertex_balance <= 1.25
