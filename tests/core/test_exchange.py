"""ExchangeUpdates (Algorithm 3) and buffer packing."""

import numpy as np
import pytest

from repro.core.exchange import exchange_updates
from repro.dist import build_dist_graph, make_distribution
from repro.dist.packing import (
    bucket_by_rank,
    counts_to_record_ranges,
    pack_by_rank,
    pack_fields_by_rank,
    unpack_fields,
)
from repro.graph import ring, rmat
from repro.simmpi import Runtime


def test_pack_by_rank_groups_and_interleaves():
    dest = np.array([1, 0, 1, 0])
    gids = np.array([10, 20, 30, 40])
    parts = np.array([5, 6, 7, 8])
    buf, counts = pack_by_rank(2, dest, (gids, parts))
    np.testing.assert_array_equal(counts, [4, 4])  # 2 records * 2 fields
    # rank 0 records (stable order): (20,6), (40,8); rank 1: (10,5), (30,7)
    np.testing.assert_array_equal(buf, [20, 6, 40, 8, 10, 5, 30, 7])


def test_pack_unpack_roundtrip():
    dest = np.array([2, 0, 1, 2, 1])
    a = np.arange(5) * 10
    b = np.arange(5) + 100
    buf, counts = pack_by_rank(3, dest, (a, b))
    fields = unpack_fields(buf, 2)
    order = np.argsort(dest, kind="stable")
    np.testing.assert_array_equal(fields[0], a[order])
    np.testing.assert_array_equal(fields[1], b[order])
    starts, stops = counts_to_record_ranges(counts, 2)
    np.testing.assert_array_equal(stops - starts, [1, 2, 2])


def test_bucket_by_rank_matches_stable_argsort():
    rng = np.random.default_rng(0)
    for nprocs in (1, 3, 300):  # 300 exercises the uint16 key path
        dest = rng.integers(0, nprocs, size=500)
        order, counts = bucket_by_rank(nprocs, dest)
        np.testing.assert_array_equal(order, np.argsort(dest, kind="stable"))
        np.testing.assert_array_equal(counts, np.bincount(dest, minlength=nprocs))
    with pytest.raises(ValueError):
        bucket_by_rank(2, np.array([0, 2]))


def test_pack_fields_by_rank_preserves_dtypes():
    dest = np.array([1, 0, 1, 0])
    slots = np.array([9, 8, 7, 6], dtype=np.uint16)
    parts = np.array([1, 2, 3, 4], dtype=np.int16)
    (ps, pp), counts = pack_fields_by_rank(2, dest, (slots, parts))
    assert ps.dtype == np.uint16 and pp.dtype == np.int16
    np.testing.assert_array_equal(counts, [2, 2])  # records, not elements
    np.testing.assert_array_equal(ps, [8, 6, 9, 7])
    np.testing.assert_array_equal(pp, [2, 4, 1, 3])


def test_pack_validation():
    with pytest.raises(ValueError):
        pack_by_rank(2, np.array([0, 3]), (np.array([1, 2]),))
    with pytest.raises(ValueError):
        pack_by_rank(2, np.array([0]), (np.array([1, 2]),))
    with pytest.raises(ValueError):
        pack_by_rank(2, np.array([0]), ())
    with pytest.raises(ValueError):
        unpack_fields(np.arange(5), 2)


@pytest.mark.parametrize("nprocs", [2, 4])
def test_exchange_updates_ghost_consistency(nprocs):
    g = rmat(8, 12, seed=4)
    dist = make_distribution("random", g.n, nprocs, seed=1)

    def main(comm):
        dg = build_dist_graph(comm, g, dist)
        parts = np.full(dg.n_total, -1, dtype=np.int64)
        # every rank labels its owned vertices with its rank and announces
        parts[: dg.n_local] = comm.rank
        exchange_updates(comm, dg, parts, np.arange(dg.n_local))
        # each ghost must now carry its owner's rank
        np.testing.assert_array_equal(
            parts[dg.n_local:], dg.ghost_owners.astype(np.int64)
        )
        return True

    assert all(Runtime(nprocs).run(main))


def test_exchange_updates_partial_and_empty():
    g = ring(12)
    dist = make_distribution("block", g.n, 3)

    def main(comm):
        dg = build_dist_graph(comm, g, dist)
        parts = np.zeros(dg.n_total, dtype=np.int64)
        if comm.rank == 0:
            # only boundary vertex 0 updated; interior updates don't travel
            parts[dg.owned_lids(np.array([0]))] = 42
            updated = dg.owned_lids(np.array([0]))
        else:
            updated = np.empty(0, dtype=np.int64)
        received = exchange_updates(comm, dg, parts, updated)
        return comm.rank, received, parts.copy(), dg

    out = Runtime(3).run(main)
    # vertex 0's ghost copy lives only at rank 2 (ring neighbor 11)
    for rank, received, parts, dg in out:
        if rank == 2:
            lid = dg.ghost_lids(np.array([0]))[0]
            np.testing.assert_array_equal(received, [lid])
            assert parts[lid] == 42
        elif rank == 1:
            assert received.size == 0


def test_exchange_updates_returns_updated_ghost_lids():
    g = ring(8)
    dist = make_distribution("block", g.n, 2)

    def main(comm):
        dg = build_dist_graph(comm, g, dist)
        parts = np.zeros(dg.n_total, dtype=np.int64)
        parts[: dg.n_local] = comm.rank + 1
        got = exchange_updates(comm, dg, parts, np.arange(dg.n_local))
        return got, dg.n_local, dg.n_ghost

    out = Runtime(2).run(main)
    # each rank has 2 ghosts (both block endpoints of the other rank);
    # the returned lids are exactly the rewritten ghost entries
    for got, n_local, n_ghost in out:
        assert got.size == 2
        np.testing.assert_array_equal(
            np.sort(got), np.arange(n_local, n_local + n_ghost)
        )
