"""Partition structural analysis tools."""

import numpy as np
import pytest

from repro.core import xtrapulp
from repro.core.analysis import (
    analyze_partition,
    boundary_sizes,
    boundary_vertices,
    ghost_counts,
    part_adjacency,
    part_connectivity,
)
from repro.graph import from_edges, mesh3d, ring, rmat


def split_ring():
    g = ring(8)
    parts = np.array([0, 0, 0, 0, 1, 1, 1, 1])
    return g, parts


def test_boundary_vertices_ring():
    g, parts = split_ring()
    mask = boundary_vertices(g, parts)
    np.testing.assert_array_equal(
        mask, [True, False, False, True, True, False, False, True]
    )
    np.testing.assert_array_equal(boundary_sizes(g, parts, 2), [2, 2])


def test_part_adjacency_ring():
    g, parts = split_ring()
    q = part_adjacency(g, parts, 2)
    # 3 interior edges per part, 2 edges between them
    np.testing.assert_array_equal(q, [[3, 2], [2, 3]])
    # totals conserve edges
    assert np.triu(q).sum() == g.num_edges


def test_part_adjacency_conserves_edges():
    g = rmat(9, 12, seed=1)
    rng = np.random.default_rng(0)
    parts = rng.integers(0, 5, g.n)
    q = part_adjacency(g, parts, 5)
    assert np.array_equal(q, q.T)
    assert np.triu(q).sum() == g.num_edges


def test_ghost_counts_ring():
    g, parts = split_ring()
    # each part needs both endpoints of the other part's boundary
    np.testing.assert_array_equal(ghost_counts(g, parts, 2), [2, 2])


def test_ghost_counts_no_cut():
    g = from_edges(4, np.array([0, 2]), np.array([1, 3]))
    parts = np.array([0, 0, 1, 1])
    np.testing.assert_array_equal(ghost_counts(g, parts, 2), [0, 0])


def test_part_connectivity():
    g = ring(8)
    contiguous = np.array([0, 0, 0, 0, 1, 1, 1, 1])
    np.testing.assert_array_equal(part_connectivity(g, contiguous, 2), [1, 1])
    fragmented = np.array([0, 1, 0, 1, 0, 1, 0, 1])
    np.testing.assert_array_equal(part_connectivity(g, fragmented, 2), [4, 4])


def test_analyze_partition_report():
    g = mesh3d(8, 8, 8)
    res = xtrapulp(g, 4, nprocs=2)
    report = analyze_partition(g, res.parts, 4)
    assert 0 < report.boundary_fraction < 1
    assert report.max_ghosts > 0
    assert report.total_ghosts >= report.max_ghosts
    assert 0 <= report.quotient_density <= 1
    assert 0 <= report.contiguous_parts <= 4
    text = report.formatted()
    assert "boundary=" in text and "ghosts" in text


def test_good_partition_fewer_ghosts_than_random():
    from repro.baselines import random_partition

    g = mesh3d(10, 10, 10)
    res = xtrapulp(g, 8, nprocs=2)
    good = ghost_counts(g, res.parts, 8).sum()
    rand = ghost_counts(g, random_partition(g, 8, seed=0), 8).sum()
    assert good < 0.5 * rand


def test_mesh_partition_mostly_contiguous():
    g = mesh3d(10, 10, 10)
    res = xtrapulp(g, 4, nprocs=2)
    report = analyze_partition(g, res.parts, 4)
    # label propagation grows connected regions on meshes
    assert report.contiguous_parts >= 3
