"""Property tests tying the quality metrics together on arbitrary inputs."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.quality import (
    cut_edges_per_part,
    edge_counts,
    edge_cut,
    interior_edge_counts,
    vertex_counts,
)
from repro.core.analysis import ghost_counts, part_adjacency
from repro.graph import from_edges


@st.composite
def partitioned_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    m = draw(st.integers(min_value=0, max_value=120))
    p = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    g = from_edges(n, rng.integers(0, n, size=m), rng.integers(0, n, size=m))
    parts = rng.integers(0, p, size=n)
    return g, parts, p


@settings(max_examples=80, deadline=None)
@given(partitioned_graphs())
def test_cut_plus_interior_equals_total(case):
    g, parts, p = case
    interior = interior_edge_counts(g, parts, p).sum()
    cut = edge_cut(g, parts, p)
    assert interior + cut == g.num_edges


@settings(max_examples=80, deadline=None)
@given(partitioned_graphs())
def test_per_part_cut_sums_to_twice_cut(case):
    g, parts, p = case
    assert cut_edges_per_part(g, parts, p).sum() == 2 * edge_cut(g, parts, p)


@settings(max_examples=80, deadline=None)
@given(partitioned_graphs())
def test_vertex_and_edge_count_conservation(case):
    g, parts, p = case
    assert vertex_counts(g, parts, p).sum() == g.n
    assert edge_counts(g, parts, p).sum() == 2 * g.num_edges


@settings(max_examples=60, deadline=None)
@given(partitioned_graphs())
def test_quotient_graph_consistent_with_metrics(case):
    g, parts, p = case
    q = part_adjacency(g, parts, p)
    # diagonal = interior edges; off-diagonal total = cut
    np.testing.assert_array_equal(np.diag(q), interior_edge_counts(g, parts, p))
    assert np.triu(q, 1).sum() == edge_cut(g, parts, p)
    # row sums relate to per-part incident cut
    per_part_cut = q.sum(axis=0) - np.diag(q)
    np.testing.assert_array_equal(per_part_cut, cut_edges_per_part(g, parts, p))


@settings(max_examples=60, deadline=None)
@given(partitioned_graphs())
def test_ghost_counts_bounded_by_cut(case):
    g, parts, p = case
    ghosts = ghost_counts(g, parts, p)
    per_cut = cut_edges_per_part(g, parts, p)
    # distinct remote endpoints can never exceed incident cut edges
    assert np.all(ghosts <= per_cut)
