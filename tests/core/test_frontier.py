"""Frontier (active-set) sweep engine correctness.

Three guarantees are enforced here:

1. a frontier seeded with *all* vertices every iteration
   (``frontier="full"``) reproduces the legacy exhaustive-sweep partition
   bit-for-bit, including the communication record;
2. the real active-set mode (``frontier=True``, the default) satisfies
   the same balance constraints as the legacy path, with edge cut within
   5% (hypothesis property test over random RMAT / Erdős–Rényi graphs);
3. the ghost→owned reverse incidence matches the forward CSR, and the
   active set provably shrinks (edges touched drop vs legacy).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PulpParams, xtrapulp
from repro.core.initialization import initialize
from repro.core.state import RankState
from repro.core.vertex_balance import vertex_balance_phase
from repro.core.refinement import vertex_refine_phase
from repro.dist import build_dist_graph, make_distribution
from repro.graph import generators
from repro.simmpi import Runtime


def _run(graph, frontier, *, num_parts=8, nprocs=3, seed=123):
    return xtrapulp(
        graph, num_parts, nprocs=nprocs,
        params=PulpParams(seed=seed, frontier=frontier),
    )


# -- 1. full-frontier bit-identity ------------------------------------------


def test_full_frontier_matches_legacy_bit_for_bit():
    g = generators.rmat(9, avg_degree=8, seed=11)
    legacy = _run(g, False)
    full = _run(g, "full")
    np.testing.assert_array_equal(full.parts, legacy.parts)
    # the verification mode charges nothing extra either: identical comm
    # record, hence identical modeled time
    assert full.stats.bytes_by_tag() == legacy.stats.bytes_by_tag()
    assert full.stats.work_by_tag() == legacy.stats.work_by_tag()
    assert full.modeled_seconds == legacy.modeled_seconds


def test_frontier_modes_are_deterministic():
    g = generators.rmat(8, avg_degree=8, seed=5)
    for mode in (True, False, "full"):
        a = _run(g, mode)
        b = _run(g, mode)
        np.testing.assert_array_equal(a.parts, b.parts)
        assert a.stats.bytes_by_tag() == b.stats.bytes_by_tag()


def test_frontier_param_validation():
    with pytest.raises(ValueError, match="frontier"):
        PulpParams(frontier="sometimes")


# -- 2. active-set quality stays within tolerance ---------------------------


@settings(max_examples=6, deadline=None, derandomize=True)
@given(
    family=st.sampled_from(["rmat", "er"]),
    scale=st.integers(min_value=9, max_value=10),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_frontier_preserves_balance_and_cut(family, scale, seed):
    if family == "rmat":
        g = generators.rmat(scale, avg_degree=8, seed=seed)
    else:
        g = generators.erdos_renyi(2**scale, avg_degree=8, seed=seed)
    p = 8
    # a single BSP trajectory's cut has seed-to-seed noise comparable to
    # the tolerance under test at these scales, so compare means over a
    # few partition seeds — the 5% claim is about the approximation, not
    # about out-lucking one particular legacy trajectory
    cut_a = cut_l = 0.0
    for s in range(seed % 1000, seed % 1000 + 3):
        active = _run(g, True, num_parts=p, seed=s)
        legacy = _run(g, False, num_parts=p, seed=s)
        qa, ql = active.quality(g), legacy.quality(g)
        cut_a += qa.cut
        cut_l += ql.cut
        # same vertex-balance constraint, every run: the active-set run
        # may not be meaningfully worse-balanced than the exhaustive run
        # (vertex_balance = max part size / (n/p), 1.10 is the constraint)
        slack = p / g.n  # one vertex of headroom
        assert qa.vertex_balance <= max(ql.vertex_balance, 1.10) * 1.02 + slack
    # edge cut within 5% (the active-set approximation's quality budget)
    assert cut_a <= cut_l * 1.05 + 8


# -- 3. structure + work reduction ------------------------------------------


def test_ghost_incidence_matches_forward_adjacency():
    g = generators.rmat(9, avg_degree=8, seed=3)
    dist = make_distribution("random", g.n, 3, seed=3)

    def main(comm):
        dg = build_dist_graph(comm, g, dist)
        # reverse incidence: for every ghost, its owned neighbors —
        # rebuilt here by scanning the forward CSR
        expect = {
            int(gl): set() for gl in range(dg.n_local, dg.n_total)
        }
        for u in range(dg.n_local):
            for v in dg.neighbors(u):
                if v >= dg.n_local:
                    expect[int(v)].add(u)
        for gl in range(dg.n_local, dg.n_total):
            got = dg.ghost_touch_sources(np.array([gl], dtype=np.int64))
            assert set(got.tolist()) == expect[gl]
            # sorted ascending within each ghost's slice (determinism)
            assert np.all(np.diff(got) >= 0)
        return True

    assert all(Runtime(3).run(main))


def test_frontier_shrinks_edges_touched():
    g = generators.rmat(10, avg_degree=8, seed=9)
    p = 8

    def sweep_edges(frontier):
        params = PulpParams(seed=7, frontier=frontier)
        dist = make_distribution("random", g.n, 2, seed=7)

        def main(comm):
            dg = build_dist_graph(comm, g, dist)
            state = RankState(dg=dg, num_parts=p, params=params)
            initialize(comm, state)
            state.edges_touched = 0.0
            vertex_balance_phase(comm, state, 5)
            vertex_refine_phase(comm, state, 10)
            return state.edges_touched, state.sweep_log

        return Runtime(2).run(main)

    active_runs = sweep_edges(True)
    legacy_runs = sweep_edges(False)
    active_total = sum(e for e, _ in active_runs)
    legacy_total = sum(e for e, _ in legacy_runs)
    assert active_total < legacy_total
    for _, log in active_runs:
        refine = [
            (a, nl) for ph, _, a, nl, _ in log if ph == "vertex_refine"
        ]
        n_local = refine[0][1]
        # iteration 0 and the late cleanup pass (iters - 3) are exhaustive
        assert refine[0][0] == n_local
        assert refine[len(refine) - 3][0] == n_local
        # the remaining active sweeps shrank well below a full sweep
        assert min(a for a, _ in refine) < n_local // 2
    # legacy logs full sweeps every iteration
    for _, log in legacy_runs:
        assert all(active == n_local for _, _, active, n_local, _ in log)
