"""Algorithm 2 initialization + alternatives + dead-part reseeding."""

import numpy as np
import pytest

from repro.core.initialization import initialize, reseed_dead_parts
from repro.core.params import PulpParams
from repro.core.state import RankState
from repro.dist import build_dist_graph, make_distribution
from repro.graph import from_edges, rmat, ring, rand_hd
from repro.simmpi import Runtime


def init_global(graph, p, nprocs, strategy="hybrid", seed=42):
    dist = make_distribution("random", graph.n, nprocs, seed=seed)
    params = PulpParams(init_strategy=strategy, seed=seed)

    def main(comm):
        dg = build_dist_graph(comm, graph, dist)
        state = RankState(dg=dg, num_parts=p, params=params)
        initialize(comm, state)
        # ghost consistency: every ghost equals the owner's value
        return (
            dg.owned_gids.copy(),
            state.parts[: dg.n_local].copy(),
            dg.ghost_gids.copy(),
            state.parts[dg.n_local:].copy(),
        )

    results = Runtime(nprocs).run(main)
    parts = np.empty(graph.n, dtype=np.int64)
    for gids, owned, _, _ in results:
        parts[gids] = owned
    for _, _, ghost_gids, ghost_parts in results:
        np.testing.assert_array_equal(ghost_parts, parts[ghost_gids])
    return parts


@pytest.mark.parametrize("strategy", ["hybrid", "random", "block"])
@pytest.mark.parametrize("nprocs", [1, 3])
def test_all_vertices_assigned(strategy, nprocs):
    g = rmat(8, 12, seed=2)
    parts = init_global(g, 8, nprocs, strategy)
    assert parts.min() >= 0 and parts.max() < 8


def test_hybrid_grows_connected_regions():
    # on a ring, hybrid init yields contiguous arcs (few cut edges)
    g = ring(64)
    parts = init_global(g, 4, 2)
    cut = int((parts != np.roll(parts, 1)).sum())
    assert cut <= 3 * 4  # roughly one boundary per part


def test_block_init_is_contiguous():
    g = ring(12)
    parts = init_global(g, 3, 2, strategy="block")
    np.testing.assert_array_equal(parts, np.repeat([0, 1, 2], 4))


def test_random_init_uses_all_parts():
    g = rmat(9, 12, seed=3)
    parts = init_global(g, 8, 2, strategy="random")
    assert set(np.unique(parts)) == set(range(8))


def test_deterministic_given_seed():
    g = rmat(8, 12, seed=5)
    a = init_global(g, 4, 2, seed=7)
    b = init_global(g, 4, 2, seed=7)
    np.testing.assert_array_equal(a, b)


def test_hybrid_handles_disconnected_leftovers():
    # two components + isolated vertices: everything must get a part
    src = np.concatenate([np.arange(19), np.arange(20, 39)])
    dst = src + 1
    g = from_edges(50, src, dst)  # vertices 40..49 isolated
    parts = init_global(g, 4, 2)
    assert parts.min() >= 0


def test_more_parts_than_vertices_rejected():
    g = ring(4)
    with pytest.raises(ValueError):
        init_global(g, 10, 2)


def test_reseed_dead_parts_revives():
    g = rmat(8, 12, seed=2)
    dist = make_distribution("random", g.n, 2, seed=0)
    params = PulpParams(seed=0)
    p = 4

    def main(comm):
        dg = build_dist_graph(comm, g, dist)
        state = RankState(dg=dg, num_parts=p, params=params)
        # construct a pathological assignment: all connected vertices in
        # part 0, isolated spread across 1..3
        deg = dg.degrees_full[: dg.n_local]
        owned = np.zeros(dg.n_local, dtype=np.int64)
        owned[deg == 0] = 1 + (np.arange(int((deg == 0).sum())) % (p - 1))
        state.parts[: dg.n_local] = owned
        from repro.core.exchange import exchange_updates

        exchange_updates(comm, dg, state.parts, np.arange(dg.n_local))
        revived = reseed_dead_parts(comm, state)
        conn = state.parts[: dg.n_local][deg > 0]
        local = np.bincount(conn, minlength=p)
        alive = comm.Allreduce(local.astype(np.int64), op="sum")
        return revived, alive

    results = Runtime(2).run(main)
    revived, alive = results[0]
    assert revived == 3  # parts 1..3 had no connected members
    assert (alive > 0).all()


def test_reseed_noop_when_all_alive():
    g = ring(16)
    dist = make_distribution("block", g.n, 2)
    params = PulpParams()

    def main(comm):
        dg = build_dist_graph(comm, g, dist)
        state = RankState(dg=dg, num_parts=2, params=params)
        state.parts[: dg.n_local] = comm.rank
        from repro.core.exchange import exchange_updates

        exchange_updates(comm, dg, state.parts, np.arange(dg.n_local))
        before = state.parts.copy()
        assert reseed_dead_parts(comm, state) == 0
        np.testing.assert_array_equal(state.parts, before)
        return True

    assert all(Runtime(2).run(main))
