"""Quality metrics: cross-checked against networkx and hand computations."""

import numpy as np
import pytest

from repro.core.quality import (
    cut_edges_per_part,
    edge_balance,
    edge_counts,
    edge_cut,
    edge_cut_ratio,
    interior_edge_counts,
    partition_quality,
    performance_ratios,
    scaled_max_cut_ratio,
    vertex_balance,
    vertex_counts,
)
from repro.graph import from_edges, rmat, ring


def test_edge_cut_ring():
    g = ring(8)
    parts = np.array([0, 0, 0, 0, 1, 1, 1, 1])
    assert edge_cut(g, parts, 2) == 2
    assert edge_cut_ratio(g, parts, 2) == pytest.approx(2 / 8)


def test_edge_cut_matches_networkx():
    import networkx as nx
    from repro.graph.builders import to_networkx

    g = rmat(9, 12, seed=8)
    rng = np.random.default_rng(0)
    parts = rng.integers(0, 4, size=g.n)
    nxg = to_networkx(g)
    sets = [set(np.flatnonzero(parts == k).tolist()) for k in range(4)]
    ref = sum(
        nx.cut_size(nxg, sets[i], sets[j])
        for i in range(4)
        for j in range(i + 1, 4)
    )
    assert edge_cut(g, parts, 4) == ref


def test_cut_edges_per_part():
    g = ring(8)
    parts = np.array([0, 0, 0, 0, 1, 1, 1, 1])
    np.testing.assert_array_equal(cut_edges_per_part(g, parts, 2), [2, 2])
    # each cut edge counted once per endpoint part
    assert scaled_max_cut_ratio(g, parts, 2) == pytest.approx(2 / (8 / 2))


def test_cut_per_part_sums():
    g = rmat(9, 12, seed=1)
    rng = np.random.default_rng(1)
    parts = rng.integers(0, 8, size=g.n)
    per_part = cut_edges_per_part(g, parts, 8)
    assert per_part.sum() == 2 * edge_cut(g, parts, 8)


def test_vertex_and_edge_counts():
    g = ring(6)
    parts = np.array([0, 0, 1, 1, 1, 1])
    np.testing.assert_array_equal(vertex_counts(g, parts, 2), [2, 4])
    np.testing.assert_array_equal(edge_counts(g, parts, 2), [4, 8])
    np.testing.assert_array_equal(interior_edge_counts(g, parts, 2), [1, 3])


def test_balance_metrics():
    g = ring(8)
    perfect = np.array([0, 0, 0, 0, 1, 1, 1, 1])
    assert vertex_balance(g, perfect, 2) == pytest.approx(1.0)
    assert edge_balance(g, perfect, 2) == pytest.approx(1.0)
    skewed = np.array([0, 0, 0, 0, 0, 0, 1, 1])
    assert vertex_balance(g, skewed, 2) == pytest.approx(6 / 4)


def test_partition_quality_bundle():
    g = ring(8)
    parts = np.array([0, 0, 0, 0, 1, 1, 1, 1])
    q = partition_quality(g, parts, 2)
    assert q.cut == 2
    assert q.cut_ratio == pytest.approx(0.25)
    assert q.vertex_balance == pytest.approx(1.0)
    assert "cut=2" in q.formatted()


def test_quality_validates_parts():
    g = ring(4)
    with pytest.raises(ValueError):
        edge_cut(g, np.array([0, 1]), 2)
    with pytest.raises(ValueError):
        edge_cut(g, np.array([0, 1, 2, 5]), 3)


def test_performance_ratios():
    # method A is best everywhere → ratio exactly 1
    results = {"A": [1.0, 2.0], "B": [2.0, 4.0]}
    ratios = performance_ratios(results)
    assert ratios["A"] == pytest.approx(1.0)
    assert ratios["B"] == pytest.approx(2.0)


def test_performance_ratios_geometric():
    results = {"A": [1.0, 4.0], "B": [2.0, 2.0]}
    ratios = performance_ratios(results)
    # per-test best is the column minimum: (1.0, 2.0)
    assert ratios["A"] == pytest.approx(np.sqrt(1.0 * 2.0))
    assert ratios["B"] == pytest.approx(np.sqrt(2.0 * 1.0))


def test_performance_ratios_validation():
    assert performance_ratios({}) == {}
    with pytest.raises(ValueError):
        performance_ratios({"A": []})


def test_disconnected_graph_metrics():
    g = from_edges(4, np.array([0]), np.array([1]))
    parts = np.array([0, 1, 0, 1])
    assert edge_cut(g, parts, 2) == 1
    assert edge_cut_ratio(g, parts, 2) == 1.0
