"""RankState: targets, block iteration, tally matrices vs reference."""

import numpy as np
import pytest

from repro.core.params import PulpParams
from repro.core.state import UNASSIGNED, RankState
from repro.dist import build_dist_graph, make_distribution
from repro.graph import rmat, ring
from repro.simmpi import Runtime


def make_state(graph, p, nprocs=2, params=None, seed=0):
    dist = make_distribution("random", graph.n, nprocs, seed=seed)
    params = params or PulpParams(seed=seed)

    def main(comm):
        dg = build_dist_graph(comm, graph, dist)
        return RankState(dg=dg, num_parts=p, params=params), comm

    # single collection run: return states via Runtime
    states = Runtime(nprocs).run(
        lambda comm: RankState(
            dg=build_dist_graph(comm, graph, dist), num_parts=p, params=params
        )
    )
    return states


def test_initial_parts_unassigned():
    g = ring(12)
    for state in make_state(g, 3):
        assert np.all(state.parts == UNASSIGNED)
        assert state.parts.size == state.dg.n_total


def test_targets_match_formula():
    g = rmat(8, 10, seed=1)
    (state, *_rest) = make_state(g, 4, nprocs=1)
    assert state.target_max_vertices == pytest.approx(1.10 * g.n / 4)
    assert state.target_max_edges == pytest.approx(
        1.10 * 2 * g.num_edges / 4
    )


def test_iter_blocks_covers_all_vertices():
    g = rmat(8, 10, seed=1)
    (state,) = make_state(g, 4, nprocs=1, params=PulpParams(block_size=37))
    seen = np.concatenate([lids for lids, _ in state.iter_blocks()])
    np.testing.assert_array_equal(seen, np.arange(state.dg.n_local))
    # every block but the last has exactly block_size entries
    sizes = [lids.size for lids, _ in state.iter_blocks()]
    assert all(s == 37 for s in sizes[:-1])


def test_block_part_counts_against_reference():
    g = rmat(8, 10, seed=3)
    (state,) = make_state(g, 5, nprocs=1)
    rng = np.random.default_rng(0)
    state.parts[: state.dg.n_local] = rng.integers(0, 5, state.dg.n_local)
    lids = np.arange(40, dtype=np.int64)
    weighted, plain = state.block_part_counts(lids, degree_weighted=True)
    for i, lid in enumerate(lids):
        neigh = state.dg.neighbors(int(lid))
        for k in range(5):
            members = neigh[state.parts[neigh] == k]
            assert plain[i, k] == members.size
            assert weighted[i, k] == pytest.approx(
                float(state.dg.degrees_full[members].sum())
            )


def test_block_part_counts_sparse_dense_equivalence():
    # many parts, few neighbors per vertex: the regime the sparse tally
    # targets; both paths must agree bit-for-bit (weighted sums included —
    # the per-key accumulation order is identical)
    g = rmat(9, 12, seed=8)
    p = 97
    (state,) = make_state(g, p, nprocs=1)
    rng = np.random.default_rng(1)
    state.parts[:] = rng.integers(0, p, state.parts.size)
    state.parts[::7] = UNASSIGNED  # exercise the unassigned filter too
    lids = np.arange(64, dtype=np.int64)
    for dw in (True, False):
        wd, pd = state.block_part_counts(
            lids, degree_weighted=dw, sparse=False
        )
        ws, ps = state.block_part_counts(
            lids, degree_weighted=dw, sparse=True
        )
        np.testing.assert_array_equal(pd, ps)
        np.testing.assert_array_equal(wd, ws)
        assert ps.dtype == pd.dtype


def test_block_part_counts_heuristic_picks_sparse_when_wide():
    # with p >> degree the auto path must equal both explicit paths
    g = rmat(8, 6, seed=9)
    p = 128
    (state,) = make_state(g, p, nprocs=1)
    rng = np.random.default_rng(2)
    state.parts[:] = rng.integers(0, p, state.parts.size)
    lids = np.arange(state.dg.n_local, dtype=np.int64)
    w_auto, p_auto = state.block_part_counts(lids, degree_weighted=True)
    w_dense, p_dense = state.block_part_counts(
        lids, degree_weighted=True, sparse=False
    )
    np.testing.assert_array_equal(p_auto, p_dense)
    np.testing.assert_array_equal(w_auto, w_dense)


def test_block_part_counts_ignores_unassigned():
    g = ring(10)
    (state,) = make_state(g, 2, nprocs=1)
    state.parts[:] = UNASSIGNED
    state.parts[0] = 1
    lids = np.arange(state.dg.n_local, dtype=np.int64)
    _, plain = state.block_part_counts(lids, degree_weighted=False)
    assert plain.sum() == 2  # only vertex 0's two neighbors see a label


def test_compute_sizes_cross_check():
    g = rmat(9, 12, seed=4)
    p = 4
    dist = make_distribution("random", g.n, 3, seed=1)
    params = PulpParams(seed=1)

    def main(comm):
        dg = build_dist_graph(comm, g, dist)
        state = RankState(dg=dg, num_parts=p, params=params)
        rng = np.random.default_rng(42)  # same on all ranks
        global_parts = rng.integers(0, p, g.n)
        state.parts[: dg.n_local] = global_parts[dg.owned_gids]
        state.parts[dg.n_local:] = global_parts[dg.ghost_gids]
        return (
            state.compute_vertex_sizes(comm),
            state.compute_edge_sizes(comm),
            state.compute_cut_sizes(comm),
            global_parts,
        )

    sv, se, sc, parts = Runtime(3).run(main)[0]
    np.testing.assert_array_equal(sv, np.bincount(parts, minlength=p))
    np.testing.assert_array_equal(
        se,
        np.bincount(parts, weights=g.degrees.astype(float), minlength=p),
    )
    from repro.core.quality import cut_edges_per_part

    np.testing.assert_array_equal(sc, cut_edges_per_part(g, parts, p))


def test_mult_delegates_to_params():
    g = ring(8)
    (state, other) = make_state(g, 2, nprocs=2, params=PulpParams(x=2.0, y=2.0))

    class FakeComm:
        size = 2

    assert state.mult(FakeComm()) == pytest.approx(4.0)
    state.iter_tot = 10_000
    assert state.mult(FakeComm()) == pytest.approx(4.0)
    _ = other
