"""PulpParams validation and the dynamic-multiplier schedule."""

import pytest

from repro.core import PulpParams


def test_defaults_match_algorithm1():
    p = PulpParams()
    assert p.outer_iters == 3
    assert p.balance_iters == 5
    assert p.refine_iters == 10
    assert p.total_iters == 45


def test_validation():
    with pytest.raises(ValueError):
        PulpParams(outer_iters=0)
    with pytest.raises(ValueError):
        PulpParams(balance_iters=0, refine_iters=0)
    with pytest.raises(ValueError):
        PulpParams(vert_imbalance=-0.1)
    with pytest.raises(ValueError):
        PulpParams(block_size=0)
    with pytest.raises(ValueError):
        PulpParams(init_strategy="bogus")


def test_with_functional_update():
    p = PulpParams()
    q = p.with_(x=2.0, single_objective=True)
    assert q.x == 2.0 and q.single_objective
    assert p.x == 1.0 and not p.single_objective  # original untouched


def test_mult_schedule_endpoints():
    p = PulpParams(x=1.0, y=0.25)
    nprocs = 64
    assert p.mult(nprocs, 0) == pytest.approx(nprocs * 0.25)
    assert p.mult(nprocs, p.total_iters) == pytest.approx(nprocs * 1.0)
    # linear in between
    mid = p.mult(nprocs, p.total_iters // 2)
    assert nprocs * 0.25 < mid < nprocs * 1.0


def test_mult_clamped_at_one():
    p = PulpParams(x=1.0, y=0.25)
    # nprocs * Y < 1 would underestimate the rank's own moves
    assert p.mult(1, 0) == 1.0
    assert p.mult(2, 0) == 1.0


def test_mult_clamped_at_schedule_end():
    p = PulpParams(x=1.0, y=0.25)
    assert p.mult(8, 10_000) == pytest.approx(8.0)  # saturates at X


def test_shared_memory_mult_is_exact_share():
    p = PulpParams(shared_memory=True)
    assert p.mult(16, 0) == 16.0
    assert p.mult(16, 45) == 16.0


def test_frozen():
    p = PulpParams()
    with pytest.raises(Exception):
        p.x = 3.0
