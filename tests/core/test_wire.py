"""Wire-format equivalence: ``wire="compact"`` vs the paper's gid64 format.

The compact protocol replaces ExchangeUpdates' 16-byte ``(gid, part)``
int64 pairs with build-time-routed ``(ghost slot, part)`` records in the
narrowest dtypes the global graph admits.  It is a pure encoding change:
the same records travel in the same order, so partitions, quality, and
the BSP round structure must be bit-identical on every backend — while
the metered payload bytes shrink by the dtype ratio.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PulpParams, xtrapulp
from repro.dist.wire import WIRE_FORMATS, make_wire_spec
from repro.graph import generators

BACKENDS = ("serial", "threads", "procs")


def _run(graph, wire, *, backend="serial", num_parts=8, nprocs=4, seed=123):
    return xtrapulp(
        graph, num_parts, nprocs=nprocs,
        params=PulpParams(seed=seed, wire=wire),
        backend=backend,
    )


def _payload_bytes(stats):
    """Alltoallv payload bytes over the four exchange-heavy phases."""
    per_tag = stats.bytes_by_tag_op()
    return sum(
        per_tag.get(tag, {}).get("alltoallv", 0)
        for tag in ("vertex_balance", "vertex_refine",
                    "edge_balance", "edge_refine")
    )


# -- spec construction -------------------------------------------------------


def test_make_wire_spec_narrows_dtypes():
    spec = make_wire_spec("compact", max_ghost_global=1000, num_parts=16)
    assert spec.slot_dtype == np.uint16 and spec.part_dtype == np.int16
    assert spec.bytes_per_record == 4
    wide = make_wire_spec("compact", max_ghost_global=2**20, num_parts=2**20)
    assert wide.slot_dtype == np.uint32 and wide.part_dtype == np.int32
    assert wide.bytes_per_record == 8
    legacy = make_wire_spec("gid64", max_ghost_global=1000, num_parts=16)
    assert not legacy.compact and legacy.bytes_per_record == 16


def test_make_wire_spec_validates_mode():
    with pytest.raises(ValueError, match="wire"):
        make_wire_spec("tight", max_ghost_global=10, num_parts=4)
    assert WIRE_FORMATS == ("compact", "gid64")


def test_wire_param_validation():
    with pytest.raises(ValueError, match="wire"):
        PulpParams(wire="sometimes")


# -- bit-identity on every backend -------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_compact_matches_gid64_bit_for_bit(backend):
    g = generators.rmat(9, avg_degree=8, seed=11)
    compact = _run(g, "compact", backend=backend)
    legacy = _run(g, "gid64", backend=backend)
    np.testing.assert_array_equal(compact.parts, legacy.parts)
    qc, ql = compact.quality(g), legacy.quality(g)
    assert qc.cut == ql.cut
    assert qc.vertex_balance == ql.vertex_balance
    assert qc.edge_balance == ql.edge_balance
    # same BSP structure: every collective fired the same number of times
    assert compact.stats.rounds == legacy.stats.rounds
    # ... but the compact payload is strictly smaller on the wire
    assert _payload_bytes(compact.stats) < _payload_bytes(legacy.stats)


def test_backends_agree_under_compact_wire():
    g = generators.rmat(9, avg_degree=8, seed=17)
    runs = [_run(g, "compact", backend=b) for b in BACKENDS]
    for other in runs[1:]:
        np.testing.assert_array_equal(other.parts, runs[0].parts)
        assert other.stats.bytes_by_tag() == runs[0].stats.bytes_by_tag()


# -- property test over random graphs ----------------------------------------


@settings(max_examples=8, deadline=None, derandomize=True)
@given(
    family=st.sampled_from(["rmat", "er"]),
    scale=st.integers(min_value=8, max_value=10),
    nprocs=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_wire_formats_equivalent_property(family, scale, nprocs, seed):
    if family == "rmat":
        g = generators.rmat(scale, avg_degree=8, seed=seed)
    else:
        g = generators.erdos_renyi(2**scale, avg_degree=8, seed=seed)
    compact = _run(g, "compact", nprocs=nprocs, seed=seed % 997)
    legacy = _run(g, "gid64", nprocs=nprocs, seed=seed % 997)
    np.testing.assert_array_equal(compact.parts, legacy.parts)
    qc, ql = compact.quality(g), legacy.quality(g)
    assert (qc.cut, qc.vertex_balance, qc.edge_balance) == (
        ql.cut, ql.vertex_balance, ql.edge_balance
    )
