"""Vertex-weighted partitioning (the PuLP family's weighted extension)."""

import numpy as np
import pytest

from repro.core import PulpParams, xtrapulp
from repro.core.quality import vertex_balance, vertex_counts
from repro.graph import mesh3d, ring, rmat


@pytest.fixture(scope="module")
def g():
    return mesh3d(12, 12, 12)


def heavy_weights(n, seed=7):
    rng = np.random.default_rng(seed)
    return 1.0 + rng.pareto(2.0, n) * 3.0


def test_weighted_balance_constraint(g):
    w = heavy_weights(g.n)
    res = xtrapulp(g, 8, nprocs=4, vertex_weights=w)
    vb = vertex_balance(g, res.parts, 8, weights=w)
    assert vb <= 1.10 * 1.15  # the weighted constraint, small BSP slack


def test_weighted_beats_unweighted_on_weighted_metric(g):
    w = heavy_weights(g.n)
    unweighted = xtrapulp(g, 8, nprocs=4)
    weighted = xtrapulp(g, 8, nprocs=4, vertex_weights=w)
    vb_u = vertex_balance(g, unweighted.parts, 8, weights=w)
    vb_w = vertex_balance(g, weighted.parts, 8, weights=w)
    assert vb_w <= max(vb_u, 1.15)


def test_unit_weights_equal_default():
    g2 = rmat(10, 14, seed=2)
    a = xtrapulp(g2, 4, nprocs=2, params=PulpParams(seed=1))
    b = xtrapulp(
        g2, 4, nprocs=2, params=PulpParams(seed=1),
        vertex_weights=np.ones(g2.n),
    )
    np.testing.assert_array_equal(a.parts, b.parts)


def test_single_giant_weight():
    # one vertex holding ~an entire part's share must not break anything
    g2 = ring(64)
    w = np.ones(64)
    w[10] = 16.0
    res = xtrapulp(g2, 4, nprocs=2, vertex_weights=w)
    counts = vertex_counts(g2, res.parts, 4, weights=w)
    assert counts.sum() == pytest.approx(w.sum())
    # the giant's part carries it; others share the rest
    assert counts.max() <= 16.0 + 24.0  # giant + a few neighbors at worst


def test_weighted_quality_still_reasonable(g):
    w = heavy_weights(g.n)
    res = xtrapulp(g, 8, nprocs=4, vertex_weights=w)
    assert res.quality().cut_ratio < 0.35  # mesh stays well-cut


def test_weight_validation(g):
    with pytest.raises(ValueError):
        xtrapulp(g, 4, nprocs=2, vertex_weights=np.ones(3))
    bad = np.ones(g.n)
    bad[0] = 0.0
    with pytest.raises(ValueError):
        xtrapulp(g, 4, nprocs=2, vertex_weights=bad)
    with pytest.raises(ValueError):
        xtrapulp(g, 4, nprocs=2, vertex_weights=-np.ones(g.n))


def test_weighted_deterministic(g):
    w = heavy_weights(g.n)
    a = xtrapulp(g, 4, nprocs=3, vertex_weights=w)
    b = xtrapulp(g, 4, nprocs=3, vertex_weights=w)
    np.testing.assert_array_equal(a.parts, b.parts)


def test_weighted_with_initial_parts(g):
    from repro.baselines import vertex_block_partition

    w = heavy_weights(g.n)
    start = vertex_block_partition(g, 8)
    res = xtrapulp(
        g, 8, nprocs=2, vertex_weights=w, initial_parts=start,
        params=PulpParams(outer_iters=1, balance_iters=5, refine_iters=5),
    )
    vb_before = vertex_balance(g, start, 8, weights=w)
    vb_after = vertex_balance(g, res.parts, 8, weights=w)
    # balance may drift *within* the constraint while cut improves, but
    # must never leave the feasible region the start satisfied
    assert vb_after <= max(vb_before, 1.10) + 1e-2
    assert res.quality().cut_ratio <= 0.35
