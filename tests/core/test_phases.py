"""Balance/refinement phase behaviour: invariants and improvement."""

import numpy as np
import pytest

from repro.core.edge_balance import edge_balance_phase, edge_refine_phase
from repro.core.initialization import initialize
from repro.core.params import PulpParams
from repro.core.quality import edge_cut
from repro.core.refinement import vertex_refine_phase
from repro.core.state import RankState
from repro.core.vertex_balance import vertex_balance_phase
from repro.dist import build_dist_graph, make_distribution
from repro.graph import rmat, webcrawl
from repro.simmpi import Runtime


def run_phases(graph, p, nprocs, steps, params=None, seed=42):
    """Run a list of phase callables; return (parts, per-step snapshots)."""
    params = params or PulpParams(seed=seed)
    dist = make_distribution("random", graph.n, nprocs, seed=seed)

    def main(comm):
        dg = build_dist_graph(comm, graph, dist)
        state = RankState(dg=dg, num_parts=p, params=params)
        initialize(comm, state)
        snaps = [state.compute_vertex_sizes(comm).copy()]
        for step in steps:
            step(comm, state)
            snaps.append(state.compute_vertex_sizes(comm).copy())
        return dg.owned_gids.copy(), state.parts[: dg.n_local].copy(), snaps

    results = Runtime(nprocs).run(main)
    parts = np.empty(graph.n, dtype=np.int64)
    for gids, owned, _ in results:
        parts[gids] = owned
    return parts, results[0][2]


def test_vertex_balance_improves_balance():
    g = rmat(11, 16, seed=1)
    p = 8
    parts, snaps = run_phases(
        g, p, 2,
        [lambda c, s: vertex_balance_phase(c, s, 5)],
    )
    before, after = snaps[0], snaps[-1]
    assert after.max() < before.max()
    target = (1 + 0.10) * g.n / p
    assert after.max() <= target * 1.25  # near the constraint in one phase


def test_sizes_conserved_through_phases():
    g = rmat(10, 16, seed=2)
    parts, snaps = run_phases(
        g, 4, 2,
        [
            lambda c, s: vertex_balance_phase(c, s, 5),
            lambda c, s: vertex_refine_phase(c, s, 10),
            lambda c, s: edge_balance_phase(c, s, 5),
            lambda c, s: edge_refine_phase(c, s, 10),
        ],
    )
    for snap in snaps:
        assert snap.sum() == g.n
    # final tracked sizes equal an independent recount
    recount = np.bincount(parts, minlength=4)
    np.testing.assert_array_equal(snaps[-1], recount)


def test_refinement_reduces_cut_without_worsening_balance():
    g = rmat(11, 16, seed=3)
    p = 8

    params = PulpParams(seed=42)
    dist = make_distribution("random", g.n, 2, seed=42)

    def main(comm):
        dg = build_dist_graph(comm, g, dist)
        state = RankState(dg=dg, num_parts=p, params=params)
        initialize(comm, state)
        vertex_balance_phase(comm, state, 5)
        sv_before = state.compute_vertex_sizes(comm)
        gids = dg.owned_gids.copy()
        before = state.parts[: dg.n_local].copy()
        vertex_refine_phase(comm, state, 10)
        sv_after = state.compute_vertex_sizes(comm)
        after = state.parts[: dg.n_local].copy()
        return gids, before, after, sv_before, sv_after

    results = Runtime(2).run(main)
    parts_before = np.empty(g.n, dtype=np.int64)
    parts_after = np.empty(g.n, dtype=np.int64)
    for gids, b, a, svb, sva in results:
        parts_before[gids] = b
        parts_after[gids] = a
    imb_v = 1.10 * g.n / p
    svb, sva = results[0][3], results[0][4]
    assert edge_cut(g, parts_after, p) <= edge_cut(g, parts_before, p)
    # ratcheted Maxv: refinement may not raise the worst part size beyond
    # the phase-entry maximum (or the constraint target)
    assert sva.max() <= max(svb.max(), imb_v) + 1e-9


def test_edge_balance_phase_improves_edge_balance():
    g = webcrawl(2048, 16, seed=5)
    p = 8
    params = PulpParams(seed=42)
    dist = make_distribution("random", g.n, 2, seed=42)

    def main(comm):
        dg = build_dist_graph(comm, g, dist)
        state = RankState(dg=dg, num_parts=p, params=params)
        initialize(comm, state)
        vertex_balance_phase(comm, state, 5)
        vertex_refine_phase(comm, state, 10)
        se_before = state.compute_edge_sizes(comm)
        state.iter_tot = 0
        edge_balance_phase(comm, state, 5)
        edge_refine_phase(comm, state, 10)
        se_after = state.compute_edge_sizes(comm)
        return se_before, se_after

    se_before, se_after = Runtime(2).run(main)[0]
    assert se_after.max() <= se_before.max()


def test_tracked_edge_and_cut_sizes_match_recount():
    g = rmat(10, 16, seed=7)
    p = 4
    params = PulpParams(seed=1)
    dist = make_distribution("random", g.n, 2, seed=1)

    def main(comm):
        dg = build_dist_graph(comm, g, dist)
        state = RankState(dg=dg, num_parts=p, params=params)
        initialize(comm, state)
        edge_balance_phase(comm, state, 3)
        # recompute from scratch and compare with a second recompute —
        # compute_* methods must be pure
        a = state.compute_cut_sizes(comm)
        b = state.compute_cut_sizes(comm)
        np.testing.assert_array_equal(a, b)
        se = state.compute_edge_sizes(comm)
        return state.parts[: dg.n_local].copy(), dg.owned_gids.copy(), se, a

    results = Runtime(2).run(main)
    parts = np.empty(g.n, dtype=np.int64)
    for owned, gids, _, _ in results:
        parts[gids] = owned
    se = results[0][2]
    sc = results[0][3]
    np.testing.assert_array_equal(
        se, np.bincount(parts, weights=g.degrees.astype(float), minlength=p)
    )
    # cut per part from quality module
    from repro.core.quality import cut_edges_per_part

    np.testing.assert_array_equal(sc, cut_edges_per_part(g, parts, p))
