"""Cross-cutting end-to-end partitioner properties (incl. property tests)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PulpParams, xtrapulp
from repro.core.quality import partition_quality
from repro.graph import from_edges, ring, rmat


def test_ghost_consistency_after_full_pipeline():
    """After the pipeline, every rank's ghost labels must equal the owner's
    labels — the ExchangeUpdates contract held through all phases."""
    from repro.core.driver import _rank_main
    from repro.dist.distribution import make_distribution
    from repro.simmpi import Runtime

    g = rmat(9, 12, seed=2)
    dist = make_distribution("random", g.n, 3, seed=5)
    params = PulpParams(seed=5)

    def main(comm):
        from repro.core.edge_balance import edge_balance_phase, edge_refine_phase
        from repro.core.initialization import initialize
        from repro.core.state import RankState
        from repro.core.vertex_balance import vertex_balance_phase
        from repro.core.refinement import vertex_refine_phase
        from repro.dist.build import build_dist_graph

        dg = build_dist_graph(comm, g, dist)
        state = RankState(dg=dg, num_parts=4, params=params)
        initialize(comm, state)
        for _ in range(params.outer_iters):
            vertex_balance_phase(comm, state, params.balance_iters)
            vertex_refine_phase(comm, state, params.refine_iters)
        state.iter_tot = 0
        for _ in range(params.outer_iters):
            edge_balance_phase(comm, state, params.balance_iters)
            edge_refine_phase(comm, state, params.refine_iters)
        return (
            dg.owned_gids.copy(),
            state.parts[: dg.n_local].copy(),
            dg.ghost_gids.copy(),
            state.parts[dg.n_local:].copy(),
        )

    results = Runtime(3).run(main)
    global_parts = np.empty(g.n, dtype=np.int64)
    for gids, owned, _, _ in results:
        global_parts[gids] = owned
    for _, _, ghost_gids, ghost_parts in results:
        np.testing.assert_array_equal(ghost_parts, global_parts[ghost_gids])


def test_p_equals_one():
    g = rmat(8, 10, seed=1)
    res = xtrapulp(g, 1, nprocs=2)
    assert np.all(res.parts == 0)
    assert res.quality().cut == 0


def test_p_equals_n():
    g = ring(8)
    res = xtrapulp(g, 8, nprocs=2)
    # everything is cut in a ring with singleton parts
    q = res.quality()
    assert q.vertex_balance <= 8.0
    assert set(res.parts.tolist()) <= set(range(8))


def test_tiny_graph():
    g = ring(4)
    res = xtrapulp(g, 2, nprocs=1)
    assert res.parts.shape == (4,)
    assert res.quality().cut_ratio <= 1.0


def test_more_ranks_than_vertices():
    g = ring(6)
    res = xtrapulp(g, 2, nprocs=8)  # some ranks own nothing
    assert res.parts.min() >= 0


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=60),
    m=st.integers(min_value=4, max_value=150),
    p=st.integers(min_value=1, max_value=4),
    nprocs=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_partition_invariants_random_graphs(n, m, p, nprocs, seed):
    """Fuzz the whole pipeline on arbitrary graphs: every vertex labeled,
    labels in range, bookkeeping consistent with an independent recount."""
    rng = np.random.default_rng(seed)
    g = from_edges(
        n,
        rng.integers(0, n, size=m),
        rng.integers(0, n, size=m),
    )
    params = PulpParams(seed=seed % 1000, outer_iters=1)
    res = xtrapulp(g, min(p, n), nprocs=nprocs, params=params)
    assert res.parts.shape == (n,)
    assert res.parts.min() >= 0
    assert res.parts.max() < min(p, n)
    q = partition_quality(g, res.parts, min(p, n))
    assert 0 <= q.cut_ratio <= 1.0


def test_all_parts_populated_on_connected_graph():
    g = ring(64)
    res = xtrapulp(g, 8, nprocs=2)
    counts = np.bincount(res.parts, minlength=8)
    assert counts.min() > 0


def test_results_stable_under_block_size():
    """Different block sizes change within-sweep granularity but must keep
    all invariants (this is the ablation's correctness side)."""
    g = rmat(9, 12, seed=3)
    for bs in (16, 256, 10_000):
        res = xtrapulp(g, 4, nprocs=2, params=PulpParams(block_size=bs))
        q = res.quality()
        assert q.vertex_balance < 1.6
        counts = np.bincount(res.parts, minlength=4)
        assert counts.sum() == g.n


def test_single_objective_faster_than_full():
    g = rmat(10, 14, seed=4)
    full = xtrapulp(g, 8, nprocs=2)
    single = xtrapulp(g, 8, nprocs=2, params=PulpParams(single_objective=True))
    assert single.stats.rounds < full.stats.rounds
    assert single.modeled_seconds < full.modeled_seconds


def test_wall_and_modeled_reported():
    g = ring(32)
    res = xtrapulp(g, 4, nprocs=2)
    assert res.wall_seconds > 0
    assert res.modeled_seconds > 0
    # deterministic work charging → identical modeled time across runs
    res2 = xtrapulp(g, 4, nprocs=2)
    assert res.modeled_seconds == pytest.approx(res2.modeled_seconds)
