"""Property test: ExchangeUpdates keeps ghosts consistent under arbitrary
update sequences — the contract every phase relies on."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.exchange import exchange_updates
from repro.dist import build_dist_graph, make_distribution
from repro.graph import from_edges
from repro.simmpi import Runtime


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=24),
    m=st.integers(min_value=2, max_value=60),
    nprocs=st.integers(min_value=2, max_value=4),
    rounds=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_ghosts_track_owners_through_random_updates(n, m, nprocs, rounds, seed):
    rng_g = np.random.default_rng(seed)
    g = from_edges(
        n, rng_g.integers(0, n, size=m), rng_g.integers(0, n, size=m)
    )
    dist = make_distribution("random", g.n, nprocs, seed=seed % 97)

    def main(comm):
        dg = build_dist_graph(comm, g, dist)
        rng = np.random.default_rng(1000 + comm.rank)
        parts = np.zeros(dg.n_total, dtype=np.int64)
        parts[: dg.n_local] = dg.owned_gids  # start: part = gid
        exchange_updates(comm, dg, parts, np.arange(dg.n_local))
        for _ in range(rounds):
            k = rng.integers(0, dg.n_local + 1) if dg.n_local else 0
            upd = (
                rng.choice(dg.n_local, size=int(k), replace=False)
                if k else np.empty(0, dtype=np.int64)
            )
            parts[upd] = rng.integers(0, 1000, size=upd.size)
            exchange_updates(comm, dg, parts, upd)
        return (
            dg.owned_gids.copy(), parts[: dg.n_local].copy(),
            dg.ghost_gids.copy(), parts[dg.n_local:].copy(),
        )

    results = Runtime(nprocs).run(main)
    truth = np.empty(g.n, dtype=np.int64)
    for gids, owned, _, _ in results:
        truth[gids] = owned
    for _, _, ghost_gids, ghost_parts in results:
        np.testing.assert_array_equal(ghost_parts, truth[ghost_gids])
