"""Capacity-limited move admission (the vectorized per-move-update analog)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.capacity import enforce_count_capacity, enforce_weight_capacity


def test_count_capacity_basic():
    tgt = np.array([0, 0, 0, 1, 1])
    cap = np.array([2.0, 1.0])
    keep = enforce_count_capacity(tgt, cap)
    np.testing.assert_array_equal(keep, [True, True, False, True, False])


def test_count_capacity_scan_order_wins():
    # earlier candidates (lower index) win, mirroring the sequential scan
    tgt = np.array([1, 0, 1, 0, 1])
    cap = np.array([1.0, 2.0])
    keep = enforce_count_capacity(tgt, cap)
    np.testing.assert_array_equal(keep, [True, True, True, False, False])


def test_count_capacity_closed_parts():
    tgt = np.array([0, 1, 0])
    keep = enforce_count_capacity(tgt, np.array([0.0, -3.0]))
    assert not keep.any()


def test_count_capacity_fractional_floor():
    tgt = np.array([0, 0])
    keep = enforce_count_capacity(tgt, np.array([1.9]))
    np.testing.assert_array_equal(keep, [True, False])


def test_count_capacity_empty():
    assert enforce_count_capacity(np.array([], dtype=int), np.array([1.0])).size == 0


def test_weight_capacity_basic():
    tgt = np.array([0, 0, 0])
    w = np.array([2.0, 3.0, 1.0])
    keep = enforce_weight_capacity(tgt, w, np.array([5.0]))
    # running sums 2, 5, 6 → third exceeds
    np.testing.assert_array_equal(keep, [True, True, False])


def test_weight_capacity_negative_weights_allowed():
    # cut deltas can be negative; running sum can dip and recover
    tgt = np.array([0, 0, 0])
    w = np.array([4.0, -3.0, 4.0])
    keep = enforce_weight_capacity(tgt, w, np.array([5.0]))
    np.testing.assert_array_equal(keep, [True, True, True])


def test_weight_capacity_per_part_independent():
    tgt = np.array([0, 1, 0, 1])
    w = np.array([5.0, 1.0, 5.0, 1.0])
    keep = enforce_weight_capacity(tgt, w, np.array([5.0, 10.0]))
    np.testing.assert_array_equal(keep, [True, True, False, True])


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=3), max_size=30),
    st.lists(st.floats(min_value=0, max_value=10), min_size=4, max_size=4),
)
def test_count_capacity_matches_sequential_simulation(targets, caps):
    tgt = np.array(targets, dtype=np.int64)
    cap = np.array(caps)
    keep = enforce_count_capacity(tgt, cap)
    # sequential reference
    used = np.zeros(4)
    expected = []
    for t in targets:
        ok = used[t] + 1 <= np.floor(max(cap[t], 0.0)) or (
            used[t] < np.floor(max(cap[t], 0.0))
        )
        ok = used[t] < np.floor(max(cap[t], 0.0))
        expected.append(bool(ok))
        if ok:
            used[t] += 1
    np.testing.assert_array_equal(keep, expected)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.floats(min_value=-5, max_value=5),
        ),
        max_size=25,
    ),
    st.lists(st.floats(min_value=0, max_value=12), min_size=3, max_size=3),
)
def test_weight_capacity_matches_sequential_simulation(moves, caps):
    tgt = np.array([m[0] for m in moves], dtype=np.int64)
    w = np.array([m[1] for m in moves])
    cap = np.array(caps)
    keep = enforce_weight_capacity(tgt, w, cap)
    running = np.zeros(3)
    expected = []
    for t, weight in moves:
        # NOTE: admission checks the running sum *including* every prior
        # candidate of this part (admitted or not has no effect here —
        # rejected ones are not subtracted), matching the implementation's
        # prefix-sum rule
        running[t] += weight
        expected.append(bool(running[t] <= max(cap[t], 0.0)))
    np.testing.assert_array_equal(keep, expected)
