"""Property tests: analytics agree with networkx on arbitrary graphs and
are invariant to the distribution used to run them."""

import numpy as np
import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.analytics import (
    kcore_decomposition,
    pagerank,
    run_analytic,
    weakly_connected_components,
)
from repro.graph import from_edges
from repro.graph.builders import to_networkx


@st.composite
def graph_cases(draw):
    n = draw(st.integers(min_value=3, max_value=28))
    m = draw(st.integers(min_value=1, max_value=70))
    nprocs = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    g = from_edges(n, rng.integers(0, n, size=m), rng.integers(0, n, size=m))
    return g, nprocs


@settings(max_examples=25, deadline=None)
@given(graph_cases())
def test_wcc_matches_networkx_everywhere(case):
    g, nprocs = case
    r = run_analytic(g, weakly_connected_components, nprocs=nprocs)
    nxg = to_networkx(g)
    ref = {frozenset(c) for c in nx.connected_components(nxg)}
    mine = {}
    for v, label in enumerate(r.values):
        mine.setdefault(label, set()).add(v)
    assert {frozenset(s) for s in mine.values()} == ref


@settings(max_examples=20, deadline=None)
@given(graph_cases())
def test_kcore_matches_networkx_everywhere(case):
    g, nprocs = case
    r = run_analytic(g, kcore_decomposition, nprocs=nprocs)
    nxg = to_networkx(g)
    nxg.remove_edges_from(nx.selfloop_edges(nxg))
    ref = nx.core_number(nxg)
    np.testing.assert_array_equal(r.values, [ref[i] for i in range(g.n)])


@settings(max_examples=15, deadline=None)
@given(graph_cases())
def test_pagerank_mass_conserved_everywhere(case):
    g, nprocs = case
    r = run_analytic(g, pagerank, nprocs=nprocs, iters=15)
    assert abs(r.values.sum() - 1.0) < 1e-9
    assert r.values.min() >= 0


@settings(max_examples=15, deadline=None)
@given(graph_cases(), st.integers(min_value=0, max_value=2**31))
def test_results_distribution_invariant(case, dist_seed):
    g, nprocs = case
    from repro.dist import RandomDistribution

    a = run_analytic(g, weakly_connected_components, nprocs=nprocs,
                     distribution="block")
    b = run_analytic(
        g, weakly_connected_components, nprocs=nprocs,
        distribution=RandomDistribution(g.n, nprocs, seed=dist_seed),
    )
    np.testing.assert_array_equal(a.values, b.values)
