"""Analytics engine plumbing: runner validation, directed attachment,
work charging, helper correctness."""

import numpy as np
import pytest

from repro.analytics import pagerank, run_analytic, weakly_connected_components
from repro.analytics.engine import attach_directed, segment_sums
from repro.dist import build_dist_graph, make_distribution
from repro.graph import from_edges, rmat, webcrawl
from repro.graph.builders import symmetrize
from repro.simmpi import Runtime


def test_segment_sums_reference():
    g = rmat(7, 8, seed=2)
    dist = make_distribution("block", g.n, 1)

    def main(comm):
        dg = build_dist_graph(comm, g, dist)
        vals = np.arange(dg.adj.size, dtype=np.float64)
        sums = segment_sums(dg, vals)
        for v in range(dg.n_local):
            lo, hi = dg.offsets[v], dg.offsets[v + 1]
            assert sums[v] == pytest.approx(vals[lo:hi].sum())
        return True

    assert Runtime(1).run(main) == [True]


def test_attach_directed_localizes_all_arcs():
    gd = webcrawl(512, 12, seed=3, directed=True)
    gs = symmetrize(gd)
    dist = make_distribution("random", gs.n, 3, seed=0)

    def main(comm):
        dg = build_dist_graph(comm, gs, dist)
        attach_directed(dg, gd)
        # out-arc count conservation
        local_out = int(dg.dir_out_adj.size)
        local_in = int(dg.dir_in_adj.size)
        total_out = comm.allreduce(local_out)
        total_in = comm.allreduce(local_in)
        assert total_out == gd.num_directed_edges
        assert total_in == gd.num_directed_edges
        # spot-check: localized out-neighbors match global ids
        for lid in range(min(dg.n_local, 20)):
            gid = dg.l2g[lid]
            expect = np.sort(gd.neighbors(gid))
            got = np.sort(
                dg.l2g[
                    dg.dir_out_adj[
                        dg.dir_out_offsets[lid]:dg.dir_out_offsets[lid + 1]
                    ]
                ]
            )
            np.testing.assert_array_equal(got, expect)
        return True

    assert all(Runtime(3).run(main))


def test_attach_directed_rejects_undirected():
    g = rmat(6, 6, seed=1)
    dist = make_distribution("block", g.n, 1)

    def main(comm):
        dg = build_dist_graph(comm, g, dist)
        with pytest.raises(ValueError):
            attach_directed(dg, g)
        return True

    assert Runtime(1).run(main) == [True]


def test_run_analytic_distribution_kinds():
    g = rmat(7, 8, seed=4)
    by_str = run_analytic(g, weakly_connected_components, nprocs=2,
                          distribution="block")
    dist = make_distribution("block", g.n, 2)
    by_obj = run_analytic(g, weakly_connected_components, nprocs=2,
                          distribution=dist)
    parts = np.arange(g.n) % 2
    by_parts = run_analytic(g, weakly_connected_components, nprocs=2,
                            distribution=parts)
    np.testing.assert_array_equal(by_str.values, by_obj.values)
    np.testing.assert_array_equal(by_str.values, by_parts.values)


def test_run_analytic_rejects_mismatched_directed():
    g = rmat(7, 8, seed=4)
    other = webcrawl(64, 8, seed=1, directed=True)
    with pytest.raises(ValueError):
        run_analytic(g, pagerank, nprocs=2, directed=other)


def test_analytic_result_carries_name_and_stats():
    g = rmat(7, 8, seed=4)
    r = run_analytic(g, pagerank, nprocs=2, iters=3, name="my_pr")
    assert r.name == "my_pr"
    assert r.stats.rounds > 0
    assert any(e.tag == "my_pr" for e in r.stats.events)


def test_work_charging_produces_deterministic_model():
    g = rmat(8, 10, seed=5)
    a = run_analytic(g, pagerank, nprocs=3, iters=5)
    b = run_analytic(g, pagerank, nprocs=3, iters=5)
    assert a.modeled_seconds == b.modeled_seconds
    # the kernel's events actually carry work units
    kernel_events = [e for e in a.stats.events if e.tag == "pagerank"]
    assert sum(e.max_work for e in kernel_events) > 0


def test_empty_rank_tolerated():
    # more ranks than vertices in a component: some ranks own nothing
    g = from_edges(5, np.array([0, 1, 2, 3]), np.array([1, 2, 3, 4]))
    r = run_analytic(g, weakly_connected_components, nprocs=4)
    assert np.all(r.values == 0)
