"""All six analytics cross-validated against networkx references."""

import numpy as np
import networkx as nx
import pytest

from repro.analytics import (
    harmonic_centrality,
    kcore_decomposition,
    label_propagation_communities,
    largest_scc,
    pagerank,
    run_analytic,
    weakly_connected_components,
)
from repro.graph import from_edges, rmat, webcrawl
from repro.graph.builders import symmetrize, to_networkx


@pytest.fixture(scope="module")
def g():
    return rmat(9, 12, seed=4)


@pytest.fixture(scope="module")
def nxg(g):
    return to_networkx(g)


@pytest.mark.parametrize("nprocs", [1, 2, 4])
@pytest.mark.parametrize("strategy", ["block", "random"])
def test_pagerank_matches_networkx(g, nxg, nprocs, strategy):
    r = run_analytic(
        g, pagerank, nprocs=nprocs, distribution=strategy, iters=60
    )
    ref = nx.pagerank(nxg, alpha=0.85, max_iter=300, tol=1e-13)
    ref_arr = np.array([ref[i] for i in range(g.n)])
    np.testing.assert_allclose(r.values, ref_arr, atol=1e-8)


def test_pagerank_sums_to_one(g):
    r = run_analytic(g, pagerank, nprocs=3, iters=40)
    assert r.values.sum() == pytest.approx(1.0, abs=1e-9)


def test_pagerank_validates_damping(g):
    with pytest.raises(ValueError):
        run_analytic(g, pagerank, nprocs=2, damping=1.5)


@pytest.mark.parametrize("nprocs", [1, 3])
def test_wcc_matches_networkx(g, nxg, nprocs):
    r = run_analytic(g, weakly_connected_components, nprocs=nprocs)
    ref = {frozenset(c) for c in nx.connected_components(nxg)}
    mine = {}
    for v, label in enumerate(r.values):
        mine.setdefault(label, set()).add(v)
    assert {frozenset(s) for s in mine.values()} == ref
    # labels are the minimum member gid
    for label, members in mine.items():
        assert label == min(members)


def test_wcc_on_disconnected_path():
    g2 = from_edges(7, np.array([0, 1, 4]), np.array([1, 2, 5]))
    r = run_analytic(g2, weakly_connected_components, nprocs=2)
    np.testing.assert_array_equal(r.values, [0, 0, 0, 3, 4, 4, 6])


@pytest.mark.parametrize("nprocs", [1, 4])
def test_kcore_matches_networkx(g, nxg, nprocs):
    r = run_analytic(g, kcore_decomposition, nprocs=nprocs)
    clean = nxg.copy()
    clean.remove_edges_from(nx.selfloop_edges(clean))
    ref = nx.core_number(clean)
    np.testing.assert_array_equal(
        r.values, [ref[i] for i in range(g.n)]
    )


def test_kcore_bounded_rounds(g):
    # severely capped rounds: still a valid upper bound on the core number
    r = run_analytic(g, kcore_decomposition, nprocs=2, max_rounds=1)
    full = run_analytic(g, kcore_decomposition, nprocs=2)
    assert np.all(r.values >= full.values)


@pytest.mark.parametrize("nprocs", [2, 4])
def test_scc_matches_networkx(nprocs):
    gd = webcrawl(512, 14, seed=9, directed=True)
    gs = symmetrize(gd)
    r = run_analytic(gs, largest_scc, nprocs=nprocs, directed=gd)
    nxd = nx.DiGraph()
    nxd.add_nodes_from(range(gd.n))
    src, dst = gd.edges()
    nxd.add_edges_from(zip(src.tolist(), dst.tolist()))
    giant = max(nx.strongly_connected_components(nxd), key=len)
    assert set(np.flatnonzero(r.values).tolist()) == giant


def test_scc_requires_directed(g):
    with pytest.raises(ValueError):
        run_analytic(g, largest_scc, nprocs=2)


def test_scc_trivial_graph():
    gd = from_edges(4, np.array([0, 1]), np.array([1, 2]), directed=True)
    gs = symmetrize(gd)
    r = run_analytic(gs, largest_scc, nprocs=2, directed=gd)
    # a DAG: every SCC is a singleton, trim kills everything
    assert r.values.sum() <= 1


def test_harmonic_centrality_exact(g, nxg):
    r = run_analytic(g, harmonic_centrality, nprocs=3, num_sources=8, seed=7)
    rng = np.random.default_rng(7)
    sources = rng.choice(g.n, size=8, replace=False)
    for s in sources:
        lengths = nx.single_source_shortest_path_length(nxg, int(s))
        expected = sum(1.0 / d for v, d in lengths.items() if d > 0)
        assert r.values[int(s)] == pytest.approx(expected)
    # non-sources left at zero
    non = np.setdiff1d(np.arange(g.n), sources)
    assert np.all(r.values[non] == 0)


def test_label_propagation_forms_communities(g):
    r = run_analytic(g, label_propagation_communities, nprocs=2, iters=8)
    n_comms = len(set(r.values.tolist()))
    assert 1 < n_comms < g.n  # grouped something, not everything


def test_label_propagation_deterministic(g):
    a = run_analytic(g, label_propagation_communities, nprocs=2, iters=5)
    b = run_analytic(g, label_propagation_communities, nprocs=2, iters=5)
    np.testing.assert_array_equal(a.values, b.values)


def test_results_independent_of_distribution(g):
    """Deterministic kernels must give identical answers under any layout
    (only the comm volume changes) — the Fig. 8 premise."""
    by_block = run_analytic(g, weakly_connected_components, nprocs=4,
                            distribution="block")
    by_random = run_analytic(g, weakly_connected_components, nprocs=4,
                             distribution="random")
    np.testing.assert_array_equal(by_block.values, by_random.values)


def test_partition_distribution_reduces_comm():
    g2 = webcrawl(4096, 16, seed=3)
    from repro.core import xtrapulp

    parts = xtrapulp(g2, 4, nprocs=4).parts
    good = run_analytic(g2, pagerank, nprocs=4, distribution=parts, iters=10)
    bad = run_analytic(
        g2, pagerank, nprocs=4, distribution="random", iters=10
    )
    good_bytes = good.stats.filtered(["pagerank"]).total_bytes
    bad_bytes = bad.stats.filtered(["pagerank"]).total_bytes
    assert good_bytes < 0.7 * bad_bytes


def test_modeled_seconds_excludes_setup(g):
    r = run_analytic(g, pagerank, nprocs=2, iters=5)
    from repro.simmpi.timing import TimeModel

    total = TimeModel(r.machine).total_time(r.stats)
    assert 0 < r.modeled_seconds < total
