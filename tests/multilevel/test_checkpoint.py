"""Checkpoint/resume at multilevel level boundaries.

The hierarchy is rebuilt deterministically on resume (it is a pure
function of the inputs), then the saved ``(level, cuts, inner state)``
snapshot is restored and the plan re-entered mid-V-cycle.  The oracle is
the uninterrupted run: resuming from ANY committed epoch — including one
inside the uncoarsening sweep — must reproduce its partition, its
communication record (modulo the prefix's checkpoint events, same
convention as ``tests/ft``), and its :class:`MultilevelInfo`.
"""

import os

import numpy as np
import pytest

from repro.core import PulpParams, xtrapulp
from repro.ft.checkpoint import load_manifest
from repro.graph import generators

PARTS = 4
NPROCS = 3


@pytest.fixture(scope="module")
def graph():
    return generators.rmat(8, avg_degree=8, seed=7)


@pytest.fixture(scope="module")
def params():
    return PulpParams(multilevel=True, seed=123)


@pytest.fixture(scope="module")
def reference(graph, params):
    return xtrapulp(graph, PARTS, nprocs=NPROCS, params=params)


@pytest.fixture(scope="module")
def run_dir(graph, params, reference, tmp_path_factory):
    d = str(tmp_path_factory.mktemp("ml_ckpt") / "run")
    res = xtrapulp(graph, PARTS, nprocs=NPROCS, params=params, checkpoint=d)
    # checkpointing itself must not perturb the partition
    np.testing.assert_array_equal(res.parts, reference.parts)
    return d


def _epochs(run_dir):
    out = []
    for name in sorted(os.listdir(run_dir)):
        if name.startswith("epoch"):
            step = load_manifest(os.path.join(run_dir, name))["step"]
            out.append((name, tuple(step)))
    return out


def test_epochs_cover_level_boundaries(run_dir):
    stages = {step[0] for _, step in _epochs(run_dir)}
    # committed epochs exist inside the coarse loop, the uncoarsening
    # sweep, and the fine edge stage — i.e. at level boundaries
    assert {"init", "vertex", "uncoarsen", "edge"} <= stages


def test_resume_from_every_epoch_is_bit_identical(graph, params, reference,
                                                  run_dir):
    for name, step in _epochs(run_dir):
        res = xtrapulp(graph, PARTS, nprocs=NPROCS, params=params,
                       resume=os.path.join(run_dir, name))
        np.testing.assert_array_equal(res.parts, reference.parts,
                                      err_msg=f"{name} {step}")
        sig = [s for s in res.stats.signature() if s[1] != "checkpoint"]
        assert sig == reference.stats.signature(), (name, step)
        assert res.multilevel == reference.multilevel, (name, step)


def test_resume_crosses_into_uncoarsening(graph, params, reference, run_dir):
    # resume specifically from an epoch committed mid-hierarchy: the
    # coarse partition must be re-projected through the remaining levels
    mid = [n for n, step in _epochs(run_dir) if step[0] == "uncoarsen"]
    assert mid, "no uncoarsen-stage epoch was committed"
    res = xtrapulp(graph, PARTS, nprocs=NPROCS, params=params,
                   resume=os.path.join(run_dir, mid[0]), backend="procs")
    np.testing.assert_array_equal(res.parts, reference.parts)
    assert res.multilevel == reference.multilevel
