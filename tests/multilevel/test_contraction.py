"""Property tests on the distributed coarsener (ISSUE 10 satellite).

The contraction invariants, per hierarchy level:

- **vertex-weight conservation** — coarse vertex mass sums to the fine
  graph's (the simulator's unit weights: exactly ``n`` at every level);
- **edge-weight conservation** — the coarse level's total edge weight
  equals the fine level's inter-cluster weight (intra-cluster weight is
  folded into vertices, never lost);
- **distribution consistency** — each coarse level's ranks jointly own
  every vertex exactly once and each ghost's recorded owner matches the
  level's distribution (the ghost-count conservation check: ghosts exist
  precisely where the one-hop neighborhood crosses ranks).

All replicated per-level arrays must also be bit-identical across ranks:
the hierarchy is a pure function of ``(graph, dist, params)``, which is
what makes checkpoint resume re-execute it deterministically.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import PulpParams
from repro.dist import make_distribution
from repro.graph import rmat
from repro.multilevel.coarsen import local_eweights
from repro.multilevel.driver import build_hierarchy
from repro.simmpi import Runtime


def _arc_sources(graph):
    """Source vertex of every CSR arc (global view)."""
    return np.repeat(np.arange(graph.n), np.diff(graph.offsets))


@st.composite
def hierarchy_cases(draw):
    scale = draw(st.integers(min_value=6, max_value=8))
    deg = draw(st.integers(min_value=4, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=500))
    nprocs = draw(st.integers(min_value=1, max_value=4))
    mode = draw(st.sampled_from(["lp", "hem"]))
    return scale, deg, seed, nprocs, mode


def _build(scale, deg, seed, nprocs, mode):
    g = rmat(scale, deg, seed=seed)
    params = PulpParams(
        multilevel=True, ml_coarsen=mode, ml_levels=4,
        ml_coarsest_factor=8, seed=seed,
    )
    dist = make_distribution("random", g.n, nprocs, seed=seed % 97)
    per_rank = Runtime(nprocs).run(
        lambda comm: build_hierarchy(comm, g, dist, 2, params, None)
    )
    return g, per_rank


@settings(max_examples=15, deadline=None)
@given(hierarchy_cases())
def test_contraction_invariants(case):
    g, per_rank = _build(*case)
    levels = per_rank[0]
    assert levels[0].graph.n == g.n
    for i in range(1, len(levels)):
        fine, coarse = levels[i - 1], levels[i]
        f2c = coarse.fine2coarse
        # a total surjective map onto the coarse id range
        assert f2c.shape == (fine.graph.n,)
        assert np.array_equal(
            np.unique(f2c), np.arange(coarse.graph.n)
        )
        assert coarse.graph.n < fine.graph.n
        # vertex mass conserved exactly (unit fine weights => n everywhere)
        assert coarse.vweights.sum() == g.n
        np.testing.assert_array_equal(
            coarse.vweights,
            np.bincount(f2c, weights=fine.vweights,
                        minlength=coarse.graph.n),
        )
        # edge weight conserved: coarse total == fine inter-cluster weight
        srcs = _arc_sources(fine.graph)
        inter = fine.eweights[f2c[srcs] != f2c[fine.graph.adj]].sum()
        assert coarse.eweights.sum() == inter
        # contraction folds intra-cluster arcs: no coarse self loops
        csrcs = _arc_sources(coarse.graph)
        assert np.all(csrcs != coarse.graph.adj)


@settings(max_examples=15, deadline=None)
@given(hierarchy_cases())
def test_hierarchy_distribution_and_replication(case):
    g, per_rank = _build(*case)
    depth = len(per_rank[0])
    assert all(len(lv) == depth for lv in per_rank)
    for i in range(depth):
        ref = per_rank[0][i]
        # replicated arrays bit-identical on every rank
        for lv in per_rank[1:]:
            np.testing.assert_array_equal(lv[i].graph.adj, ref.graph.adj)
            np.testing.assert_array_equal(lv[i].eweights, ref.eweights)
            np.testing.assert_array_equal(lv[i].vweights, ref.vweights)
            if i:
                np.testing.assert_array_equal(
                    lv[i].fine2coarse, ref.fine2coarse
                )
        # ranks jointly own every vertex exactly once
        owned = np.sort(np.concatenate(
            [lv[i].dg.owned_gids for lv in per_rank]
        ))
        np.testing.assert_array_equal(owned, np.arange(ref.graph.n))
        for lv in per_rank:
            dg = lv[i].dg
            # ghosts carry the distribution's owner, never the local rank
            for gid, owner in zip(dg.ghost_gids, dg.ghost_owners):
                assert lv[i].dist.owner(int(gid)) == owner
                assert owner != dg.rank
            # the local arc weights are the global slice for this rank
            np.testing.assert_array_equal(
                lv[i].ew_local,
                local_eweights(lv[i].graph, lv[i].eweights, dg),
            )


def test_hierarchy_is_deterministic():
    a = _build(7, 8, 11, 3, "lp")[1]
    b = _build(7, 8, 11, 3, "lp")[1]
    assert len(a[0]) == len(b[0]) >= 2
    for la, lb in zip(a[0], b[0]):
        np.testing.assert_array_equal(la.graph.adj, lb.graph.adj)
        np.testing.assert_array_equal(la.eweights, lb.eweights)
