"""End-to-end multilevel V-cycle: backend bit-identity and result metadata.

Extends the repo's headline oracle to the multilevel pipeline: a
fixed-seed ``xtrapulp(multilevel=True)`` run must produce bit-identical
partitions, communication signatures, and :class:`MultilevelInfo`
metadata on every execution backend, for both coarsening modes.
"""

import numpy as np
import pytest

from repro.core import PulpParams, xtrapulp
from repro.core.driver import PARTITION_PHASES
from repro.core.quality import partition_quality
from repro.graph import generators, mesh3d

BACKENDS = ("serial", "threads", "procs")
PARTS = 4
NPROCS = 3


@pytest.fixture(scope="module")
def graphs():
    return {
        "rmat": generators.rmat(8, avg_degree=8, seed=7),
        "mesh": mesh3d(8, 8, 8),
    }


@pytest.fixture(scope="module")
def runs(graphs):
    out = {}
    for gname, g in graphs.items():
        for mode in ("lp", "hem"):
            params = PulpParams(multilevel=True, ml_coarsen=mode, seed=123)
            out[(gname, mode)] = {
                b: xtrapulp(g, PARTS, nprocs=NPROCS, params=params,
                            backend=b)
                for b in BACKENDS
            }
    return out


def test_identical_partitions_across_backends(runs):
    for key, by_backend in runs.items():
        ref = by_backend["serial"].parts
        for b in BACKENDS[1:]:
            np.testing.assert_array_equal(by_backend[b].parts, ref, err_msg=str(key))


def test_identical_signatures_across_backends(runs):
    for by_backend in runs.values():
        ref = by_backend["serial"].stats.signature()
        for b in BACKENDS[1:]:
            assert by_backend[b].stats.signature() == ref


def test_identical_multilevel_info_across_backends(runs):
    for by_backend in runs.values():
        ref = by_backend["serial"].multilevel
        for b in BACKENDS[1:]:
            assert by_backend[b].multilevel == ref


def test_multilevel_info_describes_the_hierarchy(runs, graphs):
    for (gname, mode), by_backend in runs.items():
        g = graphs[gname]
        res = by_backend["serial"]
        info = res.multilevel
        assert info is not None
        assert info.coarsen_mode == mode
        assert info.levels >= 2
        assert len(info.level_sizes) == info.levels
        assert info.level_sizes[0] == (g.n, g.num_edges)
        ns = [n for n, _ in info.level_sizes]
        assert all(ns[i] > ns[i + 1] for i in range(len(ns) - 1))
        assert info.coarsest_n == ns[-1]
        # unit edge weights: the trajectory's final entry IS the edge cut
        q = partition_quality(g, res.parts, PARTS)
        assert info.cut_trajectory[-1] == q.cut
        assert len(info.cut_trajectory) >= info.levels


def test_balance_constraints_hold(runs, graphs):
    for (gname, mode), by_backend in runs.items():
        g = graphs[gname]
        res = by_backend["serial"]
        q = partition_quality(g, res.parts, PARTS)
        # finest level enforces the verbatim constraint (+ rounding slack)
        assert q.vertex_balance <= 1.10 + 0.02
        if gname == "mesh":
            # the edge constraint is only satisfiable on the mesh at this
            # scale: a 256-vertex rmat's hubs defeat even the flat
            # pipeline (1.18 at the same seed); the benchmark gate checks
            # edge balance at the scale where it is achievable
            assert q.edge_balance <= 1.10 + 0.02


def test_flat_run_emits_no_multilevel_phases(graphs):
    res = xtrapulp(graphs["rmat"], PARTS, nprocs=NPROCS,
                   params=PulpParams(seed=123))
    assert res.multilevel is None
    tags = {e.tag for e in res.stats.events}
    assert not tags & {"coarsen", "ml_refine", "project"}


def test_multilevel_run_emits_the_new_phases(runs):
    res = runs[("rmat", "lp")]["serial"]
    tags = {e.tag for e in res.stats.events}
    assert {"coarsen", "ml_refine", "project"} <= tags
    # beyond the partition phases only infrastructure tags appear
    assert tags <= set(PARTITION_PHASES) | {"build", "plan", "checkpoint"}


def test_tiny_graph_degenerates_to_single_level(graphs):
    # far below the coarsening target: no hierarchy, but still a valid run
    g = generators.rmat(5, avg_degree=4, seed=3)
    res = xtrapulp(g, 2, nprocs=2,
                   params=PulpParams(multilevel=True, seed=9))
    assert res.multilevel.levels == 1
    assert set(np.unique(res.parts)) <= {0, 1}


def test_initial_parts_rejected(graphs):
    g = graphs["rmat"]
    with pytest.raises(ValueError, match="initial_parts"):
        xtrapulp(g, PARTS, nprocs=NPROCS,
                 params=PulpParams(multilevel=True),
                 initial_parts=np.zeros(g.n, dtype=np.int64))


def test_param_validation():
    with pytest.raises(ValueError):
        PulpParams(ml_coarsen="metis")
    with pytest.raises(ValueError):
        PulpParams(ml_levels=0)
    with pytest.raises(ValueError):
        PulpParams(ml_coarsest_factor=0)
    with pytest.raises(ValueError):
        PulpParams(ml_refine_iters=0)
    with pytest.raises(ValueError):
        PulpParams(ml_imbalance_relax=-0.5)
