"""DistGraph API details beyond the construction tests."""

import numpy as np
import pytest

from repro.dist import build_dist_graph, make_distribution
from repro.graph import ring, rmat, star
from repro.simmpi import Runtime


def build_one(graph, nprocs=2, kind="block", seed=0):
    dist = make_distribution(kind, graph.n, nprocs, seed=seed)
    return Runtime(nprocs).run(
        lambda comm: build_dist_graph(comm, graph, dist)
    )


def test_n_total_and_gid_views():
    g = ring(12)
    for dg in build_one(g, 3):
        assert dg.n_total == dg.n_local + dg.n_ghost
        np.testing.assert_array_equal(
            dg.l2g, np.concatenate([dg.owned_gids, dg.ghost_gids])
        )
        # owned and ghost gid sets are disjoint and sorted
        assert np.all(np.diff(dg.owned_gids) > 0)
        assert np.all(np.diff(dg.ghost_gids) > 0)
        assert not set(dg.owned_gids) & set(dg.ghost_gids)


def test_local_degrees_match_global():
    g = rmat(8, 10, seed=1)
    for dg in build_one(g, 4, kind="random", seed=3):
        np.testing.assert_array_equal(
            dg.local_degrees, g.degrees[dg.owned_gids]
        )


def test_owned_lids_roundtrip():
    g = ring(10)
    for dg in build_one(g, 2):
        lids = dg.owned_lids(dg.owned_gids)
        np.testing.assert_array_equal(lids, np.arange(dg.n_local))


def test_star_hub_neighbor_ranks():
    g = star(16)
    dgs = build_one(g, 4)
    # the hub (vertex 0, owned by rank 0) neighbors every other rank
    hub_owner = dgs[0]
    lid = int(hub_owner.owned_lids(np.array([0]))[0])
    np.testing.assert_array_equal(hub_owner.neighbor_ranks(lid), [1, 2, 3])
    # leaves on other ranks neighbor only rank 0
    for dg in dgs[1:]:
        for leaf in range(dg.n_local):
            np.testing.assert_array_equal(dg.neighbor_ranks(leaf), [0])


def test_arrays_read_only():
    g = ring(8)
    dg = build_one(g, 2)[0]
    for arr in (dg.offsets, dg.adj, dg.l2g, dg.degrees_full):
        with pytest.raises(ValueError):
            arr[0] = 99


def test_global_metadata():
    g = rmat(8, 10, seed=2)
    for dg in build_one(g, 3):
        assert dg.global_n == g.n
        assert dg.global_m == g.num_edges


def test_directed_slots_default_none():
    g = ring(8)
    dg = build_one(g, 2)[0]
    assert dg.dir_out_offsets is None
    assert dg.dir_in_adj is None
