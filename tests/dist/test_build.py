"""Distributed graph construction: ghosts, id maps, edge conservation."""

import numpy as np
import pytest

from repro.dist import build_dist_graph, make_distribution
from repro.graph import from_edges, rmat, ring
from repro.simmpi import Runtime


def build_all(graph, nprocs, kind="block", seed=0):
    dist = make_distribution(kind, graph.n, nprocs, seed=seed)
    rt = Runtime(nprocs)
    return rt.run(lambda comm: build_dist_graph(comm, graph, dist)), dist


@pytest.mark.parametrize("kind", ["block", "random"])
@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_edge_conservation(kind, nprocs):
    g = rmat(9, 12, seed=3)
    dgs, _ = build_all(g, nprocs, kind)
    assert sum(dg.num_local_edges for dg in dgs) == g.num_directed_edges
    assert sum(dg.n_local for dg in dgs) == g.n


def test_local_adjacency_matches_global():
    g = rmat(8, 10, seed=5)
    dgs, dist = build_all(g, 3, "random", seed=1)
    for dg in dgs:
        for lid in range(dg.n_local):
            gid = dg.l2g[lid]
            local_neigh = dg.neighbors(lid)
            neigh_gids = np.sort(dg.l2g[local_neigh])
            np.testing.assert_array_equal(neigh_gids, g.neighbors(gid))


def test_ghosts_are_exactly_one_hop_remote():
    g = rmat(8, 10, seed=5)
    dgs, dist = build_all(g, 4, "block")
    for dg in dgs:
        ghosts = set(dg.ghost_gids.tolist())
        expected = set()
        for gid in dg.owned_gids:
            for u in g.neighbors(gid):
                if dist.owner(int(u)) != dg.rank:
                    expected.add(int(u))
        assert ghosts == expected
        # ghost owners correct
        for ggid, owner in zip(dg.ghost_gids, dg.ghost_owners):
            assert dist.owner(int(ggid)) == owner
            assert owner != dg.rank


def test_ghost_degrees_are_global_degrees():
    g = rmat(8, 10, seed=7)
    dgs, _ = build_all(g, 3, "random", seed=2)
    for dg in dgs:
        np.testing.assert_array_equal(dg.degrees_full, g.degrees[dg.l2g])


def test_send_rank_lists():
    g = ring(12)
    dgs, dist = build_all(g, 3, "block")
    for dg in dgs:
        for lid in range(dg.n_local):
            gid = dg.l2g[lid]
            expected = sorted(
                {
                    int(dist.owner(int(u)))
                    for u in g.neighbors(gid)
                    if dist.owner(int(u)) != dg.rank
                }
            )
            np.testing.assert_array_equal(dg.neighbor_ranks(lid), expected)


def test_boundary_mask():
    g = ring(12)
    dgs, _ = build_all(g, 3, "block")
    for dg in dgs:
        mask = dg.boundary_mask
        # in a block-distributed ring only the two endpoints are boundary
        assert mask.sum() == 2
        assert mask[0] and mask[-1]


def test_ghost_lids_lookup():
    g = ring(8)
    dgs, _ = build_all(g, 2, "block")
    dg = dgs[0]
    lids = dg.ghost_lids(dg.ghost_gids)
    np.testing.assert_array_equal(
        lids, np.arange(dg.n_ghost) + dg.n_local
    )
    with pytest.raises(ValueError):
        dg.ghost_lids(dg.owned_gids[:1])


def test_single_rank_has_no_ghosts():
    g = rmat(8, 10, seed=1)
    dgs, _ = build_all(g, 1)
    assert dgs[0].n_ghost == 0
    assert dgs[0].n_local == g.n


def test_build_validates_inputs():
    g = ring(8)
    wrong_dist = make_distribution("block", 9, 2)
    with pytest.raises(ValueError):
        Runtime(2).run(lambda comm: build_dist_graph(comm, g, wrong_dist))
    dist = make_distribution("block", 8, 3)
    with pytest.raises(ValueError):
        Runtime(2).run(lambda comm: build_dist_graph(comm, g, dist))


def test_repr():
    g = ring(8)
    dgs, _ = build_all(g, 2, "block")
    assert "rank=0/2" in repr(dgs[0])


@pytest.mark.parametrize("kind", ["block", "random"])
@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_ghost_routing_table(kind, nprocs):
    """Every (vertex, rank) send pair's precomputed slot addresses exactly
    the destination rank's ghost copy of that vertex."""
    g = rmat(8, 10, seed=9)
    dgs, _ = build_all(g, nprocs, kind, seed=4)
    for dg in dgs:
        assert dg.send_ghost_slot.dtype == np.uint32
        assert dg.send_ghost_slot.shape == dg.send_rank_adj.shape
        for lid in range(dg.n_local):
            lo, hi = dg.send_rank_offsets[lid], dg.send_rank_offsets[lid + 1]
            for r, slot in zip(dg.send_rank_adj[lo:hi],
                               dg.send_ghost_slot[lo:hi]):
                peer = dgs[r]
                assert peer.ghost_gids[slot] == dg.l2g[lid]
                assert peer.ghost_owners[slot] == dg.rank


def test_max_ghost_global_is_global_max():
    g = rmat(8, 10, seed=9)
    dgs, _ = build_all(g, 3, "random", seed=4)
    true_max = max(dg.n_ghost for dg in dgs)
    assert all(dg.max_ghost_global == true_max for dg in dgs)
