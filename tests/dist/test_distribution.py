"""Vertex distributions: ownership, locality, balance."""

import numpy as np
import pytest

from repro.dist import (
    BlockDistribution,
    PartitionDistribution,
    RandomDistribution,
    make_distribution,
)


@pytest.mark.parametrize("n,p", [(10, 3), (16, 4), (7, 7), (5, 1), (0, 2)])
def test_block_contiguous_and_balanced(n, p):
    d = BlockDistribution(n, p)
    counts = d.counts()
    assert counts.sum() == n
    assert counts.max() - counts.min() <= 1
    for r in range(p):
        owned = d.owned(r)
        if owned.size:
            np.testing.assert_array_equal(
                owned, np.arange(owned[0], owned[0] + owned.size)
            )


def test_block_owner_lookup():
    d = BlockDistribution(10, 3)  # sizes 4,3,3
    assert d.owner(0) == 0 and d.owner(3) == 0
    assert d.owner(4) == 1 and d.owner(9) == 2
    np.testing.assert_array_equal(d.owner(np.array([0, 4, 9])), [0, 1, 2])


def test_random_balanced_and_seeded():
    d1 = RandomDistribution(1000, 7, seed=3)
    d2 = RandomDistribution(1000, 7, seed=3)
    d3 = RandomDistribution(1000, 7, seed=4)
    counts = d1.counts()
    assert counts.sum() == 1000
    assert counts.max() - counts.min() <= 1
    for r in range(7):
        np.testing.assert_array_equal(d1.owned(r), d2.owned(r))
    assert any(
        not np.array_equal(d1.owned(r), d3.owned(r)) for r in range(7)
    )


def test_random_actually_shuffles():
    d = RandomDistribution(1000, 4, seed=0)
    block = BlockDistribution(1000, 4)
    assert not np.array_equal(d.owned(0), block.owned(0))


def test_partition_distribution():
    parts = np.array([2, 0, 1, 2, 0])
    d = PartitionDistribution(parts, 3)
    np.testing.assert_array_equal(d.owned(0), [1, 4])
    np.testing.assert_array_equal(d.owned(2), [0, 3])
    with pytest.raises(ValueError):
        PartitionDistribution(parts, 2)  # part 2 out of range


def test_lid_roundtrip():
    d = RandomDistribution(100, 5, seed=9)
    for r in range(5):
        owned = d.owned(r)
        lids = d.lid(r, owned)
        np.testing.assert_array_equal(lids, np.arange(owned.size))
    with pytest.raises(ValueError):
        d.lid(0, d.owned(1)[:1])  # not owned by rank 0


def test_lid_empty():
    d = BlockDistribution(10, 2)
    assert d.lid(0, np.array([], dtype=np.int64)).size == 0


def test_make_distribution_factory():
    assert isinstance(make_distribution("block", 10, 2), BlockDistribution)
    assert isinstance(make_distribution("random", 10, 2), RandomDistribution)
    assert isinstance(
        make_distribution("partition", 3, 2, parts=[0, 1, 0]),
        PartitionDistribution,
    )
    with pytest.raises(ValueError):
        make_distribution("partition", 3, 2)
    with pytest.raises(ValueError):
        make_distribution("nope", 3, 2)


def test_distribution_validation():
    with pytest.raises(ValueError):
        BlockDistribution(10, 0)
    with pytest.raises(ValueError):
        PartitionDistribution(np.array([[0, 1]]), 2)  # not 1-D


def test_owner_array_read_only():
    d = BlockDistribution(10, 2)
    with pytest.raises(ValueError):
        d._owner[0] = 1
    with pytest.raises(ValueError):
        d.owned(0)[0] = 5
