"""Property tests on the distributed-graph layer."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dist import build_dist_graph, make_distribution
from repro.graph import from_edges
from repro.simmpi import Runtime


@st.composite
def dist_cases(draw):
    n = draw(st.integers(min_value=2, max_value=30))
    m = draw(st.integers(min_value=0, max_value=90))
    nprocs = draw(st.integers(min_value=1, max_value=4))
    kind = draw(st.sampled_from(["block", "random"]))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    g = from_edges(n, rng.integers(0, n, size=m), rng.integers(0, n, size=m))
    return g, nprocs, kind, seed % 1000


@settings(max_examples=40, deadline=None)
@given(dist_cases())
def test_build_invariants(case):
    g, nprocs, kind, seed = case
    dist = make_distribution(kind, g.n, nprocs, seed=seed)
    dgs = Runtime(nprocs).run(lambda comm: build_dist_graph(comm, g, dist))
    # partition of vertices
    all_owned = np.sort(np.concatenate([dg.owned_gids for dg in dgs]))
    np.testing.assert_array_equal(all_owned, np.arange(g.n))
    # edge conservation and adjacency correctness
    assert sum(dg.num_local_edges for dg in dgs) == g.num_directed_edges
    for dg in dgs:
        for lid in range(dg.n_local):
            gid = dg.l2g[lid]
            np.testing.assert_array_equal(
                np.sort(dg.l2g[dg.neighbors(lid)]), g.neighbors(int(gid))
            )
        # ghosts are precisely the off-rank one-hop neighborhood
        if dg.n_ghost:
            owners = dist.owner(dg.ghost_gids)
            assert np.all(owners != dg.rank)


@settings(max_examples=30, deadline=None)
@given(dist_cases())
def test_halo_pull_propagates_arbitrary_values(case):
    g, nprocs, kind, seed = case
    from repro.dist import ExchangePlan

    dist = make_distribution(kind, g.n, nprocs, seed=seed)
    rng = np.random.default_rng(seed)
    truth = rng.random(g.n)

    def main(comm):
        dg = build_dist_graph(comm, g, dist)
        plan = ExchangePlan(comm, dg)
        vals = np.zeros(dg.n_total)
        vals[: dg.n_local] = truth[dg.owned_gids]
        plan.pull(comm, vals)
        np.testing.assert_allclose(vals[dg.n_local:], truth[dg.ghost_gids])
        return True

    assert all(Runtime(nprocs).run(main))
