"""Halo exchange plans and distributed BFS."""

import numpy as np
import pytest

from repro.dist import ExchangePlan, build_dist_graph, distributed_bfs_levels
from repro.dist.distribution import make_distribution
from repro.graph import bfs_levels, from_edges, rmat, ring, rand_hd
from repro.simmpi import Runtime


def run_with_plan(graph, nprocs, fn, kind="random", seed=0):
    dist = make_distribution(kind, graph.n, nprocs, seed=seed)

    def main(comm):
        dg = build_dist_graph(comm, graph, dist)
        plan = ExchangePlan(comm, dg)
        return fn(comm, dg, plan)

    return Runtime(nprocs).run(main)


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_pull_refreshes_ghosts(nprocs):
    g = rmat(8, 10, seed=3)

    def fn(comm, dg, plan):
        values = np.zeros(dg.n_total, dtype=np.int64)
        values[: dg.n_local] = dg.owned_gids * 7  # owner authoritative
        plan.pull(comm, values)
        # every ghost now equals its owner's value
        np.testing.assert_array_equal(
            values[dg.n_local:], dg.ghost_gids * 7
        )
        return True

    assert all(run_with_plan(g, nprocs, fn))


@pytest.mark.parametrize("op,combine", [("sum", np.add), ("min", np.minimum),
                                        ("max", np.maximum)])
def test_push_combines_at_owner(op, combine):
    g = ring(12)
    nprocs = 3

    def fn(comm, dg, plan):
        values = np.zeros(dg.n_total, dtype=np.int64)
        values[: dg.n_local] = 10
        values[dg.n_local:] = dg.rank + 1  # ghost contributions
        plan.push(comm, values, op=op)
        return dg.owned_gids.copy(), values[: dg.n_local].copy()

    results = run_with_plan(g, nprocs, fn, kind="block")
    # reference: each vertex starts at 10, combined with (src_rank+1) for
    # every rank holding it as a ghost
    dist = make_distribution("block", g.n, nprocs)
    expected = np.full(g.n, 10, dtype=np.int64)
    for r in range(nprocs):
        owned = set(dist.owned(r).tolist())
        ghosts = set()
        for gid in owned:
            for u in g.neighbors(gid):
                if int(dist.owner(int(u))) != r:
                    ghosts.add(int(u))
        for gh in ghosts:
            expected[gh] = combine(expected[gh], r + 1)
    got = np.empty(g.n, dtype=np.int64)
    for gids, vals in results:
        got[gids] = vals
    np.testing.assert_array_equal(got, expected)


def test_push_requires_combining_op():
    g = ring(6)

    def fn(comm, dg, plan):
        with pytest.raises(ValueError):
            plan.push(comm, np.zeros(dg.n_total), op="replace")
        comm.barrier()
        return True

    assert all(run_with_plan(g, 2, fn, kind="block"))


def test_pull_float_payload():
    g = ring(9)

    def fn(comm, dg, plan):
        values = np.zeros(dg.n_total, dtype=np.float64)
        values[: dg.n_local] = dg.owned_gids + 0.25
        plan.pull(comm, values)
        np.testing.assert_allclose(values[dg.n_local:], dg.ghost_gids + 0.25)
        return True

    assert all(run_with_plan(g, 3, fn))


@pytest.mark.parametrize("nprocs", [1, 2, 4])
@pytest.mark.parametrize("source", [0, 77])
def test_distributed_bfs_matches_serial(nprocs, source):
    g = rmat(8, 12, seed=6)
    ref = bfs_levels(g, source)

    def fn(comm, dg, plan):
        levels = distributed_bfs_levels(comm, dg, plan, source)
        return dg.owned_gids.copy(), levels

    results = run_with_plan(g, nprocs, fn)
    got = np.empty(g.n, dtype=np.int64)
    for gids, levels in results:
        got[gids] = levels
    np.testing.assert_array_equal(got, ref)


def test_distributed_bfs_disconnected():
    g = from_edges(6, np.array([0, 1]), np.array([1, 2]))

    def fn(comm, dg, plan):
        return dg.owned_gids.copy(), distributed_bfs_levels(comm, dg, plan, 0)

    results = run_with_plan(g, 2, fn, kind="block")
    got = np.empty(g.n, dtype=np.int64)
    for gids, levels in results:
        got[gids] = levels
    np.testing.assert_array_equal(got, [0, 1, 2, -1, -1, -1])


def test_distributed_bfs_high_diameter():
    g = rand_hd(512, 6, seed=2)
    ref = bfs_levels(g, 0)

    def fn(comm, dg, plan):
        return dg.owned_gids.copy(), distributed_bfs_levels(comm, dg, plan, 0)

    results = run_with_plan(g, 4, fn, kind="block")
    got = np.empty(g.n, dtype=np.int64)
    for gids, levels in results:
        got[gids] = levels
    np.testing.assert_array_equal(got, ref)
