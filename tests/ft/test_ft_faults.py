"""FaultSpec/FaultPlan semantics and the --inject-fault parser."""

import numpy as np
import pytest

from repro.core import xtrapulp
from repro.ft import FaultPlan, FaultSpec, parse_fault_spec
from repro.simmpi.errors import InjectedFault, RankFailure

from tests.ft.conftest import NPROCS, PARTS


# -- spec validation ---------------------------------------------------------


def test_spec_rejects_unknown_action():
    with pytest.raises(ValueError, match="action"):
        FaultSpec(0, "init", 0, action="explode")


@pytest.mark.parametrize("kwargs", [
    dict(rank=-1, phase="init", step=0),
    dict(rank=0, phase="init", step=-2),
    dict(rank=0, phase="init", step=0, attempt=-1),
])
def test_spec_rejects_negative_fields(kwargs):
    with pytest.raises(ValueError, match="negative"):
        FaultSpec(**kwargs)


# -- parser ------------------------------------------------------------------


def test_parse_minimal():
    spec = parse_fault_spec("2:vertex_refine:5")
    assert spec == FaultSpec(2, "vertex_refine", 5, action="raise")


def test_parse_with_action():
    spec = parse_fault_spec("0:edge_balance:3:die")
    assert spec == FaultSpec(0, "edge_balance", 3, action="die")


def test_parse_delay_with_seconds():
    spec = parse_fault_spec("1:vertex_refine:4:delay:30")
    assert spec == FaultSpec(1, "vertex_refine", 4, action="delay",
                             delay=30.0)
    assert parse_fault_spec("1:p:0:delay").delay == 0.0


@pytest.mark.parametrize("text", [
    "", "2", "2:phase", "a:phase:0", "2:phase:b", "2:phase:0:die:extra",
    "2:phase:0:explode", "2:phase:0:delay:soon", "2:phase:0:die:5",
])
def test_parse_rejects_malformed(text):
    with pytest.raises(ValueError):
        parse_fault_spec(text)


# -- firing semantics --------------------------------------------------------


def test_fires_at_exact_superstep():
    plan = FaultPlan.single(1, "vertex_refine", 2)
    # other ranks, other phases, earlier steps: quiet
    plan.check(0, "Allreduce", "vertex_refine")
    plan.check(1, "Allreduce", "vertex_balance")
    plan.check(1, "Allreduce", "vertex_refine")  # step 0
    plan.check(1, "Allreduce", "vertex_refine")  # step 1
    with pytest.raises(InjectedFault, match="rank 1.*vertex_refine.*2"):
        plan.check(1, "Allreduce", "vertex_refine")  # step 2


def test_wildcard_phase_matches_any_tag():
    """``phase="*"`` matches every tag; steps still count within each
    tag, so a step-1 spec fires at the second collective of any phase."""
    plan = FaultPlan.single(0, "*", 1)
    plan.check(0, "Allreduce", "edge_balance")  # step 0 of that tag
    with pytest.raises(InjectedFault):
        plan.check(0, "Barrier", "edge_balance")  # step 1
    with pytest.raises(InjectedFault):
        FaultPlan.single(0, "*", 0).check(0, "Allreduce", "anything")


def test_counters_are_per_rank_and_per_tag():
    plan = FaultPlan.single(0, "init", 1)
    for _ in range(5):
        plan.check(1, "Allreduce", "init")   # rank 1 never trips rank 0's bomb
        plan.check(0, "Allreduce", "other")  # other tags don't advance "init"
    plan.check(0, "Allreduce", "init")  # step 0
    with pytest.raises(InjectedFault):
        plan.check(0, "Allreduce", "init")  # step 1


def test_attempt_gating():
    """A spec fires on the attempt it names and stays quiet on retries."""
    plan = FaultPlan([FaultSpec(0, "init", 0, attempt=0)])
    plan.current_attempt = 1
    for _ in range(3):
        plan.check(0, "Allreduce", "init")  # armed for attempt 0 only
    plan.current_attempt = 0
    with pytest.raises(InjectedFault):
        plan.check(0, "Allreduce", "init")


def test_die_downgrades_to_raise_without_can_die():
    """In-process backends pass can_die=False; the rank must not take the
    whole test process down."""
    plan = FaultPlan.single(0, "init", 0, action="die")
    with pytest.raises(InjectedFault):
        plan.check(0, "Allreduce", "init", can_die=False)


def test_random_plans_are_reproducible():
    kw = dict(nprocs=4, phases=["vertex_balance", "edge_refine"], max_step=20)
    a = FaultPlan.random(11, **kw)
    b = FaultPlan.random(11, **kw)
    c = FaultPlan.random(12, **kw)
    assert a.specs == b.specs
    assert a.specs[0].rank < 4 and a.specs[0].step < 20
    assert a.specs[0].phase in kw["phases"]
    assert a.specs != c.specs or True  # different seed may collide; no assert


@pytest.mark.parametrize("backend", ["serial", "threads", "procs"])
def test_delay_fault_does_not_change_the_record(ft_graph, ft_params,
                                                reference, backend):
    """Latency injection perturbs wall time only — parts and the metered
    record stay bit-identical to the fault-free run, on every backend
    (the procs leg exercises a real sleeping child process)."""
    plan = FaultPlan([FaultSpec(1, "vertex_balance", 3, action="delay",
                                delay=0.01)])
    res = xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                   backend=backend, fault_plan=plan)
    assert np.array_equal(res.parts, reference.parts)
    assert res.stats.signature() == reference.stats.signature()


@pytest.mark.parametrize("backend", ["serial", "threads"])
def test_raise_fault_surfaces_as_plain_injected_fault(ft_graph, ft_params,
                                                      backend):
    """Without checkpoint/resume requested, an injected fault propagates
    unwrapped (no RankFailure envelope)."""
    plan = FaultPlan.single(1, "vertex_refine", 4)
    with pytest.raises(InjectedFault):
        xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                 backend=backend, fault_plan=plan)


def test_fault_wrapped_in_rank_failure_when_checkpointing(ft_graph, ft_params,
                                                          tmp_path):
    plan = FaultPlan.single(1, "vertex_refine", 4)
    with pytest.raises(RankFailure) as ei:
        xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                 backend="serial", fault_plan=plan,
                 checkpoint=str(tmp_path))
    assert ei.value.run_dir == str(tmp_path)
    assert ei.value.epoch == 0  # init epoch committed before the fault
    assert isinstance(ei.value.__cause__, InjectedFault)
