"""Active failure detection: heartbeats, collective deadlines, containment.

The liveness oracle: a run with one rank stalled far past the watchdog
deadline must (a) surface a typed :class:`HungRankError` well before the
stall would have ended on its own, and (b) under supervision recover
bit-identically to the uninterrupted reference run — a detected hang is
just another recoverable rank failure.
"""

import time

import numpy as np
import pytest

from repro.core import xtrapulp
from repro.ft import (
    CkptPolicy,
    FaultPlan,
    FaultSpec,
    WatchdogConfig,
    as_watchdog_config,
    default_watchdog,
)
from repro.ft.recovery import RetryPolicy, run_with_retries
from repro.ft.watchdog import WATCHDOG_ENV_VAR, HeartbeatBoard
from repro.simmpi import create_runtime
from repro.simmpi.errors import HungRankError

from tests.ft.conftest import NPROCS, PARTS

BACKENDS = ("serial", "threads", "procs")

#: Injected stall far longer than any watchdog deadline used here: if
#: detection ever regresses to "wait it out", the test times out loudly.
STALL = 30.0


def _no_sleep():
    slept = []
    return slept, RetryPolicy(max_retries=2, sleep=slept.append)


def _hang_plan(delay=STALL):
    return FaultPlan([FaultSpec(1, "vertex_refine", 4, action="delay",
                                delay=delay)])


def _stall_one_rank(comm):
    """Rank function with a genuine (non-fault-machinery) stall."""
    for _ in range(3):
        comm.allreduce(1)
    if comm.rank == 1:
        time.sleep(STALL)
    return comm.allreduce(1)


# -- config plumbing ---------------------------------------------------------


def test_config_rejects_nonpositive_timeout():
    with pytest.raises(ValueError, match="timeout"):
        WatchdogConfig(timeout=0.0)
    with pytest.raises(ValueError, match="timeout"):
        WatchdogConfig(timeout=-1.0)


def test_config_rejects_bad_warn_fraction():
    with pytest.raises(ValueError, match="warn_fraction"):
        WatchdogConfig(timeout=1.0, warn_fraction=1.5)


def test_slice_is_a_fraction_of_the_deadline():
    assert WatchdogConfig(timeout=1.0).slice_seconds() == pytest.approx(0.25)
    # clamped at both ends: huge deadlines don't slow stall detection,
    # tiny ones don't busy-spin
    assert WatchdogConfig(timeout=1000.0).slice_seconds() == 0.25
    assert WatchdogConfig(timeout=0.004).slice_seconds() == 0.002


def test_as_watchdog_config_coercions():
    assert as_watchdog_config(None) is None
    assert as_watchdog_config(0) is None  # 0 = disabled, like the env var
    cfg = as_watchdog_config(2.5)
    assert isinstance(cfg, WatchdogConfig) and cfg.timeout == 2.5
    assert as_watchdog_config(cfg) is cfg


def test_default_watchdog_reads_environment(monkeypatch):
    monkeypatch.delenv(WATCHDOG_ENV_VAR, raising=False)
    assert default_watchdog() is None
    monkeypatch.setenv(WATCHDOG_ENV_VAR, "3.5")
    assert default_watchdog().timeout == 3.5
    monkeypatch.setenv(WATCHDOG_ENV_VAR, "0")
    assert default_watchdog() is None
    monkeypatch.setenv(WATCHDOG_ENV_VAR, "soon")
    with pytest.raises(ValueError, match=WATCHDOG_ENV_VAR):
        default_watchdog()


def test_backends_default_to_no_watchdog():
    rt = create_runtime("serial", nprocs=2)
    try:
        assert rt.watchdog is None
    finally:
        rt.close()


# -- heartbeat board ---------------------------------------------------------


def test_heartbeat_board_round_trips():
    board = HeartbeatBoard(3)
    assert board.steps() == [-1, -1, -1]
    board.beat(1, 7, "vertex_refine")
    assert board.steps() == [-1, 7, -1]
    assert board.phase_of(1) == "vertex_refine"
    assert board.phase_of(0) == ""
    assert board.age_of(1) < 1.0
    assert board.age_of(0) == 0.0  # never beat
    board.beat(1, 8, "x" * 100)  # over-long phase names are truncated
    assert board.steps()[1] == 8
    assert len(board.phase_of(1)) < 100


# -- detection: the stall surfaces as a typed hang, fast ---------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_stall_past_deadline_raises_hung_rank(ft_graph, ft_params, backend):
    """A rank stalled for STALL seconds under a ~1s deadline errors out in
    seconds, typed, naming the hung rank — on every backend."""
    t0 = time.monotonic()
    with pytest.raises(HungRankError) as ei:
        xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                 backend=backend, fault_plan=_hang_plan(), watchdog=1.0)
    wall = time.monotonic() - t0
    assert wall < STALL / 2, f"detection took {wall:.1f}s"
    assert 1 in ei.value.ranks
    assert ei.value.detection_seconds > 0


def test_stall_without_watchdog_would_wait(ft_graph, ft_params, reference):
    """Sub-deadline delays are latency, not hangs: the run completes and
    the record is untouched (the no-false-positive half of the oracle)."""
    res = xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                   backend="serial", fault_plan=_hang_plan(delay=0.02),
                   watchdog=5.0)
    assert np.array_equal(res.parts, reference.parts)
    assert res.stats.signature() == reference.stats.signature()


def test_threads_peer_stall_detected_by_waiters():
    """A genuine stall (no fault machinery): one rank naps before the
    rendezvous, its peers' sliced waits trip the deadline."""
    def fn(comm):
        if comm.rank == 0:
            time.sleep(5.0)
        return comm.allreduce(1)

    rt = create_runtime("threads", nprocs=3, watchdog=0.5)
    try:
        with pytest.raises(HungRankError) as ei:
            rt.run(fn)
    finally:
        rt.close()
    assert ei.value.detection_seconds >= 0.5
    assert 0 in ei.value.ranks  # the napper is blamed, not the waiters


def test_procs_watchdog_kills_the_hung_process(ft_graph, ft_params):
    """procs detection is a real kill: the HungRankError comes from the
    supervisor-side watchdog, with the stall phase on it."""
    with pytest.raises(HungRankError) as ei:
        xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                 backend="procs", fault_plan=_hang_plan(), watchdog=1.0)
    assert ei.value.ranks == (1,)
    assert ei.value.phase == "vertex_refine"
    assert "watchdog" in str(ei.value)


# -- containment: a detected hang is a recoverable failure -------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_hang_recovery_is_bit_identical(ft_graph, ft_params, reference,
                                        tmp_path, backend):
    slept, retry = _no_sleep()
    res = run_with_retries(
        ft_graph, PARTS, checkpoint=CkptPolicy(dir=str(tmp_path / "run")),
        fault_plan=_hang_plan(), retry=retry,
        nprocs=NPROCS, params=ft_params, backend=backend, watchdog=1.0,
    )
    assert np.array_equal(res.parts, reference.parts)
    res_part = [s for s in res.stats.signature() if s[1] != "checkpoint"]
    assert res_part == reference.stats.signature()
    (ev,) = res.stats.recoveries
    assert ev.failure_class == "hang"
    assert ev.detection_seconds > 0


def test_procs_health_counters_populate(ft_graph, ft_params, tmp_path):
    """The recovered run's stats carry the liveness evidence: heartbeats
    were observed, and the resume splice keeps the counters (they live on
    the engine, not the event record)."""
    _, retry = _no_sleep()
    res = run_with_retries(
        ft_graph, PARTS, checkpoint=CkptPolicy(dir=str(tmp_path / "run")),
        fault_plan=_hang_plan(), retry=retry,
        nprocs=NPROCS, params=ft_params, backend="procs", watchdog=1.0,
    )
    assert res.stats.heartbeats_seen > 0


def test_procs_stalled_run_counts_probes():
    """A failing stalled run's own stats record the escalation: probe
    re-checks between the warning and the deadline count as extensions."""
    rt = create_runtime("procs", nprocs=NPROCS, watchdog=1.0)
    try:
        with pytest.raises(HungRankError):
            rt.run(_stall_one_rank)
        assert rt.stats.heartbeats_seen > 0
        assert rt.stats.deadline_extensions > 0
    finally:
        rt.close()


# -- chaos matrix: every fault action contained on the CI backend ------------


@pytest.mark.parametrize("action", ["raise", "die", "delay", "corrupt"])
def test_chaos_every_action_recovers_bit_identically(ft_graph, ft_params,
                                                     reference, tmp_path,
                                                     action):
    """One supervised run per fault action on the environment-selected
    backend (CI exports REPRO_BACKEND per job): all four failure modes
    end in the same partition and record as the fault-free run."""
    delay = STALL if action == "delay" else 0.0
    plan = FaultPlan([FaultSpec(1, "vertex_refine", 4, action=action,
                                delay=delay)])
    _, retry = _no_sleep()
    res = run_with_retries(
        ft_graph, PARTS, checkpoint=CkptPolicy(dir=str(tmp_path / "run")),
        fault_plan=plan, retry=retry,
        nprocs=NPROCS, params=ft_params, watchdog=1.0, integrity="crc",
    )
    assert np.array_equal(res.parts, reference.parts)
    res_part = [s for s in res.stats.signature() if s[1] != "checkpoint"]
    assert res_part == reference.stats.signature()
    assert len(res.stats.recoveries) == 1
    assert res.stats.recoveries[0].failure_class in (
        "hang", "corruption", "crash", "exception"
    )
