"""End-to-end payload integrity: crc32 verification and the corrupt fault.

The detection oracle: a planted ``corrupt`` fault (one byte flipped in an
outgoing payload, after its checksum was computed) is detected 100% of the
time when ``integrity="crc"`` — typed as
:class:`PayloadCorruptionError` — on every backend and both procs data
planes.  The purity oracle: with no fault injected, ``crc`` changes
nothing but the verification counters.
"""

import numpy as np
import pytest

from repro.core import xtrapulp
from repro.ft import (
    CkptPolicy,
    FaultPlan,
    FaultSpec,
    checksum_obj,
    default_integrity,
    validate_integrity,
)
from repro.ft.integrity import (
    INTEGRITY_ENV_VAR,
    corrupt_buffer,
    corrupt_object,
    corruption_seed,
)
from repro.ft.recovery import RetryPolicy, run_with_retries
from repro.simmpi.errors import PayloadCorruptionError

from tests.ft.conftest import NPROCS, PARTS


def _corrupt_plan():
    return FaultPlan([FaultSpec(1, "vertex_balance", 3, action="corrupt")])


# -- checksum and corruption primitives --------------------------------------


def test_checksum_is_deterministic_and_flip_sensitive():
    a = np.arange(100, dtype=np.int64)
    payload = {"x": a, "tag": "alltoallv"}
    crc = checksum_obj(payload)
    assert checksum_obj({"x": a.copy(), "tag": "alltoallv"}) == crc
    a[17] ^= 1  # single-bit flip in the out-of-band buffer
    assert checksum_obj(payload) != crc


def test_corrupt_object_is_deterministic():
    seed = corruption_seed(rank=1, step=3)
    a = np.arange(50, dtype=np.float64)
    b = a.copy()
    where = corrupt_object([a], seed)
    assert where is not None and "array" in where
    corrupt_object([b], seed)
    assert np.array_equal(a, b)  # same seed, same flip
    assert not np.array_equal(a, np.arange(50, dtype=np.float64))


def test_corrupt_object_skips_payload_free_messages():
    assert corrupt_object(None, seed=7) is None
    assert corrupt_object({"empty": np.empty(0)}, seed=7) is None


def test_corrupt_buffer_flips_within_region():
    buf = bytearray(b"\x00" * 64)
    assert corrupt_buffer(buf, seed=5, start=8, length=16)
    (idx,) = [i for i, v in enumerate(buf) if v]
    assert 8 <= idx < 24
    assert not corrupt_buffer(bytearray(), seed=5)


def test_corruption_seeds_distinct_across_attempts():
    seeds = {corruption_seed(1, 3, attempt=a) for a in range(4)}
    assert len(seeds) == 4


def test_integrity_mode_validation(monkeypatch):
    assert validate_integrity("crc") == "crc"
    with pytest.raises(ValueError, match="integrity"):
        validate_integrity("md5")
    monkeypatch.delenv(INTEGRITY_ENV_VAR, raising=False)
    assert default_integrity() == "off"
    monkeypatch.setenv(INTEGRITY_ENV_VAR, "crc")
    assert default_integrity() == "crc"


# -- detection: a flipped byte never reaches the partition -------------------


@pytest.mark.parametrize("backend", ["serial", "threads"])
def test_inprocess_corruption_detected(ft_graph, ft_params, backend):
    with pytest.raises(PayloadCorruptionError) as ei:
        xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                 backend=backend, fault_plan=_corrupt_plan(),
                 integrity="crc")
    assert "crc" in str(ei.value).lower() or "checksum" in str(ei.value)


@pytest.mark.parametrize("dataplane", ["shm", "pickle"])
def test_procs_corruption_detected_on_both_planes(ft_graph, ft_params,
                                                  dataplane, monkeypatch):
    """Transport-level detection: the flip lands in the rendezvous slot or
    the shared-memory arena after checksumming, and the receive-side crc
    catches it before deserialization."""
    monkeypatch.setenv("REPRO_DATAPLANE", dataplane)
    with pytest.raises(PayloadCorruptionError):
        xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                 backend="procs", fault_plan=_corrupt_plan(),
                 integrity="crc")


def test_corruption_is_undetected_without_integrity(ft_graph, ft_params):
    """Without crc the flip is never *detected*: the run either completes
    with silently wrong data or dies on garbled execution — but no typed
    corruption error is ever raised (the gap crc exists to close)."""
    try:
        # integrity pinned off explicitly: CI chaos jobs export
        # REPRO_INTEGRITY=crc for everything else
        xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                 backend="serial", fault_plan=_corrupt_plan(),
                 integrity="off")
    except PayloadCorruptionError:
        pytest.fail("typed corruption detection with integrity off")
    except Exception:
        pass  # garbled downstream execution: the undetected failure mode


def test_detected_corruption_increments_failure_counter():
    """The failing run's own stats record the catch (supervised retries
    return the clean re-run's stats, so this is asserted at the engine)."""
    from repro.simmpi import create_runtime

    rt = create_runtime("serial", nprocs=3, integrity="crc")
    rt.fault_plan = FaultPlan([FaultSpec(1, "*", 0, action="corrupt")])
    try:
        with pytest.raises(PayloadCorruptionError):
            rt.run(lambda comm: comm.Allreduce(np.arange(8.0)))
        assert rt.stats.checksum_failures > 0
        assert rt.stats.checksum_verifications > 0
    finally:
        rt.close()


# -- purity: crc on a clean run changes nothing but the counters -------------


@pytest.mark.parametrize("backend", ["serial", "threads", "procs"])
def test_crc_clean_run_identical_to_off(ft_graph, ft_params, reference,
                                        backend):
    res = xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                   backend=backend, integrity="crc")
    assert np.array_equal(res.parts, reference.parts)
    assert res.stats.signature() == reference.stats.signature()
    assert res.stats.checksum_verifications > 0
    assert res.stats.checksum_failures == 0


# -- containment: corruption is a recoverable failure ------------------------


@pytest.mark.parametrize("backend", ["serial", "threads", "procs"])
def test_corruption_recovery_is_bit_identical(ft_graph, ft_params, reference,
                                              tmp_path, backend):
    retry = RetryPolicy(max_retries=2, sleep=lambda s: None)
    res = run_with_retries(
        ft_graph, PARTS, checkpoint=CkptPolicy(dir=str(tmp_path / "run")),
        fault_plan=_corrupt_plan(), retry=retry,
        nprocs=NPROCS, params=ft_params, backend=backend, integrity="crc",
    )
    assert np.array_equal(res.parts, reference.parts)
    res_part = [s for s in res.stats.signature() if s[1] != "checkpoint"]
    assert res_part == reference.stats.signature()
    (ev,) = res.stats.recoveries
    assert ev.failure_class == "corruption"
    # the final (clean, resumed) attempt still verified every payload
    assert res.stats.checksum_verifications > 0
    assert res.stats.checksum_failures == 0
