"""Shared-memory hygiene on the procs backend's crash paths.

Every run gets a unique /dev/shm name prefix; teardown sweeps the prefix
so a rank process killed mid-superstep — before it can participate in
orderly shutdown, possibly mid-growth of a segment — leaks nothing.
"""

import glob
import os

import pytest

from repro.core import xtrapulp
from repro.ft import CkptPolicy, FaultPlan, FaultSpec
from repro.ft.recovery import RetryPolicy, run_with_retries
from repro.simmpi.backends import create_runtime
from repro.simmpi.backends.procs import _sweep_shm
from repro.simmpi.errors import RankFailure

from tests.ft.conftest import NPROCS, PARTS

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no /dev/shm on this platform"
)


def _leaked(prefix):
    assert prefix, "backend did not record a shm prefix"
    return glob.glob(os.path.join("/dev/shm", glob.escape(prefix) + "*"))


def test_clean_run_leaves_no_segments(ft_graph, ft_params):
    rt = create_runtime("procs", nprocs=NPROCS, meter_compute=False)
    xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params, backend=rt)
    assert _leaked(rt.last_shm_prefix) == []
    # nothing was left for the sweep to reclaim on the clean path
    assert rt.last_shm_reclaimed == []


def test_killed_rank_leaves_no_segments(ft_graph, ft_params, tmp_path):
    """Hard-kill a rank mid-superstep (os._exit, no unwinding): teardown
    must still unlink every segment of the session."""
    rt = create_runtime("procs", nprocs=NPROCS, meter_compute=False)
    plan = FaultPlan([FaultSpec(1, "vertex_balance", 6, action="die")])
    with pytest.raises(RankFailure):
        xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                 backend=rt, fault_plan=plan, checkpoint=str(tmp_path))
    assert _leaked(rt.last_shm_prefix) == []


def test_clean_run_pickle_plane_leaves_no_segments(ft_graph, ft_params):
    """The copy-through pickle plane allocates no arena segments and still
    sweeps its slot segments clean."""
    rt = create_runtime("procs", nprocs=NPROCS, meter_compute=False,
                        dataplane="pickle")
    xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params, backend=rt)
    assert _leaked(rt.last_shm_prefix) == []
    assert rt.last_shm_reclaimed == []


def test_die_then_resume_leaves_no_segments(ft_graph, ft_params, tmp_path):
    """Arena lifecycle across a crash: the killed session's arena segments
    are reclaimed at teardown, and the resumed session (its own prefix,
    its own arenas) exits clean too."""
    d = str(tmp_path / "run")
    crashed = create_runtime("procs", nprocs=NPROCS, meter_compute=False)
    plan = FaultPlan([FaultSpec(1, "vertex_balance", 6, action="die")])
    with pytest.raises(RankFailure):
        xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                 backend=crashed, fault_plan=plan,
                 checkpoint=CkptPolicy(dir=d))
    assert _leaked(crashed.last_shm_prefix) == []
    resumed = create_runtime("procs", nprocs=NPROCS, meter_compute=False)
    xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
             backend=resumed, resume=d)
    assert _leaked(resumed.last_shm_prefix) == []
    assert resumed.last_shm_reclaimed == []


def test_supervised_retries_leak_nothing(ft_graph, ft_params, tmp_path):
    """Each supervised attempt is its own session; after kill + resume the
    whole /dev/shm footprint of this process is gone."""
    before = set(glob.glob("/dev/shm/simmpi*"))
    plan = FaultPlan([FaultSpec(2, "edge_refine", 2, action="die")])
    run_with_retries(
        ft_graph, PARTS, checkpoint=CkptPolicy(dir=str(tmp_path / "run")),
        fault_plan=plan,
        retry=RetryPolicy(max_retries=2, sleep=lambda _s: None),
        nprocs=NPROCS, params=ft_params, backend="procs",
    )
    assert set(glob.glob("/dev/shm/simmpi*")) - before == set()


def test_sweep_reclaims_orphaned_segment():
    """_sweep_shm unlinks segments under the prefix even when nobody holds
    a handle (the crashed-mid-growth window)."""
    from multiprocessing import shared_memory

    seg = shared_memory.SharedMemory(
        name="simmpi0xtesthygieneg0", create=True, size=64
    )
    seg.close()
    reclaimed = _sweep_shm("simmpi0xtesthygiene")
    assert any("simmpi0xtesthygiene" in name for name in reclaimed)
    assert _leaked("simmpi0xtesthygiene") == []


def test_sweep_is_noop_on_missing_prefix():
    assert _sweep_shm("simmpi0xnosuchprefix") == []
