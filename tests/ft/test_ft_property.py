"""Property: recovery is bit-identical from *any* fault point.

Hypothesis draws (rank, phase, superstep) triples; for each, a supervised
run crashes there, resumes from the last committed epoch (or from scratch
when the fault predates the first commit), and must reproduce the
reference partition and partition-phase record exactly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ft import CkptPolicy, FaultPlan, FaultSpec
from repro.ft.recovery import RetryPolicy, run_with_retries

from tests.ft.conftest import NPROCS, PARTS

PHASES = ("init", "vertex_balance", "vertex_refine",
          "edge_balance", "edge_refine")


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(rank=st.integers(0, NPROCS - 1),
       phase=st.sampled_from(PHASES),
       step=st.integers(0, 24))
def test_any_fault_point_recovers_bit_identically(ft_graph, ft_params,
                                                  reference, tmp_path_factory,
                                                  rank, phase, step):
    d = str(tmp_path_factory.mktemp("prop"))
    plan = FaultPlan([FaultSpec(rank, phase, step)])
    slept = []
    res = run_with_retries(
        ft_graph, PARTS, checkpoint=CkptPolicy(dir=d, every="phase"),
        fault_plan=plan, retry=RetryPolicy(max_retries=2, sleep=slept.append),
        nprocs=NPROCS, params=ft_params, backend="serial",
    )
    assert np.array_equal(res.parts, reference.parts)
    res_part = [s for s in res.stats.signature() if s[1] != "checkpoint"]
    assert res_part == reference.stats.signature()
    # a phase shorter than `step` collectives on that rank simply never
    # trips the fault; otherwise exactly one recovery must be on record
    assert len(res.stats.recoveries) <= 1
    if res.stats.recoveries:
        assert res.stats.recoveries[0].attempt == 1


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seed=st.integers(0, 2**31 - 1))
def test_random_plan_seed_recovers(ft_graph, ft_params, reference,
                                   tmp_path_factory, seed):
    """Same property through FaultPlan.random, the seeded constructor the
    CLI-style tooling uses."""
    d = str(tmp_path_factory.mktemp("seeded"))
    plan = FaultPlan.random(seed, nprocs=NPROCS, phases=PHASES, max_step=20)
    res = run_with_retries(
        ft_graph, PARTS, checkpoint=CkptPolicy(dir=d, every="phase"),
        fault_plan=plan,
        retry=RetryPolicy(max_retries=2, sleep=lambda _s: None),
        nprocs=NPROCS, params=ft_params, backend="serial",
    )
    assert np.array_equal(res.parts, reference.parts)
