"""Crash → resume bit-identity, and the supervised retry loop.

The oracle for every test here is the uninterrupted reference run: a run
killed at an injected fault and resumed from its last committed epoch must
reproduce the reference *partition* by array equality and the reference
*communication record* by ``CommStats.signature()``.
"""

import numpy as np
import pytest

from repro.core import xtrapulp
from repro.ft import CkptPolicy, FaultPlan, FaultSpec
from repro.ft.recovery import RetryPolicy, run_with_retries
from repro.simmpi.errors import InjectedFault, RankFailure

from tests.ft.conftest import NPROCS, PARTS

BACKENDS = ("serial", "threads", "procs")


def _no_sleep():
    slept = []
    return slept, RetryPolicy(max_retries=2, sleep=slept.append)


# -- manual crash → resume (no supervisor) -----------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_crash_resume_bit_identity(ft_graph, ft_params, reference, tmp_path,
                                   backend):
    d = str(tmp_path / "run")
    plan = FaultPlan.single(1, "edge_balance", 7)
    with pytest.raises(RankFailure) as ei:
        xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                 backend=backend, checkpoint=CkptPolicy(dir=d),
                 fault_plan=plan)
    assert ei.value.run_dir == d and ei.value.epoch is not None
    res = xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                   backend=backend, resume=d)
    assert np.array_equal(res.parts, reference.parts)
    # the spliced record matches the *checkpointed* uninterrupted run:
    # reference is checkpoint-free, so compare partition-phase events only
    ref_part = reference.stats.signature()
    res_part = [s for s in res.stats.signature() if s[1] != "checkpoint"]
    assert res_part == ref_part


def test_resumed_record_matches_checkpointed_run_exactly(
        ft_graph, ft_params, tmp_path):
    """Including the checkpoint events themselves: the spliced record of a
    resumed run is indistinguishable from one that never crashed."""
    ref = xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                   backend="serial",
                   checkpoint=CkptPolicy(dir=str(tmp_path / "ref")))
    d = str(tmp_path / "crash")
    plan = FaultPlan.single(2, "vertex_refine", 12)
    with pytest.raises(RankFailure):
        xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                 backend="serial", checkpoint=CkptPolicy(dir=d),
                 fault_plan=plan)
    res = xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                   backend="serial", resume=d,
                   checkpoint=CkptPolicy(dir=d))
    assert np.array_equal(res.parts, ref.parts)
    assert res.stats.signature() == ref.stats.signature()


def test_resume_from_midrun_epoch_not_just_init(ft_graph, ft_params,
                                                reference, tmp_path):
    """A fault late in the run resumes from a mid-run epoch (not epoch 0),
    re-entering the outer loop mid-flight."""
    d = str(tmp_path / "run")
    plan = FaultPlan.single(0, "edge_refine", 9)
    with pytest.raises(RankFailure) as ei:
        xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                 backend="serial",
                 checkpoint=CkptPolicy(dir=d, every="phase"),
                 fault_plan=plan)
    assert ei.value.epoch is not None and ei.value.epoch > 0
    res = xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                   backend="serial", resume=d)
    assert np.array_equal(res.parts, reference.parts)


# -- supervised re-execution -------------------------------------------------


@pytest.mark.parametrize("backend,action", [
    ("serial", "raise"),
    ("threads", "raise"),
    ("procs", "raise"),
    ("procs", "die"),  # real child-process death mid-superstep
])
def test_run_with_retries_recovers_bit_identically(ft_graph, ft_params,
                                                   reference, tmp_path,
                                                   backend, action):
    slept, retry = _no_sleep()
    plan = FaultPlan([FaultSpec(1, "edge_balance", 7, action=action)])
    res = run_with_retries(
        ft_graph, PARTS, checkpoint=CkptPolicy(dir=str(tmp_path / "run")),
        fault_plan=plan, retry=retry,
        nprocs=NPROCS, params=ft_params, backend=backend,
    )
    assert np.array_equal(res.parts, reference.parts)
    res_part = [s for s in res.stats.signature() if s[1] != "checkpoint"]
    assert res_part == reference.stats.signature()
    # the recovery is on the record: one retry, resumed from an epoch
    assert len(res.stats.recoveries) == 1
    ev = res.stats.recoveries[0]
    assert ev.attempt == 1 and ev.epoch is not None
    assert "njected" in ev.error or "rank" in ev.error.lower()
    assert slept == [retry.backoff(0)]


def test_retry_budget_exhaustion_reraises(ft_graph, ft_params, tmp_path):
    """Faults armed on every attempt exhaust the budget; the last failure
    propagates as RankFailure."""
    slept, retry = _no_sleep()
    plan = FaultPlan([FaultSpec(1, "vertex_refine", 4, attempt=a)
                      for a in range(retry.max_retries + 1)])
    with pytest.raises(RankFailure):
        run_with_retries(
            ft_graph, PARTS, checkpoint=CkptPolicy(dir=str(tmp_path / "run")),
            fault_plan=plan, retry=retry,
            nprocs=NPROCS, params=ft_params, backend="serial",
        )
    assert slept == [retry.backoff(a) for a in range(retry.max_retries)]


def test_backoff_schedule_is_capped():
    retry = RetryPolicy(max_retries=10, backoff_base=0.05, backoff_cap=0.4)
    sched = [retry.backoff(a) for a in range(6)]
    assert sched == [0.05, 0.1, 0.2, 0.4, 0.4, 0.4]


def test_jittered_backoff_is_seeded_and_bounded():
    """Full jitter decorrelates lockstep relaunches while staying
    reproducible: the schedule is a pure function of (seed, attempt) and
    lands in the top half of the deterministic envelope."""
    base = RetryPolicy(max_retries=10, backoff_base=0.05, backoff_cap=0.4)
    a = RetryPolicy(max_retries=10, backoff_base=0.05, backoff_cap=0.4,
                    jitter_seed=7)
    b = RetryPolicy(max_retries=10, backoff_base=0.05, backoff_cap=0.4,
                    jitter_seed=7)
    c = RetryPolicy(max_retries=10, backoff_base=0.05, backoff_cap=0.4,
                    jitter_seed=8)
    sched_a = [a.backoff(n) for n in range(6)]
    assert sched_a == [b.backoff(n) for n in range(6)]  # same seed, same plan
    assert sched_a != [c.backoff(n) for n in range(6)]  # decorrelated
    for n, v in enumerate(sched_a):
        envelope = base.backoff(n)
        assert envelope * 0.5 <= v < envelope


def test_unjittered_backoff_is_exact_legacy_schedule():
    """jitter_seed=None keeps the historical deterministic schedule
    byte-for-byte (existing tests assert slept == [backoff(a)])."""
    retry = RetryPolicy(backoff_base=0.1, backoff_cap=1.0)
    assert retry.jitter_seed is None
    assert [retry.backoff(a) for a in range(4)] == [0.1, 0.2, 0.4, 0.8]


def test_repeated_faults_consume_multiple_retries(ft_graph, ft_params,
                                                  reference, tmp_path):
    """Two consecutive attempts fail before the third succeeds; both
    recoveries are recorded in order."""
    slept, retry = _no_sleep()
    plan = FaultPlan([
        FaultSpec(0, "vertex_balance", 5, attempt=0),
        FaultSpec(2, "edge_refine", 3, attempt=1),
    ])
    res = run_with_retries(
        ft_graph, PARTS, checkpoint=CkptPolicy(dir=str(tmp_path / "run")),
        fault_plan=plan, retry=retry,
        nprocs=NPROCS, params=ft_params, backend="serial",
    )
    assert np.array_equal(res.parts, reference.parts)
    assert [ev.attempt for ev in res.stats.recoveries] == [1, 2]
    assert len(slept) == 2


def test_retries_without_committed_epoch_restart_from_scratch(
        ft_graph, ft_params, reference, tmp_path):
    """A fault during init — before any epoch commits — recovers by plain
    re-execution (resume=None), still bit-identically."""
    slept, retry = _no_sleep()
    plan = FaultPlan([FaultSpec(1, "init", 2)])
    res = run_with_retries(
        ft_graph, PARTS, checkpoint=CkptPolicy(dir=str(tmp_path / "run")),
        fault_plan=plan, retry=retry,
        nprocs=NPROCS, params=ft_params, backend="serial",
    )
    assert np.array_equal(res.parts, reference.parts)
    assert res.stats.recoveries[0].epoch is None
