"""Shared fixtures for the fault-tolerance tests.

Everything runs on one small fixed-seed R-MAT instance; the
fault/recovery oracle is comparison against an uninterrupted reference
run — parts by array equality, communication records by
``CommStats.signature()``.
"""

import pytest

from repro.core import PulpParams, xtrapulp
from repro.graph import generators

NPROCS = 3
PARTS = 4


@pytest.fixture(scope="session")
def ft_graph():
    return generators.rmat(8, avg_degree=8, seed=7)


@pytest.fixture(scope="session")
def ft_params():
    return PulpParams(seed=123, outer_iters=2)


@pytest.fixture(scope="session")
def reference(ft_graph, ft_params):
    """Uninterrupted, checkpoint-free reference run (serial backend)."""
    return xtrapulp(
        ft_graph, PARTS, nprocs=NPROCS, params=ft_params, backend="serial"
    )
