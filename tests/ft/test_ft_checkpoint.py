"""Checkpoint format, epoch-commit protocol, and validation negatives."""

import json
import os
import pickle

import numpy as np
import pytest

from repro.core import PulpParams, xtrapulp
from repro.core.state import RankState
from repro.dist import build_dist_graph, make_distribution
from repro.ft import CheckpointError, CkptPolicy, find_latest_committed
from repro.ft.checkpoint import (
    MANIFEST_NAME,
    MANIFEST_TMP,
    STATS_NAME,
    checkpoint_after,
    load_checkpoint,
    load_manifest,
    step_plan,
    validate_manifest,
)
from repro.simmpi import Runtime

from tests.ft.conftest import NPROCS, PARTS


# -- step plan ---------------------------------------------------------------


def test_step_plan_shape():
    plan = step_plan(PulpParams(outer_iters=3))
    assert plan[0] == ("init", -1, "init")
    assert len(plan) == 1 + 3 * 2 + 3 * 2
    assert plan[1:3] == [("vertex", 0, "vertex_balance"),
                         ("vertex", 0, "vertex_refine")]
    assert plan[-1] == ("edge", 2, "edge_refine")


def test_step_plan_single_objective():
    plan = step_plan(PulpParams(outer_iters=2, single_objective=True))
    assert all(stage != "edge" for stage, _, _ in plan)
    assert len(plan) == 1 + 2 * 2


def test_checkpoint_after_granularities():
    plan = step_plan(PulpParams(outer_iters=2))
    outer = [i for i in range(len(plan))
             if checkpoint_after(plan, i, "outer")]
    # init + each refine step
    assert outer == [0, 2, 4, 6, 8]
    assert [i for i in range(len(plan))
            if checkpoint_after(plan, i, "phase")] == list(range(len(plan)))
    assert not any(checkpoint_after(plan, i, "off")
                   for i in range(len(plan)))


def test_policy_rejects_unknown_granularity(tmp_path):
    with pytest.raises(ValueError, match="every"):
        CkptPolicy(dir=str(tmp_path), every="sometimes")


# -- epoch layout + commit protocol ------------------------------------------


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory, ft_graph, ft_params):
    d = tmp_path_factory.mktemp("ckpt_run")
    xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
             backend="serial", checkpoint=CkptPolicy(dir=str(d)))
    return str(d)


def test_epoch_layout(run_dir):
    epochs = sorted(os.listdir(run_dir))
    assert epochs == [f"epoch_{e:04d}" for e in (0, 2, 4, 6, 8)]
    for e in epochs:
        edir = os.path.join(run_dir, e)
        names = sorted(os.listdir(edir))
        assert MANIFEST_NAME in names
        assert MANIFEST_TMP not in names  # commit renamed it away
        assert STATS_NAME in names
        assert [n for n in names if n.endswith(".ckpt")] == [
            f"rank{r:02d}.ckpt" for r in range(NPROCS)
        ]


def test_manifest_contents(run_dir):
    latest = find_latest_committed(run_dir)
    m = load_manifest(latest)
    assert m["epoch"] == 8 and m["next_step"] == 9
    assert m["nprocs"] == NPROCS and m["num_parts"] == PARTS
    assert m["step"] == ["edge", 1, "edge_refine"]
    assert m["n_build"] > 0
    assert set(m["rank_files"]) == {str(r) for r in range(NPROCS)}
    for entry in m["rank_files"].values():
        assert len(entry["sha256"]) == 64 and entry["bytes"] > 0


def test_stats_sidecar_is_record_prefix(run_dir, ft_graph, ft_params,
                                        tmp_path):
    latest = find_latest_committed(run_dir)
    data = load_checkpoint(latest)
    assert len(data.base_events) == data.manifest["base_events"]
    assert data.base_events[-1].op == "checkpoint"
    # the prefix must agree with a fresh identical run's record
    fresh = xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                     backend="serial",
                     checkpoint=CkptPolicy(dir=str(tmp_path / "again")))
    sig = [(e.op, e.tag, e.bytes_sent.tolist()) for e in data.base_events]
    ref = [(e.op, e.tag, e.bytes_sent.tolist())
           for e in fresh.stats.events[:len(sig)]]
    assert sig == ref


def test_torn_epoch_is_not_loadable(run_dir, tmp_path):
    """A written-but-uncommitted epoch (MANIFEST.tmp only) is invisible."""
    import shutil

    d = tmp_path / "torn"
    shutil.copytree(run_dir, d)
    for e in sorted(os.listdir(d))[-2:]:
        edir = d / e
        os.replace(edir / MANIFEST_NAME, edir / MANIFEST_TMP)
    latest = find_latest_committed(str(d))
    assert latest is not None and latest.endswith("epoch_0004")
    with pytest.raises(CheckpointError, match="torn|no committed"):
        load_manifest(str(d / "epoch_0008"))


def test_no_epochs_raises(tmp_path):
    with pytest.raises(CheckpointError, match="no committed"):
        load_checkpoint(str(tmp_path))


# -- validation negatives ----------------------------------------------------


def _kwargs_from(manifest):
    return dict(
        nprocs=manifest["nprocs"],
        num_parts=manifest["num_parts"],
        graph_sig=manifest["graph_signature"],
        dist_sig=manifest["dist_signature"],
        params_repr=manifest["params_repr"],
        inputs_sig=manifest["inputs_signature"],
    )


def test_validate_accepts_matching(run_dir):
    m = load_manifest(find_latest_committed(run_dir))
    validate_manifest(m, **_kwargs_from(m))


@pytest.mark.parametrize("field_name,patch", [
    ("nprocs", dict(nprocs=5)),
    ("num_parts", dict(num_parts=7)),
    ("graph_signature", dict(graph_sig="deadbeef")),
    ("dist_signature", dict(dist_sig="deadbeef")),
    ("params", dict(params_repr="PulpParams(other)")),
    ("inputs_signature", dict(inputs_sig="deadbeef")),
])
def test_validate_rejects_mismatch(run_dir, field_name, patch):
    m = load_manifest(find_latest_committed(run_dir))
    kwargs = {**_kwargs_from(m), **patch}
    with pytest.raises(CheckpointError, match=field_name):
        validate_manifest(m, **kwargs)


def test_resume_rejects_wrong_graph(run_dir, ft_params):
    from repro.graph import generators

    other = generators.rmat(8, avg_degree=8, seed=99)
    with pytest.raises(CheckpointError, match="graph_signature"):
        xtrapulp(other, PARTS, nprocs=NPROCS, params=ft_params,
                 backend="serial", resume=run_dir)


def test_resume_rejects_wrong_nprocs(run_dir, ft_graph, ft_params):
    with pytest.raises(CheckpointError, match="nprocs"):
        xtrapulp(ft_graph, PARTS, nprocs=NPROCS + 1, params=ft_params,
                 backend="serial", resume=run_dir)


def test_truncated_rank_file_rejected(run_dir, tmp_path):
    import shutil

    d = tmp_path / "trunc"
    shutil.copytree(run_dir, d)
    latest = find_latest_committed(str(d))
    victim = os.path.join(latest, "rank01.ckpt")
    with open(victim, "rb") as f:
        blob = f.read()
    with open(victim, "wb") as f:
        f.write(blob[: len(blob) // 2])
    with pytest.raises(CheckpointError, match="truncated or corrupt"):
        load_checkpoint(latest)


def test_corrupt_rank_file_rejected(run_dir, tmp_path):
    import shutil

    d = tmp_path / "flip"
    shutil.copytree(run_dir, d)
    latest = find_latest_committed(str(d))
    victim = os.path.join(latest, "rank00.ckpt")
    blob = bytearray(open(victim, "rb").read())
    blob[len(blob) // 2] ^= 0xFF
    open(victim, "wb").write(bytes(blob))
    with pytest.raises(CheckpointError, match="truncated or corrupt"):
        load_checkpoint(latest)


def test_missing_sidecar_rejected(run_dir, tmp_path):
    import shutil

    d = tmp_path / "nosidecar"
    shutil.copytree(run_dir, d)
    latest = find_latest_committed(str(d))
    os.remove(os.path.join(latest, STATS_NAME))
    with pytest.raises(CheckpointError, match="sidecar"):
        load_checkpoint(latest)


def test_unsupported_format_version_rejected(run_dir, tmp_path):
    import shutil

    d = tmp_path / "futurefmt"
    shutil.copytree(run_dir, d)
    latest = find_latest_committed(str(d))
    mpath = os.path.join(latest, MANIFEST_NAME)
    m = json.load(open(mpath))
    m["format_version"] = 99
    json.dump(m, open(mpath, "w"))
    with pytest.raises(CheckpointError, match="format"):
        load_checkpoint(latest)


def test_stale_runtime_rejected(ft_graph, ft_params, tmp_path):
    """Checkpointing needs a fresh CommStats or splicing would corrupt."""
    from repro.simmpi.backends import create_runtime

    rt = create_runtime("serial", nprocs=NPROCS, meter_compute=False)
    rt.run(lambda comm: comm.barrier())
    with pytest.raises(ValueError, match="fresh runtime"):
        xtrapulp(ft_graph, PARTS, nprocs=NPROCS, params=ft_params,
                 backend=rt, checkpoint=str(tmp_path))


# -- state snapshot/restore --------------------------------------------------


def test_rank_state_snapshot_roundtrip(ft_graph, ft_params):
    dist = make_distribution("random", ft_graph.n, NPROCS, seed=1)

    def main(comm):
        dg = build_dist_graph(comm, ft_graph, dist)
        state = RankState(dg=dg, num_parts=PARTS, params=ft_params)
        state.parts[:] = np.arange(dg.n_total) % PARTS
        state.iter_tot = 17
        state.edges_touched = 123.5
        state.rng.integers(1000)  # advance the stream
        snap = pickle.loads(pickle.dumps(state.snapshot()))
        fresh = RankState(dg=dg, num_parts=PARTS, params=ft_params)
        fresh.restore(snap)
        assert np.array_equal(fresh.parts, state.parts)
        assert fresh.iter_tot == 17 and fresh.edges_touched == 123.5
        # restored RNG continues the original stream
        assert fresh.rng.integers(10**9) == state.rng.integers(10**9)
        return True

    assert all(Runtime(NPROCS).run(main))


def test_rank_state_restore_rejects_mismatch(ft_graph, ft_params):
    dist = make_distribution("random", ft_graph.n, NPROCS, seed=1)

    def main(comm):
        dg = build_dist_graph(comm, ft_graph, dist)
        state = RankState(dg=dg, num_parts=PARTS, params=ft_params)
        snap = state.snapshot()
        snap["rank"] = (snap["rank"] + 1) % NPROCS
        try:
            state.restore(snap)
            return False
        except ValueError:
            return True

    assert all(Runtime(NPROCS).run(main))


def test_frontier_sweeper_snapshot_roundtrip(ft_graph, ft_params):
    from repro.core.frontier import FrontierSweeper
    from repro.core.initialization import initialize

    dist = make_distribution("random", ft_graph.n, NPROCS, seed=1)

    def main(comm):
        dg = build_dist_graph(comm, ft_graph, dist)
        state = RankState(dg=dg, num_parts=PARTS, params=ft_params)
        initialize(comm, state)
        sw = FrontierSweeper(state, phase="vertex_balance")
        for lids in sw.blocks():
            sw.note_moves(lids[:3])
        sw.exchange(comm)
        snap = sw.snapshot()
        sw2 = FrontierSweeper(state, phase="vertex_balance")
        sw2.restore(snap)
        a = list(sw.blocks())
        b = list(sw2.blocks())
        assert len(a) == len(b)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))
        return True

    assert all(Runtime(NPROCS).run(main))
