"""Graph suite registry."""

import pytest

from repro.suite import (
    REPRESENTATIVE_SIX,
    SCALE_N,
    SUITE,
    get_graph,
    suite_names,
)


def test_suite_contains_all_classes():
    assert set(suite_names()) == {
        "social", "webcrawl", "rmat", "rander", "randhd", "mesh",
    }
    assert set(REPRESENTATIVE_SIX) <= set(suite_names())


@pytest.mark.parametrize("name", sorted(SUITE))
def test_tiny_graphs_build(name):
    g = get_graph(name, "tiny")
    target = SCALE_N["tiny"]
    assert 0.8 * target <= g.n <= 1.3 * target
    assert g.num_edges > 0
    assert not g.directed


def test_deterministic():
    a = get_graph("rmat", "tiny")
    b = get_graph("rmat", "tiny")
    assert a == b


def test_custom_seed():
    a = get_graph("social", "tiny", seed=1)
    b = get_graph("social", "tiny", seed=2)
    assert a != b


def test_unknown_names_rejected():
    with pytest.raises(KeyError):
        get_graph("nope", "tiny")
    with pytest.raises(KeyError):
        get_graph("rmat", "huge")


def test_metadata():
    assert SUITE["randhd"].recommended_init == "block"
    assert "uk-2002" in SUITE["webcrawl"].paper_analog
