"""The webcrawl generator's WDC12 signature (§V.B) — load-bearing for the
Fig. 5 and Fig. 8 reproductions, so pinned by tests."""

import numpy as np
import pytest

from repro.baselines import (
    random_partition,
    vertex_block_partition,
)
from repro.core.quality import edge_balance, edge_cut_ratio
from repro.graph import webcrawl


@pytest.fixture(scope="module")
def g():
    return webcrawl(1 << 14, 24, seed=6)


def test_block_partition_low_cut(g):
    p = 16
    block = edge_cut_ratio(g, vertex_block_partition(g, p), p)
    rand = edge_cut_ratio(g, random_partition(g, p, seed=0), p)
    assert block < 0.4
    assert rand > 0.9


def test_block_partition_edge_imbalance(g):
    # crawl bias: early pages carry more links → block partitioning is
    # edge-imbalanced (the paper reports 1.85 on WDC12)
    p = 16
    ebal = edge_balance(g, vertex_block_partition(g, p), p)
    assert ebal > 1.5


def test_degree_decays_with_crawl_position(g):
    third = g.n // 3
    early = g.degrees[:third].mean()
    late = g.degrees[-third:].mean()
    assert early > 1.5 * late


def test_intra_site_locality(g):
    src, dst = g.edges()
    near = float((np.abs(src - dst) < 512).mean())
    assert near > 0.5


def test_directed_variant_has_nontrivial_scc():
    import networkx as nx

    gd = webcrawl(2048, 16, seed=3, directed=True)
    nxd = nx.DiGraph()
    nxd.add_nodes_from(range(gd.n))
    src, dst = gd.edges()
    nxd.add_edges_from(zip(src.tolist(), dst.tolist()))
    giant = max(nx.strongly_connected_components(nxd), key=len)
    assert len(giant) > gd.n // 4  # web graphs have a large SCC core
