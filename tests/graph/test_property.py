"""Property-based CSR invariants for arbitrary edge lists."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph import from_edges
from repro.graph.builders import relabel


@st.composite
def edge_lists(draw, max_n=30, max_m=80):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    src = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1), min_size=m, max_size=m
        )
    )
    dst = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1), min_size=m, max_size=m
        )
    )
    return n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64)


@settings(max_examples=80, deadline=None)
@given(edge_lists())
def test_from_edges_invariants(case):
    n, src, dst = case
    g = from_edges(n, src, dst)
    # offsets monotone, adjacency within range, sorted per row
    assert g.offsets[0] == 0 and g.offsets[-1] == g.adj.size
    assert np.all(np.diff(g.offsets) >= 0)
    if g.adj.size:
        assert g.adj.min() >= 0 and g.adj.max() < n
    for v in range(n):
        row = g.neighbors(v)
        assert np.all(np.diff(row) > 0)  # strictly sorted = deduped
        assert v not in row  # no self loops
    # symmetric storage
    assert g.is_symmetric()
    # edge set equals the cleaned input edge set
    mask = src != dst
    expect = set()
    for u, v in zip(src[mask], dst[mask]):
        expect.add((min(u, v), max(u, v)))
    got = set(zip(*map(lambda a: a.tolist(), g.unique_edges())))
    assert got == expect


@settings(max_examples=50, deadline=None)
@given(edge_lists(), st.randoms(use_true_random=False))
def test_relabel_is_isomorphism(case, rnd):
    n, src, dst = case
    g = from_edges(n, src, dst)
    perm = np.array(rnd.sample(range(n), n), dtype=np.int64)
    g2 = relabel(g, perm)
    assert g2.num_edges == g.num_edges
    np.testing.assert_array_equal(np.sort(g2.degrees), np.sort(g.degrees))
    # edge (u, v) in g iff (perm[u], perm[v]) in g2
    src1, dst1 = g.unique_edges()
    e1 = {(min(perm[u], perm[v]), max(perm[u], perm[v]))
          for u, v in zip(src1, dst1)}
    src2, dst2 = g2.unique_edges()
    e2 = set(zip(src2.tolist(), dst2.tolist()))
    assert e1 == e2


@settings(max_examples=50, deadline=None)
@given(edge_lists())
def test_degree_sum_equals_twice_edges(case):
    n, src, dst = case
    g = from_edges(n, src, dst)
    assert int(g.degrees.sum()) == 2 * g.num_edges


@settings(max_examples=50, deadline=None)
@given(edge_lists())
def test_reversed_involution(case):
    n, src, dst = case
    g = from_edges(n, src, dst)
    assert g.reversed().reversed() == g
