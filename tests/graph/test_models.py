"""Watts–Strogatz / Barabási–Albert models and largest-component extraction."""

import numpy as np
import pytest

from repro.graph import (
    barabasi_albert,
    erdos_renyi,
    from_edges,
    largest_component,
    rmat,
    watts_strogatz,
)
from repro.graph.metrics import approximate_diameter


def test_ws_lattice_limit():
    g = watts_strogatz(100, 6, 0.0, seed=1)
    # pure lattice: every vertex has degree exactly k
    assert g.degrees.min() == 6 and g.degrees.max() == 6
    assert approximate_diameter(g, sweeps=4, seed=0) >= 100 // 6 - 1


def test_ws_small_world_effect():
    lattice = watts_strogatz(512, 8, 0.0, seed=2)
    rewired = watts_strogatz(512, 8, 0.2, seed=2)
    d_lat = approximate_diameter(lattice, sweeps=4, seed=0)
    d_sw = approximate_diameter(rewired, sweeps=4, seed=0)
    assert d_sw < d_lat / 2  # shortcuts collapse the diameter


def test_ws_determinism_and_validation():
    a = watts_strogatz(64, 4, 0.3, seed=9)
    b = watts_strogatz(64, 4, 0.3, seed=9)
    assert a == b
    with pytest.raises(ValueError):
        watts_strogatz(3, 4)
    with pytest.raises(ValueError):
        watts_strogatz(64, 3)  # odd k
    with pytest.raises(ValueError):
        watts_strogatz(64, 4, rewire=1.5)


def test_ba_power_law_skew():
    g = barabasi_albert(2048, 8, seed=3)
    # heavy tail relative to an ER graph of the same density
    er = erdos_renyi(2048, int(g.avg_degree), seed=3)
    assert g.max_degree > 3 * er.max_degree
    # early vertices dominate (preferential attachment)
    assert g.degrees[:16].mean() > 5 * g.degrees[-16:].mean()


def test_ba_connected():
    g = barabasi_albert(512, 4, seed=5)
    from repro.graph import connected_component_sizes

    sizes = connected_component_sizes(g)
    assert sizes[0] == g.n  # attachment keeps it connected


def test_ba_validation_and_determinism():
    a = barabasi_albert(128, 4, seed=1)
    b = barabasi_albert(128, 4, seed=1)
    assert a == b
    with pytest.raises(ValueError):
        barabasi_albert(1, 4)
    with pytest.raises(ValueError):
        barabasi_albert(16, 0)
    # m_attach larger than n clamps rather than failing
    g = barabasi_albert(8, 100, seed=1)
    assert g.n == 8


def test_largest_component_basic():
    # triangle + edge + isolated vertex
    g = from_edges(6, np.array([0, 1, 2, 3]), np.array([1, 2, 0, 4]))
    sub, old_ids = largest_component(g)
    assert sub.n == 3
    np.testing.assert_array_equal(old_ids, [0, 1, 2])
    assert sub.num_edges == 3


def test_largest_component_removes_rmat_isolated():
    g = rmat(9, 12, seed=1)
    sub, old_ids = largest_component(g)
    assert sub.n < g.n
    assert sub.degrees.min() >= 1
    # degrees preserved under the id mapping
    np.testing.assert_array_equal(sub.degrees, g.degrees[old_ids])


def test_largest_component_of_connected_graph_is_identity():
    g = barabasi_albert(128, 4, seed=2)
    sub, old_ids = largest_component(g)
    assert sub.n == g.n
    np.testing.assert_array_equal(old_ids, np.arange(g.n))
