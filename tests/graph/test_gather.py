"""Vectorized multi-range gather helpers (hot-path primitives)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph.gather import (
    expand_ranges,
    neighbor_gather,
    neighbor_gather_with_sources,
)
from repro.graph import rmat


def test_expand_ranges_basic():
    idx = expand_ranges(np.array([0, 10, 20]), np.array([2, 0, 3]))
    np.testing.assert_array_equal(idx, [0, 1, 20, 21, 22])


def test_expand_ranges_empty():
    assert expand_ranges(np.array([], dtype=int), np.array([], dtype=int)).size == 0
    assert expand_ranges(np.array([5]), np.array([0])).size == 0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1000),
            st.integers(min_value=0, max_value=8),
        ),
        min_size=0,
        max_size=20,
    )
)
def test_expand_ranges_matches_python_loop(ranges):
    starts = np.array([r[0] for r in ranges], dtype=np.int64)
    counts = np.array([r[1] for r in ranges], dtype=np.int64)
    expected = [s + i for s, c in ranges for i in range(c)]
    np.testing.assert_array_equal(expand_ranges(starts, counts), expected)


def test_neighbor_gather_matches_loop():
    g = rmat(8, 10, seed=9)
    verts = np.array([0, 5, 17, 200])
    neigh, counts = neighbor_gather(g.offsets, g.adj, verts)
    expected = np.concatenate([g.neighbors(int(v)) for v in verts])
    np.testing.assert_array_equal(neigh, expected)
    np.testing.assert_array_equal(
        counts, [g.neighbors(int(v)).size for v in verts]
    )


def test_neighbor_gather_with_sources():
    g = rmat(8, 10, seed=9)
    verts = np.array([3, 100])
    neigh, sources, counts = neighbor_gather_with_sources(
        g.offsets, g.adj, verts
    )
    assert neigh.size == sources.size == counts.sum()
    # sources index *positions in verts*
    assert set(np.unique(sources)) <= {0, 1}
    np.testing.assert_array_equal(
        neigh[sources == 0], g.neighbors(3)
    )
    np.testing.assert_array_equal(
        neigh[sources == 1], g.neighbors(100)
    )
