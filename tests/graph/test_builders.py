"""Builders: edges/scipy/networkx conversions, cleanup semantics."""

import numpy as np
import pytest
from scipy import sparse

from repro.graph import from_edges, from_networkx, from_scipy, to_networkx, to_scipy
from repro.graph.builders import relabel, symmetrize
from repro.graph.generators import ring


def test_dedup_and_self_loops_removed():
    src = np.array([0, 0, 0, 1, 2])
    dst = np.array([1, 1, 0, 2, 2])
    g = from_edges(3, src, dst)
    assert g.num_edges == 2  # (0,1) and (1,2); dup and loops dropped
    assert not g.has_self_loops()


def test_keep_self_loops_if_requested():
    g = from_edges(2, np.array([0]), np.array([0]), drop_self_loops=False)
    assert g.has_self_loops()


def test_directed_no_symmetrize():
    g = from_edges(3, np.array([0, 1]), np.array([1, 2]), directed=True)
    assert g.directed
    assert g.num_edges == 2
    np.testing.assert_array_equal(g.neighbors(0), [1])
    assert g.neighbors(1).tolist() == [2]
    assert g.neighbors(2).size == 0


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        from_edges(2, np.array([0]), np.array([5]))
    with pytest.raises(ValueError):
        from_edges(2, np.array([-1]), np.array([0]))
    with pytest.raises(ValueError):
        from_edges(-1, np.array([]), np.array([]))


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        from_edges(3, np.array([0, 1]), np.array([1]))


def test_scipy_roundtrip():
    g = ring(6)
    m = to_scipy(g)
    assert sparse.issparse(m)
    assert (m != m.T).nnz == 0  # symmetric
    g2 = from_scipy(m)
    assert g == g2


def test_from_scipy_requires_square():
    with pytest.raises(ValueError):
        from_scipy(sparse.csr_matrix(np.ones((2, 3))))


def test_networkx_roundtrip():
    import networkx as nx

    g = ring(7)
    nxg = to_networkx(g)
    assert nx.is_connected(nxg)
    g2 = from_networkx(nxg)
    assert g == g2


def test_networkx_directed():
    import networkx as nx

    d = nx.DiGraph([(0, 1), (1, 2)])
    g = from_networkx(d)
    assert g.directed
    back = to_networkx(g)
    assert set(back.edges()) == {(0, 1), (1, 2)}


def test_symmetrize():
    d = from_edges(3, np.array([0, 1]), np.array([1, 2]), directed=True)
    u = symmetrize(d)
    assert not u.directed
    assert u.is_symmetric()
    assert u.num_edges == 2
    # idempotent on undirected inputs
    assert symmetrize(u) is u


def test_relabel_preserves_structure():
    g = ring(5)
    perm = np.array([4, 3, 2, 1, 0])
    g2 = relabel(g, perm)
    assert g2.num_edges == g.num_edges
    np.testing.assert_array_equal(np.sort(g2.degrees), np.sort(g.degrees))


def test_relabel_validates_permutation():
    g = ring(4)
    with pytest.raises(ValueError):
        relabel(g, np.array([0, 0, 1, 2]))
    with pytest.raises(ValueError):
        relabel(g, np.array([0, 1]))
