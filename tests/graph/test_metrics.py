"""BFS, diameter, components, Table I stats."""

import numpy as np
import pytest

from repro.graph import (
    bfs_levels,
    approximate_diameter,
    connected_component_sizes,
    degree_stats,
    from_edges,
    graph_stats_row,
    path_graph,
    ring,
    star,
)


def test_bfs_levels_path():
    g = path_graph(5)
    np.testing.assert_array_equal(bfs_levels(g, 0), [0, 1, 2, 3, 4])
    np.testing.assert_array_equal(bfs_levels(g, 2), [2, 1, 0, 1, 2])


def test_bfs_levels_unreachable():
    g = from_edges(4, np.array([0]), np.array([1]))
    levels = bfs_levels(g, 0)
    np.testing.assert_array_equal(levels, [0, 1, -1, -1])


def test_bfs_validates_source():
    with pytest.raises(ValueError):
        bfs_levels(ring(4), 9)


def test_bfs_matches_networkx():
    import networkx as nx
    from repro.graph import rmat
    from repro.graph.builders import to_networkx

    g = rmat(9, 12, seed=2)
    nxg = to_networkx(g)
    levels = bfs_levels(g, 0)
    ref = nx.single_source_shortest_path_length(nxg, 0)
    for v in range(g.n):
        assert levels[v] == ref.get(v, -1)


def test_approximate_diameter_exact_on_path():
    g = path_graph(20)
    assert approximate_diameter(g, sweeps=4, seed=0) == 19


def test_approximate_diameter_ring():
    g = ring(20)
    assert approximate_diameter(g, sweeps=4, seed=0) == 10


def test_approximate_diameter_empty():
    g = from_edges(0, np.array([], dtype=int), np.array([], dtype=int))
    assert approximate_diameter(g) == 0


def test_connected_component_sizes():
    # two components: triangle + edge, plus isolated vertex
    g = from_edges(6, np.array([0, 1, 2, 3]), np.array([1, 2, 0, 4]))
    sizes = connected_component_sizes(g)
    np.testing.assert_array_equal(sizes, [3, 2, 1])


def test_degree_stats():
    g = star(5)
    s = degree_stats(g)
    assert s["max"] == 4
    assert s["min"] == 1
    assert s["avg"] == pytest.approx(8 / 5)


def test_graph_stats_row():
    g = ring(10)
    row = graph_stats_row("ring10", g, diameter_sweeps=4)
    assert row.n == 10 and row.m == 10
    assert row.davg == pytest.approx(2.0)
    assert row.dmax == 2
    assert row.diameter == 5
    assert "ring10" in row.formatted()
