"""Graph (CSR) invariants and operations."""

import numpy as np
import pytest

from repro.graph import Graph, from_edges, ring, star, path_graph


def triangle():
    return from_edges(3, np.array([0, 1, 2]), np.array([1, 2, 0]))


def test_basic_counts():
    g = triangle()
    assert g.n == 3
    assert g.num_edges == 3
    assert g.num_directed_edges == 6
    np.testing.assert_array_equal(g.degrees, [2, 2, 2])
    assert g.avg_degree == pytest.approx(2.0)
    assert g.max_degree == 2


def test_neighbors_sorted_view():
    g = triangle()
    np.testing.assert_array_equal(g.neighbors(0), [1, 2])
    with pytest.raises(ValueError):
        g.neighbors(0)[0] = 5  # read-only


def test_empty_graph():
    g = from_edges(4, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
    assert g.n == 4 and g.num_edges == 0
    assert g.max_degree == 0
    assert g.is_symmetric()


def test_validation_rejects_bad_offsets():
    with pytest.raises(ValueError):
        Graph(np.array([1, 2]), np.array([0]))
    with pytest.raises(ValueError):
        Graph(np.array([0, 2, 1]), np.array([0, 0]))
    with pytest.raises(ValueError):
        Graph(np.array([0, 1]), np.array([5]))  # target out of range


def test_edges_roundtrip():
    g = ring(5)
    src, dst = g.edges()
    g2 = from_edges(5, src, dst)
    assert g == g2


def test_unique_edges_each_once():
    g = ring(6)
    src, dst = g.unique_edges()
    assert len(src) == 6
    assert np.all(src < dst)


def test_is_symmetric_and_self_loops():
    g = ring(4)
    assert g.is_symmetric()
    assert not g.has_self_loops()
    d = from_edges(3, np.array([0]), np.array([1]), directed=True)
    assert not d.is_symmetric()


def test_reversed_directed():
    d = from_edges(3, np.array([0, 1]), np.array([1, 2]), directed=True)
    r = d.reversed()
    src, dst = r.edges()
    assert set(zip(src.tolist(), dst.tolist())) == {(1, 0), (2, 1)}


def test_reversed_undirected_is_same_edge_set():
    g = star(5)
    r = g.reversed()
    assert sorted(map(tuple, np.column_stack(g.edges()).tolist())) == sorted(
        map(tuple, np.column_stack(r.edges()).tolist())
    )


def test_subgraph_mask():
    g = ring(6)
    keep = np.array([True, True, True, False, False, False])
    sub, old_ids = g.subgraph_mask(keep)
    np.testing.assert_array_equal(old_ids, [0, 1, 2])
    assert sub.n == 3
    assert sub.num_edges == 2  # path 0-1-2 (ring edge through 3..5 cut)


def test_subgraph_mask_validates():
    g = ring(4)
    with pytest.raises(ValueError):
        g.subgraph_mask(np.array([True]))


def test_neighbor_block_matches_loop():
    g = star(8)
    verts = np.array([0, 3, 7])
    neigh, counts = g.neighbor_block(verts)
    expected = np.concatenate([g.neighbors(v) for v in verts])
    np.testing.assert_array_equal(neigh, expected)
    np.testing.assert_array_equal(counts, [7, 1, 1])


def test_repr_and_iter():
    g = path_graph(3)
    assert "n=3" in repr(g)
    assert list(g) == [0, 1, 2]


def test_equality_and_hash():
    a, b = ring(4), ring(4)
    assert a == b
    assert a != path_graph(4)
    assert isinstance(hash(a), int)


def test_arrays_frozen():
    g = ring(4)
    with pytest.raises(ValueError):
        g.adj[0] = 99
    with pytest.raises(ValueError):
        g.offsets[0] = 1
