"""Generator structural properties per graph class."""

import numpy as np
import pytest

from repro.graph import (
    erdos_renyi,
    grid2d,
    mesh3d,
    path_graph,
    rand_hd,
    ring,
    rmat,
    social,
    star,
    webcrawl,
)
from repro.graph.metrics import approximate_diameter


def test_rmat_size_and_determinism():
    g1 = rmat(10, 16, seed=3)
    g2 = rmat(10, 16, seed=3)
    g3 = rmat(10, 16, seed=4)
    assert g1.n == 1024
    assert g1 == g2
    assert g1 != g3
    # davg close to requested (dedup removes a bit)
    assert 8 <= g1.avg_degree <= 16


def test_rmat_skewed_degrees():
    g = rmat(12, 16, seed=1)
    # heavy-tail: max degree far above average
    assert g.max_degree > 10 * g.avg_degree


def test_rmat_validates():
    with pytest.raises(ValueError):
        rmat(0, 8)
    with pytest.raises(ValueError):
        rmat(4, 8, a=0.9, b=0.9, c=0.9)


def test_erdos_renyi_flat_degrees():
    g = erdos_renyi(4096, 16, seed=2)
    assert g.n == 4096
    # near-Poisson: max degree within a small factor of mean
    assert g.max_degree < 4 * g.avg_degree
    assert 10 <= g.avg_degree <= 16


def test_rand_hd_locality_and_diameter():
    g = rand_hd(2048, 8, seed=5)
    src, dst = g.edges()
    assert np.abs(src - dst).max() < 8
    # much larger diameter than a small-world graph of equal size
    d_hd = approximate_diameter(g, sweeps=4, seed=0)
    d_sw = approximate_diameter(erdos_renyi(2048, 8, seed=5), sweeps=4, seed=0)
    assert d_hd > 4 * d_sw


def test_rand_hd_validates():
    with pytest.raises(ValueError):
        rand_hd(0, 8)
    with pytest.raises(ValueError):
        rand_hd(10, 0)


def test_grid2d():
    g = grid2d(4, 5)
    assert g.n == 20
    assert g.num_edges == 4 * 4 + 3 * 5  # horizontal + vertical
    g9 = grid2d(4, 5, diagonals=True)
    assert g9.num_edges > g.num_edges


def test_mesh3d_stencils():
    g7 = mesh3d(6, 6, 6, stencil=7)
    g13 = mesh3d(6, 6, 6, stencil=13)
    g27 = mesh3d(6, 6, 6, stencil=27)
    assert g7.n == g13.n == g27.n == 216
    assert g7.num_edges < g13.num_edges < g27.num_edges
    # interior degree ~= 12-13 for the 13-point stencil (paper davg 13)
    assert 9 <= g13.avg_degree <= 13
    with pytest.raises(ValueError):
        mesh3d(4, 4, 4, stencil=5)


def test_mesh_is_connected_uniform_degree():
    g = mesh3d(5, 5, 5)
    assert g.degrees.min() >= 3
    levels_reachable = approximate_diameter(g, sweeps=2, seed=1)
    assert levels_reachable >= 4  # roughly the lattice diameter


def test_social_no_id_locality():
    g = social(2048, 16, seed=7)
    assert g.n == 2048
    src, dst = g.edges()
    # random permutation → endpoint distance spread over the whole range
    assert np.abs(src - dst).mean() > g.n / 10
    assert g.max_degree > 5 * g.avg_degree  # skew retained


def test_social_directed_flag():
    g = social(512, 12, seed=1, directed=True)
    assert g.directed


def test_webcrawl_block_locality():
    g = webcrawl(4096, 16, seed=3)
    src, dst = g.edges()
    # crawl order: most edges stay nearby (within-site)
    frac_near = float((np.abs(src - dst) < 256).mean())
    assert frac_near > 0.5


def test_webcrawl_validates():
    with pytest.raises(ValueError):
        webcrawl(100, 8, intra_fraction=1.5)


def test_tiny_shapes():
    assert ring(5).num_edges == 5
    assert path_graph(5).num_edges == 4
    assert star(5).num_edges == 4
    for bad in (ring, star):
        with pytest.raises(ValueError):
            bad(1)
    with pytest.raises(ValueError):
        path_graph(1)


@pytest.mark.parametrize("gen", [
    lambda: rmat(9, 12, seed=11),
    lambda: erdos_renyi(512, 12, seed=11),
    lambda: rand_hd(512, 8, seed=11),
    lambda: social(512, 12, seed=11),
    lambda: webcrawl(512, 12, seed=11),
    lambda: mesh3d(8, 8, 8),
])
def test_all_generators_produce_simple_symmetric_graphs(gen):
    g = gen()
    assert not g.directed
    assert g.is_symmetric()
    assert not g.has_self_loops()
    src, dst = g.edges()
    keys = src * g.n + dst
    assert np.unique(keys).size == keys.size  # no parallel edges
