"""Graph I/O round-trips and format validation."""

import numpy as np
import pytest

from repro.graph import from_edges, io, ring, rmat


def test_edge_list_roundtrip(tmp_path):
    g = rmat(8, 10, seed=1)
    path = tmp_path / "g.txt"
    io.write_edge_list(g, path)
    g2 = io.read_edge_list(path, n=g.n)
    assert g == g2


def test_edge_list_directed(tmp_path):
    d = from_edges(3, np.array([0, 2]), np.array([1, 1]), directed=True)
    path = tmp_path / "d.txt"
    io.write_edge_list(d, path)
    d2 = io.read_edge_list(path, n=3, directed=True)
    assert d == d2


def test_edge_list_infers_n(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 5\n2 3\n")
    g = io.read_edge_list(path)
    assert g.n == 6


def test_metis_roundtrip(tmp_path):
    g = ring(8)
    path = tmp_path / "g.metis"
    io.write_metis(g, path)
    g2 = io.read_metis(path)
    assert g == g2
    # 1-indexed format with correct header
    head = path.read_text().splitlines()[0]
    assert head == "8 8"


def test_metis_rejects_directed_and_loops(tmp_path):
    d = from_edges(2, np.array([0]), np.array([1]), directed=True)
    with pytest.raises(ValueError):
        io.write_metis(d, tmp_path / "x")
    loops = from_edges(
        2, np.array([0, 0]), np.array([0, 1]), drop_self_loops=False
    )
    with pytest.raises(ValueError):
        io.write_metis(loops, tmp_path / "y")


def test_metis_header_validation(tmp_path):
    path = tmp_path / "bad.metis"
    path.write_text("3 5\n2\n1\n3\n")  # says 5 edges, adjacency gives 2
    with pytest.raises(ValueError):
        io.read_metis(path)
    path.write_text("")
    with pytest.raises(ValueError):
        io.read_metis(path)


def test_metis_trailing_isolated_vertices(tmp_path):
    # vertex 3 (1-indexed) isolated: blank line may be present or absent
    path = tmp_path / "iso.metis"
    path.write_text("3 1\n2\n1\n")
    g = io.read_metis(path)
    assert g.n == 3 and g.num_edges == 1
    assert g.degrees[2] == 0


def test_npz_roundtrip(tmp_path):
    g = rmat(8, 10, seed=2)
    path = tmp_path / "g.npz"
    io.save_npz(g, path)
    g2 = io.load_npz(path)
    assert g == g2
    assert g2.directed == g.directed


def test_npz_preserves_directed_flag(tmp_path):
    d = from_edges(4, np.array([0, 1]), np.array([1, 2]), directed=True)
    path = tmp_path / "d.npz"
    io.save_npz(d, path)
    assert io.load_npz(path).directed
