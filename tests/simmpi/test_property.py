"""Property-based tests: collective results equal a sequential reference
for arbitrary payloads."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.simmpi import run_spmd

small_ints = st.integers(min_value=-(2**31), max_value=2**31)


@settings(max_examples=25, deadline=None)
@given(
    nprocs=st.integers(min_value=1, max_value=4),
    data=st.data(),
)
def test_alltoallv_is_exact_redistribution(nprocs, data):
    # per-rank send counts matrix
    counts = [
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=5),
                min_size=nprocs, max_size=nprocs,
            )
        )
        for _ in range(nprocs)
    ]
    payloads = [
        [
            data.draw(
                st.lists(small_ints, min_size=c, max_size=c)
            )
            for c in counts[r]
        ]
        for r in range(nprocs)
    ]

    def fn(comm):
        my_counts = np.array(counts[comm.rank], dtype=np.int64)
        flat = [v for piece in payloads[comm.rank] for v in piece]
        buf = np.array(flat, dtype=np.int64)
        recv, rcounts = comm.Alltoallv(buf, my_counts)
        return recv.tolist(), rcounts.tolist()

    out, _ = run_spmd(nprocs, fn)
    for dst in range(nprocs):
        recv, rcounts = out[dst]
        expected_counts = [counts[src][dst] for src in range(nprocs)]
        expected = [v for src in range(nprocs) for v in payloads[src][dst]]
        assert rcounts == expected_counts
        assert recv == expected


@settings(max_examples=25, deadline=None)
@given(
    nprocs=st.integers(min_value=1, max_value=4),
    length=st.integers(min_value=1, max_value=16),
    data=st.data(),
)
def test_Allreduce_matches_numpy(nprocs, length, data):
    arrays = [
        np.array(
            data.draw(
                st.lists(small_ints, min_size=length, max_size=length)
            ),
            dtype=np.int64,
        )
        for _ in range(nprocs)
    ]

    def fn(comm):
        return comm.Allreduce(arrays[comm.rank], op="sum")

    out, _ = run_spmd(nprocs, fn)
    expected = np.sum(arrays, axis=0)
    for o in out:
        np.testing.assert_array_equal(o, expected)


@settings(max_examples=25, deadline=None)
@given(
    nprocs=st.integers(min_value=1, max_value=4),
    data=st.data(),
)
def test_Allgatherv_concatenates_in_rank_order(nprocs, data):
    pieces = [
        np.array(
            data.draw(st.lists(small_ints, min_size=0, max_size=6)),
            dtype=np.int64,
        )
        for _ in range(nprocs)
    ]

    def fn(comm):
        merged, counts = comm.Allgatherv(pieces[comm.rank])
        return merged.tolist(), counts.tolist()

    out, _ = run_spmd(nprocs, fn)
    expected = [v for p in pieces for v in p.tolist()]
    for merged, counts in out:
        assert merged == expected
        assert counts == [p.size for p in pieces]


@settings(max_examples=20, deadline=None)
@given(
    nprocs=st.integers(min_value=1, max_value=4),
    values=st.data(),
)
def test_exscan_prefix_property(nprocs, values):
    vals = [
        values.draw(st.integers(min_value=-100, max_value=100))
        for _ in range(nprocs)
    ]

    def fn(comm):
        return comm.exscan(vals[comm.rank], op="sum")

    out, _ = run_spmd(nprocs, fn)
    assert out == [sum(vals[:r]) for r in range(nprocs)]
