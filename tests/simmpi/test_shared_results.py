"""Shared read-only collective results (the thousands-of-ranks engine).

In ``shared`` mode the in-process backends (serial/threads) hand every rank
the *same* sealed (read-only) result array — O(P) result bytes per
collective instead of the historical O(P^2) per-rank copies — while
``copy`` mode keeps the private-copy path as the bit-identity verification
engine.  These tests pin the contract: identical values and communication
records in both modes on every backend, sealed results that refuse in-place
mutation, :func:`materialize` as the copy-on-write escape hatch, and the
procs backend's endpoints pinning the historical copy semantics (its
results already cross a process boundary).
"""

import numpy as np
import pytest

from repro.core import PulpParams, xtrapulp
from repro.graph import generators
from repro.simmpi import run_spmd
from repro.simmpi.backends import create_runtime
from repro.simmpi.dataplane import (
    DEFAULT_RESULT_SHARING,
    RESULT_SHARING_ENV_VAR,
    RESULT_SHARING_MODES,
    default_result_sharing,
    materialize,
)

BACKENDS = ("serial", "threads", "procs")
INPROC = ("serial", "threads")

backends = pytest.mark.parametrize("backend", BACKENDS)
inproc = pytest.mark.parametrize("backend", INPROC)
modes = pytest.mark.parametrize("mode", RESULT_SHARING_MODES)


# -- mode selection ----------------------------------------------------------

def test_default_mode_is_shared(monkeypatch):
    monkeypatch.delenv(RESULT_SHARING_ENV_VAR, raising=False)
    assert DEFAULT_RESULT_SHARING == "shared"
    assert default_result_sharing() == "shared"


def test_env_var_selects_mode(monkeypatch):
    monkeypatch.setenv(RESULT_SHARING_ENV_VAR, "copy")
    assert default_result_sharing() == "copy"
    monkeypatch.setenv(RESULT_SHARING_ENV_VAR, "shared")
    assert default_result_sharing() == "shared"
    monkeypatch.setenv(RESULT_SHARING_ENV_VAR, "")  # empty = unset
    assert default_result_sharing() == DEFAULT_RESULT_SHARING


def test_bogus_env_var_rejected(monkeypatch):
    monkeypatch.setenv(RESULT_SHARING_ENV_VAR, "zero-copy")
    with pytest.raises(ValueError, match="zero-copy"):
        default_result_sharing()


def test_create_runtime_rejects_unknown_mode():
    with pytest.raises(ValueError, match="result-sharing"):
        create_runtime("serial", nprocs=2, result_sharing="mmap")


@modes
def test_create_runtime_kwarg_wins_over_env(monkeypatch, mode):
    other = "copy" if mode == "shared" else "shared"
    monkeypatch.setenv(RESULT_SHARING_ENV_VAR, other)
    rt = create_runtime("serial", nprocs=2, result_sharing=mode)
    try:
        assert rt.result_sharing == mode
    finally:
        rt.close()


# -- sealing and identity of the result objects ------------------------------

def _inspect_allreduce(comm):
    arr = np.full(8, comm.rank, dtype=np.int64)
    total = comm.Allreduce(arr, op="sum")
    return id(total), bool(total.flags.writeable), total.tolist()


@inproc
def test_allreduce_shared_hands_one_sealed_array(backend):
    out, _ = run_spmd(4, _inspect_allreduce, backend=backend,
                      meter_compute=False, result_sharing="shared")
    ids = {i for i, _, _ in out}
    assert len(ids) == 1  # literally the same object on every rank
    assert all(not writable for _, writable, _ in out)
    expect = [0 + 1 + 2 + 3] * 8
    assert all(vals == expect for _, _, vals in out)


@inproc
def test_allreduce_copy_mode_keeps_private_writable_copies(backend):
    out, _ = run_spmd(4, _inspect_allreduce, backend=backend,
                      meter_compute=False, result_sharing="copy")
    ids = {i for i, _, _ in out}
    assert len(ids) == 4  # one private array per rank
    assert all(writable for _, writable, _ in out)


@inproc
def test_sealed_result_refuses_inplace_mutation(backend):
    def fn(comm):
        total = comm.Allreduce(np.ones(4, dtype=np.int64))
        try:
            total += 1
        except ValueError:
            return "sealed"
        return "mutable"

    out, _ = run_spmd(2, fn, backend=backend, meter_compute=False,
                      result_sharing="shared")
    assert out == ["sealed", "sealed"]


@inproc
def test_materialize_gives_private_writable_copy(backend):
    def fn(comm):
        total = materialize(comm.Allreduce(np.ones(4, dtype=np.int64)))
        total += comm.rank  # must not raise, must not leak to peers
        peek = comm.allgather(int(total[0]))
        return tuple(peek)

    out, _ = run_spmd(3, fn, backend=backend, meter_compute=False,
                      result_sharing="shared")
    assert out == [(3, 4, 5)] * 3


@inproc
def test_bcast_root_keeps_own_array_receivers_sealed(backend):
    def fn(comm):
        arr = np.arange(5, dtype=np.int64) if comm.rank == 0 else np.empty(
            5, dtype=np.int64)
        got = comm.Bcast(arr, root=0)
        return got is arr, bool(got.flags.writeable), got.tolist()

    out, _ = run_spmd(3, fn, backend=backend, meter_compute=False,
                      result_sharing="shared")
    assert out[0] == (True, True, [0, 1, 2, 3, 4])  # root: its own buffer
    for mine, writable, vals in out[1:]:
        assert not mine and not writable and vals == [0, 1, 2, 3, 4]


@inproc
def test_allgatherv_shared_result_is_one_sealed_array(backend):
    def fn(comm):
        arr = np.full(comm.rank + 1, comm.rank, dtype=np.int64)
        merged, counts = comm.Allgatherv(arr)
        return (id(merged), bool(merged.flags.writeable),
                merged.tolist(), counts.tolist())

    out, _ = run_spmd(3, fn, backend=backend, meter_compute=False,
                      result_sharing="shared")
    assert len({i for i, _, _, _ in out}) == 1
    for _, writable, vals, counts in out:
        assert not writable
        assert vals == [0, 1, 1, 2, 2, 2]
        assert counts == [1, 2, 3]


@inproc
def test_alltoallv_shared_rows_are_sealed_and_correct(backend):
    def fn(comm):
        size = comm.size
        # rank r sends r*10 + dst to every dst, one item each
        payload = comm.rank * 10 + np.arange(size, dtype=np.int64)
        cts = np.ones(size, dtype=np.int64)
        cts[comm.rank] = 0
        payload = payload[np.arange(size) != comm.rank]
        recv, rcts = comm.Alltoallv(payload, cts)
        return bool(recv.flags.writeable), recv.tolist(), rcts.tolist()

    out, _ = run_spmd(3, fn, backend=backend, meter_compute=False,
                      result_sharing="shared")
    for rank, (writable, vals, rcts) in enumerate(out):
        assert not writable
        expect = [src * 10 + rank for src in range(3) if src != rank]
        assert vals == expect
        assert rcts == [0 if src == rank else 1 for src in range(3)]


@backends
def test_procs_results_stay_writable_under_shared(backend, monkeypatch):
    """The procs rank endpoints pin the historical copy semantics: results
    crossing the process boundary must never arrive sealed (numpy pickling
    preserves the read-only flag, so sealing would leak through)."""
    if backend != "procs":
        pytest.skip("procs-only contract")
    monkeypatch.setenv(RESULT_SHARING_ENV_VAR, "shared")

    def fn(comm):
        total = comm.Allreduce(np.ones(4, dtype=np.int64))
        total += 1  # must be writable in every mode
        return int(total[0])

    out, _ = run_spmd(2, fn, backend=backend, meter_compute=False)
    assert out == [3, 3]


# -- scheduling: the serial executor-continue counter ------------------------

def test_serial_counts_saved_switches():
    def fn(comm):
        for _ in range(5):
            comm.barrier()
        return comm.rank

    _, st = run_spmd(4, fn, backend="serial", meter_compute=False)
    # one park/wake cycle saved per multi-rank collective
    assert st.saved_switches == 5


def test_threads_backend_reports_no_saved_switches():
    _, st = run_spmd(4, lambda comm: comm.barrier(), backend="threads",
                     meter_compute=False)
    assert st.saved_switches == 0


# -- bit-identity: shared vs copy --------------------------------------------

def _workout(comm):
    """Touch every collective family with rank-dependent data."""
    rank, size = comm.rank, comm.size
    rng = np.random.default_rng(rank)
    cts = rng.integers(0, 5, size=size).astype(np.int64)
    cts[rank] = 0
    payload = np.arange(int(cts.sum()), dtype=np.int64) + 100 * rank
    recv, rcts = comm.Alltoallv(payload, cts)
    merged, mcts = comm.Allgatherv(np.full(rank, rank, dtype=np.int64))
    total = comm.allreduce(int(recv.sum()) + int(merged.sum()))
    red = comm.Allreduce(np.full(3, rank, dtype=np.float64), op="max")
    gathered = comm.allgather(rank * rank)
    top = comm.bcast(total if rank == 0 else None, root=0)
    return (total, tuple(gathered), top, int(rcts.sum()),
            mcts.tolist(), red.tolist())


@backends
def test_shared_vs_copy_bit_identical(backend):
    out_s, st_s = run_spmd(8, _workout, backend=backend,
                           meter_compute=False, result_sharing="shared")
    out_c, st_c = run_spmd(8, _workout, backend=backend,
                           meter_compute=False, result_sharing="copy")
    assert out_s == out_c
    assert st_s.signature() == st_c.signature()


@backends
def test_pipeline_partitions_invariant_under_sharing(backend):
    graph = generators.rmat(8, avg_degree=8, seed=7)
    params = PulpParams(seed=11, outer_iters=1)
    parts = {}
    for mode in RESULT_SHARING_MODES:
        rt = create_runtime(backend, nprocs=4, result_sharing=mode)
        try:
            res = xtrapulp(graph, 4, nprocs=4, params=params, backend=rt)
        finally:
            rt.close()
        parts[mode] = (res.parts, res.stats.signature())
    np.testing.assert_array_equal(parts["shared"][0], parts["copy"][0])
    assert parts["shared"][1] == parts["copy"][1]
