"""Error-type contracts: pickling across process boundaries, rank list
formatting, and the diagnostic content of deadlock/mismatch messages.

Every error the procs backend can ship from a rank process to the
supervisor must survive a pickle round-trip with its attributes intact —
the custom ``__reduce__`` implementations exist because keyword-only
constructors break default exception pickling.
"""

import pickle

import numpy as np
import pytest

from repro.simmpi import run_spmd
from repro.simmpi.errors import (
    DeadlockError,
    HungRankError,
    PayloadCorruptionError,
    UnpicklableRankError,
    format_ranks,
)


# -- format_ranks ------------------------------------------------------------


def test_format_ranks_singular_and_plural():
    assert format_ranks([3]) == "rank 3"
    assert format_ranks([3, 1]) == "ranks 1, 3"
    assert format_ranks([]) == "no ranks"


def test_format_ranks_dedupes_and_sorts():
    assert format_ranks([5, 1, 5, 1]) == "ranks 1, 5"


def test_format_ranks_elides_long_lists():
    out = format_ranks(range(100), limit=4)
    assert out == "ranks 0, 1, 2, 3, ... (96 more)"


# -- pickle round-trips ------------------------------------------------------


def test_unpicklable_rank_error_round_trips():
    exc = UnpicklableRankError(
        "rank 2's SomeError could not be pickled",
        original_type="SomeError",
        original_args=("detail", "<unpicklable: Thread>"),
        original_traceback="Traceback (most recent call last): ...",
    )
    back = pickle.loads(pickle.dumps(exc))
    assert isinstance(back, UnpicklableRankError)
    assert str(back) == str(exc)
    assert back.original_type == "SomeError"
    assert back.original_args == ("detail", "<unpicklable: Thread>")
    assert back.original_traceback.startswith("Traceback")


def test_hung_rank_error_round_trips():
    exc = HungRankError("rank 1 made no progress", ranks=(1, 3),
                        phase="vertex_refine", detection_seconds=2.25)
    back = pickle.loads(pickle.dumps(exc))
    assert isinstance(back, HungRankError)
    assert str(back) == str(exc)
    assert back.ranks == (1, 3)
    assert back.phase == "vertex_refine"
    assert back.detection_seconds == 2.25


def test_payload_corruption_error_round_trips():
    exc = PayloadCorruptionError("crc mismatch on slot", rank=2,
                                 location="slot '/x_req_2'")
    back = pickle.loads(pickle.dumps(exc))
    assert isinstance(back, PayloadCorruptionError)
    assert str(back) == str(exc)
    assert back.rank == 2
    assert back.location == "slot '/x_req_2'"


# -- diagnostic message content ----------------------------------------------


@pytest.mark.parametrize("backend", ["serial", "threads"])
def test_deadlock_message_names_blocked_ranks(backend):
    """One rank returns early while the rest rendezvous: the error names
    who is stuck (operators at scale triage from the message alone)."""
    def fn(comm):
        if comm.rank == 0:
            return None  # leaves without the collective
        return comm.allreduce(np.array([1.0]))

    with pytest.raises(DeadlockError) as ei:
        run_spmd(3, fn, backend=backend)
    msg = str(ei.value)
    assert "rank" in msg
    assert "allreduce" in msg.lower() or "blocked" in msg or "stuck" in msg


@pytest.mark.parametrize("backend", ["serial", "threads", "procs"])
def test_mismatch_message_names_both_ops_and_superstep(backend):
    def fn(comm):
        comm.barrier()  # one aligned superstep first
        if comm.rank == 0:
            comm.allreduce(1)
        else:
            comm.barrier()

    with pytest.raises(Exception) as ei:
        run_spmd(2, fn, backend=backend)
    msg = str(ei.value)
    assert "allreduce" in msg and "barrier" in msg
    assert "superstep" in msg or "collective" in msg
