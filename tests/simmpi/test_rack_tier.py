"""The rack tier: ``hierarchical:RxK`` grammar edge cases, rack
classification on the :class:`Topology`, three-tier byte conservation
(``intra + inter + xrack == bytes_sent``), and rack-aware pricing by
:class:`~repro.simmpi.timing.TieredMachineModel` — including the guarantee
that rack-less records price exactly as before the tier existed."""

import numpy as np
import pytest

from repro.core import PulpParams
from repro.simmpi import (
    BLUE_WATERS_TIERED,
    TieredMachineModel,
    TimeModel,
    run_spmd,
)
from repro.simmpi.topology import (
    Topology,
    create_communicator,
    make_topology,
    parse_comm_spec,
)

BACKENDS = ("serial", "threads", "procs")

backends = pytest.mark.parametrize("backend", BACKENDS)


# -- spec grammar edge cases -------------------------------------------------

def test_rack_spec_parses():
    assert parse_comm_spec("hierarchical:8x4") == ("hierarchical", 8, 4)
    assert parse_comm_spec("hierarchical:1x1") == ("hierarchical", 1, 1)
    assert parse_comm_spec("hierarchical:128x64") == ("hierarchical", 128, 64)


@pytest.mark.parametrize("bad", [
    "hierarchical:8x",      # dangling rack separator
    "hierarchical:x4",      # missing ranks/node
    "hierarchical:8x0",     # rack width must be positive
    "hierarchical:8x-3",
    "hierarchical:8x4x2",   # only two structure levels in the grammar
    "hierarchical:8X4",     # the separator is a lowercase 'x'
    "hierarchical:8x4.5",
    "hierarchical:8 x 4",
])
def test_rack_spec_rejects_malformed(bad):
    with pytest.raises(ValueError):
        parse_comm_spec(bad)


def test_params_accept_and_validate_rack_spec():
    assert PulpParams(comm="hierarchical:4x2").comm == "hierarchical:4x2"
    with pytest.raises(ValueError):
        PulpParams(comm="hierarchical:4x0")


def test_oversized_rack_spec_is_one_rack():
    """More nodes/rack than nodes exist: everything lands in rack 0 (same
    clamping stance as a ranks/node wider than the run)."""
    c = create_communicator("hierarchical:2x64", nprocs=8)
    t = c.topology
    assert t.has_racks and t.n_racks == 1 and not t.multi_rack
    assert t.max_nodes_per_rack == t.n_nodes == 4


# -- rack classification -----------------------------------------------------

def test_rack_of_ranks_matches_scalar():
    t = Topology(nprocs=22, ranks_per_node=4, nodes_per_rack=2)
    racks = t.rack_of_ranks()
    assert racks.dtype == np.int32
    np.testing.assert_array_equal(racks, [t.rack_of(r) for r in range(22)])


def test_rack_grouping_with_short_tail():
    # 22 ranks / 4 per node = 6 nodes (last short) / 2 per rack = 3 racks
    t = Topology(nprocs=22, ranks_per_node=4, nodes_per_rack=2)
    assert t.n_racks == 3
    assert t.ranks_per_rack == 8
    assert t.rack_span(0) == (0, 8)
    assert t.rack_span(2) == (16, 22)  # short last rack
    with pytest.raises(ValueError):
        t.rack_span(3)
    assert t.same_rack(0, 7) and not t.same_rack(7, 8)
    assert "3 racks" in t.describe()


def test_rack_leaders():
    t = Topology(nprocs=16, ranks_per_node=2, nodes_per_rack=2)
    assert [t.rack_leader_of(r) for r in range(8)] == [0, 0, 0, 0, 4, 4, 4, 4]
    assert t.is_rack_leader(0) and t.is_rack_leader(4)
    assert not t.is_rack_leader(2)  # node leader, but not rack leader
    flat = Topology(nprocs=16, ranks_per_node=2)
    assert not flat.is_rack_leader(0)  # no rack tier, no rack leaders


def test_make_topology_threads_rack_width_through():
    t = make_topology(32, ranks_per_node=4, nodes_per_rack=2)
    assert t.has_racks and t.n_racks == 4
    assert make_topology(32, ranks_per_node=4).nodes_per_rack == 0


def test_degenerate_one_rank_racks():
    """hierarchical:1x1 — every rank its own node *and* rack: nothing is
    intra or in-rack, so every metered byte classifies cross-rack."""
    c = create_communicator("hierarchical:1x1", nprocs=4)
    dest = np.array([0, 10, 20, 30], dtype=np.int64)
    intra, inter, xrack, *_ = c.tier_contribution(
        "alltoallv", 0, int(dest.sum()), dest_bytes=dest)
    assert (intra, inter, xrack) == (0, 0, 60)


def test_tier_contribution_rack_split():
    # 8 ranks: nodes {0,1} {2,3} {4,5} {6,7}; racks {0..3} {4..7}
    c = create_communicator("hierarchical:2x2", nprocs=8)
    dest = np.array([0, 1, 2, 4, 8, 16, 32, 64], dtype=np.int64)
    intra, inter, xrack, wi, we, wx = c.tier_contribution(
        "alltoallv", 0, int(dest.sum()), dest_bytes=dest)
    assert intra == 1            # rank 1: same node
    assert inter == 2 + 4        # ranks 2,3: off-node, same rack
    assert xrack == 8 + 16 + 32 + 64
    assert intra + inter + xrack == dest.sum()


# -- three-tier conservation on live runs ------------------------------------

def _workout(comm):
    rank, size = comm.rank, comm.size
    rng = np.random.default_rng(rank)
    cts = rng.integers(0, 5, size=size).astype(np.int64)
    cts[rank] = 0
    payload = np.arange(int(cts.sum()), dtype=np.int64) + 100 * rank
    recv, rcts = comm.Alltoallv(payload, cts)
    total = comm.allreduce(int(recv.sum()))
    gathered = comm.allgather(rank * rank)
    top = comm.bcast(total if rank == 0 else None, root=0)
    return total, tuple(gathered), top, int(rcts.sum())


@backends
def test_three_tier_split_sums_to_bytes_sent(backend):
    _, st = run_spmd(8, _workout, backend=backend,
                     meter_compute=False, comm="hierarchical:2x2")
    tiered = [e for e in st.events if e.tiers is not None]
    assert tiered
    racked = [e for e in tiered if e.tiers.xrack_bytes is not None]
    assert racked  # the rack tier actually engaged
    for e in racked:
        np.testing.assert_array_equal(
            e.tiers.intra_bytes + e.tiers.inter_bytes + e.tiers.xrack_bytes,
            e.bytes_sent)
    by_op = st.bytes_by_op()
    for op, (intra, inter, xrack) in st.rack_tier_bytes_by_op().items():
        assert intra + inter + xrack == by_op[op]
    # the two-way rollup folds xrack into inter — the splits must agree
    for op, (intra2, inter2) in st.tier_bytes_by_op().items():
        intra3, inter3, xrack3 = st.rack_tier_bytes_by_op()[op]
        assert intra2 == intra3 and inter2 == inter3 + xrack3
    assert st.modeled_xrack_bytes() > 0


def test_flat_records_classify_as_xrack():
    """Under flat metering every rank is its own node and rack, so the
    three-way rollup puts every byte in the widest tier."""
    _, st = run_spmd(4, _workout, backend="serial",
                     meter_compute=False, comm="flat")
    by_op = st.bytes_by_op()
    for op, (intra, inter, xrack) in st.rack_tier_bytes_by_op().items():
        assert intra == 0 and inter == 0 and xrack == by_op[op]
    assert st.modeled_xrack_bytes() == 0  # no *wire* model without tiers


@backends
def test_rack_tier_never_changes_results(backend):
    out_h, st_h = run_spmd(8, _workout, backend=backend,
                           meter_compute=False, comm="hierarchical:2")
    out_r, st_r = run_spmd(8, _workout, backend=backend,
                           meter_compute=False, comm="hierarchical:2x2")
    assert out_h == out_r
    assert st_h.signature() == st_r.signature()


# -- pricing -----------------------------------------------------------------

def _stats(comm_spec):
    _, st = run_spmd(8, _workout, backend="serial",
                     meter_compute=False, comm=comm_spec)
    return st


def test_rack_terms_price_rack_traffic():
    st = _stats("hierarchical:2x2")
    base = TimeModel(machine=BLUE_WATERS_TIERED).total_time(st)
    pricier = TieredMachineModel(
        alpha=BLUE_WATERS_TIERED.alpha, beta=BLUE_WATERS_TIERED.beta,
        alpha_intra=BLUE_WATERS_TIERED.alpha_intra,
        beta_intra=BLUE_WATERS_TIERED.beta_intra,
        alpha_rack=10 * BLUE_WATERS_TIERED.alpha_rack,
        beta_rack=10 * BLUE_WATERS_TIERED.beta_rack,
    )
    assert TimeModel(machine=pricier).total_time(st) > base


def test_rackless_records_price_independent_of_rack_constants():
    """Without racks the xrack meters are zero, so the rack constants must
    be inert — the tiered model stays bit-identical to its two-tier self."""
    for spec in ("flat", "hierarchical:2"):
        st = _stats(spec)
        base = TimeModel(machine=BLUE_WATERS_TIERED).total_time(st)
        scaled = TieredMachineModel(
            alpha=BLUE_WATERS_TIERED.alpha, beta=BLUE_WATERS_TIERED.beta,
            alpha_intra=BLUE_WATERS_TIERED.alpha_intra,
            beta_intra=BLUE_WATERS_TIERED.beta_intra,
            alpha_rack=1000 * BLUE_WATERS_TIERED.alpha_rack,
            beta_rack=1000 * BLUE_WATERS_TIERED.beta_rack,
        )
        assert TimeModel(machine=scaled).total_time(st) == base


def test_batched_pricing_matches_scalar():
    """The NumPy-batched cost path must agree bit-for-bit with the scalar
    per-event accessors, rack terms included."""
    st = _stats("hierarchical:2x2")
    m = BLUE_WATERS_TIERED
    lat_b, bw_b = m.cost_parts_batch(st.events, st.nprocs)
    for i, e in enumerate(st.events):
        lat_s, bw_s = m.cost_parts(e, st.nprocs)
        assert lat_b[i] == lat_s
        assert bw_b[i] == bw_s
